module Dp = Support.Domain_pool

let emit ?(labels = []) tl ~label (stats : Dp.stats) =
  List.iter
    (fun (s : Dp.span) ->
      let name =
        match List.nth_opt labels s.Dp.job with
        | Some l -> l
        | None -> Printf.sprintf "%s#%d" label s.Dp.job
      in
      Event.span tl
        ~lane:(Event.pool_lane s.Dp.domain)
        ~cat:"pool"
        ~args:[ ("job", Event.Count s.Dp.job) ]
        ~name ~time:s.Dp.start_s
        ~dur:(s.Dp.finish_s -. s.Dp.start_s)
        ())
    stats.Dp.spans;
  Event.instant tl ~lane:(Event.pool_lane 0) ~cat:"pool"
    ~args:
      [
        ("jobs", Event.Count stats.Dp.njobs);
        ("domains", Event.Count stats.Dp.domains);
        ("wall_s", Event.Num stats.Dp.wall_s);
        ("speedup", Event.Num (Dp.speedup stats));
      ]
    ~name:(label ^ " done") ~time:stats.Dp.wall_s ()

let to_json ?labels ~label stats =
  let tl = Event.create () in
  emit ?labels tl ~label stats;
  Chrome.to_json tl
