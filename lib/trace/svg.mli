(** Standalone SVG Gantt rendering of a timeline.

    One horizontal lane per (track, lane) pair — for a simulated run that
    means one row per process grouped under its processor — with spans drawn
    as category-coloured bars, instants as ticks, and message flows as
    arrows from the sending lane at departure time to the receiving lane at
    consumption time. This is the graphical successor of the ASCII
    [Sim.gantt] / [--dump-stage map] charts (ROADMAP, dynamic-schedule
    visualisation).

    Two overlay families can be drawn on the same lanes:

    - [predicted]: the static schedule's op/comm slots as dashed grey ghost
      bars behind the measured spans, so slippage shows up as a measured
      bar sliding off its ghost;
    - [critical]: the measured critical path as gold outlines drawn on top
      of the spans they bound.

    A third, lane-independent overlay marks time ranges: [bands] draws
    full-height translucent rectangles (SLO violation episodes from
    {!Series.Slo.bands}) behind every lane's bars. *)

type overlay_bar = {
  bar_lane : Event.lane;
      (** row to draw on; gets a row even if no measured event landed there *)
  bar_label : string;
  bar_start : float;  (** seconds *)
  bar_finish : float;
}

type band = {
  band_label : string;
  band_start : float;  (** seconds *)
  band_finish : float;
}

val gantt :
  ?width:int ->
  ?predicted:overlay_bar list ->
  ?critical:overlay_bar list ->
  ?bands:band list ->
  Event.timeline ->
  (string, string) result
(** Renders the timeline; [Error] with an explanatory message when the
    timeline holds no events (typically: tracing was not enabled on the
    machine). [width] is the total image width in pixels (default 960).
    With no overlay the output is byte-identical to the overlay-free
    renderer. *)
