(** Standalone SVG Gantt rendering of a timeline.

    One horizontal lane per (track, lane) pair — for a simulated run that
    means one row per process grouped under its processor — with spans drawn
    as category-coloured bars, instants as ticks, and message flows as
    arrows from the sending lane at departure time to the receiving lane at
    consumption time. This is the graphical successor of the ASCII
    [Sim.gantt] / [--dump-stage map] charts (ROADMAP, dynamic-schedule
    visualisation). *)

val gantt : ?width:int -> Event.timeline -> (string, string) result
(** Renders the timeline; [Error] with an explanatory message when the
    timeline holds no events (typically: tracing was not enabled on the
    machine). [width] is the total image width in pixels (default 960). *)
