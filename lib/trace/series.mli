(** Windowed time-series telemetry over the simulated timeline.

    Every other observability surface (metrics, conformance) reports
    end-of-run aggregates; this module folds the message-lifecycle trace and
    the executive's frame bookkeeping into fixed-width windows of simulated
    time, so "what was throughput during the fault window?" and "when did
    p99 first blow the frame budget?" have answers. On top of the series sits
    an {!Slo} monitor: per-window evaluation of declarations like
    ["p99_latency<8ms"] with burn-rate state (ok → warning → violated), a
    structured violations report, instants on the unified timeline and
    violation bands on the SVG Gantt.

    Everything here is simulation-deterministic: two builds from the same
    run produce byte-identical exports at any [--jobs] level, and windows
    built from a partition of the observation stream {!merge} back to the
    very bytes of a single build (the window-merge invariant pinned in
    [test_series]). *)

module Hist = Support.Histogram
(** Mergeable log-bucketed latency histogram — an alias of
    {!Support.Histogram}, which the daemon metrics registry
    ({!Support.Metrics}) shares, so series exports and daemon expositions
    are bucket-for-bucket comparable. See {!Support.Histogram} for the
    bucket layout and determinism guarantees. *)

type window = {
  index : int;
  w_start : float;  (** seconds, inclusive *)
  w_finish : float;  (** seconds, exclusive (last window absorbs the tail) *)
  frames : int;  (** frame outputs completed in this window *)
  messages : int;  (** process sends started in this window *)
  reissues : int;  (** df tasks reissued in this window *)
  deadline_misses : int;  (** late frames, attributed to their output window *)
  faults : int;  (** fault instants (halt/restore/drop/...) in this window *)
  in_flight : int;
      (** frames injected but not yet completed at the window's end;
          meaningful when [injections] was supplied to {!build} (negative
          otherwise, by construction — the count is injected minus
          completed) *)
  backlog : int;
      (** high-water mailbox backlog growth within the window: per-port
          deliveries minus consumptions, clamped at 0, measured from the
          window's opening backlog — window-local, so partitioned builds
          merge exactly *)
  busy : float array;  (** per-processor busy seconds, spans clipped *)
  link_busy : ((int * int) * float) list;
      (** per directed link, occupied seconds clipped to the window;
          only links active in the window, sorted by (src, dst) *)
  latency : Hist.t;  (** latencies of the frames completed in this window *)
  last_output : float option;
      (** completion time of the window's latest frame, for gap detection *)
}

type t = {
  width : float;  (** window width, seconds *)
  horizon : float;  (** end of observed time *)
  nprocs : int;
  windows : window array;  (** dense, window [i] covers [i*width, (i+1)*width) *)
  truncated : bool;  (** the source trace dropped events past its limit *)
}

type totals = {
  total_frames : int;
  total_messages : int;
  total_busy : float;  (** seconds, all processors *)
  total_reissues : int;
  total_deadline_misses : int;
  total_faults : int;
}

val build :
  width:float ->
  nprocs:int ->
  ?horizon:float ->
  ?output_times:float list ->
  ?latencies:float list ->
  ?input_period:float ->
  ?injections:float list ->
  ?reissue_times:float list ->
  Event.timeline ->
  (t, string) result
(** Folds the timeline (and the executive-level observation lists) into
    windows. [horizon] extends the covered range (the maximum of the
    argument and every observation is used) — partial builds that will be
    {!merge}d must share an explicit horizon so their window counts agree.
    [output_times]/[latencies] must pair up index-wise; [input_period]
    classifies deadline misses (latency > period); [injections] are frame
    availability times (for [in_flight]); [reissue_times] are the
    executive's timestamped df reissues. [Error] on a non-positive width or
    mismatched observation lists. An empty timeline is a valid (all-zero)
    series — callers wanting "tracing was off" as an error check
    {!Event.length} first. *)

val merge : t -> t -> (t, string) result
(** Window-wise combination: additive fields add, histograms merge,
    [backlog] and [last_output] take the maximum, [truncated] ors. Exact
    (byte-identical export) when the operands were built from a partition of
    the observation stream by window; [Error] on differing [width] or
    [nprocs]. *)

val throughput : t -> window -> float
(** Frames per second completed in the window. *)

val utilisation : t -> window -> float
(** Mean busy fraction over processors for the window ([busy / width];
    the final, possibly partial window divides by the full width too). *)

val totals : t -> totals
(** Sums over all windows — by construction equal to the run totals
    ([Sim.stats] messages, accounts busy time, executive frame counts);
    the equality is pinned property-wise in [test_series]. *)

(** SLO declarations, per-window evaluation and burn-rate alerting. *)
module Slo : sig
  type metric =
    | P50
    | P95
    | P99
    | Mean_latency
    | Miss_rate  (** deadline misses / frames, per window *)
    | Period  (** width/frames, or the widening gap since the last output *)
    | Throughput  (** frames per second *)
    | Utilisation  (** mean busy fraction *)

  type op = Lt | Le | Gt | Ge

  type spec = {
    raw : string;  (** the declaration as written, e.g. ["p99_latency<8ms"] *)
    metric : metric;
    op : op;
    threshold : float;  (** base units: seconds, fps, or a ratio *)
  }

  val metric_names : string list
  (** Accepted metric spellings, for help text and error messages. *)

  val parse : string -> (spec, string) result
  (** Parses ["METRIC OP VALUE[UNIT]"] — e.g. ["p99_latency<8ms"],
      ["miss_rate<0.01"], ["period<3ms"], ["throughput>=20"],
      ["utilisation>0.5"]. Ops: [<], [<=], [>], [>=]. Units: [us]/[ms]/[s]
      on time metrics, [%] on ratios, bare numbers otherwise. *)

  type state = Healthy | Warning | Violated

  (** Burn-rate semantics: a failing window moves Healthy → Warning, a
      second consecutive failing window Warning → Violated; any passing
      window returns to Healthy (a Violated → Healthy transition is a
      recovery); windows with no observation (e.g. no frame completed, for
      a latency metric) hold the state. *)

  type monitor = {
    spec : spec;
    final : state;
    transitions : (float * state * state) list;
        (** (window end time, from, to), in time order *)
    failing_windows : int;
    total_burn : float;  (** seconds: width × failing windows *)
    first_violation : float option;  (** first entry into Violated *)
    worst : (int * float) option;
        (** (window index, observed value) of the worst failing window *)
    recovered_at : float option;
        (** first Violated → Healthy transition after [first_violation] *)
    time_to_recovery : float option;
        (** [recovered_at - first_violation] *)
  }

  type report = { window_width : float; monitors : monitor list }

  val evaluate : spec list -> t -> report
  (** One monitor per spec, in argument order. *)

  val state_name : state -> string
  (** ["ok"], ["warning"] or ["violated"]. *)

  val to_string : report -> string
  (** The violations report: one line per SLO with first-violation time,
      worst window, total burn and time-to-recovery. *)

  val emit : Event.timeline -> report -> unit
  (** Appends every state transition as an instant on the SLO lanes
      ({!Event.slo_lane}), so Chrome/SVG exports carry the alerts on the
      unified timeline. *)

  val bands : report -> Svg.band list
  (** One full-height band per violation episode (first failing window of a
      bad spell through its last failing window), for
      {!Svg.gantt}'s [?bands]. *)
end

(** {1 Exporters}

    All three are deterministic functions of the series (and optional SLO
    report): fixed field order, fixed number formatting, no wall-clock
    anywhere — CI byte-compares them across [--jobs] levels. *)

val to_json : ?slo:Slo.report -> t -> string
(** One JSON object: [width_s], [horizon_s], [nprocs], [nwindows],
    [truncated], [totals], [windows] (per-window rows with busy/links/
    latency percentiles and histogram buckets) and [slos] (empty array
    without [slo]). Top-level field set pinned in [test_determinism]. *)

val to_csv : t -> string
(** One row per window with derived columns (throughput, utilisation,
    p50/p95/p99 in milliseconds); header row first. *)

val to_prometheus : ?slo:Slo.report -> t -> string
(** Prometheus text-exposition snapshot of the run totals: counters,
    per-processor/per-link totals, the merged latency histogram with [le]
    buckets, last-window gauges, and per-SLO state/burn when [slo] is
    given. *)
