module Schedule = Syndex.Schedule
module Graph = Procnet.Graph

type op_row = {
  op_node : int;
  op_label : string;
  op_proc : int;
  predicted_busy : float;
  measured_busy : float;
  comm_overhead : float;
  op_slack : float;
}

type link_row = {
  link_src : int;
  link_dst : int;
  predicted_occupancy : float;
  measured_occupancy : float;
  link_slack : float;
}

type path_elem = {
  elem_lane : Event.lane;
  elem_kind : string;
  elem_label : string;
  elem_start : float;
  elem_finish : float;
  contribution : float;
  share : float;
}

type frame_row = {
  frame : int;
  injected : float;
  completed : float;
  latency : float;
}

type report = {
  predicted_makespan : float;
  measured_makespan : float;
  makespan_error : float;
  divergence : float;
  predicted_period : float;
  measured_period : float option;
  frames_in_flight : int;
  ops : op_row list;
  links : link_row list;
  path : path_elem list;
  path_length : float;
  frames : frame_row list;
}

(* ------------------------------------------------------------------ *)
(* Activity extraction                                                 *)

(* An activity is a span that occupies a resource: a compute/send/recv span
   occupies its processor, a link span occupies its directed link. Instants
   (delivers, blocks, faults) mark points but occupy nothing, so they never
   sit on the critical path themselves — their effect shows up as the gap
   they open between activities. *)
type activity = {
  idx : int;  (* emission index: deterministic tie-break and cycle guard *)
  lane : Event.lane;
  cat : string;
  act_name : string;
  start : float;
  finish : float;
  msg : int option;
}

let is_processor_track track =
  track >= Event.processor_track 0 && track <> Event.pool_track

let msg_of_args args =
  match List.assoc_opt "msg" args with
  | Some (Event.Count m) -> Some m
  | _ -> None

let activities timeline =
  let acts = ref [] in
  List.iteri
    (fun idx (e : Event.t) ->
      match e.Event.kind with
      | Event.Span dur ->
          let lane = e.Event.lane in
          let keep =
            if is_processor_track lane.Event.track then
              match e.Event.cat with
              | "compute" | "send" | "recv" -> true
              | _ -> false
            else lane.Event.track = Event.links_track && e.Event.cat = "link"
          in
          if keep then
            acts :=
              {
                idx;
                lane;
                cat = e.Event.cat;
                act_name = e.Event.name;
                start = e.Event.time;
                finish = e.Event.time +. dur;
                msg = msg_of_args e.Event.args;
              }
              :: !acts
      | _ -> ())
    (Event.events timeline);
  List.rev !acts

(* ------------------------------------------------------------------ *)
(* Measured critical path                                              *)

(* The resource an activity occupies. A whole processor is one resource —
   processes interleave on it, so the latest span anywhere on the track is
   the occupancy predecessor — while each directed link is its own. *)
let resource a =
  if is_processor_track a.lane.Event.track then (a.lane.Event.track, -1)
  else (a.lane.Event.track, a.lane.Event.index)

(* Lexicographic (finish, idx): the deterministic "earlier" order used both
   to pick the terminal activity and to guarantee backtracking progress on
   zero-duration spans. *)
let later a b = compare (a.finish, a.idx) (b.finish, b.idx) > 0

let critical_path acts =
  match acts with
  | [] -> ([], 0.0)
  | first :: rest ->
      let terminal = List.fold_left (fun m a -> if later a m then a else m) first rest in
      let tmax = terminal.finish in
      let eps = Float.abs tmax *. 1e-9 in
      let by_resource = Hashtbl.create 16 and by_msg = Hashtbl.create 64 in
      let push tbl key a =
        Hashtbl.replace tbl key (a :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
      in
      List.iter
        (fun a ->
          push by_resource (resource a) a;
          match a.msg with Some m -> push by_msg m a | None -> ())
        acts;
      (* latest candidate ending no later than [a] starts, and strictly
         earlier than [a] in (finish, idx) order so chains of zero-duration
         spans at one instant terminate *)
      let best_before a candidates =
        List.fold_left
          (fun acc b ->
            if b.idx <> a.idx && b.finish <= a.start +. eps && later a b then
              match acc with
              | Some c when later c b -> acc
              | _ -> Some b
            else acc)
          None candidates
      in
      let lookup tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      let visited = Hashtbl.create 64 in
      let rec back a path =
        Hashtbl.replace visited a.idx ();
        let occupancy =
          (* only back-to-back occupancy: a gap before [a] on its own
             resource is idle time, never critical *)
          match best_before a (lookup by_resource (resource a)) with
          | Some o when a.start -. o.finish <= eps -> Some o
          | _ -> None
        in
        let causal =
          (* message chain: a link hop follows the send (or an earlier hop)
             of its message; a recv follows the last hop (or the send, for
             a local delivery). Sends have no causal predecessor — the
             compute that produced the data is their occupancy pred. A gap
             here is transport latency (delivery overhead, injected delay),
             which is exactly time on the critical path, so causal
             predecessors are accepted across gaps. *)
          match (a.cat, a.msg) with
          | ("link" | "recv"), Some m -> best_before a (lookup by_msg m)
          | _ -> None
        in
        let pred =
          match (occupancy, causal) with
          | Some o, Some c -> Some (if later o c then o else c)
          | (Some _ as p), None | None, (Some _ as p) -> p
          | None, None -> None
        in
        match pred with
        | Some p when not (Hashtbl.mem visited p.idx) -> back p (a :: path)
        | _ -> a :: path
        (* no predecessor left: [a] waited on something outside the machine
           (the environment injecting its frame) — the chain ends here *)
      in
      let chain = back terminal [] in
      (* clamp each element's contribution to the time it alone adds past
         its predecessor, so the contributions sum to the chain's span *)
      let _, elems =
        List.fold_left
          (fun (covered, out) a ->
            let contribution = Float.max 0.0 (a.finish -. Float.max a.start covered) in
            (Float.max covered a.finish, (a, contribution) :: out))
          ((List.hd chain).start, [])
          chain
      in
      let elems = List.rev elems in
      let path_length = List.fold_left (fun s (_, c) -> s +. c) 0.0 elems in
      let share c = if path_length > 0.0 then c /. path_length else 0.0 in
      let label a =
        if a.cat = "link" then Printf.sprintf "%s %s" a.act_name a.lane.Event.label
        else
          Printf.sprintf "%s %s @%s" a.act_name a.lane.Event.label
            a.lane.Event.track_label
      in
      ( List.map
          (fun (a, contribution) ->
            {
              elem_lane = a.lane;
              elem_kind = a.cat;
              elem_label = label a;
              elem_start = a.start;
              elem_finish = a.finish;
              contribution;
              share = share contribution;
            })
          elems,
        path_length )

(* ------------------------------------------------------------------ *)
(* Predicted-vs-measured joins                                         *)

let route_hops route =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go ((a, b) :: acc) rest
    | _ -> List.rev acc
  in
  go [] route

let op_rows ~(schedule : Schedule.t) ~nframes acts =
  let predicted = Hashtbl.create 16 in
  List.iter
    (fun (s : Schedule.op_slot) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt predicted s.node) in
      Hashtbl.replace predicted s.node (prev +. (s.finish -. s.start)))
    schedule.ops;
  let busy = Hashtbl.create 16 and overhead = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if is_processor_track a.lane.Event.track then begin
        let tbl = if a.cat = "compute" then busy else overhead in
        let pid = a.lane.Event.index in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl pid) in
        Hashtbl.replace tbl pid (prev +. (a.finish -. a.start))
      end)
    acts;
  let per_frame tbl id =
    Option.value ~default:0.0 (Hashtbl.find_opt tbl id) /. float_of_int nframes
  in
  Array.to_list (Graph.nodes schedule.graph)
  |> List.map (fun (n : Graph.node) ->
         let predicted_busy =
           Option.value ~default:0.0 (Hashtbl.find_opt predicted n.Graph.id)
         in
         let measured_busy = per_frame busy n.Graph.id in
         {
           op_node = n.Graph.id;
           op_label = n.Graph.label;
           op_proc = schedule.placement.(n.Graph.id);
           predicted_busy;
           measured_busy;
           comm_overhead = per_frame overhead n.Graph.id;
           op_slack = measured_busy -. predicted_busy;
         })

let link_rows ~(schedule : Schedule.t) ~nframes acts =
  let nprocs = Archi.nprocs schedule.arch in
  let predicted = Hashtbl.create 16 in
  let book key dur =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt predicted key) in
    Hashtbl.replace predicted key (prev +. dur)
  in
  List.iter
    (fun (c : Schedule.comm_slot) ->
      match c.Schedule.hops with
      | _ :: _ as hops ->
          (* the prediction engine reserves each hop for its own
             startup + byte time; charge exactly those slots *)
          List.iter
            (fun (h : Schedule.hop_slot) ->
              book (h.Schedule.hop_src, h.Schedule.hop_dst)
                (h.Schedule.hop_finish -. h.Schedule.hop_start))
            hops
      | [] -> (
          (* schedules without hop detail: spread the end-to-end slot
             evenly over the route *)
          match route_hops c.route with
          | [] -> ()
          | hops ->
              let share =
                (c.finish -. c.start) /. float_of_int (List.length hops)
              in
              List.iter (fun key -> book key share) hops))
    schedule.comms;
  let measured = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if a.cat = "link" then begin
        let key = (a.lane.Event.index / nprocs, a.lane.Event.index mod nprocs) in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt measured key) in
        Hashtbl.replace measured key (prev +. (a.finish -. a.start))
      end)
    acts;
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) predicted;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) measured;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort compare
  |> List.map (fun (src, dst) ->
         let predicted_occupancy =
           Option.value ~default:0.0 (Hashtbl.find_opt predicted (src, dst))
         in
         let measured_occupancy =
           Option.value ~default:0.0 (Hashtbl.find_opt measured (src, dst))
           /. float_of_int nframes
         in
         {
           link_src = src;
           link_dst = dst;
           predicted_occupancy;
           measured_occupancy;
           link_slack = measured_occupancy -. predicted_occupancy;
         })

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)

let analyse ~schedule ?(output_times = []) ?input_period timeline =
  let acts = activities timeline in
  if acts = [] then
    Error
      "conformance needs a recorded timeline with machine activity (run with \
       tracing enabled)"
  else begin
    let period = Option.value ~default:0.0 input_period in
    let frames =
      List.mapi
        (fun frame completed ->
          let injected = float_of_int frame *. period in
          { frame; injected; completed; latency = completed -. injected })
        output_times
    in
    let nframes = Int.max 1 (List.length frames) in
    let path, path_length = critical_path acts in
    let measured_makespan =
      match frames with
      | [] -> List.fold_left (fun m a -> Float.max m a.finish) 0.0 acts
      | _ ->
          List.fold_left (fun s f -> s +. f.latency) 0.0 frames
          /. float_of_int (List.length frames)
    in
    let predicted_makespan = schedule.Schedule.makespan in
    let makespan_error =
      if predicted_makespan > 0.0 then
        (measured_makespan -. predicted_makespan) /. predicted_makespan
      else 0.0
    in
    let ops = op_rows ~schedule ~nframes acts in
    let links = link_rows ~schedule ~nframes acts in
    let divergence =
      let slack =
        List.fold_left (fun s r -> s +. Float.abs r.op_slack) 0.0 ops
        +. List.fold_left (fun s r -> s +. Float.abs r.link_slack) 0.0 links
      in
      Float.abs makespan_error
      +. (if predicted_makespan > 0.0 then slack /. predicted_makespan else slack)
    in
    (* Steady-state throughput join: the schedule's resource/bottleneck
       bound against the measured inter-output spacing. *)
    let predicted_period = Schedule.period schedule in
    let measured_period =
      match frames with
      | first :: (_ :: _ as rest) ->
          let last = List.nth rest (List.length rest - 1) in
          Some
            ((last.completed -. first.completed)
            /. float_of_int (List.length rest))
      | _ -> None
    in
    let frames_in_flight =
      match schedule.Schedule.pipeline with
      | Some p -> p.Schedule.frames_in_flight
      | None -> 1
    in
    Ok
      {
        predicted_makespan;
        measured_makespan;
        makespan_error;
        divergence;
        predicted_period;
        measured_period;
        frames_in_flight;
        ops;
        links;
        path;
        path_length;
        frames;
      }
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let ms t = t *. 1e3

let to_string r =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "conformance: predicted makespan %.4f ms, measured %.4f ms (%+.1f%%)\n"
    (ms r.predicted_makespan) (ms r.measured_makespan)
    (r.makespan_error *. 100.0);
  pf "divergence score %.4f\n" r.divergence;
  (match r.measured_period with
  | Some m ->
      pf "steady state: predicted period %.4f ms, measured %.4f ms (%d frame%s \
          in flight predicted)\n"
        (ms r.predicted_period) (ms m) r.frames_in_flight
        (if r.frames_in_flight = 1 then "" else "s")
  | None ->
      pf "steady state: predicted period %.4f ms (%d frame%s in flight \
          predicted)\n"
        (ms r.predicted_period) r.frames_in_flight
        (if r.frames_in_flight = 1 then "" else "s"));
  pf "per-op slack (ms per frame):\n";
  pf "  %-24s %4s %10s %10s %10s %10s\n" "op" "proc" "predicted" "measured"
    "overhead" "slack";
  List.iter
    (fun o ->
      pf "  %-24s P%-3d %10.4f %10.4f %10.4f %+10.4f\n"
        (Printf.sprintf "%d:%s" o.op_node o.op_label)
        o.op_proc (ms o.predicted_busy) (ms o.measured_busy)
        (ms o.comm_overhead) (ms o.op_slack))
    r.ops;
  if r.links <> [] then begin
    pf "per-link slack (ms per frame):\n";
    pf "  %-10s %10s %10s %10s\n" "link" "predicted" "measured" "slack";
    List.iter
      (fun l ->
        pf "  P%d->P%-5d %10.4f %10.4f %+10.4f\n" l.link_src l.link_dst
          (ms l.predicted_occupancy) (ms l.measured_occupancy) (ms l.link_slack))
      r.links
  end;
  let run_finish =
    match List.rev r.path with e :: _ -> e.elem_finish | [] -> 0.0
  in
  let covered =
    if run_finish > 0.0 then r.path_length /. run_finish *. 100.0 else 0.0
  in
  pf "measured critical path: %.4f ms over %d elements (%.1f%% of the run's \
      %.4f ms)\n"
    (ms r.path_length) (List.length r.path) covered (ms run_finish);
  List.iter
    (fun e ->
      pf "  %5.1f%%  %-36s [%.4f .. %.4f ms]\n" (e.share *. 100.0) e.elem_label
        (ms e.elem_start) (ms e.elem_finish))
    r.path;
  if r.frames <> [] then begin
    pf "frames:\n";
    List.iter
      (fun f ->
        pf "  frame %-3d injected %.4f ms  completed %.4f ms  latency %.4f ms\n"
          f.frame (ms f.injected) (ms f.completed) (ms f.latency))
      r.frames
  end;
  Buffer.contents b

let to_json r =
  let open Support.Json in
  let num x = Num x in
  Obj
    [
      ("predicted_makespan", num r.predicted_makespan);
      ("measured_makespan", num r.measured_makespan);
      ("makespan_error", num r.makespan_error);
      ("divergence", num r.divergence);
      ("predicted_period", num r.predicted_period);
      ( "measured_period",
        match r.measured_period with Some m -> num m | None -> Null );
      ("frames_in_flight", num (float_of_int r.frames_in_flight));
      ("path_length", num r.path_length);
      ( "ops",
        Arr
          (List.map
             (fun o ->
               Obj
                 [
                   ("node", num (float_of_int o.op_node));
                   ("label", Str o.op_label);
                   ("proc", num (float_of_int o.op_proc));
                   ("predicted", num o.predicted_busy);
                   ("measured", num o.measured_busy);
                   ("overhead", num o.comm_overhead);
                   ("slack", num o.op_slack);
                 ])
             r.ops) );
      ( "links",
        Arr
          (List.map
             (fun l ->
               Obj
                 [
                   ("src", num (float_of_int l.link_src));
                   ("dst", num (float_of_int l.link_dst));
                   ("predicted", num l.predicted_occupancy);
                   ("measured", num l.measured_occupancy);
                   ("slack", num l.link_slack);
                 ])
             r.links) );
      ( "critical_path",
        Arr
          (List.map
             (fun e ->
               Obj
                 [
                   ("kind", Str e.elem_kind);
                   ("label", Str e.elem_label);
                   ("start", num e.elem_start);
                   ("finish", num e.elem_finish);
                   ("contribution", num e.contribution);
                   ("share", num e.share);
                 ])
             r.path) );
      ( "frames",
        Arr
          (List.map
             (fun f ->
               Obj
                 [
                   ("frame", num (float_of_int f.frame));
                   ("injected", num f.injected);
                   ("completed", num f.completed);
                   ("latency", num f.latency);
                 ])
             r.frames) );
    ]

(* ------------------------------------------------------------------ *)
(* SVG overlays                                                        *)

let predicted_overlay (schedule : Schedule.t) =
  let nprocs = Archi.nprocs schedule.arch in
  let op_bars =
    List.map
      (fun (s : Schedule.op_slot) ->
        let label = (Graph.node schedule.graph s.Schedule.node).Graph.label in
        {
          Svg.bar_lane =
            Event.processor_lane ~proc:s.Schedule.proc ~pid:s.Schedule.node
              ~name:label;
          bar_label = label;
          bar_start = s.Schedule.start;
          bar_finish = s.Schedule.finish;
        })
      schedule.ops
  in
  let comm_bars =
    List.concat_map
      (fun (c : Schedule.comm_slot) ->
        let label =
          Printf.sprintf "comm %d->%d" c.edge.Graph.src c.edge.Graph.dst
        in
        match c.Schedule.hops with
        | _ :: _ as hops ->
            (* draw the actual per-hop reservations (startup + byte time,
               around earlier traffic), not an even split *)
            List.map
              (fun (h : Schedule.hop_slot) ->
                {
                  Svg.bar_lane =
                    Event.link_lane ~src:h.Schedule.hop_src
                      ~dst:h.Schedule.hop_dst ~nprocs;
                  bar_label = label;
                  bar_start = h.Schedule.hop_start;
                  bar_finish = h.Schedule.hop_finish;
                })
              hops
        | [] ->
            let hops = route_hops c.route in
            let n = List.length hops in
            let dur = (c.finish -. c.start) /. float_of_int (Int.max 1 n) in
            List.mapi
              (fun i (src, dst) ->
                {
                  Svg.bar_lane = Event.link_lane ~src ~dst ~nprocs;
                  bar_label = label;
                  bar_start = c.start +. (float_of_int i *. dur);
                  bar_finish = c.start +. (float_of_int (i + 1) *. dur);
                })
              hops)
      schedule.comms
  in
  op_bars @ comm_bars

let critical_overlay r =
  List.map
    (fun e ->
      {
        Svg.bar_lane = e.elem_lane;
        bar_label = e.elem_label;
        bar_start = e.elem_start;
        bar_finish = e.elem_finish;
      })
    r.path
