(** Structured trace events shared by the whole toolchain.

    One {!timeline} holds everything a run produced: compile-stage spans from
    the pass manager, process activity and message lifecycles from the
    machine simulator, and counter samples. Exporters ({!Chrome}, {!Svg})
    render a timeline without knowing who emitted into it.

    Events are attributed to a {!lane}: a [track] groups lanes the way a
    Chrome-trace "process" groups threads (one track per simulated
    processor, one for the toolchain, one for the environment, one for the
    links), and the [index] distinguishes lanes within the track (one lane
    per simulated process). Track numbering is fixed so exports are
    deterministic: {!compile_track} = 0, {!env_track} = 1,
    {!links_track} = 2, processors at [3 + p]. *)

type lane = {
  track : int;  (** lane group (Chrome-trace pid) *)
  track_label : string;
  index : int;  (** lane within the track (Chrome-trace tid) *)
  label : string;
}

type arg = Str of string | Num of float | Count of int
(** Typed event argument (rendered into the exporter's metadata). *)

type kind =
  | Span of float  (** an activity with a duration, seconds *)
  | Instant
  | Flow_start of int  (** message departure; the int ties start to end *)
  | Flow_end of int  (** message consumption, same flow id as its start *)
  | Counter of (string * float) list  (** sampled counter values *)

type t = {
  time : float;  (** seconds from the timeline origin *)
  name : string;
  cat : string;  (** category: "compute", "send", "link", "stage", ... *)
  lane : lane;
  args : (string * arg) list;
  kind : kind;
}

(** {1 Timelines} *)

type timeline

val create : unit -> timeline

val add : timeline -> t -> unit

val length : timeline -> int

val events : timeline -> t list
(** In emission order. *)

val by_time : timeline -> t list
(** Stable-sorted by [time] (emission order breaks ties), so exports are
    deterministic even when producers emit out of order (link hops are
    recorded at reservation time). *)

val truncated : timeline -> bool

val mark_truncated : timeline -> unit
(** Producers that dropped events (e.g. the simulator past its trace limit)
    flag the timeline so every export can carry the incompleteness. *)

(** {1 Emission helpers} *)

val span :
  timeline ->
  lane:lane ->
  cat:string ->
  ?args:(string * arg) list ->
  name:string ->
  time:float ->
  dur:float ->
  unit ->
  unit

val instant :
  timeline ->
  lane:lane ->
  cat:string ->
  ?args:(string * arg) list ->
  name:string ->
  time:float ->
  unit ->
  unit

val flow_start :
  timeline ->
  lane:lane ->
  cat:string ->
  ?name:string ->
  flow:int ->
  time:float ->
  unit ->
  unit

val flow_end :
  timeline ->
  lane:lane ->
  cat:string ->
  ?name:string ->
  flow:int ->
  time:float ->
  unit ->
  unit

val counter :
  timeline ->
  lane:lane ->
  name:string ->
  time:float ->
  (string * float) list ->
  unit

(** {1 Lane conventions} *)

val compile_track : int
val env_track : int
val links_track : int

val processor_track : int -> int
(** [processor_track p = 3 + p]. *)

val pool_track : int
(** The domain pool's track, far above every processor track. *)

val slo_track : int
(** SLO-monitor alert lanes, between the processors and the pool. *)

val compile_lane : lane
(** The toolchain's single lane (pass-manager stage spans). *)

val env_lane : lane
(** External stimuli (injected inputs). *)

val link_lane : src:int -> dst:int -> nprocs:int -> lane
(** One lane per directed link, labelled ["Pa->Pb"]. *)

val processor_lane : proc:int -> pid:int -> name:string -> lane
(** One lane per simulated process, grouped under its processor's track. *)

val cpu_lane : int -> lane
(** Processor-level events not tied to a process (faults). *)

val slo_lane : index:int -> label:string -> lane
(** One lane per SLO declaration, carrying its state-transition instants
    (see {!Series.Slo.emit}); [label] is the declaration as written. *)

val pool_lane : int -> lane
(** One lane per {!Support.Domain_pool} worker, on {!pool_track} — a
    parallel sweep gets a Gantt lane per domain (see {!Pool}). *)
