(* Windowed time-series telemetry over the simulated timeline. See the mli
   for the data model; the load-bearing invariants are (a) every number is a
   deterministic function of the simulated run, and (b) windows built from a
   window-partition of the observation stream merge back byte-identically. *)

(* The histogram implementation moved to [Support.Histogram] so the daemon
   metrics registry shares the very same buckets; the alias keeps every
   existing [Series.Hist] caller and the byte-identity of all exports. *)
module Hist = Support.Histogram

type window = {
  index : int;
  w_start : float;
  w_finish : float;
  frames : int;
  messages : int;
  reissues : int;
  deadline_misses : int;
  faults : int;
  in_flight : int;
  backlog : int;
  busy : float array;
  link_busy : ((int * int) * float) list;
  latency : Hist.t;
  last_output : float option;
}

type t = {
  width : float;
  horizon : float;
  nprocs : int;
  windows : window array;
  truncated : bool;
}

type totals = {
  total_frames : int;
  total_messages : int;
  total_busy : float;
  total_reissues : int;
  total_deadline_misses : int;
  total_faults : int;
}

let empty_window ~nprocs ~width index =
  {
    index;
    w_start = float_of_int index *. width;
    w_finish = float_of_int (index + 1) *. width;
    frames = 0;
    messages = 0;
    reissues = 0;
    deadline_misses = 0;
    faults = 0;
    in_flight = 0;
    backlog = 0;
    busy = Array.make nprocs 0.0;
    link_busy = [];
    latency = Hist.create ();
    last_output = None;
  }

(* Mutable accumulator mirrored into [window] records once the fold ends. *)
type acc = {
  mutable a_frames : int;
  mutable a_messages : int;
  mutable a_reissues : int;
  mutable a_misses : int;
  mutable a_faults : int;
  mutable a_injected : int;
  mutable a_backlog : int;
  a_busy : float array;
  a_links : (int * int, float ref) Hashtbl.t;
  a_hist : Hist.t;
  mutable a_last_output : float option;
}

let build ~width ~nprocs ?(horizon = 0.0) ?(output_times = [])
    ?(latencies = []) ?input_period ?(injections = []) ?(reissue_times = [])
    timeline =
  if not (width > 0.0) then Error "series: window width must be positive"
  else if nprocs < 0 then Error "series: negative processor count"
  else if List.length latencies <> List.length output_times then
    Error "series: output_times and latencies must pair up"
  else begin
    let events = Event.by_time timeline in
    let finish_of (e : Event.t) =
      match e.Event.kind with
      | Event.Span dur -> e.Event.time +. dur
      | _ -> e.Event.time
    in
    let data_end =
      List.fold_left
        (fun acc e -> Float.max acc (finish_of e))
        0.0 events
    in
    let data_end =
      List.fold_left Float.max data_end
        (List.concat [ output_times; injections; reissue_times ])
    in
    let horizon = Float.max horizon data_end in
    let nwindows = max 1 (int_of_float (Float.ceil (horizon /. width))) in
    let idx t =
      min (nwindows - 1) (max 0 (int_of_float (Float.floor (t /. width))))
    in
    let accs =
      Array.init nwindows (fun _ ->
          {
            a_frames = 0;
            a_messages = 0;
            a_reissues = 0;
            a_misses = 0;
            a_faults = 0;
            a_injected = 0;
            a_backlog = 0;
            a_busy = Array.make nprocs 0.0;
            a_links = Hashtbl.create 8;
            a_hist = Hist.create ();
            a_last_output = None;
          })
    in
    (* Distribute a span over the windows it overlaps. Window edges are
       exact multiples of [width]; the first/last windows absorb anything
       the index clamp pushed into them. *)
    let clip t0 dur add =
      if dur > 0.0 then begin
        let w0 = idx t0 and w1 = idx (t0 +. dur) in
        for w = w0 to w1 do
          let ws = if w = w0 then neg_infinity else float_of_int w *. width in
          let we =
            if w = w1 then infinity else float_of_int (w + 1) *. width
          in
          let lo = Float.max t0 ws and hi = Float.min (t0 +. dur) we in
          if hi > lo then add w (hi -. lo)
        done
      end
    in
    (* Per-port backlog growth, window-local: reset at each window edge so a
       partition of the event stream by window reproduces the same maxima.
       Events arrive time-sorted, so a single sweep suffices. *)
    let depth : (int * int * string, int) Hashtbl.t = Hashtbl.create 32 in
    let depth_window = ref (-1) in
    let port_of name =
      match String.index_opt name ' ' with
      | Some i -> String.sub name (i + 1) (String.length name - i - 1)
      | None -> name
    in
    let bump_depth w key delta =
      if w <> !depth_window then begin
        Hashtbl.reset depth;
        depth_window := w
      end;
      let cur = Option.value ~default:0 (Hashtbl.find_opt depth key) in
      let next = max 0 (cur + delta) in
      Hashtbl.replace depth key next;
      let a = accs.(w) in
      if next > a.a_backlog then a.a_backlog <- next
    in
    List.iter
      (fun (e : Event.t) ->
        let lane = e.Event.lane in
        let w = idx e.Event.time in
        match e.Event.kind with
        | Event.Span dur ->
            if
              lane.Event.track >= 3
              && lane.Event.track <> Event.pool_track
              && lane.Event.track - 3 < nprocs
              && (e.Event.cat = "compute" || e.Event.cat = "send"
                || e.Event.cat = "recv")
            then begin
              let proc = lane.Event.track - 3 in
              clip e.Event.time dur (fun w d ->
                  accs.(w).a_busy.(proc) <- accs.(w).a_busy.(proc) +. d);
              if e.Event.cat = "send" then
                accs.(w).a_messages <- accs.(w).a_messages + 1;
              if e.Event.cat = "recv" then
                bump_depth w
                  (lane.Event.track, lane.Event.index, port_of e.Event.name)
                  (-1)
            end
            else if lane.Event.track = Event.links_track && nprocs > 0 then begin
              let src = lane.Event.index / nprocs
              and dst = lane.Event.index mod nprocs in
              clip e.Event.time dur (fun w d ->
                  let links = accs.(w).a_links in
                  match Hashtbl.find_opt links (src, dst) with
                  | Some r -> r := !r +. d
                  | None -> Hashtbl.add links (src, dst) (ref d))
            end
        | Event.Instant ->
            if e.Event.cat = "fault" then
              accs.(w).a_faults <- accs.(w).a_faults + 1
            else if e.Event.cat = "deliver" then
              bump_depth w
                (lane.Event.track, lane.Event.index, port_of e.Event.name)
                1
        | Event.Flow_start _ | Event.Flow_end _ | Event.Counter _ -> ())
      events;
    let misses_of lat =
      match input_period with
      | Some p when lat > p +. 1e-12 -> 1
      | _ -> 0
    in
    (match (output_times, latencies) with
    | outs, [] ->
        List.iter
          (fun t ->
            let a = accs.(idx t) in
            a.a_frames <- a.a_frames + 1;
            a.a_last_output <-
              Some
                (match a.a_last_output with
                | None -> t
                | Some prev -> Float.max prev t))
          outs
    | outs, lats ->
        List.iter2
          (fun t lat ->
            let a = accs.(idx t) in
            a.a_frames <- a.a_frames + 1;
            a.a_misses <- a.a_misses + misses_of lat;
            Hist.add a.a_hist lat;
            a.a_last_output <-
              Some
                (match a.a_last_output with
                | None -> t
                | Some prev -> Float.max prev t))
          outs lats);
    List.iter
      (fun t ->
        let a = accs.(idx t) in
        a.a_injected <- a.a_injected + 1)
      injections;
    List.iter
      (fun t ->
        let a = accs.(idx t) in
        a.a_reissues <- a.a_reissues + 1)
      reissue_times;
    let windows =
      Array.mapi
        (fun i a ->
          let links =
            Hashtbl.fold (fun k r acc -> (k, !r) :: acc) a.a_links []
            |> List.sort compare
          in
          {
            index = i;
            w_start = float_of_int i *. width;
            w_finish = float_of_int (i + 1) *. width;
            frames = a.a_frames;
            messages = a.a_messages;
            reissues = a.a_reissues;
            deadline_misses = a.a_misses;
            faults = a.a_faults;
            in_flight = a.a_injected - a.a_frames;
            backlog = a.a_backlog;
            busy = a.a_busy;
            link_busy = links;
            latency = a.a_hist;
            last_output = a.a_last_output;
          })
        accs
    in
    (* [in_flight] is cumulative: injected-so-far minus completed-so-far at
       each window's end. The per-window deltas above make merge additive;
       integrate them here. *)
    let running = ref 0 in
    Array.iteri
      (fun i w ->
        running := !running + w.in_flight;
        windows.(i) <- { w with in_flight = !running })
      windows;
    Ok
      {
        width;
        horizon;
        nprocs;
        windows;
        truncated = Event.truncated timeline;
      }
  end

let merge a b =
  if a.width <> b.width then Error "series: window widths differ"
  else if a.nprocs <> b.nprocs then Error "series: processor counts differ"
  else begin
    let nw = max (Array.length a.windows) (Array.length b.windows) in
    let get s i =
      if i < Array.length s.windows then s.windows.(i)
      else empty_window ~nprocs:s.nprocs ~width:s.width i
    in
    (* The per-build integration of in_flight must be undone before adding
       window-wise: recover deltas, add, re-integrate. *)
    let deltas s =
      Array.init (Array.length s.windows) (fun i ->
          s.windows.(i).in_flight
          - if i = 0 then 0 else s.windows.(i - 1).in_flight)
    in
    let da = deltas a and db = deltas b in
    let delta d i = if i < Array.length d then d.(i) else 0 in
    let running = ref 0 in
    let windows =
      Array.init nw (fun i ->
          let wa = get a i and wb = get b i in
          running := !running + delta da i + delta db i;
          let links =
            let tbl = Hashtbl.create 8 in
            List.iter
              (fun (k, v) ->
                let cur =
                  Option.value ~default:0.0 (Hashtbl.find_opt tbl k)
                in
                Hashtbl.replace tbl k (cur +. v))
              (wa.link_busy @ wb.link_busy);
            Hashtbl.fold (fun k v acc -> ((k, v) : (int * int) * float) :: acc) tbl []
            |> List.sort compare
          in
          {
            index = i;
            w_start = float_of_int i *. a.width;
            w_finish = float_of_int (i + 1) *. a.width;
            frames = wa.frames + wb.frames;
            messages = wa.messages + wb.messages;
            reissues = wa.reissues + wb.reissues;
            deadline_misses = wa.deadline_misses + wb.deadline_misses;
            faults = wa.faults + wb.faults;
            in_flight = !running;
            backlog = max wa.backlog wb.backlog;
            busy = Array.init a.nprocs (fun p -> wa.busy.(p) +. wb.busy.(p));
            link_busy = links;
            latency = Hist.merge wa.latency wb.latency;
            last_output =
              (match (wa.last_output, wb.last_output) with
              | None, x | x, None -> x
              | Some x, Some y -> Some (Float.max x y));
          })
    in
    Ok
      {
        width = a.width;
        horizon = Float.max a.horizon b.horizon;
        nprocs = a.nprocs;
        windows;
        truncated = a.truncated || b.truncated;
      }
  end

let throughput t w = float_of_int w.frames /. t.width

let utilisation t w =
  if t.nprocs = 0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 w.busy /. (t.width *. float_of_int t.nprocs)

let totals t =
  Array.fold_left
    (fun acc w ->
      {
        total_frames = acc.total_frames + w.frames;
        total_messages = acc.total_messages + w.messages;
        total_busy = acc.total_busy +. Array.fold_left ( +. ) 0.0 w.busy;
        total_reissues = acc.total_reissues + w.reissues;
        total_deadline_misses = acc.total_deadline_misses + w.deadline_misses;
        total_faults = acc.total_faults + w.faults;
      })
    {
      total_frames = 0;
      total_messages = 0;
      total_busy = 0.0;
      total_reissues = 0;
      total_deadline_misses = 0;
      total_faults = 0;
    }
    t.windows

module Slo = struct
  type metric =
    | P50
    | P95
    | P99
    | Mean_latency
    | Miss_rate
    | Period
    | Throughput
    | Utilisation

  type op = Lt | Le | Gt | Ge

  type spec = { raw : string; metric : metric; op : op; threshold : float }

  let metric_names =
    [
      "p50_latency";
      "p95_latency";
      "p99_latency";
      "mean_latency";
      "miss_rate";
      "period";
      "throughput";
      "utilisation";
    ]

  let metric_of_name = function
    | "p50_latency" | "p50" -> Some P50
    | "p95_latency" | "p95" -> Some P95
    | "p99_latency" | "p99" -> Some P99
    | "mean_latency" -> Some Mean_latency
    | "miss_rate" -> Some Miss_rate
    | "period" -> Some Period
    | "throughput" -> Some Throughput
    | "utilisation" | "utilization" -> Some Utilisation
    | _ -> None

  let metric_name = function
    | P50 -> "p50_latency"
    | P95 -> "p95_latency"
    | P99 -> "p99_latency"
    | Mean_latency -> "mean_latency"
    | Miss_rate -> "miss_rate"
    | Period -> "period"
    | Throughput -> "throughput"
    | Utilisation -> "utilisation"

  let op_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

  let time_metric = function
    | P50 | P95 | P99 | Mean_latency | Period -> true
    | Miss_rate | Throughput | Utilisation -> false

  let parse raw =
    let s =
      String.concat "" (String.split_on_char ' ' (String.trim raw))
    in
    let split_op () =
      let n = String.length s in
      let rec scan i =
        if i >= n then None
        else
          match s.[i] with
          | '<' | '>' ->
              let op, len =
                if i + 1 < n && s.[i + 1] = '=' then
                  ((if s.[i] = '<' then Le else Ge), 2)
                else ((if s.[i] = '<' then Lt else Gt), 1)
              in
              Some (String.sub s 0 i, op, String.sub s (i + len) (n - i - len))
          | _ -> scan (i + 1)
      in
      scan 0
    in
    match split_op () with
    | None ->
        Error
          (Printf.sprintf
             "bad SLO %S: expected METRIC OP VALUE with OP one of < <= > >="
             raw)
    | Some (name, op, value) -> (
        match metric_of_name (String.lowercase_ascii name) with
        | None ->
            Error
              (Printf.sprintf "bad SLO %S: unknown metric %S (expected %s)"
                 raw name
                 (String.concat ", " metric_names))
        | Some metric -> (
            let value = String.lowercase_ascii value in
            let num, scale =
              let strip suffix factor =
                if
                  String.length value > String.length suffix
                  && Filename.check_suffix value suffix
                then
                  Some
                    ( String.sub value 0
                        (String.length value - String.length suffix),
                      factor )
                else None
              in
              let time = time_metric metric in
              match
                List.find_map
                  (fun (suffix, factor, ok) ->
                    if ok then strip suffix factor else None)
                  [
                    ("us", 1e-6, time);
                    ("ms", 1e-3, time);
                    ("s", 1.0, time);
                    ("%", 0.01, not time);
                    ("fps", 1.0, metric = Throughput);
                    ("hz", 1.0, metric = Throughput);
                  ]
              with
              | Some (n, f) -> (n, f)
              | None -> (value, 1.0)
            in
            match float_of_string_opt num with
            | None ->
                Error
                  (Printf.sprintf "bad SLO %S: cannot parse threshold %S" raw
                     value)
            | Some v when Float.is_nan v ->
                Error (Printf.sprintf "bad SLO %S: threshold is nan" raw)
            | Some v -> Ok { raw; metric; op; threshold = v *. scale }))

  type state = Healthy | Warning | Violated

  type monitor = {
    spec : spec;
    final : state;
    transitions : (float * state * state) list;
    failing_windows : int;
    total_burn : float;
    first_violation : float option;
    worst : (int * float) option;
    recovered_at : float option;
    time_to_recovery : float option;
  }

  type report = { window_width : float; monitors : monitor list }

  let state_name = function
    | Healthy -> "ok"
    | Warning -> "warning"
    | Violated -> "violated"

  (* The window's observed value for the metric, when observable. Latency
     and miss-rate need a completed frame; period falls back to the widening
     gap since the last completed frame (so a stall registers); throughput
     is observable from the first completed frame onward. *)
  let observe series spec ~seen_frames ~last_output w =
    match spec.metric with
    | P50 | P95 | P99 | Mean_latency ->
        if Hist.count w.latency = 0 then None
        else
          Some
            (match spec.metric with
            | P50 -> Hist.quantile w.latency 0.50
            | P95 -> Hist.quantile w.latency 0.95
            | P99 -> Hist.quantile w.latency 0.99
            | _ -> Hist.mean w.latency)
    | Miss_rate ->
        if w.frames = 0 then None
        else
          Some (float_of_int w.deadline_misses /. float_of_int w.frames)
    | Period ->
        if w.frames > 0 then Some (series.width /. float_of_int w.frames)
        else
          Option.map (fun t -> w.w_finish -. t) last_output
    | Throughput ->
        if seen_frames + w.frames = 0 then None
        else Some (throughput series w)
    | Utilisation -> Some (utilisation series w)

  let failing spec v =
    not
      (match spec.op with
      | Lt -> v < spec.threshold
      | Le -> v <= spec.threshold
      | Gt -> v > spec.threshold
      | Ge -> v >= spec.threshold)

  (* How badly a failing observation misses the target; used only to rank
     windows, so any deterministic monotone measure works. *)
  let severity spec v =
    match spec.op with
    | Lt | Le -> if spec.threshold > 0.0 then v /. spec.threshold else v
    | Gt | Ge -> if v > 0.0 then spec.threshold /. v else infinity

  let evaluate specs series =
    let monitors =
      List.map
        (fun spec ->
          let state = ref Healthy in
          let transitions = ref [] in
          let failing_windows = ref 0 in
          let first_violation = ref None in
          let worst = ref None in
          let recovered_at = ref None in
          let seen_frames = ref 0 in
          let last_output = ref None in
          Array.iter
            (fun w ->
              (match
                 observe series spec ~seen_frames:!seen_frames
                   ~last_output:!last_output w
               with
              | None -> ()
              | Some v ->
                  let fails = failing spec v in
                  if fails then begin
                    incr failing_windows;
                    let sev = severity spec v in
                    (match !worst with
                    | Some (_, _, best) when best >= sev -> ()
                    | _ -> worst := Some (w.index, v, sev))
                  end;
                  let next =
                    match (!state, fails) with
                    | Healthy, true -> Warning
                    | Warning, true | Violated, true -> Violated
                    | _, false -> Healthy
                  in
                  if next <> !state then begin
                    transitions := (w.w_finish, !state, next) :: !transitions;
                    (match (next, !first_violation) with
                    | Violated, None -> first_violation := Some w.w_finish
                    | _ -> ());
                    (match (!state, next, !first_violation, !recovered_at) with
                    | Violated, Healthy, Some _, None ->
                        recovered_at := Some w.w_finish
                    | _ -> ());
                    state := next
                  end);
              seen_frames := !seen_frames + w.frames;
              match w.last_output with
              | Some t -> last_output := Some t
              | None -> ())
            series.windows;
          let time_to_recovery =
            match (!first_violation, !recovered_at) with
            | Some v, Some r -> Some (r -. v)
            | _ -> None
          in
          {
            spec;
            final = !state;
            transitions = List.rev !transitions;
            failing_windows = !failing_windows;
            total_burn = float_of_int !failing_windows *. series.width;
            first_violation = !first_violation;
            worst = Option.map (fun (i, v, _) -> (i, v)) !worst;
            recovered_at = !recovered_at;
            time_to_recovery;
          })
        specs
    in
    { window_width = series.width; monitors }

  let ms t = t *. 1e3

  let to_string report =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "SLO report (%.3f ms windows):\n"
         (ms report.window_width));
    List.iter
      (fun m ->
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %-9s burn %.3f ms over %d window%s\n"
             m.spec.raw
             (state_name m.final)
             (ms m.total_burn) m.failing_windows
             (if m.failing_windows = 1 then "" else "s"));
        (match m.first_violation with
        | Some t ->
            Buffer.add_string buf
              (Printf.sprintf "    first violation at %.3f ms\n" (ms t))
        | None -> ());
        (match m.worst with
        | Some (i, v) ->
            let shown, unit_ =
              if time_metric m.spec.metric then (ms v, " ms")
              else if m.spec.metric = Throughput then (v, " fps")
              else (v, "")
            in
            Buffer.add_string buf
              (Printf.sprintf "    worst window #%d: %s = %.4f%s\n" i
                 (metric_name m.spec.metric) shown unit_)
        | None -> ());
        match (m.recovered_at, m.time_to_recovery) with
        | Some r, Some ttr ->
            Buffer.add_string buf
              (Printf.sprintf
                 "    recovered at %.3f ms (time to recovery %.3f ms)\n"
                 (ms r) (ms ttr))
        | _ ->
            if m.first_violation <> None then
              Buffer.add_string buf "    not recovered by end of run\n")
      report.monitors;
    Buffer.contents buf

  let emit timeline report =
    List.iteri
      (fun i m ->
        let lane = Event.slo_lane ~index:i ~label:m.spec.raw in
        List.iter
          (fun (t, from_, to_) ->
            Event.instant timeline ~lane ~time:t ~cat:"slo"
              ~name:(state_name from_ ^ "->" ^ state_name to_)
              ~args:
                [
                  ("slo", Event.Str m.spec.raw);
                  ("state", Event.Str (state_name to_));
                ]
              ())
          m.transitions)
      report.monitors

  (* A band per violation episode: the spell from the first window that put
     the monitor in Warning/Violated through the last failing window before
     it returned to Healthy. Transitions are stamped at window ends, so the
     episode opens one width before the Healthy->Warning stamp. *)
  let bands report =
    List.concat_map
      (fun m ->
        let w = report.window_width in
        let spans = ref [] in
        let open_at = ref None in
        List.iter
          (fun (t, from_, to_) ->
            match (from_, to_, !open_at) with
            | Healthy, (Warning | Violated), None -> open_at := Some (t -. w)
            | _, Healthy, Some t0 ->
                spans := (t0, t -. w) :: !spans;
                open_at := None
            | _ -> ())
          m.transitions;
        (match (!open_at, m.transitions) with
        | Some t0, _ :: _ ->
            let last_t, _, _ = List.hd (List.rev m.transitions) in
            spans := (t0, Float.max last_t (t0 +. w)) :: !spans
        | _ -> ());
        List.rev_map
          (fun (t0, t1) ->
            {
              Svg.band_label = m.spec.raw;
              band_start = t0;
              band_finish = Float.max t1 (t0 +. w);
            })
          !spans)
      report.monitors

  let opt_float = function
    | None -> "null"
    | Some v -> Printf.sprintf "%.9f" v

  let monitor_json m =
    let transitions =
      m.transitions
      |> List.map (fun (t, from_, to_) ->
             Printf.sprintf "{\"t_s\":%.9f,\"from\":\"%s\",\"to\":\"%s\"}" t
               (state_name from_) (state_name to_))
      |> String.concat ","
    in
    Printf.sprintf
      "{\"slo\":%S,\"metric\":\"%s\",\"op\":\"%s\",\"threshold\":%.9f,\"state\":\"%s\",\"failing_windows\":%d,\"total_burn_s\":%.9f,\"first_violation_s\":%s,\"worst_window\":%s,\"worst_value\":%s,\"recovered_s\":%s,\"time_to_recovery_s\":%s,\"transitions\":[%s]}"
      m.spec.raw
      (metric_name m.spec.metric)
      (op_name m.spec.op) m.spec.threshold (state_name m.final)
      m.failing_windows m.total_burn
      (opt_float m.first_violation)
      (match m.worst with None -> "null" | Some (i, _) -> string_of_int i)
      (match m.worst with
      | None -> "null"
      | Some (_, v) -> Printf.sprintf "%.9f" v)
      (opt_float m.recovered_at)
      (opt_float m.time_to_recovery)
      transitions
end

let window_json t w =
  let busy =
    Array.to_list w.busy
    |> List.map (Printf.sprintf "%.9f")
    |> String.concat ","
  in
  let links =
    w.link_busy
    |> List.map (fun ((src, dst), s) ->
           Printf.sprintf "{\"src\":%d,\"dst\":%d,\"busy_s\":%.9f}" src dst s)
    |> String.concat ","
  in
  let latency =
    if Hist.count w.latency = 0 then "null"
    else
      let buckets =
        Hist.buckets w.latency
        |> List.map (fun (le, n) ->
               Printf.sprintf "{\"le_s\":%.9f,\"n\":%d}" le n)
        |> String.concat ","
      in
      Printf.sprintf
        "{\"n\":%d,\"mean_s\":%.9f,\"p50_s\":%.9f,\"p95_s\":%.9f,\"p99_s\":%.9f,\"buckets\":[%s]}"
        (Hist.count w.latency) (Hist.mean w.latency)
        (Hist.quantile w.latency 0.50)
        (Hist.quantile w.latency 0.95)
        (Hist.quantile w.latency 0.99)
        buckets
  in
  Printf.sprintf
    "{\"index\":%d,\"start_s\":%.9f,\"end_s\":%.9f,\"frames\":%d,\"throughput_fps\":%.6f,\"utilisation\":%.6f,\"messages\":%d,\"in_flight\":%d,\"backlog\":%d,\"reissues\":%d,\"deadline_misses\":%d,\"faults\":%d,\"busy_s\":[%s],\"links\":[%s],\"latency\":%s,\"last_output_s\":%s}"
    w.index w.w_start w.w_finish w.frames (throughput t w) (utilisation t w)
    w.messages w.in_flight w.backlog w.reissues w.deadline_misses w.faults
    busy links latency
    (Slo.opt_float w.last_output)

let to_json ?slo t =
  let tot = totals t in
  let windows =
    Array.to_list t.windows |> List.map (window_json t) |> String.concat ","
  in
  let slos =
    match slo with
    | None -> ""
    | Some report ->
        report.Slo.monitors
        |> List.map Slo.monitor_json
        |> String.concat ","
  in
  Printf.sprintf
    "{\"width_s\":%.9f,\"horizon_s\":%.9f,\"nprocs\":%d,\"nwindows\":%d,\"truncated\":%b,\"totals\":{\"frames\":%d,\"messages\":%d,\"busy_s\":%.9f,\"reissues\":%d,\"deadline_misses\":%d,\"faults\":%d},\"windows\":[%s],\"slos\":[%s]}"
    t.width t.horizon t.nprocs (Array.length t.windows) t.truncated
    tot.total_frames tot.total_messages tot.total_busy tot.total_reissues
    tot.total_deadline_misses tot.total_faults windows slos

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "index,start_ms,end_ms,frames,throughput_fps,utilisation,messages,in_flight,backlog,reissues,deadline_misses,faults,busy_ms,link_busy_ms,p50_ms,p95_ms,p99_ms,mean_ms\n";
  Array.iter
    (fun w ->
      let busy = Array.fold_left ( +. ) 0.0 w.busy in
      let link = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 w.link_busy in
      let q p =
        if Hist.count w.latency = 0 then 0.0
        else Hist.quantile w.latency p *. 1e3
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%d,%.6f,%.6f,%d,%.6f,%.6f,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n"
           w.index (w.w_start *. 1e3) (w.w_finish *. 1e3) w.frames
           (throughput t w) (utilisation t w) w.messages w.in_flight
           w.backlog w.reissues w.deadline_misses w.faults (busy *. 1e3)
           (link *. 1e3) (q 0.50) (q 0.95) (q 0.99)
           (Hist.mean w.latency *. 1e3)))
    t.windows;
  Buffer.contents buf

let to_prometheus ?slo t =
  let buf = Buffer.create 1024 in
  let tot = totals t in
  let counter name help v =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n# TYPE %s counter\n%s %s\n" name help
         name name v)
  in
  counter "skipper_frames_total" "Frames completed over the run."
    (string_of_int tot.total_frames);
  counter "skipper_messages_total" "Process messages sent over the run."
    (string_of_int tot.total_messages);
  counter "skipper_reissues_total" "Fault-recovery task reissues."
    (string_of_int tot.total_reissues);
  counter "skipper_deadline_misses_total" "Frames later than the input period."
    (string_of_int tot.total_deadline_misses);
  counter "skipper_faults_total" "Fault events injected into the run."
    (string_of_int tot.total_faults);
  Buffer.add_string buf
    "# HELP skipper_processor_busy_seconds_total Per-processor busy time.\n\
     # TYPE skipper_processor_busy_seconds_total counter\n";
  for p = 0 to t.nprocs - 1 do
    let v =
      Array.fold_left (fun acc w -> acc +. w.busy.(p)) 0.0 t.windows
    in
    Buffer.add_string buf
      (Printf.sprintf "skipper_processor_busy_seconds_total{proc=\"%d\"} %.9f\n"
         p v)
  done;
  let links = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      List.iter
        (fun (k, s) ->
          let cur = Option.value ~default:0.0 (Hashtbl.find_opt links k) in
          Hashtbl.replace links k (cur +. s))
        w.link_busy)
    t.windows;
  let link_rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) links [] |> List.sort compare
  in
  if link_rows <> [] then begin
    Buffer.add_string buf
      "# HELP skipper_link_busy_seconds_total Per-link occupied time.\n\
       # TYPE skipper_link_busy_seconds_total counter\n";
    List.iter
      (fun ((src, dst), v) ->
        Buffer.add_string buf
          (Printf.sprintf
             "skipper_link_busy_seconds_total{src=\"%d\",dst=\"%d\"} %.9f\n"
             src dst v))
      link_rows
  end;
  let hist =
    Array.fold_left
      (fun acc w -> Hist.merge acc w.latency)
      (Hist.create ()) t.windows
  in
  Buffer.add_string buf
    "# HELP skipper_frame_latency_seconds Frame latency distribution.\n\
     # TYPE skipper_frame_latency_seconds histogram\n";
  let cum = ref 0 in
  List.iter
    (fun (le, n) ->
      cum := !cum + n;
      Buffer.add_string buf
        (Printf.sprintf "skipper_frame_latency_seconds_bucket{le=\"%.9g\"} %d\n"
           le !cum))
    (Hist.buckets hist);
  Buffer.add_string buf
    (Printf.sprintf "skipper_frame_latency_seconds_bucket{le=\"+Inf\"} %d\n"
       (Hist.count hist));
  Buffer.add_string buf
    (Printf.sprintf "skipper_frame_latency_seconds_sum %.9f\n" (Hist.sum hist));
  Buffer.add_string buf
    (Printf.sprintf "skipper_frame_latency_seconds_count %d\n"
       (Hist.count hist));
  let last =
    if Array.length t.windows = 0 then None
    else Some t.windows.(Array.length t.windows - 1)
  in
  (match last with
  | Some w ->
      Buffer.add_string buf
        (Printf.sprintf
           "# HELP skipper_in_flight_frames Frames in flight at end of run.\n\
            # TYPE skipper_in_flight_frames gauge\n\
            skipper_in_flight_frames %d\n"
           w.in_flight)
  | None -> ());
  let backlog =
    Array.fold_left (fun acc w -> max acc w.backlog) 0 t.windows
  in
  Buffer.add_string buf
    (Printf.sprintf
       "# HELP skipper_backlog_max Peak per-port backlog growth in any window.\n\
        # TYPE skipper_backlog_max gauge\n\
        skipper_backlog_max %d\n"
       backlog);
  (match slo with
  | None -> ()
  | Some report ->
      Buffer.add_string buf
        "# HELP skipper_slo_state SLO state (0 ok, 1 warning, 2 violated).\n\
         # TYPE skipper_slo_state gauge\n";
      List.iter
        (fun (m : Slo.monitor) ->
          let v =
            match m.Slo.final with
            | Slo.Healthy -> 0
            | Slo.Warning -> 1
            | Slo.Violated -> 2
          in
          Buffer.add_string buf
            (Printf.sprintf "skipper_slo_state{slo=%S} %d\n" m.Slo.spec.Slo.raw
               v))
        report.Slo.monitors;
      Buffer.add_string buf
        "# HELP skipper_slo_burn_seconds_total Time spent failing the SLO.\n\
         # TYPE skipper_slo_burn_seconds_total counter\n";
      List.iter
        (fun (m : Slo.monitor) ->
          Buffer.add_string buf
            (Printf.sprintf "skipper_slo_burn_seconds_total{slo=%S} %.9f\n"
               m.Slo.spec.Slo.raw m.Slo.total_burn))
        report.Slo.monitors);
  Buffer.contents buf
