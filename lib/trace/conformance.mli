(** Schedule conformance: joins the measured message-lifecycle trace
    against the predicted static schedule.

    The adequation step promises a makespan and a placement of work over
    processors and links ({!Syndex.Schedule.t}); the simulator records what
    actually happened ({!Event.timeline}). [analyse] diffs the two:

    - {b per-op slack} — each graph node's predicted busy time (its op
      slots) against the measured per-frame compute time on its lane,
      plus the send/recv overhead the static model does not charge to
      the op;
    - {b per-link slack} — each directed link's predicted occupancy (comm
      slots spread evenly over their route hops) against the measured
      per-frame wire time;
    - {b makespan error} — predicted makespan vs measured per-frame
      latency (mean over frames when output times are known, otherwise
      the finish time of the last recorded activity);
    - {b measured critical path} — the gapless chain of activities
      (compute/send/recv spans and link hops) ending at the last-finishing
      activity, linked backwards through same-resource occupancy and
      message causality (send → hops → recv). Each element carries its
      clamped contribution to the path length, so the contributions sum
      to at most the measured makespan.

    The scalar [divergence] condenses the report for regression gates and
    fault experiments: |makespan error| plus the op and link slack
    magnitudes normalised by the predicted makespan. *)

type op_row = {
  op_node : int;
  op_label : string;
  op_proc : int;
  predicted_busy : float;  (** op slots, seconds per frame *)
  measured_busy : float;  (** compute spans per frame *)
  comm_overhead : float;  (** send + recv spans per frame *)
  op_slack : float;  (** measured_busy - predicted_busy *)
}

type link_row = {
  link_src : int;
  link_dst : int;
  predicted_occupancy : float;  (** comm slots split evenly over hops *)
  measured_occupancy : float;  (** link spans per frame *)
  link_slack : float;
}

type path_elem = {
  elem_lane : Event.lane;
  elem_kind : string;  (** "compute" | "send" | "recv" | "link" *)
  elem_label : string;
  elem_start : float;
  elem_finish : float;
  contribution : float;  (** clamped to the uncovered suffix, seconds *)
  share : float;  (** contribution / path_length *)
}

type frame_row = {
  frame : int;
  injected : float;
  completed : float;
  latency : float;
}

type report = {
  predicted_makespan : float;
  measured_makespan : float;
  makespan_error : float;  (** relative, signed *)
  divergence : float;
  predicted_period : float;
      (** the schedule's steady-state period bound ({!Syndex.Schedule.period}) *)
  measured_period : float option;
      (** mean inter-output spacing; [None] with fewer than two frames *)
  frames_in_flight : int;
      (** pipelining metadata when the mapper attached it; 1 otherwise *)
  ops : op_row list;  (** ordered by node id *)
  links : link_row list;  (** ordered by (src, dst) *)
  path : path_elem list;  (** chronological *)
  path_length : float;
  frames : frame_row list;
}

val analyse :
  schedule:Syndex.Schedule.t ->
  ?output_times:float list ->
  ?input_period:float ->
  Event.timeline ->
  (report, string) result
(** [Error] when the timeline holds no machine activity (tracing was not
    enabled). [output_times]/[input_period] turn makespan comparison into
    a per-frame latency comparison; without them the last activity's
    finish time stands in (single-frame runs). *)

val to_string : report -> string
(** Human-readable conformance report: makespan error, per-op and
    per-link slack tables, the measured critical path with per-element
    contribution percentages, and per-frame latencies. *)

val to_json : report -> Support.Json.t
(** Deterministic machine-readable form (stable key and row order). *)

val predicted_overlay : Syndex.Schedule.t -> Svg.overlay_bar list
(** The schedule's op and comm slots as ghost bars for {!Svg.gantt}: ops
    on their process lanes, comm slots as their per-hop link reservations
    (startup + byte time each) on the link lanes. Predicts one iteration
    from t = 0. *)

val critical_overlay : report -> Svg.overlay_bar list
(** The measured critical path as highlight bars for {!Svg.gantt}. *)
