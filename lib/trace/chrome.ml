let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us t = t *. 1e6

(* %.3f keeps the export deterministic (no shortest-round-trip formatting)
   and gives nanosecond resolution on microsecond timestamps. *)
let num f = Printf.sprintf "%.3f" f

let arg_value = function
  | Event.Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Event.Num f -> num f
  | Event.Count i -> string_of_int i

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_value v)) args)
  ^ "}"

(* Distinct lanes in deterministic (track, index) order, keeping the first
   labels seen. *)
let lanes timeline =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      let key = (e.lane.Event.track, e.lane.Event.index) in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key e.lane)
    (Event.events timeline);
  List.sort compare (Hashtbl.fold (fun _ lane acc -> lane :: acc) seen [])

let metadata_events lanes =
  let tracks =
    List.sort_uniq compare
      (List.map (fun l -> (l.Event.track, l.Event.track_label)) lanes)
  in
  List.concat_map
    (fun (pid, label) ->
      [
        Printf.sprintf
          {|{"ph":"M","pid":%d,"name":"process_name","args":{"name":"%s"}}|} pid
          (escape label);
        Printf.sprintf
          {|{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}|}
          pid pid;
      ])
    tracks
  @ List.concat_map
      (fun l ->
        [
          Printf.sprintf
            {|{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s"}}|}
            l.Event.track l.Event.index (escape l.Event.label);
          Printf.sprintf
            {|{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}|}
            l.Event.track l.Event.index l.Event.index;
        ])
      lanes

let event_json (e : Event.t) =
  let common =
    Printf.sprintf {|"pid":%d,"tid":%d,"ts":%s,"name":"%s","cat":"%s"|}
      e.lane.Event.track e.lane.Event.index (num (us e.time)) (escape e.name)
      (escape e.cat)
  in
  match e.kind with
  | Event.Span dur ->
      let args = if e.args = [] then "" else ",\"args\":" ^ args_json e.args in
      Printf.sprintf {|{"ph":"X",%s,"dur":%s%s}|} common (num (us dur)) args
  | Event.Instant ->
      let args = if e.args = [] then "" else ",\"args\":" ^ args_json e.args in
      Printf.sprintf {|{"ph":"i",%s,"s":"t"%s}|} common args
  | Event.Flow_start flow -> Printf.sprintf {|{"ph":"s",%s,"id":%d}|} common flow
  | Event.Flow_end flow ->
      Printf.sprintf {|{"ph":"f","bp":"e",%s,"id":%d}|} common flow
  | Event.Counter values ->
      Printf.sprintf {|{"ph":"C",%s,"args":%s}|} common
        (args_json (List.map (fun (k, v) -> (k, Event.Num v)) values))

let to_json timeline =
  let lanes = lanes timeline in
  let body =
    metadata_events lanes @ List.map event_json (Event.by_time timeline)
  in
  Printf.sprintf
    {|{"displayTimeUnit":"ms","otherData":{"truncated":%b,"events":%d},"traceEvents":[%s]}|}
    (Event.truncated timeline) (Event.length timeline)
    (String.concat ",\n" body)
