(** Domain-pool telemetry on the unified timeline.

    A {!Support.Domain_pool} sweep is itself a schedulable activity worth
    seeing: {!emit} renders the pool's statistics as one span per job on its
    executing worker's lane ({!Event.pool_lane}), so a parallel bench sweep
    gets a Gantt lane per domain next to the simulated machine's lanes.

    These spans carry {e wall-clock} times — unlike the simulator's lanes
    they are not deterministic and never feed byte-compared artifacts; they
    exist purely for the speedup picture. *)

val emit :
  ?labels:string list -> Event.timeline -> label:string -> Support.Domain_pool.stats -> unit
(** [emit tl ~label stats] adds one span per job (named ["label#i"], or
    [List.nth labels i] when given) on its worker's lane, plus a summary
    instant on lane 0 with the job/domain counts and the work/wall
    speedup. *)

val to_json : ?labels:string list -> label:string -> Support.Domain_pool.stats -> string
(** A standalone Chrome trace of one pool run: {!emit} into a fresh
    timeline, exported with {!Chrome.to_json}. *)
