(** Chrome trace-event JSON export.

    Produces the "JSON object format" understood by Perfetto and
    [chrome://tracing]: spans become complete events ([ph:"X"]), instants
    [ph:"i"], message lifecycles become flow event pairs ([ph:"s"] /
    [ph:"f"]) drawn as arrows between lanes, counters [ph:"C"]. Tracks and
    lanes are named with metadata events and sorted by their fixed ids, and
    events are stable-sorted by timestamp, so the same timeline always
    exports byte-identical JSON. The top-level [otherData.truncated] field
    carries {!Event.truncated}. *)

val to_json : Event.timeline -> string
