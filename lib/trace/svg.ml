let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let colour = function
  | "compute" -> "#4e79a7"
  | "send" -> "#f28e2b"
  | "recv" -> "#59a14f"
  | "stage" -> "#af7aa1"
  | "link" -> "#9c755f"
  | "deliver" -> "#76b7b2"
  | "block" | "fault" -> "#e15759"
  | _ -> "#bab0ac"

let flow_colour = "#e15759"
let ghost_colour = "#8c8c8c"
let critical_colour = "#d4a017"
let f2 = Printf.sprintf "%.2f"

type overlay_bar = {
  bar_lane : Event.lane;
  bar_label : string;
  bar_start : float;
  bar_finish : float;
}

type band = {
  band_label : string;
  band_start : float;
  band_finish : float;
}

let band_colour = "#e15759"

let lanes ~extra events =
  let seen = Hashtbl.create 16 in
  let note (lane : Event.lane) =
    let key = (lane.Event.track, lane.Event.index) in
    if not (Hashtbl.mem seen key) then Hashtbl.add seen key lane
  in
  List.iter (fun (e : Event.t) -> note e.Event.lane) events;
  (* Overlay bars may address lanes no measured event landed on (a predicted
     comm on a link the run never used); give them a row anyway. *)
  List.iter (fun b -> note b.bar_lane) extra;
  List.sort compare (Hashtbl.fold (fun _ l acc -> l :: acc) seen [])

let gantt ?(width = 960) ?(predicted = []) ?(critical = []) ?(bands = [])
    timeline =
  let events = Event.by_time timeline in
  if events = [] then
    Error
      "tracing was not enabled: the timeline holds no events (create the \
       machine with ~trace:true)"
  else begin
    let lanes = lanes ~extra:(predicted @ critical) events in
    let left = 150.0 and right = 20.0 and top = 34.0 and bottom = 14.0 in
    let lane_h = 26.0 and bar_h = 16.0 in
    let widthf = float_of_int width in
    let height = top +. (lane_h *. float_of_int (List.length lanes)) +. bottom in
    let tmax =
      List.fold_left
        (fun acc (e : Event.t) ->
          let stop =
            match e.Event.kind with
            | Event.Span dur -> e.Event.time +. dur
            | _ -> e.Event.time
          in
          Float.max acc stop)
        0.0 events
    in
    let tmax =
      List.fold_left
        (fun acc b -> Float.max acc b.bar_finish)
        tmax (predicted @ critical)
    in
    let tmax =
      List.fold_left (fun acc b -> Float.max acc b.band_finish) tmax bands
    in
    let tmax = if tmax > 0.0 then tmax else 1.0 in
    let x t = left +. (t /. tmax *. (widthf -. left -. right)) in
    let row lane =
      let rec index i = function
        | [] -> 0
        | l :: rest ->
            if
              l.Event.track = lane.Event.track
              && l.Event.index = lane.Event.index
            then i
            else index (i + 1) rest
      in
      index 0 lanes
    in
    let lane_top lane = top +. (lane_h *. float_of_int (row lane)) in
    let lane_mid lane = lane_top lane +. (lane_h /. 2.0) in
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" \
          height=\"%s\" font-family=\"monospace\" font-size=\"10\">\n"
         width (f2 height));
    Buffer.add_string b
      (Printf.sprintf
         "<defs><marker id=\"arrow\" viewBox=\"0 0 6 6\" refX=\"5\" \
          refY=\"3\" markerWidth=\"5\" markerHeight=\"5\" \
          orient=\"auto-start-reverse\"><path d=\"M 0 0 L 6 3 L 0 6 z\" \
          fill=\"%s\"/></marker></defs>\n"
         flow_colour);
    (* lane backgrounds and labels *)
    List.iteri
      (fun i lane ->
        let y = top +. (lane_h *. float_of_int i) in
        if i mod 2 = 0 then
          Buffer.add_string b
            (Printf.sprintf
               "<rect x=\"0\" y=\"%s\" width=\"%d\" height=\"%s\" \
                fill=\"#f3f3f3\"/>\n"
               (f2 y) width (f2 lane_h));
        Buffer.add_string b
          (Printf.sprintf
             "<text x=\"4\" y=\"%s\" dominant-baseline=\"middle\">%s</text>\n"
             (f2 (y +. (lane_h /. 2.0)))
             (escape
                (Printf.sprintf "%s %s" lane.Event.track_label lane.Event.label))))
      lanes;
    (* time axis: 6 ticks in milliseconds *)
    Buffer.add_string b
      (Printf.sprintf
         "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#888\"/>\n"
         (f2 left) (f2 top)
         (f2 (widthf -. right))
         (f2 top));
    for i = 0 to 5 do
      let t = tmax *. float_of_int i /. 5.0 in
      Buffer.add_string b
        (Printf.sprintf
           "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#ccc\"/>\n"
           (f2 (x t)) (f2 top) (f2 (x t))
           (f2 (height -. bottom)));
      Buffer.add_string b
        (Printf.sprintf
           "<text x=\"%s\" y=\"%s\" text-anchor=\"middle\">%s ms</text>\n"
           (f2 (x t))
           (f2 (top -. 6.0))
           (f2 (t *. 1e3)))
    done;
    (* SLO violation bands: full-height translucent ranges behind every
       lane, so "when were we out of budget" reads directly off the chart *)
    List.iter
      (fun band ->
        let x0 = x band.band_start in
        let w = Float.max 0.6 (x band.band_finish -. x0) in
        Buffer.add_string b
          (Printf.sprintf
             "<rect class=\"slo-band\" x=\"%s\" y=\"%s\" width=\"%s\" \
              height=\"%s\" fill=\"%s\" fill-opacity=\"0.10\"><title>SLO %s \
              violated @ %s ms (%s ms)</title></rect>\n"
             (f2 x0) (f2 top) (f2 w)
             (f2 (height -. top -. bottom))
             band_colour (escape band.band_label)
             (f2 (band.band_start *. 1e3))
             (f2 ((band.band_finish -. band.band_start) *. 1e3))))
      bands;
    (* predicted ghost bars (behind the measured spans): the static
       schedule's op/comm slots drawn as dashed outlines on the same lanes,
       so slippage is visible as measured bars sliding off their ghosts *)
    List.iter
      (fun bar ->
        let x0 = x bar.bar_start in
        let w = Float.max 0.6 (x bar.bar_finish -. x0) in
        Buffer.add_string b
          (Printf.sprintf
             "<rect class=\"ghost\" x=\"%s\" y=\"%s\" width=\"%s\" \
              height=\"%s\" fill=\"%s\" fill-opacity=\"0.18\" stroke=\"%s\" \
              stroke-dasharray=\"3,2\"><title>predicted %s @ %s ms (%s \
              ms)</title></rect>\n"
             (f2 x0)
             (f2 (lane_mid bar.bar_lane -. (bar_h /. 2.0) -. 2.0))
             (f2 w)
             (f2 (bar_h +. 4.0))
             ghost_colour ghost_colour (escape bar.bar_label)
             (f2 (bar.bar_start *. 1e3))
             (f2 ((bar.bar_finish -. bar.bar_start) *. 1e3))))
      predicted;
    (* spans and instants *)
    List.iter
      (fun (e : Event.t) ->
        let mid = lane_mid e.Event.lane in
        match e.Event.kind with
        | Event.Span dur ->
            let x0 = x e.Event.time in
            let w = Float.max 0.6 (x (e.Event.time +. dur) -. x0) in
            Buffer.add_string b
              (Printf.sprintf
                 "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" \
                  fill=\"%s\"><title>%s @ %s ms (%s ms)</title></rect>\n"
                 (f2 x0)
                 (f2 (mid -. (bar_h /. 2.0)))
                 (f2 w) (f2 bar_h)
                 (colour e.Event.cat)
                 (escape e.Event.name)
                 (f2 (e.Event.time *. 1e3))
                 (f2 (dur *. 1e3)))
        | Event.Instant ->
            Buffer.add_string b
              (Printf.sprintf
                 "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"%s\" \
                  stroke-width=\"1.2\"><title>%s @ %s ms</title></line>\n"
                 (f2 (x e.Event.time))
                 (f2 (mid -. (bar_h /. 2.0)))
                 (f2 (x e.Event.time))
                 (f2 (mid +. (bar_h /. 2.0)))
                 (colour e.Event.cat) (escape e.Event.name)
                 (f2 (e.Event.time *. 1e3)))
        | Event.Flow_start _ | Event.Flow_end _ | Event.Counter _ -> ())
      events;
    (* message arrows: pair flow starts with their ends *)
    let starts = Hashtbl.create 64 in
    List.iter
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Flow_start id ->
            if not (Hashtbl.mem starts id) then Hashtbl.add starts id e
        | _ -> ())
      events;
    List.iter
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Flow_end id -> (
            match Hashtbl.find_opt starts id with
            | Some s ->
                Buffer.add_string b
                  (Printf.sprintf
                     "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" \
                      stroke=\"%s\" stroke-width=\"1\" opacity=\"0.7\" \
                      marker-end=\"url(#arrow)\"/>\n"
                     (f2 (x s.Event.time))
                     (f2 (lane_mid s.Event.lane))
                     (f2 (x e.Event.time))
                     (f2 (lane_mid e.Event.lane))
                     flow_colour)
            | None -> ())
        | _ -> ())
      events;
    (* measured critical path: drawn last so the highlight outlines sit on
       top of the spans they bound *)
    List.iter
      (fun bar ->
        let x0 = x bar.bar_start in
        let w = Float.max 1.2 (x bar.bar_finish -. x0) in
        Buffer.add_string b
          (Printf.sprintf
             "<rect class=\"critical\" x=\"%s\" y=\"%s\" width=\"%s\" \
              height=\"%s\" fill=\"none\" stroke=\"%s\" \
              stroke-width=\"2\"><title>critical: %s @ %s ms (%s \
              ms)</title></rect>\n"
             (f2 x0)
             (f2 (lane_mid bar.bar_lane -. (bar_h /. 2.0) -. 3.0))
             (f2 w)
             (f2 (bar_h +. 6.0))
             critical_colour (escape bar.bar_label)
             (f2 (bar.bar_start *. 1e3))
             (f2 ((bar.bar_finish -. bar.bar_start) *. 1e3))))
      critical;
    if predicted <> [] || critical <> [] || bands <> [] then
      Buffer.add_string b
        (Printf.sprintf
           "<text x=\"4\" y=\"%s\">%s</text>\n"
           (f2 (top -. 20.0))
           (escape
              (String.concat "   "
                 ((if predicted <> [] then [ "dashed grey = predicted" ] else [])
                 @ (if critical <> [] then [ "gold outline = critical path" ]
                    else [])
                 @
                 if bands <> [] then [ "red band = SLO violation" ] else []))));
    if Event.truncated timeline then
      Buffer.add_string b
        (Printf.sprintf
           "<text x=\"%s\" y=\"%s\" text-anchor=\"end\" \
            fill=\"#e15759\">trace truncated</text>\n"
           (f2 (widthf -. right))
           (f2 (top -. 20.0)));
    Buffer.add_string b "</svg>\n";
    Ok (Buffer.contents b)
  end
