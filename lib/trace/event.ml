type lane = {
  track : int;
  track_label : string;
  index : int;
  label : string;
}

type arg = Str of string | Num of float | Count of int

type kind =
  | Span of float
  | Instant
  | Flow_start of int
  | Flow_end of int
  | Counter of (string * float) list

type t = {
  time : float;
  name : string;
  cat : string;
  lane : lane;
  args : (string * arg) list;
  kind : kind;
}

type timeline = {
  mutable events_rev : t list;
  mutable n : int;
  mutable truncated : bool;
}

let create () = { events_rev = []; n = 0; truncated = false }

let add tl ev =
  tl.events_rev <- ev :: tl.events_rev;
  tl.n <- tl.n + 1

let length tl = tl.n
let events tl = List.rev tl.events_rev

let by_time tl =
  List.stable_sort (fun a b -> Float.compare a.time b.time) (events tl)

let truncated tl = tl.truncated
let mark_truncated tl = tl.truncated <- true

let span tl ~lane ~cat ?(args = []) ~name ~time ~dur () =
  add tl { time; name; cat; lane; args; kind = Span dur }

let instant tl ~lane ~cat ?(args = []) ~name ~time () =
  add tl { time; name; cat; lane; args; kind = Instant }

let flow_start tl ~lane ~cat ?(name = "msg") ~flow ~time () =
  add tl { time; name; cat; lane; args = []; kind = Flow_start flow }

let flow_end tl ~lane ~cat ?(name = "msg") ~flow ~time () =
  add tl { time; name; cat; lane; args = []; kind = Flow_end flow }

let counter tl ~lane ~name ~time values =
  add tl { time; name; cat = "counter"; lane; args = []; kind = Counter values }

let compile_track = 0
let env_track = 1
let links_track = 2
let processor_track p = 3 + p

(* Far above any plausible processor count, so pool lanes never collide
   with processor tracks. *)
let pool_track = 1_000_000

(* Just below the pool: SLO alerts sort after every processor lane but
   before the domain-pool telemetry. *)
let slo_track = 999_999

let compile_lane =
  { track = compile_track; track_label = "toolchain"; index = 0; label = "passes" }

let env_lane =
  { track = env_track; track_label = "environment"; index = 0; label = "inject" }

let link_lane ~src ~dst ~nprocs =
  {
    track = links_track;
    track_label = "links";
    index = (src * nprocs) + dst;
    label = Printf.sprintf "P%d->P%d" src dst;
  }

let processor_lane ~proc ~pid ~name =
  {
    track = processor_track proc;
    track_label = Printf.sprintf "P%d" proc;
    index = pid;
    label = name;
  }

let cpu_lane proc =
  {
    track = processor_track proc;
    track_label = Printf.sprintf "P%d" proc;
    index = -1;
    label = "cpu";
  }

let slo_lane ~index ~label =
  { track = slo_track; track_label = "slo"; index; label }

let pool_lane domain =
  {
    track = pool_track;
    track_label = "domain pool";
    index = domain;
    label = Printf.sprintf "domain %d" domain;
  }
