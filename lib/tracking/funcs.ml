module V = Skel.Value

type config = {
  scene : Vision.Scene.params;
  nproc : int;
  read_cycles_per_px : float;
  extract_cycles_per_px : float;
  detect_cycles_per_px : float;
}

let default_config =
  {
    scene = Vision.Scene.default_params;
    nproc = 8;
    read_cycles_per_px = 2.0;
    extract_cycles_per_px = 0.5;
    detect_cycles_per_px = 36.0;
  }

let with_nproc nproc config = { config with nproc }

(* The [get_windows] computation shared by the 3-argument external (used by
   the ML front-end) and the unary pipeline stage (embedded IR). *)
let get_windows_impl config np state_v img =
  let state = Track_state.of_value state_v in
  let windows =
    Predictor.windows_for ~nproc:np ~width:(Vision.Image.width img)
      ~height:(Vision.Image.height img) state
  in
  ignore config;
  V.List (Detector.window_items img windows)

let get_windows_cost config np state_v img =
  let state = Track_state.of_value state_v in
  let windows =
    Predictor.windows_for ~nproc:np ~width:(Vision.Image.width img)
      ~height:(Vision.Image.height img) state
  in
  let pixels = List.fold_left (fun acc w -> acc + Vision.Window.area w) 0 windows in
  3000.0 +. (config.extract_cycles_per_px *. float_of_int pixels)

(* predict is pure: the paper's C function keeps its trajectory model in
   process-local memory; our substitution derives the next state from the
   current marks alone, with window margins absorbing inter-frame motion
   (see DESIGN.md). *)
let predict_impl marks_v =
  let marks = Mark.list_of_value marks_v in
  let state' = Predictor.update Track_state.initial marks in
  V.Tuple [ Track_state.to_value state'; marks_v ]

let nmarks_of = function V.List l -> List.length l | _ -> 0

let register config table =
  let reg = Skel.Funtable.register table in
  reg "read_img" ~arity:2
    ~cost:(fun v ->
      match v with
      | V.Tuple [ V.Tuple [ V.Int w; V.Int h ]; _ ] ->
          10_000.0 +. (config.read_cycles_per_px *. float_of_int (w * h))
      | _ -> 10_000.0)
    (fun v ->
      match v with
      | V.Tuple [ V.Tuple [ V.Int w; V.Int h ]; V.Int i ] ->
          let params = { config.scene with Vision.Scene.width = w; height = h } in
          V.Image (Vision.Scene.frame params i)
      | _ -> raise (V.Type_error "read_img expects ((w, h), frame)"));
  reg "init_state" ~arity:1 ~cost:(fun _ -> 500.0) (fun _ ->
      Track_state.to_value Track_state.initial);
  reg "get_windows" ~arity:3
    ~cost:(fun v ->
      match v with
      | V.Tuple [ V.Int np; state_v; V.Image img ] -> get_windows_cost config np state_v img
      | _ -> 3000.0)
    (fun v ->
      match v with
      | V.Tuple [ V.Int np; state_v; V.Image img ] -> get_windows_impl config np state_v img
      | _ -> raise (V.Type_error "get_windows expects (nproc, state, image)"));
  (* Unary pipeline form over the itermem pair (state, image). *)
  reg "get_windows_stage" ~arity:1
    ~cost:(fun v ->
      match v with
      | V.Tuple [ state_v; V.Image img ] -> get_windows_cost config config.nproc state_v img
      | _ -> 3000.0)
    (fun v ->
      match v with
      | V.Tuple [ state_v; V.Image img ] -> get_windows_impl config config.nproc state_v img
      | _ -> raise (V.Type_error "get_windows_stage expects (state, image)"));
  reg "detect_mark" ~arity:1
    ~cost:(fun item ->
      match item with
      | V.Record _ ->
          5000.0 +. (config.detect_cycles_per_px *. float_of_int (Detector.item_area item))
      | _ -> 5000.0)
    Detector.detect_item;
  reg "accum_marks" ~arity:2
    ~cost:(fun v ->
      match v with
      | V.Tuple [ _; y ] -> 300.0 +. (20.0 *. float_of_int (nmarks_of y))
      | _ -> 300.0)
    (fun v ->
      match v with
      | V.Tuple [ V.List acc; V.List y ] ->
          (* The paper requires df accumulation functions to be commutative
             and associative (results arrive in unpredictable order); keeping
             the mark list canonically sorted makes concatenation so. *)
          V.List (List.sort V.compare (acc @ y))
      | _ -> raise (V.Type_error "accum_marks expects (markList, markList)"));
  reg "predict" ~arity:1
    ~cost:(fun marks -> 8000.0 +. (600.0 *. float_of_int (nmarks_of marks)))
    predict_impl;
  reg "display_marks" ~arity:1 ~cost:(fun _ -> 2000.0) (fun v -> v);
  reg "empty_list" ~arity:0 ~cost:(fun _ -> 1.0) (fun _ -> V.List [])

let table config =
  let t = Skel.Funtable.create () in
  register config t;
  t

let source config =
  Printf.sprintf
    {|(* Real-time vehicle detection and tracking -- paper section 4. *)
external read_img : int * int -> img
external init_state : unit -> state
external get_windows : int -> state -> img -> window list
external detect_mark : window -> mark
external accum_marks : markList -> mark -> markList
external predict : markList -> state * markList
external display_marks : markList -> unit
external empty_list : markList

let nproc = %d
let s0 = init_state ()
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks empty_list ws in
  predict marks
let main = itermem read_img loop display_marks s0 (%d, %d)
|}
    config.nproc config.scene.Vision.Scene.width config.scene.Vision.Scene.height

let ir ?(frames = 1) config =
  Skel.Ir.program ~frames "vehicle-tracking"
    (Skel.Ir.Itermem
       {
         input = "read_img";
         loop =
           Skel.Ir.Pipe
             [
               Skel.Ir.Seq "get_windows_stage";
               Skel.Ir.Df
                 {
                   nworkers = config.nproc;
                   comp = "detect_mark";
                   acc = "accum_marks";
                   init = V.List [];
                   state = Skel.Ir.Stateless;
                 };
               Skel.Ir.Seq "predict";
             ];
         output = "display_marks";
         init = Track_state.to_value Track_state.initial;
       })

let input_value config =
  V.Tuple
    [ V.Int config.scene.Vision.Scene.width; V.Int config.scene.Vision.Scene.height ]
