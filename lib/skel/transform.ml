type applied = { rule : string; count : int }

let rule_names = [ "flatten-pipe"; "fuse-seq"; "serialise-df"; "serialise-tf"; "serialise-scm" ]

(* The counter is global, but a replayed cached compile may have installed
   names minted by another process (see Funtable.derive), so skip any name
   the table already holds. *)
let gensym =
  let n = ref 0 in
  fun table base ->
    let rec fresh () =
      incr n;
      let name = Printf.sprintf "%s__t%d" base !n in
      if Funtable.mem table name then fresh () else name
    in
    fresh ()

(* ------------------------------------------------------------------ *)
(* Structural rules                                                    *)

let rec flatten_pipes stage =
  match stage with
  | Ir.Pipe stages ->
      let flat =
        List.concat_map
          (fun s ->
            match flatten_pipes s with Ir.Pipe inner -> inner | s -> [ s ])
          stages
      in
      (match flat with [ s ] -> s | stages -> Ir.Pipe stages)
  | Ir.Itermem { input; loop; output; init } ->
      Ir.Itermem { input; loop = flatten_pipes loop; output; init }
  | Ir.Seq _ | Ir.Scm _ | Ir.Df _ | Ir.Tf _ -> stage

(* ------------------------------------------------------------------ *)
(* Table-backed rules                                                  *)

(* Each rule mints a fresh name and installs a pure-data derivation; the
   closure-building lives in Funtable.derive so that a cached compile can
   replay the same registrations without re-running the rewrite. *)

let compose table f g =
  let name = gensym table (f ^ "_" ^ g) in
  Funtable.derive table name (Funtable.Compose { f; g });
  name

let serialise_df table ~comp ~acc ~init =
  let name = gensym table ("df1_" ^ comp) in
  Funtable.derive table name (Funtable.Serial_df { comp; acc; init });
  name

let serialise_tf table ~work ~acc ~init =
  let name = gensym table ("tf1_" ^ work) in
  Funtable.derive table name (Funtable.Serial_tf { work; acc; init });
  name

let serialise_scm table ~split ~compute ~merge =
  let name = gensym table ("scm1_" ^ compute) in
  Funtable.derive table name (Funtable.Serial_scm { split; compute; merge });
  name

(* One bottom-up rewriting pass; returns the stage and per-rule counters. *)
let rewrite_pass table stage counters =
  let bump rule = counters := (rule, 1 + (try List.assoc rule !counters with Not_found -> 0)) :: List.remove_assoc rule !counters in
  let rec go stage =
    match stage with
    | Ir.Seq _ -> stage
    | Ir.Pipe stages ->
        let stages = List.map go stages in
        (* fuse adjacent Seq stages *)
        let rec fuse = function
          | Ir.Seq f :: Ir.Seq g :: rest ->
              bump "fuse-seq";
              fuse (Ir.Seq (compose table f g) :: rest)
          | s :: rest -> s :: fuse rest
          | [] -> []
        in
        let fused = fuse stages in
        (match fused with [ s ] -> s | stages -> Ir.Pipe stages)
    | Ir.Df { nworkers = 1; comp; acc; init; state = Ir.Stateless } ->
        (* Only the stateless farm serialises to a pure fold: a stateful
           one carries state across frames, which a Seq function cannot. *)
        bump "serialise-df";
        Ir.Seq (serialise_df table ~comp ~acc ~init)
    | Ir.Tf { nworkers = 1; work; acc; init } ->
        bump "serialise-tf";
        Ir.Seq (serialise_tf table ~work ~acc ~init)
    | Ir.Scm { nparts = 1; split; compute; merge } ->
        bump "serialise-scm";
        Ir.Seq (serialise_scm table ~split ~compute ~merge)
    | Ir.Df _ | Ir.Tf _ | Ir.Scm _ -> stage
    | Ir.Itermem { input; loop; output; init } ->
        Ir.Itermem { input; loop = go loop; output; init }
  in
  go stage

let normalize table prog =
  let counters = ref [] in
  let flat_counter = ref 0 in
  let rec fixpoint stage n =
    if n > 20 then stage
    else begin
      let flattened = flatten_pipes stage in
      if flattened <> stage then incr flat_counter;
      let rewritten = rewrite_pass table flattened counters in
      if rewritten = flattened then rewritten else fixpoint rewritten (n + 1)
    end
  in
  let body = fixpoint prog.Ir.body 0 in
  let applied =
    (if !flat_counter > 0 then [ { rule = "flatten-pipe"; count = !flat_counter } ]
     else [])
    @ List.map (fun (rule, count) -> { rule; count }) (List.rev !counters)
  in
  ({ prog with Ir.body }, applied)

let applied_summary = function
  | [] -> "no rules applied"
  | applied ->
      String.concat ", "
        (List.map (fun { rule; count } -> Printf.sprintf "%s x%d" rule count) applied)
