type applied = { rule : string; count : int }

let rule_names = [ "flatten-pipe"; "fuse-seq"; "serialise-df"; "serialise-tf"; "serialise-scm" ]

let gensym =
  let n = ref 0 in
  fun base ->
    incr n;
    Printf.sprintf "%s__t%d" base !n

(* ------------------------------------------------------------------ *)
(* Structural rules                                                    *)

let rec flatten_pipes stage =
  match stage with
  | Ir.Pipe stages ->
      let flat =
        List.concat_map
          (fun s ->
            match flatten_pipes s with Ir.Pipe inner -> inner | s -> [ s ])
          stages
      in
      (match flat with [ s ] -> s | stages -> Ir.Pipe stages)
  | Ir.Itermem { input; loop; output; init } ->
      Ir.Itermem { input; loop = flatten_pipes loop; output; init }
  | Ir.Seq _ | Ir.Scm _ | Ir.Df _ | Ir.Tf _ -> stage

(* ------------------------------------------------------------------ *)
(* Table-backed rules                                                  *)

let compose table f g =
  let ef = Funtable.find table f and eg = Funtable.find table g in
  let name = gensym (f ^ "_" ^ g) in
  Funtable.register table name ~arity:1
    ~cost:(fun v ->
      (* Cost of f plus cost of g on f's result: evaluating f here would
         run user code inside a cost model, so approximate g's argument by
         f's input — cost models are estimates by nature. *)
      ef.Funtable.cost v +. eg.Funtable.cost v)
    (fun v -> eg.Funtable.apply (ef.Funtable.apply v));
  name

let serialise_df table ~comp ~acc ~init =
  let ec = Funtable.find table comp and ea = Funtable.find table acc in
  let name = gensym ("df1_" ^ comp) in
  Funtable.register table name ~arity:1
    ~cost:(fun v ->
      match v with
      | Value.List xs ->
          List.fold_left
            (fun total x -> total +. ec.Funtable.cost x +. ea.Funtable.cost x)
            500.0 xs
      | _ -> 500.0)
    (fun v ->
      match v with
      | Value.List xs ->
          List.fold_left
            (fun z x ->
              ea.Funtable.apply (Value.Tuple [ z; ec.Funtable.apply x ]))
            init xs
      | other -> raise (Value.Type_error ("df expects a list, got " ^ Value.to_string other)));
  name

let serialise_tf table ~work ~acc ~init =
  let ew = Funtable.find table work and ea = Funtable.find table acc in
  let name = gensym ("tf1_" ^ work) in
  Funtable.register table name ~arity:1
    ~cost:(fun v ->
      match v with
      | Value.List xs ->
          (* Lower bound: at least one work + acc per initial packet. *)
          List.fold_left
            (fun total x -> total +. ew.Funtable.cost x +. ea.Funtable.cost x)
            500.0 xs
      | _ -> 500.0)
    (fun v ->
      match v with
      | Value.List xs ->
          let rec loop z = function
            | [] -> z
            | x :: rest -> (
                match ew.Funtable.apply x with
                | Value.Tuple [ Value.List subs; y ] ->
                    loop (ea.Funtable.apply (Value.Tuple [ z; y ])) (subs @ rest)
                | other ->
                    raise
                      (Value.Type_error
                         ("tf work returned " ^ Value.to_string other)))
          in
          loop init xs
      | other -> raise (Value.Type_error ("tf expects a list, got " ^ Value.to_string other)));
  name

let serialise_scm table ~split ~compute ~merge =
  let es = Funtable.find table split
  and ec = Funtable.find table compute
  and em = Funtable.find table merge in
  let name = gensym ("scm1_" ^ compute) in
  Funtable.register table name ~arity:1
    ~cost:(fun v -> es.Funtable.cost v +. ec.Funtable.cost v +. em.Funtable.cost v)
    (fun v ->
      match es.Funtable.apply (Value.Tuple [ Value.Int 1; v ]) with
      | Value.List parts ->
          em.Funtable.apply (Value.List (List.map ec.Funtable.apply parts))
      | other -> raise (Value.Type_error ("scm split returned " ^ Value.to_string other)));
  name

(* One bottom-up rewriting pass; returns the stage and per-rule counters. *)
let rewrite_pass table stage counters =
  let bump rule = counters := (rule, 1 + (try List.assoc rule !counters with Not_found -> 0)) :: List.remove_assoc rule !counters in
  let rec go stage =
    match stage with
    | Ir.Seq _ -> stage
    | Ir.Pipe stages ->
        let stages = List.map go stages in
        (* fuse adjacent Seq stages *)
        let rec fuse = function
          | Ir.Seq f :: Ir.Seq g :: rest ->
              bump "fuse-seq";
              fuse (Ir.Seq (compose table f g) :: rest)
          | s :: rest -> s :: fuse rest
          | [] -> []
        in
        let fused = fuse stages in
        (match fused with [ s ] -> s | stages -> Ir.Pipe stages)
    | Ir.Df { nworkers = 1; comp; acc; init } ->
        bump "serialise-df";
        Ir.Seq (serialise_df table ~comp ~acc ~init)
    | Ir.Tf { nworkers = 1; work; acc; init } ->
        bump "serialise-tf";
        Ir.Seq (serialise_tf table ~work ~acc ~init)
    | Ir.Scm { nparts = 1; split; compute; merge } ->
        bump "serialise-scm";
        Ir.Seq (serialise_scm table ~split ~compute ~merge)
    | Ir.Df _ | Ir.Tf _ | Ir.Scm _ -> stage
    | Ir.Itermem { input; loop; output; init } ->
        Ir.Itermem { input; loop = go loop; output; init }
  in
  go stage

let normalize table prog =
  let counters = ref [] in
  let flat_counter = ref 0 in
  let rec fixpoint stage n =
    if n > 20 then stage
    else begin
      let flattened = flatten_pipes stage in
      if flattened <> stage then incr flat_counter;
      let rewritten = rewrite_pass table flattened counters in
      if rewritten = flattened then rewritten else fixpoint rewritten (n + 1)
    end
  in
  let body = fixpoint prog.Ir.body 0 in
  let applied =
    (if !flat_counter > 0 then [ { rule = "flatten-pipe"; count = !flat_counter } ]
     else [])
    @ List.map (fun (rule, count) -> { rule; count }) (List.rev !counters)
  in
  ({ prog with Ir.body }, applied)

let applied_summary = function
  | [] -> "no rules applied"
  | applied ->
      String.concat ", "
        (List.map (fun { rule; count } -> Printf.sprintf "%s x%d" rule count) applied)
