type entry = {
  name : string;
  arity : int;
  apply : Value.t -> Value.t;
  cost : Value.t -> float;
}

type spec = Whole | Proj of int | Const of Value.t

type derivation =
  | Wrapper of { base : string; specs : spec list }
  | Compose of { f : string; g : string }
  | Serial_df of { comp : string; acc : string; init : Value.t }
  | Serial_tf of { work : string; acc : string; init : Value.t }
  | Serial_scm of { split : string; compute : string; merge : string }

type t = {
  entries : (string, entry) Hashtbl.t;
  derived : (string, derivation) Hashtbl.t;
  mutable log : (string * derivation) list;  (** newest first *)
}

let create () =
  { entries = Hashtbl.create 32; derived = Hashtbl.create 8; log = [] }

let default_cost _ = 1000.0

let register t ?(arity = 1) ?(cost = default_cost) name apply =
  if Hashtbl.mem t.entries name then
    invalid_arg (Printf.sprintf "Funtable.register: %S already registered" name);
  Hashtbl.replace t.entries name { name; arity; apply; cost }

let find_opt t name = Hashtbl.find_opt t.entries name

let find t name =
  match find_opt t name with
  | Some e -> e
  | None -> failwith (Printf.sprintf "Funtable: unknown function %S" name)

let mem t name = Hashtbl.mem t.entries name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries [] |> List.sort compare

let apply t name v = (find t name).apply v
let cost t name v = (find t name).cost v

let of_list entries =
  let t = create () in
  List.iter
    (fun (name, arity, apply, cost) -> register t ~arity ~cost name apply)
    entries;
  t

(* ------------------------------------------------------------------ *)
(* Derived entries                                                     *)

(* Build the (apply, cost) pair a derivation describes. Bases are resolved
   eagerly, so a derivation can only be installed once everything it
   references exists — replay in log order preserves this. *)
let realise t = function
  | Wrapper { base; specs } ->
      let entry = find t base in
      let build v =
        let component i =
          match v with
          | Value.Tuple vs when i < List.length vs -> List.nth vs i
          | _ ->
              failwith
                (base ^ ": dataflow value has no component " ^ string_of_int i)
        in
        let args =
          List.map
            (function Whole -> v | Proj i -> component i | Const c -> c)
            specs
        in
        match args with [ a ] -> a | args -> Value.Tuple args
      in
      ((fun v -> entry.apply (build v)), fun v -> entry.cost (build v))
  | Compose { f; g } ->
      let ef = find t f and eg = find t g in
      (* Cost of f plus cost of g on f's result: evaluating f here would
         run user code inside a cost model, so approximate g's argument by
         f's input — cost models are estimates by nature. *)
      ((fun v -> eg.apply (ef.apply v)), fun v -> ef.cost v +. eg.cost v)
  | Serial_df { comp; acc; init } ->
      let ec = find t comp and ea = find t acc in
      let apply v =
        match v with
        | Value.List xs ->
            List.fold_left
              (fun z x -> ea.apply (Value.Tuple [ z; ec.apply x ]))
              init xs
        | other ->
            raise
              (Value.Type_error
                 ("df expects a list, got " ^ Value.to_string other))
      and cost v =
        match v with
        | Value.List xs ->
            List.fold_left
              (fun total x -> total +. ec.cost x +. ea.cost x)
              500.0 xs
        | _ -> 500.0
      in
      (apply, cost)
  | Serial_tf { work; acc; init } ->
      let ew = find t work and ea = find t acc in
      let apply v =
        match v with
        | Value.List xs ->
            let rec loop z = function
              | [] -> z
              | x :: rest -> (
                  match ew.apply x with
                  | Value.Tuple [ Value.List subs; y ] ->
                      loop (ea.apply (Value.Tuple [ z; y ])) (subs @ rest)
                  | other ->
                      raise
                        (Value.Type_error
                           ("tf work returned " ^ Value.to_string other)))
            in
            loop init xs
        | other ->
            raise
              (Value.Type_error
                 ("tf expects a list, got " ^ Value.to_string other))
      and cost v =
        match v with
        | Value.List xs ->
            (* Lower bound: at least one work + acc per initial packet. *)
            List.fold_left
              (fun total x -> total +. ew.cost x +. ea.cost x)
              500.0 xs
        | _ -> 500.0
      in
      (apply, cost)
  | Serial_scm { split; compute; merge } ->
      let es = find t split and ec = find t compute and em = find t merge in
      let apply v =
        match es.apply (Value.Tuple [ Value.Int 1; v ]) with
        | Value.List parts ->
            em.apply (Value.List (List.map ec.apply parts))
        | other ->
            raise
              (Value.Type_error
                 ("scm split returned " ^ Value.to_string other))
      and cost v = es.cost v +. ec.cost v +. em.cost v in
      (apply, cost)

let derive t name derivation =
  match Hashtbl.find_opt t.derived name with
  | Some existing when existing = derivation -> ()
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Funtable.derive: %S already derived with a different recipe" name)
  | None ->
      if Hashtbl.mem t.entries name then
        invalid_arg
          (Printf.sprintf "Funtable.derive: %S already registered" name);
      let apply, cost = realise t derivation in
      Hashtbl.replace t.entries name { name; arity = 1; apply; cost };
      Hashtbl.replace t.derived name derivation;
      t.log <- (name, derivation) :: t.log

let is_derived t name = Hashtbl.mem t.derived name

let derivations t = List.rev t.log

let replay t ds = List.iter (fun (name, d) -> derive t name d) ds

(* ------------------------------------------------------------------ *)
(* Content digest                                                      *)

let digest t =
  let base =
    Hashtbl.fold
      (fun name e acc ->
        if Hashtbl.mem t.derived name then acc else (name, e.arity) :: acc)
      t.entries []
    |> List.sort compare
    |> List.map (fun (name, arity) -> Printf.sprintf "%s/%d" name arity)
  in
  Digest.to_hex (Digest.string (String.concat "\x00" base))
