(** Sequential emulation of skeletal programs (the left branch of the paper's
    Fig. 2: running the specification on a workstation to check the
    correctness of the parallel algorithm).

    Emulation interprets the IR with the declarative skeleton semantics of
    {!Skeletons} over dynamic {!Value.t}s. The parallel executive
    ({!Executive} + {!Machine}) must agree with this module's results
    whenever the [df]/[tf] accumulation functions are commutative and
    associative. *)

exception Emulation_error of string

val eval_stage : Funtable.t -> Ir.t -> Value.t -> Value.t
(** [eval_stage table stage v] evaluates one stage on input [v].
    Calling conventions:
    - [Seq f]: [f v];
    - [Scm]: [split (Tuple [Int nparts; v])] must yield a [List]; [merge]
      receives the [List] of per-part compute results;
    - [Df]: [v] must be a [List]; [comp] maps items; [acc] receives
      [Tuple [accumulator; item_result]];
    - [Tf]: [v] must be a [List] of packets; [work] returns
      [Tuple [List new_packets; result]]; new packets are processed
      depth-first;
    - [Itermem] is rejected here (stream loops are driven by [run]).
    Raises [Emulation_error] on convention violations. *)

val eval_stage_cost : Funtable.t -> Ir.t -> Value.t -> Value.t * float
(** Instrumented variant of [eval_stage]: also returns the total cycles the
    stage's sequential functions would charge (the sum of their cost models
    over the actual calls made). Used to derive cost models for nested
    skeletons ({!Nest}). *)

val run : Funtable.t -> Ir.program -> Value.t -> Value.t
(** [run table prog input] emulates a whole program.

    When [prog.body] is an [Itermem ...], the stream is driven for
    [prog.frames] iterations: at frame [i] the input function receives
    [Tuple [input; Int i]], the loop receives [Tuple [state; x_i]] and must
    return [Tuple [state'; y_i]], and the output function's results are
    collected. The overall result is [Tuple [final_state; List outputs]].

    Otherwise the result is [eval_stage table prog.body input] — except
    when the body contains a stateful farm ({!Ir.has_stateful}) and
    [prog.frames > 1]: then the body is driven [frames] times over the same
    input with farm state carried across frames (matching the executive's
    streaming semantics) and the last frame's output is returned. *)

val run_stream : Funtable.t -> Ir.program -> Value.t -> Value.t list
(** Per-frame outputs of a non-itermem program driven for [prog.frames]
    frames over the same input, with stateful-farm state carried across
    frames — the frame-by-frame oracle for the executive's [outputs] list.
    Raises [Emulation_error] on an itermem program (those already stream
    through {!run}). *)

val run_cost : Funtable.t -> Ir.program -> Value.t -> Value.t * float
(** [run] plus the total sequential cycle count — the paper's workstation
    emulation doubling as a single-processor execution-time estimate. *)
