let gensym =
  let n = ref 0 in
  fun base ->
    incr n;
    Printf.sprintf "%s__n%d" base !n

let as_function ?name table stage =
  if List.mem "itermem" (Ir.skeleton_instances stage) then
    invalid_arg "Nest.as_function: itermem cannot be nested";
  let name =
    match name with
    | Some n -> n
    | None ->
        gensym
          (match Ir.skeleton_instances stage with
          | skel :: _ -> "nested_" ^ skel
          | [] -> "nested_pipe")
  in
  Funtable.register table name ~arity:1
    ~cost:(fun v -> snd (Sem.eval_stage_cost table stage v))
    (fun v -> Sem.eval_stage table stage v);
  name

let df ~table ~nworkers ~comp ~acc ~init =
  Ir.Df
    { nworkers; comp = as_function table comp; acc; init; state = Ir.Stateless }

let scm ~table ~nparts ~split ~compute ~merge =
  Ir.Scm { nparts; split; compute = as_function table compute; merge }
