(** The skeletal intermediate representation.

    A skeletal program is a composition of skeleton instances whose
    parameters are *named* sequential functions (resolved against a
    {!Funtable.t}). Both front-ends produce this IR: the embedded OCaml
    combinator API builds it directly, and the ML front-end
    ({!Minicaml.Extract}) recovers it from a typed abstract syntax tree.
    Downstream, {!Procnet.Expand} turns it into a process network.

    SKiPPER's skeletons compose but do not nest (paper §5: "their skeletons
    can be freely nested, ours not"): compute parameters of [scm]/[df]/[tf]
    are sequential functions, and only [itermem]'s loop body is a (skeleton)
    pipeline. [validate] enforces this. *)

(** How a [Df] farm accesses state across tasks and frames, after Danelutto,
    Torquati & Kilpatrick's classification. [Stateless] is the paper's
    original df. The [init] value's shape depends on the mode:

    - [Stateless]: the fold seed, reset every frame (the paper's df).
    - [Read_only]: [Tuple [env; seed]] — [env] is immutable shared state
      broadcast to every worker; [comp] receives [Tuple [env; x]]. The fold
      seed resets every frame.
    - [Accumulator]: the fold seed, {e carried across frames} — frame [f+1]
      folds on top of frame [f]'s result (global accumulation).
    - [Owner]: [Tuple [List states; seed]] with one partition state per
      worker. Task [i] belongs to partition [i mod nworkers]; [comp]
      receives [Tuple [s_k; x]] and returns [Tuple [s_k'; y]]. Partition
      states carry across frames; the fold seed resets every frame.
    - [Resource]: [Tuple [s; seed]] — a single serialised resource; [comp]
      receives [Tuple [s; x]] and returns [Tuple [s'; y]], tasks strictly in
      order. [s] carries across frames; the fold seed resets every frame. *)
type state_mode = Stateless | Read_only | Owner | Accumulator | Resource

val state_mode_name : state_mode -> string
(** ["stateless"], ["readonly"], ["owner"], ["accumulator"], ["resource"]. *)

val state_mode_of_string : string -> state_mode option
(** Inverse of {!state_mode_name}, with a few lenient spellings. *)

val state_mode_names : string list
(** The canonical spellings, for CLI help. *)

type t =
  | Seq of string
      (** apply a registered sequential function to the incoming value *)
  | Pipe of t list  (** left-to-right composition; [Pipe []] is the identity *)
  | Scm of { nparts : int; split : string; compute : string; merge : string }
      (** split into [nparts] sub-domains, compute each, merge the list of
          results *)
  | Df of {
      nworkers : int;
      comp : string;
      acc : string;
      init : Value.t;
      state : state_mode;
    }
      (** data farm over an incoming [List]: [fold acc seed (map comp)],
          with state discipline per {!state_mode} *)
  | Tf of { nworkers : int; work : string; acc : string; init : Value.t }
      (** task farm: [work] returns [Tuple [List new_packets; result]] *)
  | Itermem of { input : string; loop : t; output : string; init : Value.t }
      (** stream loop with memory: per frame [i], feeds
          [Tuple [state; input i]] to [loop], expects [Tuple [state'; y]],
          passes [y] to [output] *)

type program = {
  name : string;
  body : t;
  frames : int;
      (** number of stream iterations to run when the body is an [Itermem]
          (the paper's version loops forever on live video) *)
}

val program : ?frames:int -> string -> t -> program
(** Default [frames] = 1. *)

val validate : Funtable.t -> program -> (unit, string) result
(** Checks that every referenced function is registered, worker/part counts
    are positive, skeletons are not nested except under [Itermem]'s loop,
    [Itermem] appears only at top level, and stateful farm [init] values have
    the shape their mode demands (see {!state_mode}). *)

val has_stateful : t -> bool
(** True when any farm in the stage tree declares a non-[Stateless] mode —
    its state then carries across frames and the executive must run the
    stateful engine. *)

val with_state_mode : state_mode -> t -> t
(** Rewrite every [Df] stage to declare the given mode (recursing through
    [Pipe] and [Itermem]). The caller must re-{!validate}: the program's
    existing [init] must already have the new mode's shape. *)

val skeleton_instances : t -> string list
(** Names of skeleton constructors used, in traversal order, e.g.
    [["itermem"; "df"]] for the vehicle tracker; stateful farms report as
    ["df_<mode>"]. *)

val functions_used : t -> string list
(** All referenced sequential-function names, deduplicated, in order of first
    use. *)

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit
