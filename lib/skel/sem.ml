exception Emulation_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Emulation_error msg)) fmt

let as_list what = function
  | Value.List vs -> vs
  | v -> error "%s: expected a list, got %s" what (Value.to_string v)

let as_pair what = function
  | Value.Tuple [ a; b ] -> (a, b)
  | v -> error "%s: expected a pair, got %s" what (Value.to_string v)

(* The interpreter is parameterised by the function-application primitive so
   the instrumented (cost-summing) variant shares the control structure.

   Stages are compiled to closures once per run: a stateful farm closes over
   the mutable cells holding its carried state, so driving the closure over
   a stream of frames threads that state exactly as the mode's declarative
   definition demands — this closure tree IS the sequential-emulation oracle
   the parallel engine is tested against. *)
let rec compile_with apply table stage =
  match stage with
  | Ir.Seq f -> fun v -> apply table f v
  | Ir.Pipe stages ->
      let fns = List.map (compile_with apply table) stages in
      fun v -> List.fold_left (fun v fn -> fn v) v fns
  | Ir.Scm { nparts; split; compute; merge } ->
      fun v ->
        let parts =
          as_list ("scm split " ^ split)
            (apply table split (Value.Tuple [ Value.Int nparts; v ]))
        in
        let results = List.map (apply table compute) parts in
        apply table merge (Value.List results)
  | Ir.Df { comp; acc; init; state = Ir.Stateless; _ } ->
      fun v ->
        let xs = as_list "df input" v in
        (* Exactly the paper's declarative definition:
           df n comp acc z xs = fold_left acc z (map comp xs). *)
        List.fold_left
          (fun z x -> apply table acc (Value.Tuple [ z; apply table comp x ]))
          init xs
  | Ir.Df { comp; acc; init; state = Ir.Read_only; _ } ->
      let env, seed = as_pair "readonly df init" init in
      fun v ->
        let xs = as_list "df input" v in
        List.fold_left
          (fun z x ->
            apply table acc
              (Value.Tuple [ z; apply table comp (Value.Tuple [ env; x ]) ]))
          seed xs
  | Ir.Df { comp; acc; init; state = Ir.Accumulator; _ } ->
      let carry = ref init in
      fun v ->
        let xs = as_list "df input" v in
        let z =
          List.fold_left
            (fun z x -> apply table acc (Value.Tuple [ z; apply table comp x ]))
            !carry xs
        in
        carry := z;
        z
  | Ir.Df { nworkers; comp; acc; init; state = Ir.Owner } ->
      let states, seed = as_pair "owner df init" init in
      let states = Array.of_list (as_list "owner df partition states" states) in
      fun v ->
        let xs = as_list "df input" v in
        List.fold_left
          (fun (z, i) x ->
            let k = i mod nworkers in
            let s', y =
              as_pair "owner df comp result"
                (apply table comp (Value.Tuple [ states.(k); x ]))
            in
            states.(k) <- s';
            (apply table acc (Value.Tuple [ z; y ]), i + 1))
          (seed, 0) xs
        |> fst
  | Ir.Df { comp; acc; init; state = Ir.Resource; _ } ->
      let s0, seed = as_pair "resource df init" init in
      let res = ref s0 in
      fun v ->
        let xs = as_list "df input" v in
        List.fold_left
          (fun z x ->
            let s', y =
              as_pair "resource df comp result"
                (apply table comp (Value.Tuple [ !res; x ]))
            in
            res := s';
            apply table acc (Value.Tuple [ z; y ]))
          seed xs
  | Ir.Tf { work; acc; init; _ } ->
      fun v ->
        let rec loop z = function
          | [] -> z
          | x :: rest ->
              let subs, y = as_pair "tf work result" (apply table work x) in
              let subs = as_list "tf new packets" subs in
              loop (apply table acc (Value.Tuple [ z; y ])) (subs @ rest)
        in
        loop init (as_list "tf input" v)
  | Ir.Itermem _ ->
      fun _ -> error "itermem inside eval_stage: stream loops are driven by run"

(* Single-application view: fresh state per call, so a stateful stage
   evaluated once behaves as its first frame. *)
let eval_with apply table stage v = compile_with apply table stage v

let eval_stage table stage v = eval_with Funtable.apply table stage v

let eval_stage_cost table stage v =
  let cycles = ref 0.0 in
  let apply table f v =
    cycles := !cycles +. Funtable.cost table f v;
    Funtable.apply table f v
  in
  let result = eval_with apply table stage v in
  (result, !cycles)

let run_with apply table prog input =
  match prog.Ir.body with
  | Ir.Itermem { input = inp; loop; output; init } ->
      let step = compile_with apply table loop in
      let rec drive state i outputs =
        if i >= prog.Ir.frames then
          Value.Tuple [ state; Value.List (List.rev outputs) ]
        else
          let x = apply table inp (Value.Tuple [ input; Value.Int i ]) in
          let state', y =
            as_pair "itermem loop result" (step (Value.Tuple [ state; x ]))
          in
          let shown = apply table output y in
          drive state' (i + 1) (shown :: outputs)
      in
      drive init 0 []
  | body when Ir.has_stateful body && prog.Ir.frames > 1 ->
      (* A stateful farm outside itermem still streams: the executive feeds
         the same input every frame and reports the last frame's output, so
         the oracle drives the compiled body the same way. *)
      let step = compile_with apply table body in
      let rec drive i last =
        if i >= prog.Ir.frames then last else drive (i + 1) (step input)
      in
      drive 1 (step input)
  | body -> eval_with apply table body input

let run table prog input = run_with Funtable.apply table prog input

(* Per-frame oracle outputs for a non-itermem program: what the executive's
   [outputs] list must equal frame by frame. *)
let run_stream table prog input =
  match prog.Ir.body with
  | Ir.Itermem _ ->
      error "run_stream: itermem programs already stream (use run)"
  | body ->
      let step = compile_with Funtable.apply table body in
      List.init prog.Ir.frames (fun _ -> step input)

let run_cost table prog input =
  let cycles = ref 0.0 in
  let apply table f v =
    cycles := !cycles +. Funtable.cost table f v;
    Funtable.apply table f v
  in
  let result = run_with apply table prog input in
  (result, !cycles)
