(** Registry of application-specific sequential functions.

    In the paper these are the C functions a programmer supplies as skeleton
    parameters (e.g. [detect_mark], [accum_marks]); SKiPPER treats them as
    opaque computations with a communication interface. Here each function is
    an OCaml function over {!Value.t} together with a *cost model* — the
    number of processor cycles a call consumes as a function of its argument —
    used by the SynDEx-style scheduler and charged by the machine simulator.

    Multi-argument functions receive a [Value.Tuple]; binary folding functions
    (the [acc] parameter of [df]/[tf]) receive [Tuple [accumulator; item]].

    Beyond the user-registered base entries, compilation adds {e derived}
    entries: argument-shuffling wrappers around user functions (extraction)
    and fused/serialised compositions (transformation). These are described
    by a pure-data {!derivation} and installed with {!derive}, so the exact
    set of side effects a compile performs on its table can be recorded,
    persisted, and replayed onto another table — the mechanism that lets the
    compilation cache hit across independently constructed tables and across
    processes. *)

type entry = {
  name : string;
  arity : int;  (** number of source-language arguments; 1 means unary *)
  apply : Value.t -> Value.t;
  cost : Value.t -> float;  (** processor cycles consumed by one call *)
}

(** How a wrapper assembles one argument from the incoming dataflow value. *)
type spec =
  | Whole  (** the dataflow value itself *)
  | Proj of int  (** component [i] of the dataflow tuple *)
  | Const of Value.t

(** A derived entry as pure data: every constructor references other entries
    by name only, so a derivation list is [Marshal]-safe and structurally
    comparable. *)
type derivation =
  | Wrapper of { base : string; specs : spec list }
      (** glue code around a user function: build its argument (tuple) from
          the dataflow value per [specs], call [base] *)
  | Compose of { f : string; g : string }  (** [g (f v)] — fused [Seq] pair *)
  | Serial_df of { comp : string; acc : string; init : Value.t }
      (** one-worker data farm collapsed to a sequential fold *)
  | Serial_tf of { work : string; acc : string; init : Value.t }
      (** one-worker task farm collapsed to a sequential worklist loop *)
  | Serial_scm of { split : string; compute : string; merge : string }
      (** one-part split-compute-merge collapsed to a sequential pass *)

type t

val create : unit -> t

val register :
  t -> ?arity:int -> ?cost:(Value.t -> float) -> string -> (Value.t -> Value.t) -> unit
(** [register t name fn] adds a base entry. Default arity 1; default cost a
    small constant (1000 cycles). Raises [Invalid_argument] if [name] is
    already registered. *)

val derive : t -> string -> derivation -> unit
(** [derive t name d] installs the entry [d] describes under [name]
    (arity 1 — derived entries always consume the dataflow value whole).
    Idempotent when [name] is already derived with a structurally equal
    recipe; raises [Invalid_argument] when [name] exists as a base entry or
    with a different recipe — callers replaying a cached compile treat that
    as a cache miss. Raises [Failure] if a referenced base name is missing. *)

val is_derived : t -> string -> bool

val derivations : t -> (string * derivation) list
(** Every derived registration, oldest first — replaying the list in order
    with {!derive} (see {!replay}) reproduces the table side effects of the
    compiles that built it. *)

val replay : t -> (string * derivation) list -> unit
(** [derive] each pair in order. *)

val digest : t -> string
(** Content digest (hex) of the {e base} entries — sorted [(name, arity)]
    pairs. Derived entries are excluded so the digest is stable across a
    compile's own side effects: a table digests the same before and after
    the programs it hosted were compiled. Two independently constructed
    tables with the same registrations digest equal. The digest cannot see
    OCaml closure bodies, so it trusts that a name denotes one behaviour —
    the same contract the paper places on user C functions. *)

val find : t -> string -> entry
(** Raises [Not_found]-carrying [Failure] with the unknown name. *)

val find_opt : t -> string -> entry option
val mem : t -> string -> bool
val names : t -> string list
(** Registered names (base and derived), sorted. *)

val apply : t -> string -> Value.t -> Value.t
val cost : t -> string -> Value.t -> float

val of_list :
  (string * int * (Value.t -> Value.t) * (Value.t -> float)) list -> t
(** Convenience bulk constructor: [(name, arity, apply, cost)] tuples. *)
