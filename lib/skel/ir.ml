(* How a [Df] farm's state is accessed across tasks and frames (Danelutto,
   Torquati & Kilpatrick's classification of state access patterns in
   embarrassingly parallel computations). [Stateless] is the paper's
   original df. *)
type state_mode = Stateless | Read_only | Owner | Accumulator | Resource

let state_mode_name = function
  | Stateless -> "stateless"
  | Read_only -> "readonly"
  | Owner -> "owner"
  | Accumulator -> "accumulator"
  | Resource -> "resource"

let state_mode_of_string = function
  | "stateless" -> Some Stateless
  | "readonly" | "read-only" | "read_only" -> Some Read_only
  | "owner" -> Some Owner
  | "accumulator" | "acc" -> Some Accumulator
  | "resource" -> Some Resource
  | _ -> None

let state_mode_names =
  [ "stateless"; "readonly"; "owner"; "accumulator"; "resource" ]

type t =
  | Seq of string
  | Pipe of t list
  | Scm of { nparts : int; split : string; compute : string; merge : string }
  | Df of {
      nworkers : int;
      comp : string;
      acc : string;
      init : Value.t;
      state : state_mode;
    }
  | Tf of { nworkers : int; work : string; acc : string; init : Value.t }
  | Itermem of { input : string; loop : t; output : string; init : Value.t }

type program = { name : string; body : t; frames : int }

let program ?(frames = 1) name body = { name; body; frames }

let rec skeleton_instances = function
  | Seq _ -> []
  | Pipe stages -> List.concat_map skeleton_instances stages
  | Scm _ -> [ "scm" ]
  | Df { state = Stateless; _ } -> [ "df" ]
  | Df { state; _ } -> [ "df_" ^ state_mode_name state ]
  | Tf _ -> [ "tf" ]
  | Itermem { loop; _ } -> "itermem" :: skeleton_instances loop

(* Does any farm in the stage tree carry state across tasks or frames?
   Drives the executive's choice between the paper's plain farm protocol
   and the stateful engine. *)
let rec has_stateful = function
  | Seq _ | Scm _ | Tf _ -> false
  | Df { state; _ } -> state <> Stateless
  | Pipe stages -> List.exists has_stateful stages
  | Itermem { loop; _ } -> has_stateful loop

let rec with_state_mode mode = function
  | (Seq _ | Scm _ | Tf _) as s -> s
  | Df df -> Df { df with state = mode }
  | Pipe stages -> Pipe (List.map (with_state_mode mode) stages)
  | Itermem im -> Itermem { im with loop = with_state_mode mode im.loop }

let functions_used stage =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec go = function
    | Seq f -> add f
    | Pipe stages -> List.iter go stages
    | Scm { split; compute; merge; _ } ->
        add split;
        add compute;
        add merge
    | Df { comp; acc; _ } ->
        add comp;
        add acc
    | Tf { work; acc; _ } ->
        add work;
        add acc
    | Itermem { input; loop; output; _ } ->
        add input;
        go loop;
        add output
  in
  go stage;
  List.rev !out

(* The init value of a stateful farm has a mode-dependent shape (see the
   mode table in DESIGN.md); checked at validation so a bad spec fails
   before the executive or the oracle trips on it. *)
let check_state_shape ~nworkers ~state init =
  match (state, init) with
  | (Stateless | Accumulator), _ -> Ok ()
  | (Read_only | Resource), Value.Tuple [ _; _ ] -> Ok ()
  | Read_only, _ ->
      Error "readonly df init must be a pair (shared_env, fold_seed)"
  | Resource, _ ->
      Error "resource df init must be a pair (resource_state, fold_seed)"
  | Owner, Value.Tuple [ Value.List states; _ ] ->
      if List.length states = nworkers then Ok ()
      else
        Error
          (Printf.sprintf
             "owner df init must carry one partition state per worker (got \
              %d states for %d workers)"
             (List.length states) nworkers)
  | Owner, _ ->
      Error "owner df init must be a pair (partition_state_list, fold_seed)"

let validate table prog =
  let ( let* ) = Result.bind in
  let check_fn name =
    if Funtable.mem table name then Ok ()
    else Error (Printf.sprintf "unknown sequential function %S" name)
  in
  let check_pos what n =
    if n > 0 then Ok () else Error (Printf.sprintf "%s must be positive, got %d" what n)
  in
  let rec check ~depth ~top = function
    | Seq f -> check_fn f
    | Pipe stages ->
        List.fold_left
          (fun acc stage ->
            let* () = acc in
            check ~depth ~top:false stage)
          (Ok ()) stages
    | Scm { nparts; split; compute; merge } ->
        let* () = check_pos "scm nparts" nparts in
        let* () = check_fn split in
        let* () = check_fn compute in
        check_fn merge
    | Df { nworkers; comp; acc; init; state } ->
        let* () = check_pos "df nworkers" nworkers in
        let* () = check_fn comp in
        let* () = check_fn acc in
        check_state_shape ~nworkers ~state init
    | Tf { nworkers; work; acc; _ } ->
        let* () = check_pos "tf nworkers" nworkers in
        let* () = check_fn work in
        check_fn acc
    | Itermem { input; loop; output; _ } ->
        if not top then Error "itermem is only allowed at the top level"
        else
          let* () = check_fn input in
          let* () = check_fn output in
          check ~depth:(depth + 1) ~top:false loop
  in
  let* () = check ~depth:0 ~top:true prog.body in
  if prog.frames <= 0 then Error "program frame count must be positive" else Ok ()

let rec pp ppf = function
  | Seq f -> Format.fprintf ppf "seq %s" f
  | Pipe stages ->
      Format.fprintf ppf "(@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ |> ")
           pp)
        stages
  | Scm { nparts; split; compute; merge } ->
      Format.fprintf ppf "scm %d %s %s %s" nparts split compute merge
  | Df { nworkers; comp; acc; init; state = Stateless } ->
      Format.fprintf ppf "df %d %s %s %a" nworkers comp acc Value.pp init
  | Df { nworkers; comp; acc; init; state } ->
      Format.fprintf ppf "df[%s] %d %s %s %a" (state_mode_name state) nworkers
        comp acc Value.pp init
  | Tf { nworkers; work; acc; init } ->
      Format.fprintf ppf "tf %d %s %s %a" nworkers work acc Value.pp init
  | Itermem { input; loop; output; init } ->
      Format.fprintf ppf "@[<2>itermem %s@ (%a)@ %s@ %a@]" input pp loop output
        Value.pp init

let pp_program ppf prog =
  Format.fprintf ppf "@[<v2>program %s (frames=%d):@ %a@]" prog.name prog.frames
    pp prog.body
