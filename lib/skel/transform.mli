(** Inter-skeleton transformational rules.

    The paper's conclusion (§6) names two follow-up directions; one is "to
    study inter-skeleton transformational rules, which are needed when
    applications are built by composing and/or nesting a large number of
    skeletons". This module provides a rewriting engine over the skeletal IR
    with a library of semantics-preserving rules:

    - [flatten_pipes]: [Pipe [a; Pipe [b; c]]] → [Pipe [a; b; c]], and
      [Pipe [s]] → [s];
    - [fuse_seq]: adjacent sequential stages [Seq f; Seq g] fuse into a
      single registered composition (one process instead of two — fewer
      communications in the executive);
    - [serialise_df] / [serialise_tf]: a farm with a single worker is a
      plain sequential computation; it rewrites to a registered [Seq] that
      folds the list locally (no master/worker round trips);
    - [serialise_scm]: a one-part scm likewise collapses to
      split-compute-merge in one process.

    All rules preserve the declarative semantics ({!Sem}); the test suite
    checks this on randomised programs and workloads. Fused/serialised
    functions are registered into the function table with composed value
    functions and summed cost models, exactly like the extraction wrappers —
    this is glue SKiPPER would generate. *)

type applied = { rule : string; count : int }

val normalize : Funtable.t -> Ir.program -> Ir.program * applied list
(** Applies the full rule set bottom-up to a fixpoint. Registered helper
    functions are added to the table as a side effect. The result validates
    against the same table. *)

val flatten_pipes : Ir.t -> Ir.t
(** The purely structural subset (no table needed). *)

val rule_names : string list

val applied_summary : applied list -> string
(** ["fuse-seq x2, serialise-df x1"], or ["no rules applied"]. *)
