(** The distributed executive.

    Final stage of the paper's Fig. 2: the mapped process graph is turned
    into per-processor executable code by inlining kernel primitives
    (communication, synchronisation, sequentialisation of user functions).
    Our target "platform" is the machine simulator, so kernel-primitive
    inlining produces one simulator process per graph node, each running the
    skeleton's control protocol in direct style:

    - [DfMaster] implements the data-farm protocol: it primes every worker
      with one item, then reacts to each result by folding it and feeding
      the idle worker the next item — the dynamic load balancing that
      distinguishes [df] from [scm];
    - [TfMaster] additionally pushes worker-generated packets onto its work
      queue and terminates on queue-empty + no outstanding work;
    - [Mem] emits the initial state on the first frame and thereafter
      replays each update, closing the itermem feedback loop;
    - user computations charge their {!Skel.Funtable} cost model to the
      hosting processor before their value is produced.

    Running an executive yields the program's actual output value (compared
    against {!Skel.Sem} in the test suite) together with timing metrics. *)

module Macro : module type of Macro
(** Re-exported macro-code emitter (this module is the library root). *)

type result = {
  value : Skel.Value.t;
      (** same shape as {!Skel.Sem.run}: for itermem programs,
          [Tuple [final_state; List outputs]]; for plain programs the output
          of the last frame *)
  outputs : Skel.Value.t list;  (** per-frame outputs, in frame order *)
  stats : Machine.Sim.stats;
  output_times : float list;  (** completion time of each frame's output *)
  latencies : float list;
      (** per-frame latency: output completion minus the frame's availability
          time ([i * input_period]; equals [output_times] when unpaced) *)
  first_latency : float;  (** completion time of frame 0 *)
  period : float;
      (** steady-state inter-frame period (mean of successive output-time
          differences); equals [first_latency] when only one frame ran *)
  sim : Machine.Sim.t;  (** the finished machine, for traces and Gantt *)
}

exception Executive_error of string

val run :
  ?trace:bool ->
  ?trace_limit:int ->
  ?input_period:float ->
  ?faults:(int * float) list ->
  table:Skel.Funtable.t ->
  arch:Archi.t ->
  placement:int array ->
  graph:Procnet.Graph.t ->
  frames:int ->
  input:Skel.Value.t ->
  unit ->
  result
(** Builds and executes the executive. [placement] maps node ids to
    processors (length must equal the node count). [frames] is the number of
    stream iterations; non-itermem graphs re-process [input] that many
    times. [input_period], when given, paces the source: frame [i] is not
    produced before [i * input_period] (a 25 Hz camera is 0.04). [faults]
    halts processors at given times ([(processor, at)]); since SKiPPER has
    no fault tolerance, a fault that kills a needed worker stalls the
    pipeline, which surfaces as the "collected N outputs" error.

    Raises [Executive_error] on malformed graphs (e.g. explicit [Router]
    nodes, which only appear in the structural Fig. 1 template) and
    re-raises user-function exceptions wrapped in
    {!Machine.Sim.Process_failure}. *)

val run_schedule :
  ?trace:bool ->
  ?trace_limit:int ->
  ?input_period:float ->
  table:Skel.Funtable.t ->
  schedule:Syndex.Schedule.t ->
  frames:int ->
  input:Skel.Value.t ->
  unit ->
  result
(** Convenience wrapper taking the placement from a static schedule. *)

val timeline : result -> Skipper_trace.Event.timeline
(** The run's message-lifecycle events as a unified timeline (empty when the
    machine was created without [~trace:true]): one lane per process grouped
    under its hosting processor, one lane per directed link, plus the
    environment injections. Feed to {!Skipper_trace.Chrome.to_json} or
    {!Skipper_trace.Svg.gantt}. *)

val summary : result -> string
(** Multi-line digest of a run: value, frame count, latency/period, message
    traffic. Used by the pass manager's [simulate] artifact rendering. *)
