(** The distributed executive.

    Final stage of the paper's Fig. 2: the mapped process graph is turned
    into per-processor executable code by inlining kernel primitives
    (communication, synchronisation, sequentialisation of user functions).
    Our target "platform" is the machine simulator, so kernel-primitive
    inlining produces one simulator process per graph node, each running the
    skeleton's control protocol in direct style:

    - [DfMaster] implements the data-farm protocol: it primes every worker
      with one item, then reacts to each result by folding it and feeding
      the idle worker the next item — the dynamic load balancing that
      distinguishes [df] from [scm];
    - [TfMaster] additionally pushes worker-generated packets onto its work
      queue and terminates on queue-empty + no outstanding work;
    - [Mem] emits the initial state on the first frame and thereafter
      replays each update, closing the itermem feedback loop;
    - user computations charge their {!Skel.Funtable} cost model to the
      hosting processor before their value is produced.

    Running an executive yields the program's actual output value (compared
    against {!Skel.Sem} in the test suite) together with timing metrics. *)

module Macro : module type of Macro
(** Re-exported macro-code emitter (this module is the library root). *)

type outcome =
  | Completed  (** every frame produced its output *)
  | Stalled of { collected : int; expected : int }
      (** the pipeline stopped making progress (typically a fault killed a
          needed process); [collected] frames finished out of [expected].
          The result still carries the partial outputs, stats and sim. *)

type recovery = { df_timeout : float; max_strikes : int }
(** Fault-tolerance policy for the [df] farm: a task outstanding longer than
    [df_timeout] seconds is reissued to an idle worker, and a worker that
    times out [max_strikes] times in a row (any reply resets its count) is
    retired from the pool (the farm then runs degraded). *)

val recovery : ?max_strikes:int -> float -> recovery
(** [recovery df_timeout] with [max_strikes] defaulting to 3. Raises
    [Executive_error] on non-positive arguments. *)

type result = {
  value : Skel.Value.t;
      (** same shape as {!Skel.Sem.run}: for itermem programs,
          [Tuple [final_state; List outputs]]; for plain programs the output
          of the last frame *)
  outputs : Skel.Value.t list;  (** per-frame outputs, in frame order *)
  outcome : outcome;
  stats : Machine.Sim.stats;
  output_times : float list;  (** completion time of each frame's output *)
  latencies : float list;
      (** per-frame latency: output completion minus the frame's availability
          time ([i * input_period]; equals [output_times] when unpaced) *)
  first_latency : float;  (** completion time of frame 0 *)
  period : float option;
      (** steady-state inter-frame period (mean of successive output-time
          differences); [None] when fewer than two frames completed — a
          single frame measures a latency, never a steady period *)
  input_period : float option;  (** the pacing the run was given, if any *)
  deadline_misses : int;
      (** frames whose latency exceeded [input_period] (0 when unpaced) *)
  reissues : int;  (** df tasks reissued after a timeout *)
  reissue_times : float list;
      (** simulated time of each reissue, in occurrence order — the windowed
          series attributes recovery work to the window it happened in *)
  retired_workers : int;  (** df workers retired after repeated timeouts *)
  checkpoints : int;
      (** checkpoints taken by durable masters/mems ([checkpoint_every]) *)
  replayed_frames : int;
      (** frames recomputed (not re-emitted) by restarted durable processes *)
  sim : Machine.Sim.t;  (** the finished machine, for traces and Gantt *)
}

exception Executive_error of string

val run :
  ?trace:bool ->
  ?trace_limit:int ->
  ?input_period:float ->
  ?faults:(int * float) list ->
  ?restores:(int * float) list ->
  ?link_faults:Machine.Sim.link_fault list ->
  ?recovery:recovery ->
  ?checkpoint_every:int ->
  table:Skel.Funtable.t ->
  arch:Archi.t ->
  placement:int array ->
  graph:Procnet.Graph.t ->
  frames:int ->
  input:Skel.Value.t ->
  unit ->
  result
(** Builds and executes the executive. [placement] maps node ids to
    processors (length must equal the node count). [frames] is the number of
    stream iterations; non-itermem graphs re-process [input] that many
    times. [input_period], when given, paces the source: frame [i] is not
    produced before [i * input_period] (a 25 Hz camera is 0.04).

    Fault injection: [faults] halts processors at given times
    ([(processor, at)]), [restores] lifts halts, and [link_faults] arms
    message faults (see {!Machine.Sim.link_fault}). Without [recovery] the
    executive behaves like plain SKiPPER — a fault that kills a needed
    worker stalls the pipeline, reported as a [Stalled] outcome with partial
    outputs (never an exception). With [recovery], the [df] farm reissues
    timed-out tasks and retires repeatedly-failing workers, so a run can
    complete degraded.

    Stateful farms ([DfMaster] with a non-[Stateless]
    {!Skel.Ir.state_mode}) run the engine protocol: the master holds the
    state, tags tasks with [(frame, seq)], merges replies in sequence order
    (so any accumulation function agrees with the sequential oracle), and
    enforces the mode's routing discipline — load-balanced for
    readonly/accumulator, fixed partition routing with one outstanding task
    per partition for owner, fully serialised round-robin (the farm with
    feedback) for resource. [recovery] is rejected together with the
    engine.

    [checkpoint_every]: every [k] frames, durable control processes (df
    masters and the itermem [Mem]) snapshot their state to stable storage
    and truncate their replay journal ({!Machine.Sim.mark_stable}). A halt
    of their processor then no longer loses the stream: deliveries spool,
    and on restore the process replays from the checkpoint (recomputed
    frames are counted in [replayed_frames], never re-emitted), so the run
    [Completed]s where it would otherwise report [Stalled].

    Raises [Executive_error] on malformed graphs (e.g. explicit [Router]
    nodes, which only appear in the structural Fig. 1 template) and
    re-raises user-function exceptions wrapped in
    {!Machine.Sim.Process_failure}. *)

val run_schedule :
  ?trace:bool ->
  ?trace_limit:int ->
  ?input_period:float ->
  ?faults:(int * float) list ->
  ?restores:(int * float) list ->
  ?link_faults:Machine.Sim.link_fault list ->
  ?recovery:recovery ->
  ?checkpoint_every:int ->
  table:Skel.Funtable.t ->
  schedule:Syndex.Schedule.t ->
  frames:int ->
  input:Skel.Value.t ->
  unit ->
  result
(** Convenience wrapper taking the placement from a static schedule. *)

val metrics : result -> Machine.Metrics.report
(** {!Machine.Metrics.analyse} on the run's machine with the executive-level
    [deadline_misses]/[reissues] counters and the per-frame [latencies]
    (populating the report's latency distribution) threaded in. *)

val timeline :
  ?slo:Skipper_trace.Series.Slo.report -> result -> Skipper_trace.Event.timeline
(** The run's message-lifecycle events as a unified timeline (empty when the
    machine was created without [~trace:true]): one lane per process grouped
    under its hosting processor, one lane per directed link, plus the
    environment injections. With [slo], the monitor's state transitions are
    appended as instants on the SLO lanes. Feed to
    {!Skipper_trace.Chrome.to_json} or {!Skipper_trace.Svg.gantt}. *)

val series :
  ?width:float ->
  result ->
  (Skipper_trace.Series.t, string) Stdlib.result
(** Windowed telemetry for the run: folds the trace timeline plus the
    executive's frame bookkeeping (output times, latencies, pacing,
    reissue times) into {!Skipper_trace.Series.t} windows. [width] is the
    window width in seconds, defaulting to the input period when the run was
    paced and 5 ms otherwise. [Error] when tracing was not enabled. *)

val summary : result -> string
(** Multi-line digest of a run: value, frame count and outcome,
    latency/period ([n/a] when a steady period was never measured), message
    traffic, and a fault line when anything was dropped, reissued, retired
    or late. Used by the pass manager's [simulate] artifact rendering. *)
