module G = Procnet.Graph
module V = Skel.Value
module Macro = Macro

exception Executive_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Executive_error m)) fmt

type outcome = Completed | Stalled of { collected : int; expected : int }

type recovery = { df_timeout : float; max_strikes : int }

let recovery ?(max_strikes = 3) df_timeout =
  if df_timeout <= 0.0 then error "recovery: df_timeout must be positive";
  if max_strikes <= 0 then error "recovery: max_strikes must be positive";
  { df_timeout; max_strikes }

type result = {
  value : V.t;
  outputs : V.t list;
  outcome : outcome;
  stats : Machine.Sim.stats;
  output_times : float list;
  latencies : float list;
  first_latency : float;
  period : float option;
  input_period : float option;
  deadline_misses : int;
  reissues : int;
  reissue_times : float list;
  retired_workers : int;
  checkpoints : int;
  replayed_frames : int;
  sim : Machine.Sim.t;
}

(* Mutable run-wide state shared by the spawned processes. *)
type collector = {
  mutable outs_rev : (V.t * float) list;
  mutable final_state : V.t option;
  mutable reissues : int;
  mutable reissue_rev : float list;
  mutable retired : int;
  mutable checkpoints : int;
  mutable replayed : int;
}

(* Stable storage for a durable control process (df master or itermem mem):
   plain OCaml state outside the simulated machine, so it survives a
   simulated processor crash. [snap] is the last checkpoint — the next frame
   to run and the mode state to resume it with; [emitted] is a write-ahead
   count of frames whose output was already sent downstream, so a replaying
   incarnation recomputes them without re-emitting. *)
type stable_cell = { mutable snap : (int * V.t) option; mutable emitted : int }

(* A user-function call: charge its cost model, then produce its value. *)
let call table fn v =
  if fn = "__id" then v
  else begin
    Machine.Sim.compute (Skel.Funtable.cost table fn v);
    Skel.Funtable.apply table fn v
  end

(* Map worker node id -> index within its master's worker pool. The order of
   the master's "task" edges defines the indices, matching primes below. *)
let worker_indices g =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun (node : G.node) ->
      match node.kind with
      | G.DfMaster _ | G.TfMaster _ ->
          List.iteri
            (fun i (e : G.edge) -> Hashtbl.replace table e.dst i)
            (G.out_edges_from_port g node.id "task")
      | _ -> ())
    (G.nodes g);
  table

let behaviour ~table ~graph:g ~frames ~input ~input_period ~collector
    ~widx_table ~recovery:recov ~checkpoint ~cells (node : G.node) () =
  let outs port =
    List.map (fun (e : G.edge) -> (e.dst, e.dst_port)) (G.out_edges_from_port g node.id port)
  in
  let send_all port v = List.iter (fun (dst, dport) -> Machine.Sim.send dst dport v) (outs port) in
  (* Emit downstream, or record as the program output when this node is the
     sink of the graph. *)
  let emit port v =
    match outs port with
    | [] ->
        if node.id = G.exit_node g then
          collector.outs_rev <- (v, Machine.Sim.now ()) :: collector.outs_rev
        else ()
    | _ -> send_all port v
  in
  let each_frame f =
    for i = 0 to frames - 1 do
      f i
    done
  in
  match node.kind with
  | G.Input fn ->
      each_frame (fun i ->
          (match input_period with
          | Some p -> Machine.Sim.sleep_until (float_of_int i *. p)
          | None -> ());
          let x = call table fn (V.Tuple [ input; V.Int i ]) in
          emit "out" x)
  | G.Output fn ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          let y = call table fn v in
          collector.outs_rev <- (y, Machine.Sim.now ()) :: collector.outs_rev)
  | G.Compute fn | G.ScmCompute { fn; _ } ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          emit "out" (call table fn v))
  | G.ScmSplit { fn; nparts } ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          let parts =
            match call table fn (V.Tuple [ V.Int nparts; v ]) with
            | V.List parts -> parts
            | other -> error "scm split %s returned %s, not a list" fn (V.to_string other)
          in
          if List.length parts <> nparts then
            error "scm split %s returned %d parts, expected %d" fn
              (List.length parts) nparts;
          List.iteri (fun i part -> send_all (Printf.sprintf "p%d" i) part) parts)
  | G.ScmMerge { fn; nparts } ->
      each_frame (fun _ ->
          let results =
            List.init nparts (fun i -> Machine.Sim.recv (Printf.sprintf "p%d" i))
          in
          emit "out" (call table fn (V.List results)))
  | G.DfMaster { acc; init; nworkers; state } when
      state <> Skel.Ir.Stateless || checkpoint <> None ->
      (* The stateful-farm engine: master-held state with a per-mode task
         routing and merge discipline, plus optional checkpoint/replay.
         Strictly opt-in — a stateless farm without checkpointing runs the
         paper's original protocol below, byte-identical traces included.

         Wire protocol (workers are mode-agnostic):
         - env broadcast  [Tuple [Str "env"; env]]   (readonly mode only)
         - task           [Tuple [Str "t"; Int frame; Int seq; payload]]
         - reply          [Tuple [Int widx; Int frame; Int seq; y]]
         Replies are buffered by [seq] and folded 0..n-1 once the frame
         completes, so the merge order equals the sequential oracle's
         regardless of arrival order; duplicates (same frame and seq — the
         signature of a replay) are first-wins discarded. *)
      let task_targets = Array.of_list (outs "task") in
      if Array.length task_targets <> nworkers then
        error "df master has %d task channels for %d workers"
          (Array.length task_targets) nworkers;
      if recov <> None then
        error
          "df recovery (reissue-on-timeout) is not supported together with \
           stateful farms or checkpointing";
      let cell = Hashtbl.find cells node.id in
      let as_state_pair what = function
        | V.Tuple [ a; b ] -> (a, b)
        | other -> error "%s df init must be a pair, got %s" what (V.to_string other)
      in
      (* Mode state held by the master; [seed] restarts the fold each frame
         (except accumulator mode, whose fold result is the carried state). *)
      let owner_states =
        match state with
        | Skel.Ir.Owner -> (
            match fst (as_state_pair "owner" init) with
            | V.List ss -> Array.of_list ss
            | other ->
                error "owner df init must carry a state list, got %s"
                  (V.to_string other))
        | _ -> [||]
      in
      let resource =
        ref
          (match state with
          | Skel.Ir.Resource -> fst (as_state_pair "resource" init)
          | _ -> V.Unit)
      in
      let carry = ref init in
      let seed =
        match state with
        | Skel.Ir.Stateless | Skel.Ir.Accumulator -> init
        | Skel.Ir.Read_only | Skel.Ir.Owner | Skel.Ir.Resource ->
            snd (as_state_pair (Skel.Ir.state_mode_name state) init)
      in
      let env =
        match state with
        | Skel.Ir.Read_only -> Some (fst (as_state_pair "readonly" init))
        | _ -> None
      in
      let snapshot () =
        match state with
        | Skel.Ir.Stateless | Skel.Ir.Read_only -> V.Unit
        | Skel.Ir.Accumulator -> !carry
        | Skel.Ir.Owner -> V.List (Array.to_list owner_states)
        | Skel.Ir.Resource -> !resource
      in
      let restore st =
        match state with
        | Skel.Ir.Stateless | Skel.Ir.Read_only -> ()
        | Skel.Ir.Accumulator -> carry := st
        | Skel.Ir.Owner -> (
            match st with
            | V.List ss -> List.iteri (fun i s -> owner_states.(i) <- s) ss
            | _ -> ())
        | Skel.Ir.Resource -> resource := st
      in
      let start_frame =
        match cell.snap with
        | Some (f0, st) ->
            restore st;
            f0
        | None -> 0
      in
      (* Frames already emitted will be recomputed from the checkpoint but
         not re-emitted: that is the replay work a restart costs. *)
      collector.replayed <- collector.replayed + (cell.emitted - start_frame);
      (match env with
      | Some e ->
          (* (Re)broadcast the shared environment — workers treat it as an
             idempotent assignment, so a replaying master may repeat it. *)
          Array.iter
            (fun (dst, dport) ->
              Machine.Sim.send dst dport (V.Tuple [ V.Str "env"; e ]))
            task_targets
      | None -> ());
      for f = start_frame to frames - 1 do
        let xs =
          match Machine.Sim.recv "in" with
          | V.List xs -> xs
          | other -> error "df input is %s, not a list" (V.to_string other)
        in
        let items = Array.of_list xs in
        let n = Array.length items in
        let got = Array.make n None in
        let ngot = ref 0 in
        let send_task widx seq payload =
          let dst, dport = task_targets.(widx) in
          Machine.Sim.send dst dport
            (V.Tuple [ V.Str "t"; V.Int f; V.Int seq; payload ])
        in
        (* Receive one reply; [accept widx seq y] is called exactly once per
           fresh (frame, seq); duplicates invoke [dup widx] instead. *)
        let receive ~accept ~dup =
          match Machine.Sim.recv "result" with
          | V.Tuple [ V.Int widx; V.Int rf; V.Int seq; y ] ->
              if rf = f && seq >= 0 && seq < n && got.(seq) = None then
                accept widx seq y
              else if rf = f then dup widx
              (* replies for earlier frames are replay leftovers: ignore *)
          | other -> error "df master: bad result message %s" (V.to_string other)
        in
        (match state with
        | Skel.Ir.Stateless | Skel.Ir.Accumulator | Skel.Ir.Read_only ->
            (* Dynamically load-balanced, like the plain farm; the payload is
               the bare item (the worker adds the env for readonly). *)
            let queue = Queue.create () in
            Array.iteri (fun seq _ -> Queue.add seq queue) items;
            let feed widx =
              if not (Queue.is_empty queue) then begin
                let seq = Queue.pop queue in
                send_task widx seq items.(seq)
              end
            in
            for w = 0 to nworkers - 1 do
              feed w
            done;
            while !ngot < n do
              receive
                ~accept:(fun widx seq y ->
                  got.(seq) <- Some y;
                  incr ngot;
                  feed widx)
                ~dup:feed
            done
        | Skel.Ir.Owner ->
            (* Partitioned state: task [seq] belongs to partition
               [seq mod nworkers], whose state threads through its worker
               with at most one task of the partition outstanding. *)
            let pending = Array.make nworkers [] in
            for seq = n - 1 downto 0 do
              let k = seq mod nworkers in
              pending.(k) <- seq :: pending.(k)
            done;
            let feed k =
              match pending.(k) with
              | seq :: rest ->
                  pending.(k) <- rest;
                  send_task k seq (V.Tuple [ owner_states.(k); items.(seq) ])
              | [] -> ()
            in
            for k = 0 to nworkers - 1 do
              feed k
            done;
            while !ngot < n do
              receive
                ~accept:(fun _widx seq y ->
                  match y with
                  | V.Tuple [ s'; y ] ->
                      let k = seq mod nworkers in
                      owner_states.(k) <- s';
                      got.(seq) <- Some y;
                      incr ngot;
                      feed k
                  | other ->
                      error "owner df compute must return (state', y), got %s"
                        (V.to_string other))
                ~dup:(fun _ -> ())
            done
        | Skel.Ir.Resource ->
            (* Serialised shared resource: at most one task outstanding in
               the whole farm, round-robin over the workers (the farm with
               feedback — the state travels out with each task and back with
               its reply). *)
            let issue seq =
              if seq < n then
                send_task (seq mod nworkers) seq
                  (V.Tuple [ !resource; items.(seq) ])
            in
            issue 0;
            while !ngot < n do
              receive
                ~accept:(fun _widx seq y ->
                  if seq <> !ngot then () (* out-of-order: replay leftover *)
                  else
                    match y with
                    | V.Tuple [ s'; y ] ->
                        resource := s';
                        got.(seq) <- Some y;
                        incr ngot;
                        issue (seq + 1)
                    | other ->
                        error
                          "resource df compute must return (state', y), got %s"
                          (V.to_string other))
                ~dup:(fun _ -> ())
            done);
        let z0 = match state with Skel.Ir.Accumulator -> !carry | _ -> seed in
        let z =
          Array.fold_left
            (fun z y ->
              match y with
              | Some y -> call table acc (V.Tuple [ z; y ])
              | None -> assert false)
            z0 got
        in
        if state = Skel.Ir.Accumulator then carry := z;
        if cell.emitted <= f then begin
          (* Write-ahead: bump the count in the same zero-duration segment
             as the send, so a crash cannot double-emit a frame. *)
          cell.emitted <- f + 1;
          emit "out" z
        end;
        match checkpoint with
        | Some k when (f + 1) mod k = 0 ->
            cell.snap <- Some (f + 1, snapshot ());
            Machine.Sim.mark_stable ();
            collector.checkpoints <- collector.checkpoints + 1
        | _ -> ()
      done
  | G.DfMaster { acc; init; nworkers; state = _ } -> (
      let task_targets = Array.of_list (outs "task") in
      if Array.length task_targets <> nworkers then
        error "df master has %d task channels for %d workers"
          (Array.length task_targets) nworkers;
      match recov with
      | None ->
          each_frame (fun _ ->
              let xs =
                match Machine.Sim.recv "in" with
                | V.List xs -> xs
                | other -> error "df input is %s, not a list" (V.to_string other)
              in
              let queue = Queue.create () in
              List.iter (fun x -> Queue.add x queue) xs;
              let accv = ref init in
              let outstanding = ref 0 in
              let feed widx =
                let dst, dport = task_targets.(widx) in
                Machine.Sim.send dst dport (Queue.pop queue);
                incr outstanding
              in
              for w = 0 to nworkers - 1 do
                if not (Queue.is_empty queue) then feed w
              done;
              while !outstanding > 0 do
                match Machine.Sim.recv "result" with
                | V.Tuple [ V.Int widx; y ] ->
                    decr outstanding;
                    accv := call table acc (V.Tuple [ !accv; y ]);
                    if not (Queue.is_empty queue) then feed widx
                | other ->
                    error "df master: bad result message %s" (V.to_string other)
              done;
              emit "out" !accv)
      | Some { df_timeout; max_strikes } ->
          (* Fault-tolerant farm (FastFlow-style reissue-on-timeout). Tasks
             are sequence-tagged; an assignment outstanding past its deadline
             is requeued and handed to an idle worker, the first reply per
             task wins (stale or duplicated replies are discarded), and a
             worker that times out [max_strikes] times in a row — with no
             reply in between — is retired. Retirement persists across
             frames: the farm runs degraded. *)
          let exception Farm_stalled in
          let retired = Array.make nworkers false in
          let strikes = Array.make nworkers 0 in
          (try
             each_frame (fun _ ->
                 let xs =
                   match Machine.Sim.recv "in" with
                   | V.List xs -> xs
                   | other ->
                       error "df input is %s, not a list" (V.to_string other)
                 in
                 let items = Array.of_list xs in
                 let n = Array.length items in
                 let done_ = Array.make n false in
                 let completed = ref 0 in
                 let accv = ref init in
                 let queue = Queue.create () in
                 Array.iteri (fun seq _ -> Queue.add seq queue) items;
                 let idle = Queue.create () in
                 let is_idle = Array.make nworkers false in
                 for w = 0 to nworkers - 1 do
                   if not retired.(w) then begin
                     is_idle.(w) <- true;
                     Queue.add w idle
                   end
                 done;
                 (* seq -> (worker, absolute deadline); at most one live
                    assignment per task *)
                 let assignments = Hashtbl.create 16 in
                 let re_idle widx =
                   if (not retired.(widx)) && not is_idle.(widx) then begin
                     is_idle.(widx) <- true;
                     Queue.add widx idle
                   end
                 in
                 let feed_idle () =
                   let progress = ref true in
                   while !progress do
                     progress := false;
                     (* skip tasks completed by a late reply while requeued *)
                     while
                       (not (Queue.is_empty queue)) && done_.(Queue.peek queue)
                     do
                       ignore (Queue.pop queue)
                     done;
                     if
                       (not (Queue.is_empty queue)) && not (Queue.is_empty idle)
                     then begin
                       let widx = Queue.pop idle in
                       is_idle.(widx) <- false;
                       let seq = Queue.pop queue in
                       let dst, dport = task_targets.(widx) in
                       Machine.Sim.send dst dport
                         (V.Tuple [ V.Int seq; items.(seq) ]);
                       Hashtbl.replace assignments seq
                         (widx, Machine.Sim.now () +. df_timeout);
                       progress := true
                     end
                   done
                 in
                 while !completed < n do
                   feed_idle ();
                   if Hashtbl.length assignments = 0 then
                     (* nothing in flight and nothing issuable: every live
                        worker has been retired *)
                     raise Farm_stalled;
                   let dl =
                     Hashtbl.fold
                       (fun _ (_, d) acc -> Float.min d acc)
                       assignments infinity
                   in
                   match Machine.Sim.recv_deadline [ "result" ] ~deadline:dl with
                   | Some (_, V.Tuple [ V.Int widx; V.Tuple [ V.Int seq; y ] ])
                     ->
                       (* any reply proves the worker alive: strikes count
                          consecutive timeouts, so a transient message fault
                          cannot slowly retire a healthy worker *)
                       if widx >= 0 && widx < nworkers && not retired.(widx)
                       then strikes.(widx) <- 0;
                       re_idle widx;
                       if seq >= 0 && seq < n && not done_.(seq) then begin
                         done_.(seq) <- true;
                         incr completed;
                         Hashtbl.remove assignments seq;
                         accv := call table acc (V.Tuple [ !accv; y ])
                       end
                   | Some (_, other) ->
                       error "df master: bad result message %s"
                         (V.to_string other)
                   | None ->
                       let nowt = Machine.Sim.now () in
                       let expired =
                         Hashtbl.fold
                           (fun seq (widx, d) acc ->
                             if d <= nowt then (seq, widx) :: acc else acc)
                           assignments []
                         |> List.sort compare
                       in
                       List.iter
                         (fun (seq, widx) ->
                           Hashtbl.remove assignments seq;
                           Queue.add seq queue;
                           collector.reissues <- collector.reissues + 1;
                           collector.reissue_rev <-
                             nowt :: collector.reissue_rev;
                           strikes.(widx) <- strikes.(widx) + 1;
                           if strikes.(widx) >= max_strikes then begin
                             if not retired.(widx) then begin
                               retired.(widx) <- true;
                               collector.retired <- collector.retired + 1
                             end
                           end
                           else
                             (* optimistic: the worker may only be slow; its
                                mailbox serialises any extra tasks *)
                             re_idle widx)
                         expired
                 done;
                 emit "out" !accv)
           with Farm_stalled -> ()))
  | G.DfWorker { comp } ->
      let my_index =
        match Hashtbl.find_opt widx_table node.id with
        | Some i -> i
        | None -> error "df worker %s is not wired to a master" node.label
      in
      (* A worker speaks the engine protocol exactly when its master does. *)
      let engine_master =
        List.exists
          (fun (e : G.edge) ->
            e.dst_port = "task"
            &&
            match (G.node g e.src).kind with
            | G.DfMaster { state; _ } ->
                state <> Skel.Ir.Stateless || checkpoint <> None
            | _ -> false)
          (G.in_edges g node.id)
      in
      if engine_master then begin
        (* Mode-agnostic: remember the broadcast env (readonly mode) and
           wrap it around each task payload; echo frame and seq so the
           master can merge in order and discard replay duplicates. *)
        let env = ref None in
        let rec serve () =
          (match Machine.Sim.recv "task" with
          | V.Tuple [ V.Str "env"; e ] -> env := Some e
          | V.Tuple [ V.Str "t"; V.Int frame; V.Int seq; payload ] ->
              let arg =
                match !env with
                | Some e -> V.Tuple [ e; payload ]
                | None -> payload
              in
              let y = call table comp arg in
              send_all "out"
                (V.Tuple [ V.Int my_index; V.Int frame; V.Int seq; y ])
          | other -> error "df worker: bad task message %s" (V.to_string other));
          serve ()
        in
        serve ()
      end
      else
        let rec serve () =
          (match recov with
          | None ->
              let v = Machine.Sim.recv "task" in
              let y = call table comp v in
              send_all "out" (V.Tuple [ V.Int my_index; y ])
          | Some _ -> (
              (* sequence-tagged protocol: echo the tag so the master can
                 discard stale duplicates *)
              match Machine.Sim.recv "task" with
              | V.Tuple [ V.Int seq; x ] ->
                  let y = call table comp x in
                  send_all "out"
                    (V.Tuple [ V.Int my_index; V.Tuple [ V.Int seq; y ] ])
              | other ->
                  error "df worker: bad task message %s" (V.to_string other)));
          serve ()
        in
        serve ()
  | G.TfMaster { acc; init; nworkers } ->
      let task_targets = Array.of_list (outs "task") in
      if Array.length task_targets <> nworkers then
        error "tf master has %d task channels for %d workers"
          (Array.length task_targets) nworkers;
      each_frame (fun _ ->
          let xs =
            match Machine.Sim.recv "in" with
            | V.List xs -> xs
            | other -> error "tf input is %s, not a list" (V.to_string other)
          in
          let queue = Queue.create () in
          List.iter (fun x -> Queue.add x queue) xs;
          let accv = ref init in
          let idle = Queue.create () in
          for w = 0 to nworkers - 1 do
            Queue.add w idle
          done;
          let outstanding = ref 0 in
          let feed_idle () =
            while (not (Queue.is_empty queue)) && not (Queue.is_empty idle) do
              let widx = Queue.pop idle in
              let dst, dport = task_targets.(widx) in
              Machine.Sim.send dst dport (Queue.pop queue);
              incr outstanding
            done
          in
          feed_idle ();
          while !outstanding > 0 do
            (match Machine.Sim.recv "result" with
            | V.Tuple [ V.Int widx; V.Tuple [ V.List subs; y ] ] ->
                decr outstanding;
                Queue.add widx idle;
                List.iter (fun s -> Queue.add s queue) subs;
                accv := call table acc (V.Tuple [ !accv; y ])
            | other -> error "tf master: bad result message %s" (V.to_string other));
            feed_idle ()
          done;
          emit "out" !accv)
  | G.TfWorker { work } ->
      let my_index =
        match Hashtbl.find_opt widx_table node.id with
        | Some i -> i
        | None -> error "tf worker %s is not wired to a master" node.label
      in
      let rec serve () =
        let v = Machine.Sim.recv "task" in
        (match call table work v with
        | V.Tuple [ V.List _; _ ] as reply ->
            send_all "out" (V.Tuple [ V.Int my_index; reply ])
        | other -> error "tf work %s returned %s" work (V.to_string other));
        serve ()
      in
      serve ()
  | G.Mem { init } -> (
      match checkpoint with
      | None ->
          let state = ref init in
          each_frame (fun _ ->
              send_all "out" !state;
              state := Machine.Sim.recv "update");
          collector.final_state <- Some !state
      | Some k ->
          (* Durable mem: checkpoint the loop state every [k] frames; a
             restarted incarnation resumes at the checkpoint, replaying the
             journalled updates, and skips re-sending states it already
             sent (write-ahead [emitted] count). *)
          let cell = Hashtbl.find cells node.id in
          let start_frame, st0 =
            match cell.snap with Some (f0, st) -> (f0, st) | None -> (0, init)
          in
          collector.replayed <-
            collector.replayed + (cell.emitted - start_frame);
          let state = ref st0 in
          for f = start_frame to frames - 1 do
            if cell.emitted <= f then begin
              cell.emitted <- f + 1;
              send_all "out" !state
            end;
            state := Machine.Sim.recv "update";
            if (f + 1) mod k = 0 then begin
              cell.snap <- Some (f + 1, !state);
              Machine.Sim.mark_stable ();
              collector.checkpoints <- collector.checkpoints + 1
            end
          done;
          collector.final_state <- Some !state)
  | G.Join ->
      each_frame (fun _ ->
          let s = Machine.Sim.recv "state" in
          let d = Machine.Sim.recv "data" in
          send_all "out" (V.Tuple [ s; d ]))
  | G.Fork ->
      each_frame (fun _ ->
          match Machine.Sim.recv "in" with
          | V.Tuple [ a; b ] ->
              send_all "fst" a;
              send_all "snd" b
          | other -> error "fork received %s, not a pair" (V.to_string other))
  | G.Router _ ->
      error "explicit router processes are not executable (Fig. 1 template is structural)"

let is_itermem g =
  Array.exists
    (fun (node : G.node) -> match node.kind with G.Mem _ -> true | _ -> false)
    (G.nodes g)

let run ?(trace = false) ?trace_limit ?input_period ?(faults = [])
    ?(restores = []) ?(link_faults = []) ?recovery:recov ?checkpoint_every
    ~table ~arch ~placement ~graph:g ~frames ~input () =
  if frames <= 0 then error "frames must be positive";
  (match checkpoint_every with
  | Some k when k <= 0 -> error "checkpoint_every must be positive, got %d" k
  | _ -> ());
  if Array.length placement <> G.nnodes g then
    error "placement has %d entries for %d processes" (Array.length placement)
      (G.nnodes g);
  let sim = Machine.Sim.create ~trace ?trace_limit arch in
  List.iter (fun (p, at) -> Machine.Sim.halt_processor sim ~at p) faults;
  List.iter (fun (p, at) -> Machine.Sim.restore_processor sim ~at p) restores;
  List.iter (Machine.Sim.add_fault sim) link_faults;
  let collector =
    {
      outs_rev = [];
      final_state = None;
      reissues = 0;
      reissue_rev = [];
      retired = 0;
      checkpoints = 0;
      replayed = 0;
    }
  in
  let widx_table = worker_indices g in
  (* Stable cells for the control processes that can be made durable; with
     checkpointing enabled those processes survive a processor halt. *)
  let cells = Hashtbl.create 8 in
  Array.iter
    (fun (node : G.node) ->
      match node.kind with
      | G.DfMaster _ | G.Mem _ ->
          Hashtbl.replace cells node.id { snap = None; emitted = 0 }
      | _ -> ())
    (G.nodes g);
  let durable (node : G.node) =
    checkpoint_every <> None
    && match node.kind with G.DfMaster _ | G.Mem _ -> true | _ -> false
  in
  Array.iter
    (fun (node : G.node) ->
      let pid =
        Machine.Sim.spawn sim ~name:node.label ~durable:(durable node)
          ~on:placement.(node.id)
          (behaviour ~table ~graph:g ~frames ~input ~input_period ~collector
             ~widx_table ~recovery:recov ~checkpoint:checkpoint_every ~cells
             node)
      in
      if pid <> node.id then error "process ids out of sync with node ids")
    (G.nodes g);
  (* Non-stream graphs receive their input from the environment. *)
  if not (is_itermem g) then
    for i = 0 to frames - 1 do
      let at = match input_period with Some p -> float_of_int i *. p | None -> 0.0 in
      Machine.Sim.inject sim ~at (G.entry g) "in" input
    done;
  let _finish = Machine.Sim.run sim in
  let outs = List.rev collector.outs_rev in
  let collected = List.length outs in
  let outcome =
    if collected = frames then Completed
    else Stalled { collected; expected = frames }
  in
  let outputs = List.map fst outs in
  let output_times = List.map snd outs in
  let first_latency = match output_times with t :: _ -> t | [] -> 0.0 in
  let period =
    (* a single frame measures a latency, never a steady period *)
    match output_times with
    | [] | [ _ ] -> None
    | t0 :: _ ->
        let last = List.nth output_times (List.length output_times - 1) in
        Some ((last -. t0) /. float_of_int (List.length output_times - 1))
  in
  let value =
    match collector.final_state with
    | Some st -> V.Tuple [ st; V.List outputs ]
    | None -> ( match List.rev outputs with last :: _ -> last | [] -> V.Unit)
  in
  let latencies =
    let p = Option.value ~default:0.0 input_period in
    List.mapi (fun i t -> t -. (float_of_int i *. p)) output_times
  in
  let deadline_misses =
    match input_period with
    | None -> 0
    | Some p -> List.length (List.filter (fun l -> l > p +. 1e-12) latencies)
  in
  {
    value;
    outputs;
    outcome;
    stats = Machine.Sim.stats sim;
    output_times;
    latencies;
    first_latency;
    period;
    input_period;
    deadline_misses;
    reissues = collector.reissues;
    reissue_times = List.rev collector.reissue_rev;
    retired_workers = collector.retired;
    checkpoints = collector.checkpoints;
    replayed_frames = collector.replayed;
    sim;
  }

let run_schedule ?trace ?trace_limit ?input_period ?faults ?restores
    ?link_faults ?recovery ?checkpoint_every ~table ~schedule ~frames ~input
    () =
  run ?trace ?trace_limit ?input_period ?faults ?restores ?link_faults
    ?recovery ?checkpoint_every ~table
    ~arch:schedule.Syndex.Schedule.arch
    ~placement:schedule.Syndex.Schedule.placement
    ~graph:schedule.Syndex.Schedule.graph ~frames ~input ()

let timeline ?slo r =
  let tl = Machine.Sim.timeline r.sim in
  Option.iter (Skipper_trace.Series.Slo.emit tl) slo;
  tl

(* Default window: the input period when the run was paced (one window per
   frame slot), else 5 ms — wide enough that a short unpaced run still gets
   a handful of windows. *)
let series ?width r =
  let tl = Machine.Sim.timeline r.sim in
  if Skipper_trace.Event.length tl = 0 then
    Error
      "tracing was not enabled: the timeline holds no events (run with \
       ~trace:true)"
  else begin
    let p = Option.value ~default:0.0 r.input_period in
    let width =
      match width with Some w -> w | None -> if p > 0.0 then p else 5e-3
    in
    let expected =
      match r.outcome with
      | Completed -> List.length r.outputs
      | Stalled { expected; _ } -> expected
    in
    let injections = List.init expected (fun i -> float_of_int i *. p) in
    Skipper_trace.Series.build ~width
      ~nprocs:(Array.length r.stats.Machine.Sim.busy)
      ~horizon:r.stats.Machine.Sim.finish_time ~output_times:r.output_times
      ~latencies:r.latencies ?input_period:r.input_period ~injections
      ~reissue_times:r.reissue_times tl
  end

let metrics r =
  Machine.Metrics.analyse ~deadline_misses:r.deadline_misses
    ~reissues:r.reissues ~latencies:r.latencies r.sim

let summary r =
  let period_s =
    match r.period with
    | Some p -> Printf.sprintf "%.2f ms" (p *. 1e3)
    | None -> "n/a"
  in
  let outcome_s =
    match r.outcome with
    | Completed -> "completed"
    | Stalled { collected; expected } ->
        Printf.sprintf "STALLED after %d of %d outputs" collected expected
  in
  let fault_s =
    let dropped = r.stats.Machine.Sim.dropped_msgs in
    if dropped > 0 || r.reissues > 0 || r.deadline_misses > 0
       || r.retired_workers > 0
    then
      Printf.sprintf
        "\nfaults: %d dropped messages, %d reissues, %d retired workers, %d deadline misses"
        dropped r.reissues r.retired_workers r.deadline_misses
    else ""
  in
  let ckpt_s =
    if r.checkpoints > 0 || r.replayed_frames > 0 then
      Printf.sprintf "\ncheckpoints: %d taken, %d frames replayed"
        r.checkpoints r.replayed_frames
    else ""
  in
  Printf.sprintf
    "value: %s\nframes: %d (%s)\nfirst latency: %.2f ms, steady period: %s\nmessages: %d, bytes: %d%s%s"
    (Skel.Value.to_string r.value)
    (List.length r.outputs)
    outcome_s
    (r.first_latency *. 1e3) period_s
    r.stats.Machine.Sim.messages r.stats.Machine.Sim.bytes fault_s ckpt_s
