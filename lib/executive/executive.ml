module G = Procnet.Graph
module V = Skel.Value
module Macro = Macro

exception Executive_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Executive_error m)) fmt

type result = {
  value : V.t;
  outputs : V.t list;
  stats : Machine.Sim.stats;
  output_times : float list;
  latencies : float list;
  first_latency : float;
  period : float;
  sim : Machine.Sim.t;
}

(* Mutable run-wide state shared by the spawned processes. *)
type collector = {
  mutable outs_rev : (V.t * float) list;
  mutable final_state : V.t option;
}

(* A user-function call: charge its cost model, then produce its value. *)
let call table fn v =
  if fn = "__id" then v
  else begin
    Machine.Sim.compute (Skel.Funtable.cost table fn v);
    Skel.Funtable.apply table fn v
  end

(* Map worker node id -> index within its master's worker pool. The order of
   the master's "task" edges defines the indices, matching primes below. *)
let worker_indices g =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun (node : G.node) ->
      match node.kind with
      | G.DfMaster _ | G.TfMaster _ ->
          List.iteri
            (fun i (e : G.edge) -> Hashtbl.replace table e.dst i)
            (G.out_edges_from_port g node.id "task")
      | _ -> ())
    (G.nodes g);
  table

let behaviour ~table ~graph:g ~frames ~input ~input_period ~collector
    ~widx_table (node : G.node) () =
  let outs port =
    List.map (fun (e : G.edge) -> (e.dst, e.dst_port)) (G.out_edges_from_port g node.id port)
  in
  let send_all port v = List.iter (fun (dst, dport) -> Machine.Sim.send dst dport v) (outs port) in
  (* Emit downstream, or record as the program output when this node is the
     sink of the graph. *)
  let emit port v =
    match outs port with
    | [] ->
        if node.id = G.exit_node g then
          collector.outs_rev <- (v, Machine.Sim.now ()) :: collector.outs_rev
        else ()
    | _ -> send_all port v
  in
  let each_frame f =
    for i = 0 to frames - 1 do
      f i
    done
  in
  match node.kind with
  | G.Input fn ->
      each_frame (fun i ->
          (match input_period with
          | Some p -> Machine.Sim.sleep_until (float_of_int i *. p)
          | None -> ());
          let x = call table fn (V.Tuple [ input; V.Int i ]) in
          emit "out" x)
  | G.Output fn ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          let y = call table fn v in
          collector.outs_rev <- (y, Machine.Sim.now ()) :: collector.outs_rev)
  | G.Compute fn | G.ScmCompute { fn; _ } ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          emit "out" (call table fn v))
  | G.ScmSplit { fn; nparts } ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          let parts =
            match call table fn (V.Tuple [ V.Int nparts; v ]) with
            | V.List parts -> parts
            | other -> error "scm split %s returned %s, not a list" fn (V.to_string other)
          in
          if List.length parts <> nparts then
            error "scm split %s returned %d parts, expected %d" fn
              (List.length parts) nparts;
          List.iteri (fun i part -> send_all (Printf.sprintf "p%d" i) part) parts)
  | G.ScmMerge { fn; nparts } ->
      each_frame (fun _ ->
          let results =
            List.init nparts (fun i -> Machine.Sim.recv (Printf.sprintf "p%d" i))
          in
          emit "out" (call table fn (V.List results)))
  | G.DfMaster { acc; init; nworkers } ->
      let task_targets = Array.of_list (outs "task") in
      if Array.length task_targets <> nworkers then
        error "df master has %d task channels for %d workers"
          (Array.length task_targets) nworkers;
      each_frame (fun _ ->
          let xs =
            match Machine.Sim.recv "in" with
            | V.List xs -> xs
            | other -> error "df input is %s, not a list" (V.to_string other)
          in
          let queue = Queue.create () in
          List.iter (fun x -> Queue.add x queue) xs;
          let accv = ref init in
          let outstanding = ref 0 in
          let feed widx =
            let dst, dport = task_targets.(widx) in
            Machine.Sim.send dst dport (Queue.pop queue);
            incr outstanding
          in
          for w = 0 to nworkers - 1 do
            if not (Queue.is_empty queue) then feed w
          done;
          while !outstanding > 0 do
            match Machine.Sim.recv "result" with
            | V.Tuple [ V.Int widx; y ] ->
                decr outstanding;
                accv := call table acc (V.Tuple [ !accv; y ]);
                if not (Queue.is_empty queue) then feed widx
            | other -> error "df master: bad result message %s" (V.to_string other)
          done;
          emit "out" !accv)
  | G.DfWorker { comp } ->
      let my_index =
        match Hashtbl.find_opt widx_table node.id with
        | Some i -> i
        | None -> error "df worker %s is not wired to a master" node.label
      in
      let rec serve () =
        let v = Machine.Sim.recv "task" in
        let y = call table comp v in
        send_all "out" (V.Tuple [ V.Int my_index; y ]);
        serve ()
      in
      serve ()
  | G.TfMaster { acc; init; nworkers } ->
      let task_targets = Array.of_list (outs "task") in
      if Array.length task_targets <> nworkers then
        error "tf master has %d task channels for %d workers"
          (Array.length task_targets) nworkers;
      each_frame (fun _ ->
          let xs =
            match Machine.Sim.recv "in" with
            | V.List xs -> xs
            | other -> error "tf input is %s, not a list" (V.to_string other)
          in
          let queue = Queue.create () in
          List.iter (fun x -> Queue.add x queue) xs;
          let accv = ref init in
          let idle = Queue.create () in
          for w = 0 to nworkers - 1 do
            Queue.add w idle
          done;
          let outstanding = ref 0 in
          let feed_idle () =
            while (not (Queue.is_empty queue)) && not (Queue.is_empty idle) do
              let widx = Queue.pop idle in
              let dst, dport = task_targets.(widx) in
              Machine.Sim.send dst dport (Queue.pop queue);
              incr outstanding
            done
          in
          feed_idle ();
          while !outstanding > 0 do
            (match Machine.Sim.recv "result" with
            | V.Tuple [ V.Int widx; V.Tuple [ V.List subs; y ] ] ->
                decr outstanding;
                Queue.add widx idle;
                List.iter (fun s -> Queue.add s queue) subs;
                accv := call table acc (V.Tuple [ !accv; y ])
            | other -> error "tf master: bad result message %s" (V.to_string other));
            feed_idle ()
          done;
          emit "out" !accv)
  | G.TfWorker { work } ->
      let my_index =
        match Hashtbl.find_opt widx_table node.id with
        | Some i -> i
        | None -> error "tf worker %s is not wired to a master" node.label
      in
      let rec serve () =
        let v = Machine.Sim.recv "task" in
        (match call table work v with
        | V.Tuple [ V.List _; _ ] as reply ->
            send_all "out" (V.Tuple [ V.Int my_index; reply ])
        | other -> error "tf work %s returned %s" work (V.to_string other));
        serve ()
      in
      serve ()
  | G.Mem { init } ->
      let state = ref init in
      each_frame (fun _ ->
          send_all "out" !state;
          state := Machine.Sim.recv "update");
      collector.final_state <- Some !state
  | G.Join ->
      each_frame (fun _ ->
          let s = Machine.Sim.recv "state" in
          let d = Machine.Sim.recv "data" in
          send_all "out" (V.Tuple [ s; d ]))
  | G.Fork ->
      each_frame (fun _ ->
          match Machine.Sim.recv "in" with
          | V.Tuple [ a; b ] ->
              send_all "fst" a;
              send_all "snd" b
          | other -> error "fork received %s, not a pair" (V.to_string other))
  | G.Router _ ->
      error "explicit router processes are not executable (Fig. 1 template is structural)"

let is_itermem g =
  Array.exists
    (fun (node : G.node) -> match node.kind with G.Mem _ -> true | _ -> false)
    (G.nodes g)

let run ?(trace = false) ?trace_limit ?input_period ?(faults = []) ~table ~arch
    ~placement ~graph:g ~frames ~input () =
  if frames <= 0 then error "frames must be positive";
  if Array.length placement <> G.nnodes g then
    error "placement has %d entries for %d processes" (Array.length placement)
      (G.nnodes g);
  let sim = Machine.Sim.create ~trace ?trace_limit arch in
  List.iter (fun (p, at) -> Machine.Sim.halt_processor sim ~at p) faults;
  let collector = { outs_rev = []; final_state = None } in
  let widx_table = worker_indices g in
  Array.iter
    (fun (node : G.node) ->
      let pid =
        Machine.Sim.spawn sim ~name:node.label ~on:placement.(node.id)
          (behaviour ~table ~graph:g ~frames ~input ~input_period ~collector
             ~widx_table node)
      in
      if pid <> node.id then error "process ids out of sync with node ids")
    (G.nodes g);
  (* Non-stream graphs receive their input from the environment. *)
  if not (is_itermem g) then
    for i = 0 to frames - 1 do
      let at = match input_period with Some p -> float_of_int i *. p | None -> 0.0 in
      Machine.Sim.inject sim ~at (G.entry g) "in" input
    done;
  let _finish = Machine.Sim.run sim in
  let outs = List.rev collector.outs_rev in
  if List.length outs <> frames then
    error "collected %d outputs for %d frames (pipeline stalled?)"
      (List.length outs) frames;
  let outputs = List.map fst outs in
  let output_times = List.map snd outs in
  let first_latency = match output_times with t :: _ -> t | [] -> 0.0 in
  let period =
    match output_times with
    | [] | [ _ ] -> first_latency
    | t0 :: _ ->
        let last = List.nth output_times (List.length output_times - 1) in
        (last -. t0) /. float_of_int (List.length output_times - 1)
  in
  let value =
    match collector.final_state with
    | Some st -> V.Tuple [ st; V.List outputs ]
    | None -> ( match List.rev outputs with last :: _ -> last | [] -> V.Unit)
  in
  let latencies =
    let p = Option.value ~default:0.0 input_period in
    List.mapi (fun i t -> t -. (float_of_int i *. p)) output_times
  in
  {
    value;
    outputs;
    stats = Machine.Sim.stats sim;
    output_times;
    latencies;
    first_latency;
    period;
    sim;
  }

let run_schedule ?trace ?trace_limit ?input_period ~table ~schedule ~frames
    ~input () =
  run ?trace ?trace_limit ?input_period ~table
    ~arch:schedule.Syndex.Schedule.arch
    ~placement:schedule.Syndex.Schedule.placement
    ~graph:schedule.Syndex.Schedule.graph ~frames ~input ()

let timeline r = Machine.Sim.timeline r.sim

let summary r =
  Printf.sprintf
    "value: %s\nframes: %d\nfirst latency: %.2f ms, steady period: %.2f ms\nmessages: %d, bytes: %d"
    (Skel.Value.to_string r.value)
    (List.length r.outputs)
    (r.first_latency *. 1e3) (r.period *. 1e3)
    r.stats.Machine.Sim.messages r.stats.Machine.Sim.bytes
