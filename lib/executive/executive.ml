module G = Procnet.Graph
module V = Skel.Value
module Macro = Macro

exception Executive_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Executive_error m)) fmt

type outcome = Completed | Stalled of { collected : int; expected : int }

type recovery = { df_timeout : float; max_strikes : int }

let recovery ?(max_strikes = 3) df_timeout =
  if df_timeout <= 0.0 then error "recovery: df_timeout must be positive";
  if max_strikes <= 0 then error "recovery: max_strikes must be positive";
  { df_timeout; max_strikes }

type result = {
  value : V.t;
  outputs : V.t list;
  outcome : outcome;
  stats : Machine.Sim.stats;
  output_times : float list;
  latencies : float list;
  first_latency : float;
  period : float option;
  input_period : float option;
  deadline_misses : int;
  reissues : int;
  reissue_times : float list;
  retired_workers : int;
  sim : Machine.Sim.t;
}

(* Mutable run-wide state shared by the spawned processes. *)
type collector = {
  mutable outs_rev : (V.t * float) list;
  mutable final_state : V.t option;
  mutable reissues : int;
  mutable reissue_rev : float list;
  mutable retired : int;
}

(* A user-function call: charge its cost model, then produce its value. *)
let call table fn v =
  if fn = "__id" then v
  else begin
    Machine.Sim.compute (Skel.Funtable.cost table fn v);
    Skel.Funtable.apply table fn v
  end

(* Map worker node id -> index within its master's worker pool. The order of
   the master's "task" edges defines the indices, matching primes below. *)
let worker_indices g =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun (node : G.node) ->
      match node.kind with
      | G.DfMaster _ | G.TfMaster _ ->
          List.iteri
            (fun i (e : G.edge) -> Hashtbl.replace table e.dst i)
            (G.out_edges_from_port g node.id "task")
      | _ -> ())
    (G.nodes g);
  table

let behaviour ~table ~graph:g ~frames ~input ~input_period ~collector
    ~widx_table ~recovery:recov (node : G.node) () =
  let outs port =
    List.map (fun (e : G.edge) -> (e.dst, e.dst_port)) (G.out_edges_from_port g node.id port)
  in
  let send_all port v = List.iter (fun (dst, dport) -> Machine.Sim.send dst dport v) (outs port) in
  (* Emit downstream, or record as the program output when this node is the
     sink of the graph. *)
  let emit port v =
    match outs port with
    | [] ->
        if node.id = G.exit_node g then
          collector.outs_rev <- (v, Machine.Sim.now ()) :: collector.outs_rev
        else ()
    | _ -> send_all port v
  in
  let each_frame f =
    for i = 0 to frames - 1 do
      f i
    done
  in
  match node.kind with
  | G.Input fn ->
      each_frame (fun i ->
          (match input_period with
          | Some p -> Machine.Sim.sleep_until (float_of_int i *. p)
          | None -> ());
          let x = call table fn (V.Tuple [ input; V.Int i ]) in
          emit "out" x)
  | G.Output fn ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          let y = call table fn v in
          collector.outs_rev <- (y, Machine.Sim.now ()) :: collector.outs_rev)
  | G.Compute fn | G.ScmCompute { fn; _ } ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          emit "out" (call table fn v))
  | G.ScmSplit { fn; nparts } ->
      each_frame (fun _ ->
          let v = Machine.Sim.recv "in" in
          let parts =
            match call table fn (V.Tuple [ V.Int nparts; v ]) with
            | V.List parts -> parts
            | other -> error "scm split %s returned %s, not a list" fn (V.to_string other)
          in
          if List.length parts <> nparts then
            error "scm split %s returned %d parts, expected %d" fn
              (List.length parts) nparts;
          List.iteri (fun i part -> send_all (Printf.sprintf "p%d" i) part) parts)
  | G.ScmMerge { fn; nparts } ->
      each_frame (fun _ ->
          let results =
            List.init nparts (fun i -> Machine.Sim.recv (Printf.sprintf "p%d" i))
          in
          emit "out" (call table fn (V.List results)))
  | G.DfMaster { acc; init; nworkers } -> (
      let task_targets = Array.of_list (outs "task") in
      if Array.length task_targets <> nworkers then
        error "df master has %d task channels for %d workers"
          (Array.length task_targets) nworkers;
      match recov with
      | None ->
          each_frame (fun _ ->
              let xs =
                match Machine.Sim.recv "in" with
                | V.List xs -> xs
                | other -> error "df input is %s, not a list" (V.to_string other)
              in
              let queue = Queue.create () in
              List.iter (fun x -> Queue.add x queue) xs;
              let accv = ref init in
              let outstanding = ref 0 in
              let feed widx =
                let dst, dport = task_targets.(widx) in
                Machine.Sim.send dst dport (Queue.pop queue);
                incr outstanding
              in
              for w = 0 to nworkers - 1 do
                if not (Queue.is_empty queue) then feed w
              done;
              while !outstanding > 0 do
                match Machine.Sim.recv "result" with
                | V.Tuple [ V.Int widx; y ] ->
                    decr outstanding;
                    accv := call table acc (V.Tuple [ !accv; y ]);
                    if not (Queue.is_empty queue) then feed widx
                | other ->
                    error "df master: bad result message %s" (V.to_string other)
              done;
              emit "out" !accv)
      | Some { df_timeout; max_strikes } ->
          (* Fault-tolerant farm (FastFlow-style reissue-on-timeout). Tasks
             are sequence-tagged; an assignment outstanding past its deadline
             is requeued and handed to an idle worker, the first reply per
             task wins (stale or duplicated replies are discarded), and a
             worker that times out [max_strikes] times in a row — with no
             reply in between — is retired. Retirement persists across
             frames: the farm runs degraded. *)
          let exception Farm_stalled in
          let retired = Array.make nworkers false in
          let strikes = Array.make nworkers 0 in
          (try
             each_frame (fun _ ->
                 let xs =
                   match Machine.Sim.recv "in" with
                   | V.List xs -> xs
                   | other ->
                       error "df input is %s, not a list" (V.to_string other)
                 in
                 let items = Array.of_list xs in
                 let n = Array.length items in
                 let done_ = Array.make n false in
                 let completed = ref 0 in
                 let accv = ref init in
                 let queue = Queue.create () in
                 Array.iteri (fun seq _ -> Queue.add seq queue) items;
                 let idle = Queue.create () in
                 let is_idle = Array.make nworkers false in
                 for w = 0 to nworkers - 1 do
                   if not retired.(w) then begin
                     is_idle.(w) <- true;
                     Queue.add w idle
                   end
                 done;
                 (* seq -> (worker, absolute deadline); at most one live
                    assignment per task *)
                 let assignments = Hashtbl.create 16 in
                 let re_idle widx =
                   if (not retired.(widx)) && not is_idle.(widx) then begin
                     is_idle.(widx) <- true;
                     Queue.add widx idle
                   end
                 in
                 let feed_idle () =
                   let progress = ref true in
                   while !progress do
                     progress := false;
                     (* skip tasks completed by a late reply while requeued *)
                     while
                       (not (Queue.is_empty queue)) && done_.(Queue.peek queue)
                     do
                       ignore (Queue.pop queue)
                     done;
                     if
                       (not (Queue.is_empty queue)) && not (Queue.is_empty idle)
                     then begin
                       let widx = Queue.pop idle in
                       is_idle.(widx) <- false;
                       let seq = Queue.pop queue in
                       let dst, dport = task_targets.(widx) in
                       Machine.Sim.send dst dport
                         (V.Tuple [ V.Int seq; items.(seq) ]);
                       Hashtbl.replace assignments seq
                         (widx, Machine.Sim.now () +. df_timeout);
                       progress := true
                     end
                   done
                 in
                 while !completed < n do
                   feed_idle ();
                   if Hashtbl.length assignments = 0 then
                     (* nothing in flight and nothing issuable: every live
                        worker has been retired *)
                     raise Farm_stalled;
                   let dl =
                     Hashtbl.fold
                       (fun _ (_, d) acc -> Float.min d acc)
                       assignments infinity
                   in
                   match Machine.Sim.recv_deadline [ "result" ] ~deadline:dl with
                   | Some (_, V.Tuple [ V.Int widx; V.Tuple [ V.Int seq; y ] ])
                     ->
                       (* any reply proves the worker alive: strikes count
                          consecutive timeouts, so a transient message fault
                          cannot slowly retire a healthy worker *)
                       if widx >= 0 && widx < nworkers && not retired.(widx)
                       then strikes.(widx) <- 0;
                       re_idle widx;
                       if seq >= 0 && seq < n && not done_.(seq) then begin
                         done_.(seq) <- true;
                         incr completed;
                         Hashtbl.remove assignments seq;
                         accv := call table acc (V.Tuple [ !accv; y ])
                       end
                   | Some (_, other) ->
                       error "df master: bad result message %s"
                         (V.to_string other)
                   | None ->
                       let nowt = Machine.Sim.now () in
                       let expired =
                         Hashtbl.fold
                           (fun seq (widx, d) acc ->
                             if d <= nowt then (seq, widx) :: acc else acc)
                           assignments []
                         |> List.sort compare
                       in
                       List.iter
                         (fun (seq, widx) ->
                           Hashtbl.remove assignments seq;
                           Queue.add seq queue;
                           collector.reissues <- collector.reissues + 1;
                           collector.reissue_rev <-
                             nowt :: collector.reissue_rev;
                           strikes.(widx) <- strikes.(widx) + 1;
                           if strikes.(widx) >= max_strikes then begin
                             if not retired.(widx) then begin
                               retired.(widx) <- true;
                               collector.retired <- collector.retired + 1
                             end
                           end
                           else
                             (* optimistic: the worker may only be slow; its
                                mailbox serialises any extra tasks *)
                             re_idle widx)
                         expired
                 done;
                 emit "out" !accv)
           with Farm_stalled -> ()))
  | G.DfWorker { comp } ->
      let my_index =
        match Hashtbl.find_opt widx_table node.id with
        | Some i -> i
        | None -> error "df worker %s is not wired to a master" node.label
      in
      let rec serve () =
        (match recov with
        | None ->
            let v = Machine.Sim.recv "task" in
            let y = call table comp v in
            send_all "out" (V.Tuple [ V.Int my_index; y ])
        | Some _ -> (
            (* sequence-tagged protocol: echo the tag so the master can
               discard stale duplicates *)
            match Machine.Sim.recv "task" with
            | V.Tuple [ V.Int seq; x ] ->
                let y = call table comp x in
                send_all "out"
                  (V.Tuple [ V.Int my_index; V.Tuple [ V.Int seq; y ] ])
            | other ->
                error "df worker: bad task message %s" (V.to_string other)));
        serve ()
      in
      serve ()
  | G.TfMaster { acc; init; nworkers } ->
      let task_targets = Array.of_list (outs "task") in
      if Array.length task_targets <> nworkers then
        error "tf master has %d task channels for %d workers"
          (Array.length task_targets) nworkers;
      each_frame (fun _ ->
          let xs =
            match Machine.Sim.recv "in" with
            | V.List xs -> xs
            | other -> error "tf input is %s, not a list" (V.to_string other)
          in
          let queue = Queue.create () in
          List.iter (fun x -> Queue.add x queue) xs;
          let accv = ref init in
          let idle = Queue.create () in
          for w = 0 to nworkers - 1 do
            Queue.add w idle
          done;
          let outstanding = ref 0 in
          let feed_idle () =
            while (not (Queue.is_empty queue)) && not (Queue.is_empty idle) do
              let widx = Queue.pop idle in
              let dst, dport = task_targets.(widx) in
              Machine.Sim.send dst dport (Queue.pop queue);
              incr outstanding
            done
          in
          feed_idle ();
          while !outstanding > 0 do
            (match Machine.Sim.recv "result" with
            | V.Tuple [ V.Int widx; V.Tuple [ V.List subs; y ] ] ->
                decr outstanding;
                Queue.add widx idle;
                List.iter (fun s -> Queue.add s queue) subs;
                accv := call table acc (V.Tuple [ !accv; y ])
            | other -> error "tf master: bad result message %s" (V.to_string other));
            feed_idle ()
          done;
          emit "out" !accv)
  | G.TfWorker { work } ->
      let my_index =
        match Hashtbl.find_opt widx_table node.id with
        | Some i -> i
        | None -> error "tf worker %s is not wired to a master" node.label
      in
      let rec serve () =
        let v = Machine.Sim.recv "task" in
        (match call table work v with
        | V.Tuple [ V.List _; _ ] as reply ->
            send_all "out" (V.Tuple [ V.Int my_index; reply ])
        | other -> error "tf work %s returned %s" work (V.to_string other));
        serve ()
      in
      serve ()
  | G.Mem { init } ->
      let state = ref init in
      each_frame (fun _ ->
          send_all "out" !state;
          state := Machine.Sim.recv "update");
      collector.final_state <- Some !state
  | G.Join ->
      each_frame (fun _ ->
          let s = Machine.Sim.recv "state" in
          let d = Machine.Sim.recv "data" in
          send_all "out" (V.Tuple [ s; d ]))
  | G.Fork ->
      each_frame (fun _ ->
          match Machine.Sim.recv "in" with
          | V.Tuple [ a; b ] ->
              send_all "fst" a;
              send_all "snd" b
          | other -> error "fork received %s, not a pair" (V.to_string other))
  | G.Router _ ->
      error "explicit router processes are not executable (Fig. 1 template is structural)"

let is_itermem g =
  Array.exists
    (fun (node : G.node) -> match node.kind with G.Mem _ -> true | _ -> false)
    (G.nodes g)

let run ?(trace = false) ?trace_limit ?input_period ?(faults = [])
    ?(restores = []) ?(link_faults = []) ?recovery:recov ~table ~arch
    ~placement ~graph:g ~frames ~input () =
  if frames <= 0 then error "frames must be positive";
  if Array.length placement <> G.nnodes g then
    error "placement has %d entries for %d processes" (Array.length placement)
      (G.nnodes g);
  let sim = Machine.Sim.create ~trace ?trace_limit arch in
  List.iter (fun (p, at) -> Machine.Sim.halt_processor sim ~at p) faults;
  List.iter (fun (p, at) -> Machine.Sim.restore_processor sim ~at p) restores;
  List.iter (Machine.Sim.add_fault sim) link_faults;
  let collector =
    {
      outs_rev = [];
      final_state = None;
      reissues = 0;
      reissue_rev = [];
      retired = 0;
    }
  in
  let widx_table = worker_indices g in
  Array.iter
    (fun (node : G.node) ->
      let pid =
        Machine.Sim.spawn sim ~name:node.label ~on:placement.(node.id)
          (behaviour ~table ~graph:g ~frames ~input ~input_period ~collector
             ~widx_table ~recovery:recov node)
      in
      if pid <> node.id then error "process ids out of sync with node ids")
    (G.nodes g);
  (* Non-stream graphs receive their input from the environment. *)
  if not (is_itermem g) then
    for i = 0 to frames - 1 do
      let at = match input_period with Some p -> float_of_int i *. p | None -> 0.0 in
      Machine.Sim.inject sim ~at (G.entry g) "in" input
    done;
  let _finish = Machine.Sim.run sim in
  let outs = List.rev collector.outs_rev in
  let collected = List.length outs in
  let outcome =
    if collected = frames then Completed
    else Stalled { collected; expected = frames }
  in
  let outputs = List.map fst outs in
  let output_times = List.map snd outs in
  let first_latency = match output_times with t :: _ -> t | [] -> 0.0 in
  let period =
    (* a single frame measures a latency, never a steady period *)
    match output_times with
    | [] | [ _ ] -> None
    | t0 :: _ ->
        let last = List.nth output_times (List.length output_times - 1) in
        Some ((last -. t0) /. float_of_int (List.length output_times - 1))
  in
  let value =
    match collector.final_state with
    | Some st -> V.Tuple [ st; V.List outputs ]
    | None -> ( match List.rev outputs with last :: _ -> last | [] -> V.Unit)
  in
  let latencies =
    let p = Option.value ~default:0.0 input_period in
    List.mapi (fun i t -> t -. (float_of_int i *. p)) output_times
  in
  let deadline_misses =
    match input_period with
    | None -> 0
    | Some p -> List.length (List.filter (fun l -> l > p +. 1e-12) latencies)
  in
  {
    value;
    outputs;
    outcome;
    stats = Machine.Sim.stats sim;
    output_times;
    latencies;
    first_latency;
    period;
    input_period;
    deadline_misses;
    reissues = collector.reissues;
    reissue_times = List.rev collector.reissue_rev;
    retired_workers = collector.retired;
    sim;
  }

let run_schedule ?trace ?trace_limit ?input_period ?faults ?restores
    ?link_faults ?recovery ~table ~schedule ~frames ~input () =
  run ?trace ?trace_limit ?input_period ?faults ?restores ?link_faults
    ?recovery ~table
    ~arch:schedule.Syndex.Schedule.arch
    ~placement:schedule.Syndex.Schedule.placement
    ~graph:schedule.Syndex.Schedule.graph ~frames ~input ()

let timeline ?slo r =
  let tl = Machine.Sim.timeline r.sim in
  Option.iter (Skipper_trace.Series.Slo.emit tl) slo;
  tl

(* Default window: the input period when the run was paced (one window per
   frame slot), else 5 ms — wide enough that a short unpaced run still gets
   a handful of windows. *)
let series ?width r =
  let tl = Machine.Sim.timeline r.sim in
  if Skipper_trace.Event.length tl = 0 then
    Error
      "tracing was not enabled: the timeline holds no events (run with \
       ~trace:true)"
  else begin
    let p = Option.value ~default:0.0 r.input_period in
    let width =
      match width with Some w -> w | None -> if p > 0.0 then p else 5e-3
    in
    let expected =
      match r.outcome with
      | Completed -> List.length r.outputs
      | Stalled { expected; _ } -> expected
    in
    let injections = List.init expected (fun i -> float_of_int i *. p) in
    Skipper_trace.Series.build ~width
      ~nprocs:(Array.length r.stats.Machine.Sim.busy)
      ~horizon:r.stats.Machine.Sim.finish_time ~output_times:r.output_times
      ~latencies:r.latencies ?input_period:r.input_period ~injections
      ~reissue_times:r.reissue_times tl
  end

let metrics r =
  Machine.Metrics.analyse ~deadline_misses:r.deadline_misses
    ~reissues:r.reissues ~latencies:r.latencies r.sim

let summary r =
  let period_s =
    match r.period with
    | Some p -> Printf.sprintf "%.2f ms" (p *. 1e3)
    | None -> "n/a"
  in
  let outcome_s =
    match r.outcome with
    | Completed -> "completed"
    | Stalled { collected; expected } ->
        Printf.sprintf "STALLED after %d of %d outputs" collected expected
  in
  let fault_s =
    let dropped = r.stats.Machine.Sim.dropped_msgs in
    if dropped > 0 || r.reissues > 0 || r.deadline_misses > 0
       || r.retired_workers > 0
    then
      Printf.sprintf
        "\nfaults: %d dropped messages, %d reissues, %d retired workers, %d deadline misses"
        dropped r.reissues r.retired_workers r.deadline_misses
    else ""
  in
  Printf.sprintf
    "value: %s\nframes: %d (%s)\nfirst latency: %.2f ms, steady period: %s\nmessages: %d, bytes: %d%s"
    (Skel.Value.to_string r.value)
    (List.length r.outputs)
    outcome_s
    (r.first_latency *. 1e3) period_s
    r.stats.Machine.Sim.messages r.stats.Machine.Sim.bytes fault_s
