type kind =
  | Input of string
  | Output of string
  | Compute of string
  | ScmCompute of { fn : string; part : int }
  | ScmSplit of { fn : string; nparts : int }
  | ScmMerge of { fn : string; nparts : int }
  | DfMaster of {
      acc : string;
      init : Skel.Value.t;
      nworkers : int;
      state : Skel.Ir.state_mode;
    }
  | DfWorker of { comp : string }
  | TfMaster of { acc : string; init : Skel.Value.t; nworkers : int }
  | TfWorker of { work : string }
  | Mem of { init : Skel.Value.t }
  | Join
  | Fork
  | Router of { dir : [ `Mw | `Wm ] }

type node = { id : int; kind : kind; label : string }
type edge = { src : int; src_port : string; dst : int; dst_port : string }

type t = {
  gname : string;
  gnodes : node array;
  gedges : edge list;
  gentry : int;
  gexit : int;
  incoming : edge list array;
  outgoing : edge list array;
}

let name t = t.gname
let nodes t = t.gnodes
let nnodes t = Array.length t.gnodes
let edges t = t.gedges
let nedges t = List.length t.gedges
let node t i = t.gnodes.(i)
let entry t = t.gentry
let exit_node t = t.gexit
let in_edges t i = t.incoming.(i)
let out_edges t i = t.outgoing.(i)
let out_edges_from_port t i port = List.filter (fun e -> e.src_port = port) t.outgoing.(i)

let kind_name = function
  | Input _ -> "input"
  | Output _ -> "output"
  | Compute _ -> "compute"
  | ScmCompute _ -> "scm-compute"
  | ScmSplit _ -> "scm-split"
  | ScmMerge _ -> "scm-merge"
  | DfMaster _ -> "df-master"
  | DfWorker _ -> "df-worker"
  | TfMaster _ -> "tf-master"
  | TfWorker _ -> "tf-worker"
  | Mem _ -> "mem"
  | Join -> "join"
  | Fork -> "fork"
  | Router { dir = `Mw } -> "router-mw"
  | Router { dir = `Wm } -> "router-wm"

let is_control = function
  | Input _ | Output _ | Compute _ | ScmCompute _ | DfWorker _ | TfWorker _ -> false
  | ScmSplit _ | ScmMerge _ | DfMaster _ | TfMaster _ | Mem _ | Join | Fork | Router _
    ->
      true

module Builder = struct
  type t = {
    bname : string;
    mutable bnodes : node list;  (* reversed *)
    mutable bedges : edge list;  (* reversed *)
    mutable count : int;
  }

  let create bname = { bname; bnodes = []; bedges = []; count = 0 }

  let add_node b ?label kind =
    let id = b.count in
    let label =
      match label with Some l -> l | None -> Printf.sprintf "%s%d" (kind_name kind) id
    in
    b.count <- b.count + 1;
    b.bnodes <- { id; kind; label } :: b.bnodes;
    id

  let add_edge b ?(src_port = "out") ?(dst_port = "in") src dst =
    if src < 0 || src >= b.count || dst < 0 || dst >= b.count then
      invalid_arg "Graph.Builder.add_edge: unknown node";
    b.bedges <- { src; src_port; dst; dst_port } :: b.bedges

  (* Ports that legitimately receive messages from many sources. *)
  let multi_in_port nodes e =
    match nodes.(e.dst).kind with
    | DfMaster _ | TfMaster _ -> e.dst_port = "result" || e.dst_port = "packet"
    | _ -> false

  let freeze b ~entry ~exit_node =
    let gnodes = Array.of_list (List.rev b.bnodes) in
    let gedges = List.rev b.bedges in
    let n = Array.length gnodes in
    if entry < 0 || entry >= n then invalid_arg "Graph.Builder.freeze: bad entry";
    if exit_node < 0 || exit_node >= n then invalid_arg "Graph.Builder.freeze: bad exit";
    let seen = Hashtbl.create 16 in
    List.iter
      (fun e ->
        if not (multi_in_port gnodes e) then begin
          let key = (e.dst, e.dst_port) in
          if Hashtbl.mem seen key then
            invalid_arg
              (Printf.sprintf "Graph.Builder.freeze: port %d.%s fed twice" e.dst
                 e.dst_port);
          Hashtbl.add seen key ()
        end)
      gedges;
    let incoming = Array.make n [] and outgoing = Array.make n [] in
    List.iter
      (fun e ->
        incoming.(e.dst) <- e :: incoming.(e.dst);
        outgoing.(e.src) <- e :: outgoing.(e.src))
      gedges;
    Array.iteri (fun i l -> incoming.(i) <- List.rev l) incoming;
    Array.iteri (fun i l -> outgoing.(i) <- List.rev l) outgoing;
    {
      gname = b.bname;
      gnodes;
      gedges;
      gentry = entry;
      gexit = exit_node;
      incoming;
      outgoing;
    }
end

let validate t =
  let n = nnodes t in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  (* Reachability from the entry over undirected edges: feedback edges (mem)
     make directed reachability too strict. *)
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      adj.(e.src) <- e.dst :: adj.(e.src);
      adj.(e.dst) <- e.src :: adj.(e.dst))
    t.gedges;
  let visited = Array.make n false in
  let rec dfs u =
    if not visited.(u) then begin
      visited.(u) <- true;
      List.iter dfs adj.(u)
    end
  in
  dfs t.gentry;
  let unreachable =
    Array.to_list t.gnodes |> List.filter (fun nd -> not visited.(nd.id))
  in
  if unreachable <> [] then
    err "unreachable processes: %s"
      (String.concat ", " (List.map (fun nd -> nd.label) unreachable))
  else begin
    let has_routers =
      Array.exists (fun nd -> match nd.kind with Router _ -> true | _ -> false) t.gnodes
    in
    let check_node acc nd =
      match acc with
      | Error _ -> acc
      | Ok () -> (
          let ins = in_edges t nd.id and outs = out_edges t nd.id in
          let has_in p = List.exists (fun e -> e.dst_port = p) ins in
          let has_out p = List.exists (fun e -> e.src_port = p) outs in
          match nd.kind with
          | Join ->
              if has_in "state" && has_in "data" then Ok ()
              else err "join %s lacks state/data inputs" nd.label
          | Fork ->
              if has_out "fst" && has_out "snd" then Ok ()
              else err "fork %s lacks fst/snd outputs" nd.label
          | (DfMaster _ | TfMaster _) when has_routers ->
              (* Fig. 1 style templates interpose router processes between
                 the master and its workers; channel counts are the
                 template's business there. *)
              Ok ()
          | DfMaster { nworkers; _ } | TfMaster { nworkers; _ } ->
              let tasks = List.length (out_edges_from_port t nd.id "task") in
              let results =
                List.length (List.filter (fun e -> e.dst_port = "result") ins)
              in
              if tasks <> nworkers then
                err "master %s: %d task edges for %d workers" nd.label tasks nworkers
              else if results <> nworkers then
                err "master %s: %d result edges for %d workers" nd.label results
                  nworkers
              else Ok ()
          | ScmSplit { nparts; _ } ->
              let parts =
                List.length (List.filter (fun e -> e.src_port <> "out") outs)
              in
              if parts = nparts then Ok ()
              else err "scm split %s: %d part edges for %d parts" nd.label parts nparts
          | Input _ | Output _ | Compute _ | ScmCompute _ | ScmMerge _ | DfWorker _
          | TfWorker _ | Mem _ | Router _ ->
              Ok ())
    in
    Array.fold_left check_node (Ok ()) t.gnodes
  end

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" t.gname);
  Array.iter
    (fun nd ->
      let shape = if is_control nd.kind then "ellipse" else "box" in
      let extra =
        if nd.id = t.gentry then ", style=bold"
        else if nd.id = t.gexit then ", peripheries=2"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=%S, shape=%s%s];\n" nd.id nd.label shape extra))
    t.gnodes;
  List.iter
    (fun e ->
      let label =
        if e.src_port = "out" && e.dst_port = "in" then ""
        else Printf.sprintf " [label=%S]" (e.src_port ^ ">" ^ e.dst_port)
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" e.src e.dst label))
    t.gedges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v2>process network %s: %d processes, %d channels@]" t.gname
    (nnodes t) (List.length t.gedges)
