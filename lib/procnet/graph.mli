(** Process-network graphs.

    The target-independent intermediate form of the paper's Fig. 2: nodes are
    sequential user functions and/or skeleton control processes, edges are
    communications. Skeleton expansion ({!Expand}) instantiates each
    skeleton's process network template into this representation; the
    SynDEx-style scheduler then maps it onto an architecture graph. *)

type kind =
  | Input of string
      (** frame source: applies the named input function to
          [Tuple [program_input; Int frame]] *)
  | Output of string  (** sink: applies the named output function *)
  | Compute of string  (** plain sequential pipeline stage *)
  | ScmCompute of { fn : string; part : int }
      (** one of the parallel compute processes of an scm instance *)
  | ScmSplit of { fn : string; nparts : int }
  | ScmMerge of { fn : string; nparts : int }
  | DfMaster of {
      acc : string;
      init : Skel.Value.t;
      nworkers : int;
      state : Skel.Ir.state_mode;
    }
      (** farm master; [state] selects the state-access discipline the
          executive runs (task routing, merge order, feedback) *)
  | DfWorker of { comp : string }
  | TfMaster of { acc : string; init : Skel.Value.t; nworkers : int }
  | TfWorker of { work : string }
  | Mem of { init : Skel.Value.t }
      (** itermem memory process: emits the current state each frame, stores
          the updated state fed back by the loop body *)
  | Join  (** pairs its ["state"] and ["data"] inputs into [Tuple [s; x]] *)
  | Fork
      (** splits an incoming [Tuple [a; b]] onto its ["fst"] and ["snd"]
          out-edges *)
  | Router of { dir : [ `Mw | `Wm ] }
      (** explicit routing process; only used by the literal Fig. 1 ring
          template in {!Templates} (generic executives route at link level) *)

type node = { id : int; kind : kind; label : string }

type edge = {
  src : int;
  src_port : string;
  dst : int;
  dst_port : string;
}

type t

val name : t -> string
val nodes : t -> node array
val nnodes : t -> int
val edges : t -> edge list
val nedges : t -> int
val node : t -> int -> node
val entry : t -> int
(** Node receiving the program's input value (or frame ticks). *)

val exit_node : t -> int
(** Node whose result is the program's output. *)

val in_edges : t -> int -> edge list
val out_edges : t -> int -> edge list
val out_edges_from_port : t -> int -> string -> edge list

val kind_name : kind -> string
val is_control : kind -> bool
(** True for skeleton control processes (masters, split/merge, mem, join,
    fork, routers); false for user computations. *)

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : string -> t
  val add_node : t -> ?label:string -> kind -> int
  val add_edge : t -> ?src_port:string -> ?dst_port:string -> int -> int -> unit
  (** Default ports are ["out"] and ["in"]. *)

  val freeze : t -> entry:int -> exit_node:int -> graph
  (** Validates: endpoints exist, entry/exit exist, at most one in-edge per
      [(node, port)] except for master ["result"]/["task"] ports which accept
      many. Raises [Invalid_argument] on violation. *)
end

val validate : t -> (unit, string) result
(** Structural checks: every non-entry node is reachable from the entry,
    every [Join] has exactly its two ports fed, [Fork] has both out-ports
    used, worker counts match master declarations. *)

val to_dot : t -> string
val pp : Format.formatter -> t -> unit
