exception Expansion_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Expansion_error m)) fmt

(* Splice the template for [stage] into builder [b]; returns the (entry,
   exit) node ids of the spliced fragment. *)
let rec splice b stage =
  let module B = Graph.Builder in
  match stage with
  | Skel.Ir.Seq f ->
      let n = B.add_node b ~label:f (Graph.Compute f) in
      (n, n)
  | Skel.Ir.Pipe [] ->
      (* Identity: a pass-through compute would need a function; use a Join-
         free trick: an empty pipe is spliced as a no-op Compute on a
         reserved identity function name. *)
      let n = B.add_node b ~label:"id" (Graph.Compute "__id") in
      (n, n)
  | Skel.Ir.Pipe stages ->
      let fragments = List.map (splice b) stages in
      let rec link = function
        | (_, x1) :: ((e2, _) :: _ as rest) ->
            B.add_edge b x1 e2;
            link rest
        | _ -> ()
      in
      link fragments;
      (fst (List.hd fragments), snd (List.nth fragments (List.length fragments - 1)))
  | Skel.Ir.Scm { nparts; split; compute; merge } ->
      let s =
        B.add_node b ~label:("split:" ^ split) (Graph.ScmSplit { fn = split; nparts })
      in
      let m =
        B.add_node b ~label:("merge:" ^ merge) (Graph.ScmMerge { fn = merge; nparts })
      in
      for i = 0 to nparts - 1 do
        let w =
          B.add_node b
            ~label:(Printf.sprintf "%s[%d]" compute i)
            (Graph.ScmCompute { fn = compute; part = i })
        in
        B.add_edge b ~src_port:(Printf.sprintf "p%d" i) s w;
        B.add_edge b ~dst_port:(Printf.sprintf "p%d" i) w m
      done;
      (s, m)
  | Skel.Ir.Df { nworkers; comp; acc; init; state } ->
      let m =
        B.add_node b ~label:("df:" ^ acc) (Graph.DfMaster { acc; init; nworkers; state })
      in
      for i = 0 to nworkers - 1 do
        let w =
          B.add_node b
            ~label:(Printf.sprintf "%s[%d]" comp i)
            (Graph.DfWorker { comp })
        in
        B.add_edge b ~src_port:"task" ~dst_port:"task" m w;
        B.add_edge b ~dst_port:"result" w m
      done;
      (m, m)
  | Skel.Ir.Tf { nworkers; work; acc; init } ->
      let m =
        B.add_node b ~label:("tf:" ^ acc) (Graph.TfMaster { acc; init; nworkers })
      in
      for i = 0 to nworkers - 1 do
        let w =
          B.add_node b
            ~label:(Printf.sprintf "%s[%d]" work i)
            (Graph.TfWorker { work })
        in
        B.add_edge b ~src_port:"task" ~dst_port:"task" m w;
        B.add_edge b ~dst_port:"result" w m
      done;
      (m, m)
  | Skel.Ir.Itermem { input; loop; output; init } ->
      let inp = B.add_node b ~label:("in:" ^ input) (Graph.Input input) in
      let mem = B.add_node b ~label:"mem" (Graph.Mem { init }) in
      let join = B.add_node b Graph.Join in
      let fork = B.add_node b Graph.Fork in
      let out = B.add_node b ~label:("out:" ^ output) (Graph.Output output) in
      let loop_entry, loop_exit = splice b loop in
      B.add_edge b ~dst_port:"data" inp join;
      B.add_edge b ~dst_port:"state" mem join;
      B.add_edge b join loop_entry;
      B.add_edge b loop_exit fork;
      B.add_edge b ~src_port:"fst" ~dst_port:"update" fork mem;
      B.add_edge b ~src_port:"snd" fork out;
      (inp, out)

let expand_stage stage =
  let b = Graph.Builder.create "stage" in
  let entry, exit_node = splice b stage in
  Graph.Builder.freeze b ~entry ~exit_node

let expand table prog =
  (match Skel.Ir.validate table prog with
  | Ok () -> ()
  | Error msg -> error "invalid program %s: %s" prog.Skel.Ir.name msg);
  let b = Graph.Builder.create prog.Skel.Ir.name in
  let entry, exit_node = splice b prog.Skel.Ir.body in
  let g = Graph.Builder.freeze b ~entry ~exit_node in
  match Graph.validate g with
  | Ok () -> g
  | Error msg -> error "template instantiation for %s is malformed: %s" prog.Skel.Ir.name msg
