(* Node-creation order (master, then per-ring-position workers and routers)
   is what [natural_placement] relies on; keep them in sync. *)

let df_ring ~nworkers ~comp ~acc ~init =
  if nworkers < 1 then invalid_arg "Templates.df_ring: nworkers < 1";
  let module B = Graph.Builder in
  let n = nworkers in
  let b = B.create (Printf.sprintf "df-ring-%d" n) in
  let master =
    B.add_node b ~label:"Master"
      (Graph.DfMaster { acc; init; nworkers = n; state = Skel.Ir.Stateless })
  in
  let workers =
    Array.init n (fun i ->
        B.add_node b ~label:(Printf.sprintf "Worker%d" (i + 1)) (Graph.DfWorker { comp }))
  in
  (* Routers live on P1 .. P(n-1). *)
  let mw =
    Array.init (max 0 (n - 1)) (fun i ->
        B.add_node b ~label:(Printf.sprintf "M->W@%d" (i + 1)) (Graph.Router { dir = `Mw }))
  in
  let wm =
    Array.init (max 0 (n - 1)) (fun i ->
        B.add_node b ~label:(Printf.sprintf "W->M@%d" (i + 1)) (Graph.Router { dir = `Wm }))
  in
  if n = 1 then begin
    (* Degenerate ring P0-P1: direct master/worker channels. *)
    B.add_edge b ~src_port:"task" master workers.(0);
    B.add_edge b ~dst_port:"result" workers.(0) master
  end
  else begin
    (* Task path: master -> MW@1; each MW@i serves its local worker and
       forwards outward; the last MW serves the final worker directly. *)
    B.add_edge b ~src_port:"task" master mw.(0);
    for i = 0 to n - 2 do
      B.add_edge b ~src_port:"serve" mw.(i) workers.(i);
      if i < n - 2 then B.add_edge b ~src_port:"fwd" mw.(i) mw.(i + 1)
      else B.add_edge b ~src_port:"fwd" mw.(i) workers.(n - 1)
    done;
    (* Result path: each worker feeds its local WM (the last worker feeds the
       nearest one inward); WMs chain back to the master. *)
    for i = 0 to n - 2 do
      B.add_edge b ~dst_port:"local" workers.(i) wm.(i)
    done;
    B.add_edge b ~dst_port:"fwd" workers.(n - 1) wm.(n - 2);
    for i = n - 2 downto 1 do
      B.add_edge b ~dst_port:"fwd" wm.(i) wm.(i - 1)
    done;
    B.add_edge b ~dst_port:"result" wm.(0) master
  end;
  B.freeze b ~entry:master ~exit_node:master

let df_ring_process_count n = 1 + n + (2 * max 0 (n - 1))

let df_ring_channel_count n =
  if n = 1 then 2
  else
    (* task: 1 + (n-1) serve + (n-1) fwd; result: n worker exits + (n-2)
       chain + 1 to master. *)
    1 + (n - 1) + (n - 1) + n + (n - 2) + 1

let natural_placement g =
  let placement = Array.make (Graph.nnodes g) 0 in
  Array.iter
    (fun (nd : Graph.node) ->
      let place =
        match nd.kind with
        | Graph.DfMaster _ -> 0
        | Graph.DfWorker _ ->
            (* labels are Worker<i> with i in 1..n *)
            int_of_string (String.sub nd.label 6 (String.length nd.label - 6))
        | Graph.Router _ ->
            let at = String.index nd.label '@' in
            int_of_string (String.sub nd.label (at + 1) (String.length nd.label - at - 1))
        | _ -> 0
      in
      placement.(nd.id) <- place)
    (Graph.nodes g);
  placement
