open Effect
open Effect.Deep

type pid = int

exception Not_in_process
exception Process_failure of string * exn

(* Software costs of the kernel primitives (cycles) and the local memory-copy
   bandwidth (bytes/s). See DESIGN.md, calibration constants. *)
let send_overhead_cycles = 200.0
let recv_overhead_cycles = 150.0
let local_copy_bandwidth = 4e8

type _ Effect.t +=
  | E_recv : string list -> (string * Skel.Value.t) Effect.t
  | E_recv_deadline :
      (string list * float)
      -> (string * Skel.Value.t) option Effect.t
  | E_send : (pid * string * Skel.Value.t) -> unit Effect.t
  | E_compute : float -> unit Effect.t
  | E_sleep : float -> unit Effect.t

type resume =
  | Start of (unit -> unit)
  | RUnit of (unit, unit) continuation
  | RMsg of ((string * Skel.Value.t), unit) continuation * string * Skel.Value.t
  | ROpt of
      ((string * Skel.Value.t) option, unit) continuation
      * (string * Skel.Value.t) option

type pstate =
  | Runnable
  | Blocked of string list * ((string * Skel.Value.t), unit) continuation
  | BlockedOpt of
      string list * int * ((string * Skel.Value.t) option, unit) continuation
      (* a recv with a deadline; the int token pairs the wait with its
         pending [Timeout] event so stale timers are ignored *)
  | Finished

type process = {
  pid : pid;
  name : string;
  on : int;
  body : unit -> unit;  (* kept for durable restarts *)
  durable : bool;
      (* a durable process survives a processor halt: deliveries made while
         its processor is down are spooled (not dropped), and on [Restore]
         the body restarts from the top with its consumed-message journal
         replayed ahead of the unconsumed and spooled messages *)
  mutable state : pstate;
  mutable blocked_at : float;  (* when the current Blocked episode began *)
  mutable blocked_total : float;  (* closed Blocked episodes, seconds *)
  mutable wait_seq : int;  (* monotonic token for deadline waits *)
  mutable epoch : int;
      (* incarnation counter; bumped at each durable restart so queued
         [Step]/[Enqueue]/ready entries of the dead incarnation are stale *)
  mutable journal : (string * float * int * Skel.Value.t) list;
      (* consumed (port, delivery time, msg, payload) since the last
         [mark_stable], most recent first; replayed on restart *)
  mutable spooled : (string * float * int * Skel.Value.t) list;
      (* deliveries that arrived while halted, most recent first *)
  mailboxes : (string, (float * int * Skel.Value.t) Queue.t) Hashtbl.t;
      (* (delivery time, message id, payload) *)
}

(* ------------------------------------------------------------------ *)
(* Fault plan                                                          *)

type fault_action = Drop | Delay of float | Duplicate

type fault_schedule =
  | Always
  | Nth of int  (* the nth matching delivery only, 1-based *)
  | Every of int  (* every kth matching delivery *)
  | Prob of float * int  (* probability per matching delivery, seed *)

type link_fault = {
  action : fault_action;
  link : (int * int) option;  (* directed (src, dst) processors; None = any *)
  schedule : fault_schedule;
  from_t : float;
  until_t : float;
}

let link_fault ?link ?(schedule = Always) ?(from_t = 0.0) ?(until_t = infinity)
    action =
  { action; link; schedule; from_t; until_t }

(* A fault armed on a machine: the spec plus its runtime matching state. *)
type armed_fault = {
  spec : link_fault;
  mutable seen : int;  (* matching deliveries observed so far *)
  frng : Support.Prng.t option;
}

type fault_tally = { dropped : int; delayed : int; duplicated : int }

(* The full message lifecycle is recorded, one event per step: the sender's
   overhead span ([Send]), one [Hop] per link reservation along the route,
   [Deliver] when the payload lands in the destination mailbox, and [Recv]
   when the receiving process consumes it (dur = 0 when the delivery woke a
   blocked receiver, which pays no software overhead). Events share a
   message id, so exporters can pair them into arrows. *)
type trace_event = {
  time : float;
  proc : int;  (** hosting processor; -1 for environment injections *)
  pid : pid;  (** emitting process; -1 when none *)
  process : string;
  what : what;
}

and what =
  | Compute of { cycles : float; dur : float }
  | Send of { msg : int; dst : pid; port : string; bytes : int; dur : float }
  | Hop of { msg : int; link_src : int; link_dst : int; bytes : int; start : float; finish : float }
  | Deliver of { msg : int; port : string }
  | Block of { ports : string list }
  | Recv of { msg : int; port : string; dur : float }
  | Done
  | Halted
  | Restored
  | Fault of { msg : int; action : string }
      (** an injected (or halt-induced) message fault; [proc] is the
          destination processor whose delivery was affected *)

type event =
  | Dispatch of int  (** processor id: pull next ready process if CPU free *)
  | Step of pid * int * resume
      (** continue this process now (CPU already held); the int is the
          incarnation epoch the continuation belongs to *)
  | Enqueue of pid * int * resume
      (** re-admit a sleeping process via the ready queue (epoch-guarded) *)
  | Deliver_msg of {
      dst : pid;
      msg : int;
      port : string;
      v : Skel.Value.t;
      src : int;  (* sending processor; -1 for environment injections *)
      faultable : bool;  (* already-faulted re-deliveries are exempt *)
    }
  | Timeout of pid * int  (** deadline of a [recv_deadline] wait (pid, token) *)
  | Halt of int  (** processor fault: stop dispatching on this processor *)
  | Restore of int  (** lift a [Halt]: the processor dispatches again *)

type t = {
  arch : Archi.t;
  mutable processes : process array;
  mutable nprocesses : int;
  events : event Support.Pqueue.t;
  cpu_free : float array;
  halted : bool array;
  halted_since : float option array;  (* start of the current halt episode *)
  halted_s : float array;  (* closed halt episodes, seconds *)
  mutable fault_plan : armed_fault list;
  mutable dropped_msgs : int;
  mutable delayed_msgs : int;
  mutable dup_msgs : int;
  ready : (pid * int * resume) Queue.t array;  (* (pid, epoch, resume) *)
  link_busy : (int * int, Support.Intervals.t ref) Hashtbl.t;
  link_transfers : (int * int, int) Hashtbl.t;
  port_depth : (pid * string, int) Hashtbl.t;  (* high-water queue depth *)
  mutable time : float;
  mutable ran : bool;
  mutable messages : int;
  mutable bytes : int;
  mutable hops_total : int;
  mutable next_msg : int;
  busy : float array;
  busy_intervals : (float * float) list array;  (* reversed, for gantt *)
  last_charge : pid option array;  (* process holding the latest charge *)
  proc_busy : (pid, float) Hashtbl.t;  (* per-process busy seconds *)
  proc_sends : (pid, int) Hashtbl.t;
  tracing : bool;
  trace_limit : int;
  mutable trace_rev : trace_event list;
  mutable trace_len : int;
  mutable trace_dropped : bool;
}

let create ?(trace = false) ?(trace_limit = 20000) arch =
  let n = Archi.nprocs arch in
  {
    arch;
    processes = [||];
    nprocesses = 0;
    events = Support.Pqueue.create ();
    cpu_free = Array.make n 0.0;
    halted = Array.make n false;
    halted_since = Array.make n None;
    halted_s = Array.make n 0.0;
    fault_plan = [];
    dropped_msgs = 0;
    delayed_msgs = 0;
    dup_msgs = 0;
    ready = Array.init n (fun _ -> Queue.create ());
    link_busy = Hashtbl.create 16;
    link_transfers = Hashtbl.create 16;
    port_depth = Hashtbl.create 32;
    time = 0.0;
    ran = false;
    messages = 0;
    bytes = 0;
    hops_total = 0;
    next_msg = 0;
    busy = Array.make n 0.0;
    busy_intervals = Array.make n [];
    last_charge = Array.make n None;
    proc_busy = Hashtbl.create 32;
    proc_sends = Hashtbl.create 32;
    tracing = trace;
    trace_limit;
    trace_rev = [];
    trace_len = 0;
    trace_dropped = false;
  }

let arch t = t.arch

let record t ev =
  if t.tracing then begin
    if t.trace_len < t.trace_limit then begin
      t.trace_rev <- ev :: t.trace_rev;
      t.trace_len <- t.trace_len + 1
    end
    else t.trace_dropped <- true
  end

let fresh_msg t =
  let id = t.next_msg in
  t.next_msg <- id + 1;
  id

(* The process currently executing a zero-duration segment. Domain-local,
   not a plain ref: independent machines may run concurrently on separate
   domains (Support.Domain_pool farms whole simulations), and each domain
   runs at most one machine at a time, so DLS is exactly the right scope. *)
let current : (t * process) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let the_current () =
  match Domain.DLS.get current with Some c -> c | None -> raise Not_in_process
let self () = (snd (the_current ())).pid
let now () = (fst (the_current ())).time

(* Primitives only perform effects; all semantics live in the handler. *)
let compute cycles = perform (E_compute cycles)
let sleep_until at = perform (E_sleep at)
let send dst port v = perform (E_send (dst, port, v))
let recv_any ports = perform (E_recv ports)
let recv_deadline ports ~deadline = perform (E_recv_deadline (ports, deadline))

let recv port =
  let _, v = recv_any [ port ] in
  v

(* Truncate the calling process's replay journal: everything consumed so far
   is covered by a checkpoint the caller just took, so a restart no longer
   needs to re-feed it. Takes effect within the current zero-duration
   segment, which makes checkpoint-then-mark atomic with respect to halts
   (those only land at event boundaries). *)
let mark_stable () =
  let _, proc = the_current () in
  proc.journal <- []

let cycle_time t p = (Archi.processors t.arch).(p).Archi.cycle_time

let charge_busy ?pid t p dt =
  t.busy.(p) <- t.busy.(p) +. dt;
  t.last_charge.(p) <- pid;
  (match pid with
  | Some pid ->
      Hashtbl.replace t.proc_busy pid
        (dt +. Option.value ~default:0.0 (Hashtbl.find_opt t.proc_busy pid))
  | None -> ());
  if t.tracing then t.busy_intervals.(p) <- (t.time, t.time +. dt) :: t.busy_intervals.(p)

(* Find, among [ports], the mailbox whose head message was delivered
   earliest. Returns (port, delivery_time). *)
let earliest_message (proc : process) ports =
  List.fold_left
    (fun best port ->
      match Hashtbl.find_opt proc.mailboxes port with
      | None -> best
      | Some q when Queue.is_empty q -> best
      | Some q ->
          let at, _, _ = Queue.peek q in
          (match best with
          | Some (_, best_at) when best_at <= at -> best
          | _ -> Some (port, at)))
    None ports

let pop_message (proc : process) port =
  let q = Hashtbl.find proc.mailboxes port in
  let at, msg, v = Queue.pop q in
  if proc.durable then proc.journal <- (port, at, msg, v) :: proc.journal;
  (msg, v)

let push_event t at ev = Support.Pqueue.push t.events at ev

let make_ready t (proc : process) resume =
  Queue.add (proc.pid, proc.epoch, resume) t.ready.(proc.on);
  push_event t t.time (Dispatch proc.on)

(* Reserve [duration] on link [key] no earlier than [earliest] (first-fit
   into the link's gap structure). Returns the start of the reservation. *)
let reserve_link t key earliest duration =
  let intervals =
    match Hashtbl.find_opt t.link_busy key with
    | Some r -> r
    | None ->
        let r = ref Support.Intervals.empty in
        Hashtbl.replace t.link_busy key r;
        r
  in
  let start, updated = Support.Intervals.reserve !intervals ~earliest ~duration in
  intervals := updated;
  start

(* Physical transfer of [bytes_n] bytes from processor [src] to [dst],
   starting at [depart]. Returns the arrival time; reserves link occupancy
   (store-and-forward, one transfer at a time per directed link). [msg] and
   [sender] only feed the trace. *)
let transfer t ~msg ~sender src dst bytes_n depart =
  if src = dst then depart +. (float_of_int bytes_n /. local_copy_bandwidth)
  else begin
    let path = Archi.route t.arch src dst in
    let rec hop depart = function
      | a :: (b :: _ as rest) ->
          let link =
            match Archi.link_between t.arch a b with
            | Some l -> l
            | None -> failwith "Sim.transfer: route uses missing link"
          in
          let duration =
            link.Archi.startup +. (float_of_int bytes_n /. link.Archi.bandwidth)
          in
          let start = reserve_link t (a, b) depart duration in
          t.hops_total <- t.hops_total + 1;
          Hashtbl.replace t.link_transfers (a, b)
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.link_transfers (a, b)));
          record t
            {
              time = start;
              proc = a;
              pid = -1;
              process = sender;
              what =
                Hop
                  {
                    msg;
                    link_src = a;
                    link_dst = b;
                    bytes = bytes_n;
                    start;
                    finish = start +. duration;
                  };
            };
          hop (start +. duration) rest
      | _ -> depart
    in
    hop depart path
  end

(* Run one zero-duration execution segment of [proc]. Effects performed by
   the body terminate the segment after scheduling follow-up events. *)
let run_segment t (proc : process) resume =
  let p = proc.on in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          proc.state <- Finished;
          record t
            { time = t.time; proc = p; pid = proc.pid; process = proc.name; what = Done };
          t.cpu_free.(p) <- t.time;
          push_event t t.time (Dispatch p));
      exnc = (fun exn -> raise (Process_failure (proc.name, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_compute cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let dt = cycles *. cycle_time t p in
                  record t
                    {
                      time = t.time;
                      proc = p;
                      pid = proc.pid;
                      process = proc.name;
                      what = Compute { cycles; dur = dt };
                    };
                  charge_busy ~pid:proc.pid t p dt;
                  t.cpu_free.(p) <- t.time +. dt;
                  push_event t (t.time +. dt) (Step (proc.pid, proc.epoch, RUnit k)))
          | E_send (dst, port, v) ->
              Some
                (fun k ->
                  let dt = send_overhead_cycles *. cycle_time t p in
                  charge_busy ~pid:proc.pid t p dt;
                  Hashtbl.replace t.proc_sends proc.pid
                    (1 + Option.value ~default:0 (Hashtbl.find_opt t.proc_sends proc.pid));
                  t.cpu_free.(p) <- t.time +. dt;
                  let dst_proc = t.processes.(dst) in
                  let nbytes = Skel.Value.byte_size v in
                  t.messages <- t.messages + 1;
                  t.bytes <- t.bytes + nbytes;
                  let msg = fresh_msg t in
                  record t
                    {
                      time = t.time;
                      proc = p;
                      pid = proc.pid;
                      process = proc.name;
                      what = Send { msg; dst; port; bytes = nbytes; dur = dt };
                    };
                  let arrive =
                    transfer t ~msg ~sender:proc.name p dst_proc.on nbytes
                      (t.time +. dt)
                  in
                  push_event t arrive
                    (Deliver_msg
                       { dst; msg; port; v; src = p; faultable = true });
                  push_event t (t.time +. dt) (Step (proc.pid, proc.epoch, RUnit k)))
          | E_sleep at ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.cpu_free.(p) <- t.time;
                  push_event t (Float.max t.time at)
                    (Enqueue (proc.pid, proc.epoch, RUnit k));
                  push_event t t.time (Dispatch p))
          | E_recv ports ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match earliest_message proc ports with
                  | Some (port, _) ->
                      let msg, v = pop_message proc port in
                      let dt = recv_overhead_cycles *. cycle_time t p in
                      charge_busy ~pid:proc.pid t p dt;
                      t.cpu_free.(p) <- t.time +. dt;
                      record t
                        {
                          time = t.time;
                          proc = p;
                          pid = proc.pid;
                          process = proc.name;
                          what = Recv { msg; port; dur = dt };
                        };
                      push_event t (t.time +. dt)
                    (Step (proc.pid, proc.epoch, RMsg (k, port, v)))
                  | None ->
                      proc.state <- Blocked (ports, k);
                      proc.blocked_at <- t.time;
                      record t
                        {
                          time = t.time;
                          proc = p;
                          pid = proc.pid;
                          process = proc.name;
                          what = Block { ports };
                        };
                      t.cpu_free.(p) <- t.time;
                      push_event t t.time (Dispatch p))
          | E_recv_deadline (ports, deadline) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match earliest_message proc ports with
                  | Some (port, _) ->
                      let msg, v = pop_message proc port in
                      let dt = recv_overhead_cycles *. cycle_time t p in
                      charge_busy ~pid:proc.pid t p dt;
                      t.cpu_free.(p) <- t.time +. dt;
                      record t
                        {
                          time = t.time;
                          proc = p;
                          pid = proc.pid;
                          process = proc.name;
                          what = Recv { msg; port; dur = dt };
                        };
                      push_event t (t.time +. dt)
                        (Step (proc.pid, proc.epoch, ROpt (k, Some (port, v))))
                  | None ->
                      proc.wait_seq <- proc.wait_seq + 1;
                      proc.state <- BlockedOpt (ports, proc.wait_seq, k);
                      proc.blocked_at <- t.time;
                      record t
                        {
                          time = t.time;
                          proc = p;
                          pid = proc.pid;
                          process = proc.name;
                          what = Block { ports };
                        };
                      t.cpu_free.(p) <- t.time;
                      push_event t
                        (Float.max t.time deadline)
                        (Timeout (proc.pid, proc.wait_seq));
                      push_event t t.time (Dispatch p))
          | _ -> None);
    }
  in
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some (t, proc));
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current saved)
    (fun () ->
      match resume with
      | Start body -> match_with body () handler
      | RUnit k -> continue k ()
      | RMsg (k, port, v) -> continue k (port, v)
      | ROpt (k, r) -> continue k r)

let spawn t ~name ?(durable = false) ~on body =
  if t.ran then invalid_arg "Sim.spawn: machine already ran";
  if on < 0 || on >= Archi.nprocs t.arch then
    invalid_arg (Printf.sprintf "Sim.spawn: no processor %d" on);
  let pid = t.nprocesses in
  let proc =
    {
      pid;
      name;
      on;
      body;
      durable;
      state = Runnable;
      blocked_at = 0.0;
      blocked_total = 0.0;
      wait_seq = 0;
      epoch = 0;
      journal = [];
      spooled = [];
      mailboxes = Hashtbl.create 4;
    }
  in
  if pid >= Array.length t.processes then begin
    let cap = max 16 (2 * Array.length t.processes) in
    let np = Array.make cap proc in
    Array.blit t.processes 0 np 0 t.nprocesses;
    t.processes <- np
  end;
  t.processes.(pid) <- proc;
  t.nprocesses <- t.nprocesses + 1;
  Queue.add (pid, 0, Start body) t.ready.(on);
  push_event t 0.0 (Dispatch on);
  pid

let inject t ?(at = 0.0) pid port v =
  if pid < 0 || pid >= t.nprocesses then invalid_arg "Sim.inject: unknown process";
  let msg = fresh_msg t in
  record t
    {
      time = at;
      proc = -1;
      pid = -1;
      process = "env";
      what = Send { msg; dst = pid; port; bytes = Skel.Value.byte_size v; dur = 0.0 };
    };
  push_event t at
    (Deliver_msg { dst = pid; msg; port; v; src = -1; faultable = true })

let halt_processor t ?(at = 0.0) p =
  if p < 0 || p >= Archi.nprocs t.arch then
    invalid_arg "Sim.halt_processor: no such processor";
  push_event t at (Halt p)

let restore_processor t ?(at = 0.0) p =
  if p < 0 || p >= Archi.nprocs t.arch then
    invalid_arg "Sim.restore_processor: no such processor";
  push_event t at (Restore p)

let add_fault t (f : link_fault) =
  let frng =
    match f.schedule with
    | Prob (_, seed) -> Some (Support.Prng.create seed)
    | Always | Nth _ | Every _ -> None
  in
  t.fault_plan <- t.fault_plan @ [ { spec = f; seen = 0; frng } ]

(* Does any armed fault fire on this delivery?  Only genuinely remote
   messages are eligible: environment injections (src < 0) and local
   copies are exempt, so a faulty machine always remains *startable*.
   Each matching delivery bumps the fault's [seen] counter; the first
   fault whose schedule fires wins. *)
let fault_for t ~src ~dst_proc =
  if src < 0 || src = dst_proc then None
  else
    List.fold_left
      (fun acc (af : armed_fault) ->
        let s = af.spec in
        let link_matches =
          match s.link with
          | None -> true
          | Some (a, b) -> a = src && b = dst_proc
        in
        if link_matches && t.time >= s.from_t && t.time <= s.until_t then begin
          af.seen <- af.seen + 1;
          let fires =
            match s.schedule with
            | Always -> true
            | Nth n -> af.seen = n
            | Every k -> k > 0 && af.seen mod k = 0
            | Prob (p, _) -> (
                match af.frng with
                | Some rng -> Support.Prng.float rng 1.0 < p
                | None -> false)
          in
          if fires && acc = None then Some s.action else acc
        end
        else acc)
      None t.fault_plan

let note_depth t pid port depth =
  let key = (pid, port) in
  if depth > Option.value ~default:0 (Hashtbl.find_opt t.port_depth key) then
    Hashtbl.replace t.port_depth key depth

let deliver t pid msg port v =
  let proc = t.processes.(pid) in
  let q =
    match Hashtbl.find_opt proc.mailboxes port with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace proc.mailboxes port q;
        q
  in
  Queue.add (t.time, msg, v) q;
  note_depth t pid port (Queue.length q);
  record t
    { time = t.time; proc = proc.on; pid; process = proc.name; what = Deliver { msg; port } };
  match proc.state with
  | Blocked (ports, k) when List.mem port ports ->
      (* Wake up: re-run the receive logic from the dispatch path. *)
      proc.state <- Runnable;
      proc.blocked_total <- proc.blocked_total +. (t.time -. proc.blocked_at);
      let port, _ = Option.get (earliest_message proc ports) in
      let msg, v = pop_message proc port in
      record t
        {
          time = t.time;
          proc = proc.on;
          pid;
          process = proc.name;
          what = Recv { msg; port; dur = 0.0 };
        };
      make_ready t proc (RMsg (k, port, v))
  | BlockedOpt (ports, _tok, k) when List.mem port ports ->
      (* Wake a deadline wait; its pending [Timeout] becomes stale and is
         ignored on arrival thanks to the token bump at the next wait. *)
      proc.state <- Runnable;
      proc.blocked_total <- proc.blocked_total +. (t.time -. proc.blocked_at);
      let port, _ = Option.get (earliest_message proc ports) in
      let msg, v = pop_message proc port in
      record t
        {
          time = t.time;
          proc = proc.on;
          pid;
          process = proc.name;
          what = Recv { msg; port; dur = 0.0 };
        };
      make_ready t proc (ROpt (k, Some (port, v)))
  | Blocked _ | BlockedOpt _ | Runnable | Finished -> ()

let rec dispatch t p =
  if t.halted.(p) then ()
  else if t.cpu_free.(p) > t.time then
    (* CPU still busy: retry when it frees. *)
    push_event t t.cpu_free.(p) (Dispatch p)
  else if not (Queue.is_empty t.ready.(p)) then begin
    let pid, epoch, resume = Queue.pop t.ready.(p) in
    if t.processes.(pid).epoch = epoch then run_segment t t.processes.(pid) resume
    else dispatch t p (* stale incarnation: skip and try the next entry *)
  end

let run ?(until = infinity) t =
  if t.ran then failwith "Sim.run: machine already ran";
  t.ran <- true;
  let rec loop () =
    match Support.Pqueue.peek t.events with
    | None -> ()
    | Some (at, _) when at > until ->
        (* Out-of-window events stay queued; the clock advances to exactly
           the requested horizon so utilisation/accounts cover it. *)
        if Float.is_finite until then begin
          t.time <- Float.max t.time until;
          (* A busy charge is booked in full when the operation starts, so
             an operation spanning the horizon has over-charged by the part
             beyond it — cpu_free marks where that charge ends. Refund the
             overshoot so windowed utilisation cannot exceed 1. *)
          Array.iteri
            (fun p free ->
              let over = free -. t.time in
              if over > 0.0 then begin
                t.busy.(p) <- t.busy.(p) -. over;
                (match t.last_charge.(p) with
                | Some pid ->
                    Hashtbl.replace t.proc_busy pid
                      (Option.value ~default:0.0
                         (Hashtbl.find_opt t.proc_busy pid)
                      -. over)
                | None -> ());
                match t.busy_intervals.(p) with
                | (s, f) :: rest when t.tracing && f > t.time ->
                    t.busy_intervals.(p) <- (s, Float.max s t.time) :: rest
                | _ -> ()
              end)
            t.cpu_free
        end
    | Some _ ->
        let at, ev = Option.get (Support.Pqueue.pop t.events) in
        t.time <- Float.max t.time at;
        (match ev with
        | Dispatch p -> dispatch t p
        | Step (pid, epoch, resume) ->
            let proc = t.processes.(pid) in
            if (not t.halted.(proc.on)) && proc.epoch = epoch then
              run_segment t proc resume
        | Enqueue (pid, epoch, resume) ->
            let proc = t.processes.(pid) in
            if proc.epoch = epoch then make_ready t proc resume
        | Deliver_msg { dst; msg; port; v; src; faultable } ->
            let proc = t.processes.(dst) in
            if t.halted.(proc.on) then
              if proc.durable then begin
                (* A durable process loses no input to a halt: the delivery
                   is spooled and re-delivered when the processor restores. *)
                proc.spooled <- (port, t.time, msg, v) :: proc.spooled;
                record t
                  {
                    time = t.time;
                    proc = proc.on;
                    pid = -1;
                    process = proc.name;
                    what = Fault { msg; action = "spool (processor halted)" };
                  }
              end
              else begin
                t.dropped_msgs <- t.dropped_msgs + 1;
                record t
                  {
                    time = t.time;
                    proc = proc.on;
                    pid = -1;
                    process = proc.name;
                    what = Fault { msg; action = "drop (processor halted)" };
                  }
              end
            else begin
              match
                if faultable then fault_for t ~src ~dst_proc:proc.on else None
              with
              | Some Drop ->
                  t.dropped_msgs <- t.dropped_msgs + 1;
                  record t
                    {
                      time = t.time;
                      proc = proc.on;
                      pid = -1;
                      process = proc.name;
                      what = Fault { msg; action = "drop" };
                    }
              | Some (Delay dt) ->
                  t.delayed_msgs <- t.delayed_msgs + 1;
                  record t
                    {
                      time = t.time;
                      proc = proc.on;
                      pid = -1;
                      process = proc.name;
                      what =
                        Fault
                          { msg; action = Printf.sprintf "delay %gms" (dt *. 1e3) };
                    };
                  push_event t (t.time +. dt)
                    (Deliver_msg { dst; msg; port; v; src; faultable = false })
              | Some Duplicate ->
                  t.dup_msgs <- t.dup_msgs + 1;
                  record t
                    {
                      time = t.time;
                      proc = proc.on;
                      pid = -1;
                      process = proc.name;
                      what = Fault { msg; action = "duplicate" };
                    };
                  push_event t t.time
                    (Deliver_msg { dst; msg; port; v; src; faultable = false });
                  deliver t dst msg port v
              | None -> deliver t dst msg port v
            end
        | Timeout (pid, tok) -> (
            let proc = t.processes.(pid) in
            if not t.halted.(proc.on) then
              match proc.state with
              | BlockedOpt (_, tok', k) when tok' = tok ->
                  proc.state <- Runnable;
                  proc.blocked_total <-
                    proc.blocked_total +. (t.time -. proc.blocked_at);
                  make_ready t proc (ROpt (k, None))
              | _ -> () (* stale timer: the wait was already satisfied *))
        | Halt p ->
            if not t.halted.(p) then begin
              t.halted.(p) <- true;
              t.halted_since.(p) <- Some t.time;
              record t
                { time = t.time; proc = p; pid = -1; process = ""; what = Halted }
            end
        | Restore p ->
            if t.halted.(p) then begin
              t.halted.(p) <- false;
              let halt_start = t.halted_since.(p) in
              (match halt_start with
              | Some since -> t.halted_s.(p) <- t.halted_s.(p) +. (t.time -. since)
              | None -> ());
              t.halted_since.(p) <- None;
              record t
                { time = t.time; proc = p; pid = -1; process = ""; what = Restored };
              (* Durable processes restart from the top: their old
                 continuations become stale (epoch bump) and their mailboxes
                 are rebuilt so the fresh incarnation re-reads, per port, the
                 journalled messages it had consumed since its last
                 [mark_stable], then the unconsumed backlog, then the
                 deliveries spooled during the outage. *)
              for pid = 0 to t.nprocesses - 1 do
                let proc = t.processes.(pid) in
                if proc.on = p && proc.durable && proc.state <> Finished then begin
                  (match proc.state with
                  | Blocked _ | BlockedOpt _ ->
                      (* The wait died with the processor: close the episode
                         at the halt instant, not the restore. *)
                      let upto =
                        match halt_start with Some s -> s | None -> t.time
                      in
                      proc.blocked_total <-
                        proc.blocked_total
                        +. Float.max 0.0 (upto -. proc.blocked_at)
                  | Runnable | Finished -> ());
                  let rebuilt = Hashtbl.create 4 in
                  let q_for port =
                    match Hashtbl.find_opt rebuilt port with
                    | Some q -> q
                    | None ->
                        let q = Queue.create () in
                        Hashtbl.replace rebuilt port q;
                        q
                  in
                  List.iter
                    (fun (port, at, msg, v) -> Queue.add (at, msg, v) (q_for port))
                    (List.rev proc.journal);
                  Hashtbl.iter
                    (fun port q -> Queue.transfer q (q_for port))
                    proc.mailboxes;
                  List.iter
                    (fun (port, _at, msg, v) ->
                      Queue.add (t.time, msg, v) (q_for port))
                    (List.rev proc.spooled);
                  Hashtbl.reset proc.mailboxes;
                  Hashtbl.iter (Hashtbl.replace proc.mailboxes) rebuilt;
                  proc.journal <- [];
                  proc.spooled <- [];
                  proc.epoch <- proc.epoch + 1;
                  proc.state <- Runnable;
                  record t
                    {
                      time = t.time;
                      proc = p;
                      pid = proc.pid;
                      process = proc.name;
                      what = Fault { msg = -1; action = "restart (replay)" };
                    };
                  Queue.add (proc.pid, proc.epoch, Start proc.body) t.ready.(p)
                end
              done;
              push_event t t.time (Dispatch p)
            end);
        loop ()
  in
  loop ();
  t.time

type stats = {
  finish_time : float;
  messages : int;
  bytes : int;
  busy : float array;
  hops_total : int;
  dropped_msgs : int;
}

let stats t =
  {
    finish_time = t.time;
    messages = t.messages;
    bytes = t.bytes;
    busy = Array.copy t.busy;
    hops_total = t.hops_total;
    dropped_msgs = t.dropped_msgs;
  }

let fault_tally (t : t) =
  { dropped = t.dropped_msgs; delayed = t.delayed_msgs; duplicated = t.dup_msgs }

(* Per-processor wall-clock during which the processor was alive (not
   halted).  A healthy run reports [t.time] everywhere. *)
let live_times t =
  Array.init (Archi.nprocs t.arch) (fun p ->
      let open_halt =
        match t.halted_since.(p) with Some s -> t.time -. s | None -> 0.0
      in
      Float.max 0.0 (t.time -. t.halted_s.(p) -. open_halt))

let utilisation t =
  let live = Array.fold_left ( +. ) 0.0 (live_times t) in
  if live <= 0.0 then 0.0 else Array.fold_left ( +. ) 0.0 t.busy /. live

let trace t = List.rev t.trace_rev
let trace_truncated t = t.trace_dropped
let trace_limit t = t.trace_limit

let process_accounts t =
  List.init t.nprocesses (fun pid ->
      let proc = t.processes.(pid) in
      ( proc.name,
        proc.on,
        Option.value ~default:0.0 (Hashtbl.find_opt t.proc_busy pid),
        Option.value ~default:0 (Hashtbl.find_opt t.proc_sends pid) ))

type account = {
  aname : string;
  on : int;
  busy_s : float;
  blocked_s : float;
  sends : int;
  finished : bool;
  halted : bool;
}

let accounts t =
  List.init t.nprocesses (fun pid ->
      let proc = t.processes.(pid) in
      let halted = t.halted.(proc.on) in
      (* A process on a halted processor stops accruing blocked time at the
         halt instant: it is dead, not waiting. *)
      let horizon =
        if halted then
          match t.halted_since.(proc.on) with Some s -> s | None -> t.time
        else t.time
      in
      let blocked =
        match proc.state with
        | Blocked _ | BlockedOpt _ ->
            proc.blocked_total +. Float.max 0.0 (horizon -. proc.blocked_at)
        | Runnable | Finished -> proc.blocked_total
      in
      {
        aname = proc.name;
        on = proc.on;
        busy_s = Option.value ~default:0.0 (Hashtbl.find_opt t.proc_busy pid);
        blocked_s = blocked;
        sends = Option.value ~default:0 (Hashtbl.find_opt t.proc_sends pid);
        finished = (proc.state = Finished);
        halted;
      })

let link_occupancy t =
  Hashtbl.fold
    (fun key intervals acc ->
      let transfers =
        Option.value ~default:0 (Hashtbl.find_opt t.link_transfers key)
      in
      (key, Support.Intervals.total !intervals, transfers) :: acc)
    t.link_busy []
  |> List.sort compare

let port_depths t =
  Hashtbl.fold
    (fun (pid, port) depth acc ->
      ((t.processes.(pid).name, port), depth) :: acc)
    t.port_depth []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Timeline emission                                                   *)

module Event = Skipper_trace.Event

let lane_of ev =
  if ev.proc < 0 then Event.env_lane
  else Event.processor_lane ~proc:ev.proc ~pid:ev.pid ~name:ev.process

let emit_trace t tl =
  let nprocs = Archi.nprocs t.arch in
  List.iter
    (fun ev ->
      let lane = lane_of ev in
      match ev.what with
      | Compute { cycles; dur } ->
          Event.span tl ~lane ~cat:"compute"
            ~args:[ ("cycles", Event.Num cycles) ]
            ~name:"compute" ~time:ev.time ~dur ()
      | Send { msg; dst; port; bytes; dur } ->
          let name = "send " ^ port in
          let args =
            [
              ("msg", Event.Count msg);
              ("dst", Event.Count dst);
              ("bytes", Event.Count bytes);
            ]
          in
          if dur > 0.0 then
            Event.span tl ~lane ~cat:"send" ~args ~name ~time:ev.time ~dur ()
          else
            Event.instant tl ~lane ~cat:"send" ~args ~name:("inject " ^ port)
              ~time:ev.time ();
          Event.flow_start tl ~lane ~cat:"message" ~name:port ~flow:msg
            ~time:ev.time ()
      | Hop { msg; link_src; link_dst; bytes; start; finish } ->
          Event.span tl
            ~lane:(Event.link_lane ~src:link_src ~dst:link_dst ~nprocs)
            ~cat:"link"
            ~args:[ ("msg", Event.Count msg); ("bytes", Event.Count bytes) ]
            ~name:(Printf.sprintf "msg %d" msg)
            ~time:start ~dur:(finish -. start) ()
      | Deliver { msg; port } ->
          Event.instant tl ~lane ~cat:"deliver"
            ~args:[ ("msg", Event.Count msg) ]
            ~name:("deliver " ^ port) ~time:ev.time ()
      | Block { ports } ->
          Event.instant tl ~lane ~cat:"block"
            ~args:[ ("ports", Event.Str (String.concat "," ports)) ]
            ~name:"blocked" ~time:ev.time ()
      | Recv { msg; port; dur } ->
          Event.span tl ~lane ~cat:"recv"
            ~args:[ ("msg", Event.Count msg) ]
            ~name:("recv " ^ port) ~time:ev.time ~dur ();
          Event.flow_end tl ~lane ~cat:"message" ~name:port ~flow:msg
            ~time:ev.time ()
      | Done -> Event.instant tl ~lane ~cat:"proc" ~name:"done" ~time:ev.time ()
      | Halted ->
          Event.instant tl
            ~lane:(Event.cpu_lane ev.proc)
            ~cat:"fault" ~name:"halted" ~time:ev.time ()
      | Restored ->
          Event.instant tl
            ~lane:(Event.cpu_lane ev.proc)
            ~cat:"fault" ~name:"restored" ~time:ev.time ()
      | Fault { msg; action } ->
          Event.instant tl
            ~lane:(Event.cpu_lane ev.proc)
            ~cat:"fault"
            ~args:[ ("msg", Event.Count msg) ]
            ~name:action ~time:ev.time ())
    (trace t);
  if t.trace_dropped then Event.mark_truncated tl

let timeline t =
  let tl = Event.create () in
  emit_trace t tl;
  tl

let gantt ?(width = 72) t =
  if not t.tracing then
    invalid_arg "Sim.gantt: tracing was not enabled (create the machine with ~trace:true)";
  let buf = Buffer.create 256 in
  let horizon = if t.time > 0.0 then t.time else 1.0 in
  Buffer.add_string buf
    (Printf.sprintf "time: 0 .. %.3f ms ('#' = busy)\n" (horizon *. 1e3));
  Array.iteri
    (fun p intervals ->
      let cells = Bytes.make width '.' in
      List.iter
        (fun (t0, t1) ->
          let c0 = int_of_float (t0 /. horizon *. float_of_int width) in
          let c1 = int_of_float (t1 /. horizon *. float_of_int width) in
          for c = max 0 c0 to min (width - 1) (max c0 c1) do
            Bytes.set cells c '#'
          done)
        intervals;
      Buffer.add_string buf (Printf.sprintf "P%-3d |%s|\n" p (Bytes.to_string cells)))
    t.busy_intervals;
  Buffer.contents buf
