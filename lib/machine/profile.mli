(** Profiling façade: schedule conformance straight from a machine.

    Thin wrapper over {!Skipper_trace.Conformance} that replays the
    machine's recorded events into a timeline first, so callers holding a
    finished {!Sim.t} (the executive, the CLI) get a conformance report
    without touching the trace plumbing themselves. *)

val timeline : Sim.t -> Skipper_trace.Event.timeline
(** The machine's recorded events as a fresh timeline (empty when the
    machine was created without [~trace:true]). *)

val conformance :
  schedule:Syndex.Schedule.t ->
  ?output_times:float list ->
  ?input_period:float ->
  Sim.t ->
  (Skipper_trace.Conformance.report, string) result
(** See {!Skipper_trace.Conformance.analyse}. [Error] when the machine
    recorded no activity (tracing disabled). *)

val series :
  width:float ->
  ?output_times:float list ->
  ?latencies:float list ->
  ?input_period:float ->
  ?injections:float list ->
  ?reissue_times:float list ->
  Sim.t ->
  (Skipper_trace.Series.t, string) result
(** Windowed telemetry straight from a machine: replays its events into a
    timeline and folds {!Skipper_trace.Series.build} over it with the
    machine's processor count and finish-time horizon. Callers holding an
    {!Executive} result should prefer [Executive.series], which threads the
    frame bookkeeping automatically. [Error] when tracing was disabled. *)
