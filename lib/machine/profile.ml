module Event = Skipper_trace.Event
module Conformance = Skipper_trace.Conformance

let timeline sim =
  let tl = Event.create () in
  Sim.emit_trace sim tl;
  tl

let conformance ~schedule ?output_times ?input_period sim =
  Conformance.analyse ~schedule ?output_times ?input_period (timeline sim)
