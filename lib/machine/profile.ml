module Event = Skipper_trace.Event
module Conformance = Skipper_trace.Conformance

let timeline sim =
  let tl = Event.create () in
  Sim.emit_trace sim tl;
  tl

let conformance ~schedule ?output_times ?input_period sim =
  Conformance.analyse ~schedule ?output_times ?input_period (timeline sim)

let series ~width ?output_times ?latencies ?input_period ?injections
    ?reissue_times sim =
  let tl = timeline sim in
  if Event.length tl = 0 then
    Error
      "tracing was not enabled: the machine recorded no events (create it \
       with ~trace:true)"
  else
    Skipper_trace.Series.build ~width
      ~nprocs:(Array.length (Sim.stats sim).busy)
      ~horizon:(Sim.stats sim).finish_time ?output_times ?latencies
      ?input_period ?injections ?reissue_times tl
