(** Post-run analysis of a simulated machine.

    SynDEx offered "optional real-time performance measurement" of the
    generated executive (paper §3); this module is that facility for the
    simulator: per-processor utilisation, per-link occupancy and contention,
    per-process busy/blocked/idle breakdown, mailbox high-water depths, a
    plain-text report for terminal display and a JSON summary for trajectory
    tracking (bench [--json]). Everything here works without tracing — the
    counters are maintained by the simulator itself. *)

type processor_load = {
  proc : int;
  busy : float;  (** seconds *)
  live : float;  (** seconds the processor was alive (not halted) *)
  fraction : float;  (** busy / live; 0 for a processor dead all run *)
  processes : int;  (** processes hosted *)
}

type link_load = {
  src : int;
  dst : int;
  link_busy : float;  (** seconds the directed link was occupied *)
  transfers : int;  (** messages that traversed it *)
  occupancy : float;  (** link_busy / finish_time *)
}

type process_breakdown = {
  name : string;
  on : int;  (** hosting processor *)
  busy_t : float;  (** seconds computing or in kernel overheads *)
  blocked_t : float;  (** seconds blocked in recv *)
  idle_t : float;  (** finish - busy - blocked (clamped at 0) *)
  sends : int;
}

type latency_stats = {
  n : int;  (** frames measured *)
  mean_latency : float;  (** seconds *)
  p50 : float;  (** nearest-rank percentiles, seconds *)
  p95 : float;
  p99 : float;
  jitter : float;
      (** population standard deviation, seconds; 0.0 when [n < 2] (a
          single frame has no spread to measure) *)
}

type report = {
  finish_time : float;
  mean_utilisation : float;
  loads : processor_load list;  (** by processor id *)
  hottest_process : (string * float) option;
      (** name and busy seconds of the busiest process *)
  messages : int;
  bytes : int;
  links : link_load list;  (** only links that carried traffic, sorted *)
  port_depths : ((string * string) * int) list;
      (** high-water mailbox depth per (process, port), sorted *)
  breakdown : process_breakdown list;  (** per process, in spawn order *)
  dropped_msgs : int;  (** deliveries lost to faults or halted processors *)
  deadline_misses : int;  (** executive frames late vs the input period *)
  reissues : int;  (** df tasks reissued after a timeout *)
  latency : latency_stats option;
      (** per-frame latency distribution; [None] without frame data *)
  trace_truncated : bool;
      (** the simulator dropped trace events past its limit — trace-derived
          numbers (Gantt, conformance, series) are incomplete *)
  trace_limit : int;  (** the event cap the trace was subject to *)
}

val latency_stats : float list -> latency_stats option
(** [None] on the empty list. Simulation-deterministic.

    Percentile convention (pinned by unit tests in [test_conformance]):
    with the samples sorted ascending, percentile [q] is the element at
    1-based nearest rank [round (q *. n +. 0.5)] (half away from zero),
    clamped into [[1, n]]. Edge cases: a singleton list yields that sample
    for every percentile and [jitter = 0.0]; for [n = 2] the half-rank
    rounds up, so [p50] of a pair is the larger element. *)

val analyse :
  ?deadline_misses:int -> ?reissues:int -> ?latencies:float list -> Sim.t -> report
(** Raises nothing; works on any finished (or even empty) machine.
    [deadline_misses] and [reissues] (default 0) are executive-level
    counters — the simulator cannot know them — threaded in so one report
    carries the whole degraded-run story. [latencies] (default none) are
    the per-frame output latencies the executive measured; they populate
    [latency]. *)

val imbalance : report -> float
(** Max processor busy *fraction* divided by the mean fraction, over
    processors that were alive at all (1.0 = perfectly level; 0 when
    nothing ran). On a healthy run this equals the classic max/mean busy
    time; on a degraded run halted capacity is excluded instead of
    counting as idle. *)

val hottest_link : report -> link_load option
(** The busiest directed link, or [None] when no remote message was sent.
    Equal loads break towards the lower [(src, dst)] pair, so the choice
    is a function of the loads alone, not of enumeration order. *)

val link_contention : report -> float
(** Occupancy fraction of the hottest link ([0, 1]; 0 without traffic) —
    the saturation indicator for the ring's store-and-forward routing. *)

val max_port_depth : report -> int
(** Deepest mailbox backlog observed anywhere (1 = every message was
    consumed before the next arrived). *)

val to_string : report -> string
(** Multi-line report with a utilisation bar per processor, the busiest
    process, the hottest link and the imbalance. *)

val to_json : report -> string
(** The whole report as one JSON object: scalar headline numbers plus
    [processors], [links], [ports] and [processes] arrays. Deterministic
    field order and number formatting. *)

val summary_json :
  ?extras:(string * float) list -> experiment:string -> report -> string
(** One experiment entry of the bench harness's [--json] file. Every field
    is simulation-deterministic (no wall-clock anywhere), so two sweeps of
    the same experiments produce byte-identical entries regardless of the
    [--jobs] level; wall-clock data lives in the separate timing artifact.
    Core field set pinned by the golden test in [test_determinism];
    [extras] (default none) appends experiment-specific numeric fields
    (e.g. the conformance bench's [makespan_error]) after the core set,
    and every extra must itself be simulation-deterministic. *)
