type processor_load = {
  proc : int;
  busy : float;
  live : float;
  fraction : float;
  processes : int;
}

type link_load = {
  src : int;
  dst : int;
  link_busy : float;
  transfers : int;
  occupancy : float;
}

type process_breakdown = {
  name : string;
  on : int;
  busy_t : float;
  blocked_t : float;
  idle_t : float;
  sends : int;
}

type latency_stats = {
  n : int;
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;
  jitter : float;
}

type report = {
  finish_time : float;
  mean_utilisation : float;
  loads : processor_load list;
  hottest_process : (string * float) option;
  messages : int;
  bytes : int;
  links : link_load list;
  port_depths : ((string * string) * int) list;
  breakdown : process_breakdown list;
  dropped_msgs : int;
  deadline_misses : int;
  reissues : int;
  latency : latency_stats option;
  trace_truncated : bool;
  trace_limit : int;
}

(* Nearest-rank percentiles over the per-frame latencies: with the samples
   sorted ascending, percentile q is the element at 1-based rank
   round(q*n + 0.5) (half away from zero), clamped into [1, n]. For n = 1
   every percentile is the sample; for n = 2 the 0.5 rank rounds *up*, so
   p50 of a pair is the larger element — pinned in test_conformance so the
   convention cannot silently drift. Jitter is the population standard
   deviation, and explicitly 0.0 when fewer than two samples exist (a
   single frame has no spread to measure). All simulation-deterministic, so
   the stats can sit in byte-compared artifacts. *)
let latency_stats = function
  | [] -> None
  | latencies ->
      let sorted = List.sort compare latencies in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let pct q =
        let rank = int_of_float (Float.round (q *. float_of_int n +. 0.5)) in
        arr.(Int.min (n - 1) (Int.max 0 (rank - 1)))
      in
      let mean = List.fold_left ( +. ) 0.0 latencies /. float_of_int n in
      let jitter =
        if n < 2 then 0.0
        else
          let var =
            List.fold_left (fun s l -> s +. ((l -. mean) ** 2.0)) 0.0 latencies
            /. float_of_int n
          in
          Float.sqrt var
      in
      Some
        {
          n;
          mean_latency = mean;
          p50 = pct 0.50;
          p95 = pct 0.95;
          p99 = pct 0.99;
          jitter;
        }

let analyse ?(deadline_misses = 0) ?(reissues = 0) ?(latencies = []) sim =
  let stats = Sim.stats sim in
  let accounts = Sim.process_accounts sim in
  let finish = stats.Sim.finish_time in
  let live_times = Sim.live_times sim in
  let nprocs = Array.length stats.Sim.busy in
  let hosted = Array.make nprocs 0 in
  List.iter (fun (_, on, _, _) -> hosted.(on) <- hosted.(on) + 1) accounts;
  let loads =
    List.init nprocs (fun p ->
        let live = live_times.(p) in
        {
          proc = p;
          busy = stats.Sim.busy.(p);
          live;
          fraction = (if live > 0.0 then stats.Sim.busy.(p) /. live else 0.0);
          processes = hosted.(p);
        })
  in
  let hottest_process =
    List.fold_left
      (fun best (name, _, busy, _) ->
        match best with
        | Some (_, b) when b >= busy -> best
        | _ -> Some (name, busy))
      None accounts
  in
  let links =
    List.map
      (fun ((src, dst), busy, transfers) ->
        {
          src;
          dst;
          link_busy = busy;
          transfers;
          occupancy = (if finish > 0.0 then busy /. finish else 0.0);
        })
      (Sim.link_occupancy sim)
  in
  let breakdown =
    List.map
      (fun (a : Sim.account) ->
        {
          name = a.Sim.aname;
          on = a.Sim.on;
          busy_t = a.Sim.busy_s;
          blocked_t = a.Sim.blocked_s;
          idle_t = Float.max 0.0 (finish -. a.Sim.busy_s -. a.Sim.blocked_s);
          sends = a.Sim.sends;
        })
      (Sim.accounts sim)
  in
  {
    finish_time = finish;
    mean_utilisation = Sim.utilisation sim;
    loads;
    hottest_process;
    messages = stats.Sim.messages;
    bytes = stats.Sim.bytes;
    links;
    port_depths = Sim.port_depths sim;
    breakdown;
    dropped_msgs = stats.Sim.dropped_msgs;
    deadline_misses;
    reissues;
    latency = latency_stats latencies;
    trace_truncated = Sim.trace_truncated sim;
    trace_limit = Sim.trace_limit sim;
  }

(* Imbalance over busy *fractions* of the processors that were alive at
   all, so a halted processor does not masquerade as an idle one. On a
   healthy run every [live] equals [finish_time] and this reduces to the
   classic max-busy / mean-busy. *)
let imbalance report =
  match List.filter (fun l -> l.live > 0.0) report.loads with
  | [] -> 0.0
  | loads ->
      let total = List.fold_left (fun acc l -> acc +. l.fraction) 0.0 loads in
      let mean = total /. float_of_int (List.length loads) in
      if mean <= 0.0 then 0.0
      else
        List.fold_left (fun acc l -> Float.max acc l.fraction) 0.0 loads /. mean

(* Strictly-greater busy time wins; equal loads break towards the lower
   (src, dst) pair, so the answer never depends on the order the simulator
   happened to enumerate the links in. *)
let hottest_link report =
  List.fold_left
    (fun best l ->
      match best with
      | Some b
        when b.link_busy > l.link_busy
             || (b.link_busy = l.link_busy && (b.src, b.dst) <= (l.src, l.dst))
        -> best
      | _ -> Some l)
    None report.links

let link_contention report =
  match hottest_link report with Some l -> l.occupancy | None -> 0.0

let max_port_depth report =
  List.fold_left (fun acc (_, d) -> max acc d) 0 report.port_depths

let bar fraction width =
  let filled = int_of_float (fraction *. float_of_int width) in
  String.make (min width filled) '#' ^ String.make (max 0 (width - filled)) '.'

let to_string report =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "run: %.3f ms, mean utilisation %.0f%%, %d messages (%d bytes)\n"
       (report.finish_time *. 1e3)
       (report.mean_utilisation *. 100.0)
       report.messages report.bytes);
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "P%-3d |%s| %5.1f%%  (%d processes)\n" l.proc
           (bar l.fraction 40) (l.fraction *. 100.0) l.processes))
    report.loads;
  (match report.hottest_process with
  | Some (name, busy) ->
      Buffer.add_string buf
        (Printf.sprintf "busiest process: %s (%.3f ms busy)\n" name (busy *. 1e3))
  | None -> ());
  (match hottest_link report with
  | Some l ->
      Buffer.add_string buf
        (Printf.sprintf
           "hottest link: P%d->P%d (%.3f ms occupied, %.0f%%, %d transfers)\n"
           l.src l.dst (l.link_busy *. 1e3) (l.occupancy *. 100.0) l.transfers)
  | None -> ());
  (match report.latency with
  | Some l ->
      Buffer.add_string buf
        (Printf.sprintf
           "latency over %d frames: mean %.3f ms, p50 %.3f, p95 %.3f, p99 \
            %.3f, jitter %.3f ms\n"
           l.n (l.mean_latency *. 1e3) (l.p50 *. 1e3) (l.p95 *. 1e3)
           (l.p99 *. 1e3) (l.jitter *. 1e3))
  | None -> ());
  let depth = max_port_depth report in
  if depth > 1 then
    Buffer.add_string buf (Printf.sprintf "deepest mailbox backlog: %d messages\n" depth);
  Buffer.add_string buf (Printf.sprintf "imbalance (max/mean busy): %.2f\n" (imbalance report));
  if report.dropped_msgs > 0 || report.deadline_misses > 0 || report.reissues > 0
  then
    Buffer.add_string buf
      (Printf.sprintf
         "faults: %d dropped messages, %d reissued tasks, %d deadline misses\n"
         report.dropped_msgs report.reissues report.deadline_misses);
  if report.trace_truncated then
    Buffer.add_string buf
      (Printf.sprintf
         "warning: trace truncated at %d events — trace-derived numbers are \
          incomplete\n"
         report.trace_limit);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Machine-readable summary                                            *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json report =
  let loads =
    String.concat ","
      (List.map
         (fun l ->
           Printf.sprintf
             {|{"proc":%d,"busy_s":%.9f,"live_s":%.9f,"fraction":%.6f,"processes":%d}|}
             l.proc l.busy l.live l.fraction l.processes)
         report.loads)
  in
  let links =
    String.concat ","
      (List.map
         (fun l ->
           Printf.sprintf
             {|{"src":%d,"dst":%d,"busy_s":%.9f,"occupancy":%.6f,"transfers":%d}|}
             l.src l.dst l.link_busy l.occupancy l.transfers)
         report.links)
  in
  let ports =
    String.concat ","
      (List.map
         (fun ((proc, port), depth) ->
           Printf.sprintf {|{"process":"%s","port":"%s","max_depth":%d}|}
             (json_escape proc) (json_escape port) depth)
         report.port_depths)
  in
  let procs =
    String.concat ","
      (List.map
         (fun p ->
           Printf.sprintf
             {|{"process":"%s","proc":%d,"busy_s":%.9f,"blocked_s":%.9f,"idle_s":%.9f,"sends":%d}|}
             (json_escape p.name) p.on p.busy_t p.blocked_t p.idle_t p.sends)
         report.breakdown)
  in
  let latency =
    match report.latency with
    | None -> "null"
    | Some l ->
        Printf.sprintf
          {|{"n":%d,"mean_s":%.9f,"p50_s":%.9f,"p95_s":%.9f,"p99_s":%.9f,"jitter_s":%.9f}|}
          l.n l.mean_latency l.p50 l.p95 l.p99 l.jitter
  in
  Printf.sprintf
    {|{"finish_time_s":%.9f,"mean_utilisation":%.6f,"messages":%d,"bytes":%d,"imbalance":%.6f,"link_contention":%.6f,"dropped_msgs":%d,"deadline_misses":%d,"reissues":%d,"trace_truncated":%b,"trace_limit":%d,"latency":%s,"processors":[%s],"links":[%s],"ports":[%s],"processes":[%s]}|}
    report.finish_time report.mean_utilisation report.messages report.bytes
    (imbalance report) (link_contention report) report.dropped_msgs
    report.deadline_misses report.reissues report.trace_truncated
    report.trace_limit latency loads links ports procs

(* The one-line per-experiment summary the bench harness's [--json] file is
   made of. Every field is simulation-deterministic (finish_time is
   simulated seconds, never wall-clock), which is what lets CI byte-compare
   a --jobs 4 sweep against a --jobs 1 one; wall-clock measurements belong
   in the separate timing artifact, never here. The field set is pinned by
   the golden test in test_determinism. *)
let summary_json ?(extras = []) ~experiment report =
  let extras =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf {|,"%s":%.6f|} (json_escape k) v) extras)
  in
  Printf.sprintf
    {|{"experiment":"%s","finish_time":%.6f,"utilisation":%.4f,"messages":%d,"bytes":%d,"imbalance":%.4f,"dropped_msgs":%d,"deadline_misses":%d,"reissues":%d,"trace_truncated":%d%s}|}
    (json_escape experiment) report.finish_time report.mean_utilisation
    report.messages report.bytes (imbalance report) report.dropped_msgs
    report.deadline_misses report.reissues
    (if report.trace_truncated then 1 else 0)
    extras
