(** Discrete-event simulator of a MIMD-DM machine.

    This is the executable stand-in for the paper's Transvision platform
    (a ring of T9000 Transputers with point-to-point links): processes are
    placed on processors, execute sequentially (one process at a time per
    processor, cooperative between communications), and exchange values over
    the architecture's links with startup + bandwidth costs, store-and-forward
    through intermediate processors, and per-link contention.

    Process bodies are plain OCaml functions written in direct style; the
    communication/computation primitives ({!recv}, {!send}, {!compute}) are
    implemented with effect handlers, so a body looks exactly like the
    pseudo-code of a SKiPPER kernel primitive sequence. The simulation is
    fully deterministic: simultaneous events are processed in creation
    order.

    Values computed are real {!Skel.Value.t}s, so a simulated run returns the
    actual program output, which tests compare against sequential
    emulation. *)

type t
type pid = int

val create : ?trace:bool -> ?trace_limit:int -> Archi.t -> t
(** [create arch] builds an empty machine over [arch]. With [~trace:true],
    events are recorded (up to [trace_limit], default 20000; see
    {!trace_truncated}). *)

val arch : t -> Archi.t

(** {1 Process primitives}

    These may only be called from inside a process body spawned with
    {!spawn}; elsewhere they raise [Not_in_process]. *)

exception Not_in_process

val self : unit -> pid
val now : unit -> float
(** Current simulation time, seconds. *)

val compute : float -> unit
(** [compute cycles] occupies the hosting processor for
    [cycles * cycle_time] seconds. *)

val send : pid -> string -> Skel.Value.t -> unit
(** [send dst port v] transmits [v] to process [dst]'s [port]. The sender is
    charged a fixed software overhead; the transfer itself proceeds like DMA:
    link occupancy along the route is serialised per link, and the sender
    does not wait for delivery. Local (same-processor) messages cost only a
    memory-copy time. *)

val recv : string -> Skel.Value.t
(** [recv port] blocks until a message is available on [port] and returns
    it. Messages per port arrive FIFO. *)

val recv_any : string list -> string * Skel.Value.t
(** [recv_any ports] blocks until any of [ports] has a message; among ports
    with waiting messages, the earliest-delivered message is taken. *)

val recv_deadline :
  string list -> deadline:float -> (string * Skel.Value.t) option
(** [recv_deadline ports ~deadline] behaves like {!recv_any} but gives up at
    absolute time [deadline]: it returns [None] if no message arrived by
    then (the caller is resumed at the deadline), [Some (port, v)]
    otherwise. The timeout costs no busy time. This is the primitive a
    fault-tolerant executive needs to notice lost tasks. *)

val sleep_until : float -> unit
(** [sleep_until t] releases the processor and resumes no earlier than
    absolute time [t] (immediately if [t] has passed). Sleeping does not
    count as busy time; it models a process waiting on an external timer,
    e.g. a camera delivering frames at 25 Hz. *)

val mark_stable : unit -> unit
(** Truncates the calling durable process's replay journal: every message it
    consumed so far is covered by a checkpoint the caller has just secured,
    so a later restart replays only messages consumed after this point.
    Takes effect within the current zero-duration execution segment —
    processor halts only land at event boundaries, so saving a checkpoint
    and calling [mark_stable] in the same segment is atomic with respect to
    failures. A no-op for non-durable processes (their journal is never
    written). *)

(** {1 Building and running} *)

val spawn : t -> name:string -> ?durable:bool -> on:int -> (unit -> unit) -> pid
(** [spawn t ~name ~on body] places a process on processor [on]. Bodies
    start running at time 0. Raises [Invalid_argument] for a bad processor
    id, or if the machine already ran.

    With [~durable:true] the process survives processor halts: messages
    delivered while its processor is down are spooled instead of dropped
    (recorded as ["spool (processor halted)"] fault events, not counted in
    [dropped_msgs]), and when the processor is {!restore_processor}d the
    body restarts from the top (recorded as ["restart (replay)"]). The
    restarted incarnation re-reads, per port and in the original order, the
    messages consumed since its last {!mark_stable}, then the unconsumed
    backlog, then the spooled deliveries — the classic checkpoint +
    message-log replay discipline. State held in OCaml refs created outside
    the body (stable storage) survives; refs created inside the body are
    re-initialised by the restart. *)

val inject : t -> ?at:float -> pid -> string -> Skel.Value.t -> unit
(** [inject t pid port v] delivers an external message (e.g. the program
    input) at time [at] (default 0) without charging any link. In traces the
    injection appears as a zero-overhead send from the environment lane. *)

(** {1 Fault injection}

    A machine carries a declarative, deterministic fault plan armed before
    {!run}: processor halts/restores and per-link message faults. Every
    fault that fires is recorded as a [Fault] trace event on the affected
    processor's lane (category ["fault"]) and counted (see {!fault_tally}
    and [stats.dropped_msgs]). *)

val halt_processor : t -> ?at:float -> int -> unit
(** Fault injection: at time [at] (default 0) the processor stops — its
    processes never run again and messages addressed to them are dropped
    (counted in [dropped_msgs]). Messages already in flight on links still
    occupy them. The rest of the machine keeps running, so tests can observe
    how an executive behaves when part of the ring dies (plain SKiPPER has
    no fault tolerance: the pipeline stalls, which {!Executive.run} reports
    as a [Stalled] outcome). *)

val restore_processor : t -> ?at:float -> int -> unit
(** Lifts a {!halt_processor} at time [at]: the processor dispatches again.
    Messages dropped while halted stay lost; processes that were ready
    resume, ones blocked in {!recv} keep waiting for a fresh message.
    Durable processes ({!spawn} with [~durable:true]) instead restart from
    the top with their journal and spooled deliveries replayed. *)

type fault_action =
  | Drop  (** the message never reaches the destination mailbox *)
  | Delay of float  (** delivery is postponed by this many seconds *)
  | Duplicate  (** the message is delivered twice *)

type fault_schedule =
  | Always
  | Nth of int  (** the nth matching delivery only, 1-based *)
  | Every of int  (** every kth matching delivery *)
  | Prob of float * int
      (** independent probability per matching delivery; deterministic via
          the embedded PRNG seed *)

type link_fault = {
  action : fault_action;
  link : (int * int) option;
      (** directed (src, dst) processor pair; [None] matches any remote
          link *)
  schedule : fault_schedule;
  from_t : float;  (** active window start (inclusive) *)
  until_t : float;  (** active window end (inclusive) *)
}

val link_fault :
  ?link:int * int ->
  ?schedule:fault_schedule ->
  ?from_t:float ->
  ?until_t:float ->
  fault_action ->
  link_fault
(** Constructor with the permissive defaults: any link, [Always], active for
    the whole run. *)

val add_fault : t -> link_fault -> unit
(** Arms a message fault. Faults apply at delivery time and only to genuine
    remote messages — environment injections ({!inject}) and same-processor
    copies are exempt, and a delayed/duplicated delivery is not re-faulted
    (each message suffers at most one fault per plan entry). When several
    armed faults match, the first armed one fires. *)

type fault_tally = { dropped : int; delayed : int; duplicated : int }

val fault_tally : t -> fault_tally
(** Messages affected by the fault plan (plus halt-induced drops in
    [dropped]). *)

val run : ?until:float -> t -> float
(** Executes until the event queue drains, or until the next event would
    lie past [until] (default infinite) — in that case pending events stay
    queued and the clock is clamped to exactly [until], so
    {!utilisation}/{!accounts} cover precisely the requested window (the
    out-of-window part of an operation spanning the horizon is refunded
    from the busy tallies, keeping windowed utilisation at most 1).

    The horizon is inclusive, pinned by [test_machine]'s horizon-edge
    tests: an event scheduled {e exactly at} [until] still fires (only
    events strictly past it stay queued), and a busy charge that ends
    exactly at the horizon is not a spanning charge — nothing is refunded
    and windowed utilisation remains at most 1.

    Returns the final simulation time. A process still blocked in {!recv}
    when the queue drains is simply terminated (streams end this way); a
    [compute]/[send] deadlock cannot occur since both always progress.
    Raises [Failure] if called twice.

    Concurrency: one machine must only ever run on one domain, but
    distinct machines may run on distinct domains concurrently (the
    executing-process pointer is domain-local and everything else hangs
    off [t]) — {!Support.Domain_pool} relies on this to farm whole
    simulations. *)

exception Process_failure of string * exn
(** Raised by {!run} when a process body raises: carries the process name
    and original exception. *)

(** {1 Results and metrics} *)

type stats = {
  finish_time : float;  (** time of last event *)
  messages : int;  (** total messages sent *)
  bytes : int;  (** total payload bytes sent *)
  busy : float array;  (** per-processor busy seconds *)
  hops_total : int;  (** total link traversals *)
  dropped_msgs : int;  (** deliveries lost to faults or halted processors *)
}

val stats : t -> stats

val live_times : t -> float array
(** Per-processor seconds during which the processor was alive (total time
    minus halt episodes). Equals [finish_time] everywhere on a healthy
    run. *)

val utilisation : t -> float
(** Mean processor busy fraction over the run ([0, 1]), measured against
    per-processor {!live_times} so a degraded run is not deflated by the
    dead capacity it could not have used. *)

(** {1 Event trace}

    With [~trace:true], the machine records the full lifecycle of every
    computation and message. A message is born in a [Send] (or an
    environment injection, [Send] with [dur = 0] from processor [-1]),
    occupies each link along its route ([Hop], one per reservation), lands
    in the destination mailbox ([Deliver]) and is consumed by the receiving
    process ([Recv]; [dur = 0] when the delivery woke a blocked receiver,
    which pays no software overhead). All four share the message id, so
    exporters can pair them into arrows. *)

type trace_event = {
  time : float;
  proc : int;  (** hosting processor; -1 for environment injections *)
  pid : pid;  (** emitting process; -1 when none *)
  process : string;
  what : what;
}

and what =
  | Compute of { cycles : float; dur : float }
  | Send of { msg : int; dst : pid; port : string; bytes : int; dur : float }
  | Hop of {
      msg : int;
      link_src : int;
      link_dst : int;
      bytes : int;
      start : float;
      finish : float;
    }
  | Deliver of { msg : int; port : string }
  | Block of { ports : string list }
  | Recv of { msg : int; port : string; dur : float }
  | Done
  | Halted
  | Restored
  | Fault of { msg : int; action : string }
      (** an injected (or halt-induced) message fault; [proc] is the
          destination processor whose delivery was affected *)

val trace : t -> trace_event list
(** Recorded events in emission order (empty unless [~trace:true]). [Hop]
    events carry their own start time, which may lie after later-recorded
    events; sort by [time] for a chronological view. *)

val trace_truncated : t -> bool
(** True when tracing dropped events past [trace_limit]; exported timelines
    carry the flag (a truncated dump is incomplete, not wrong). *)

val trace_limit : t -> int

val emit_trace : t -> Skipper_trace.Event.timeline -> unit
(** Append this machine's recorded trace to [timeline] as structured events:
    compute/send/recv spans per process lane, link-occupancy spans on the
    links track, a flow pair per message (the arrows), and instants for
    deliveries, blocks and faults. Marks the timeline truncated when the
    trace is. *)

val timeline : t -> Skipper_trace.Event.timeline
(** {!emit_trace} into a fresh timeline. *)

(** {1 Accounting (always available, no tracing needed)} *)

val process_accounts : t -> (string * int * float * int) list
(** Per-process accounting, in spawn (pid) order:
    [(name, processor, busy_seconds, messages_sent)]. *)

type account = {
  aname : string;  (** process name *)
  on : int;  (** hosting processor *)
  busy_s : float;  (** busy seconds (compute + kernel overheads) *)
  blocked_s : float;
      (** seconds spent blocked in {!recv}; a process still blocked when the
          run drained is charged up to the finish time — or up to the halt
          instant when its processor died (a killed process is dead, not
          waiting) *)
  sends : int;
  finished : bool;  (** body ran to completion *)
  halted : bool;  (** hosting processor was halted at the end of the run *)
}

val accounts : t -> account list
(** Per-process busy/blocked breakdown, in spawn order. Idle time is
    [finish - busy - blocked]. *)

val link_occupancy : t -> ((int * int) * float * int) list
(** Per directed link [(src, dst)]: total occupied seconds and number of
    transfers, sorted by link; only links that carried traffic appear. *)

val port_depths : t -> ((string * string) * int) list
(** High-water mailbox depth per [(process name, port)], sorted — a depth
    over 1 means messages queued faster than the process consumed them. *)

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart of processor occupation. Raises [Invalid_argument]
    when the machine was created without [~trace:true] (an untraced machine
    has no intervals to draw). *)

(** {1 Cost constants} *)

val send_overhead_cycles : float
(** Software cost charged to a sender per message (kernel primitive cost). *)

val recv_overhead_cycles : float
val local_copy_bandwidth : float
(** Bytes/second for same-processor message copies. *)
