(** Discrete-event simulator of a MIMD-DM machine.

    This is the executable stand-in for the paper's Transvision platform
    (a ring of T9000 Transputers with point-to-point links): processes are
    placed on processors, execute sequentially (one process at a time per
    processor, cooperative between communications), and exchange values over
    the architecture's links with startup + bandwidth costs, store-and-forward
    through intermediate processors, and per-link contention.

    Process bodies are plain OCaml functions written in direct style; the
    communication/computation primitives ({!recv}, {!send}, {!compute}) are
    implemented with effect handlers, so a body looks exactly like the
    pseudo-code of a SKiPPER kernel primitive sequence. The simulation is
    fully deterministic: simultaneous events are processed in creation
    order.

    Values computed are real {!Skel.Value.t}s, so a simulated run returns the
    actual program output, which tests compare against sequential
    emulation. *)

type t
type pid = int

val create : ?trace:bool -> ?trace_limit:int -> Archi.t -> t
(** [create arch] builds an empty machine over [arch]. With [~trace:true],
    events are recorded (up to [trace_limit], default 20000; see
    {!trace_truncated}). *)

val arch : t -> Archi.t

(** {1 Process primitives}

    These may only be called from inside a process body spawned with
    {!spawn}; elsewhere they raise [Not_in_process]. *)

exception Not_in_process

val self : unit -> pid
val now : unit -> float
(** Current simulation time, seconds. *)

val compute : float -> unit
(** [compute cycles] occupies the hosting processor for
    [cycles * cycle_time] seconds. *)

val send : pid -> string -> Skel.Value.t -> unit
(** [send dst port v] transmits [v] to process [dst]'s [port]. The sender is
    charged a fixed software overhead; the transfer itself proceeds like DMA:
    link occupancy along the route is serialised per link, and the sender
    does not wait for delivery. Local (same-processor) messages cost only a
    memory-copy time. *)

val recv : string -> Skel.Value.t
(** [recv port] blocks until a message is available on [port] and returns
    it. Messages per port arrive FIFO. *)

val recv_any : string list -> string * Skel.Value.t
(** [recv_any ports] blocks until any of [ports] has a message; among ports
    with waiting messages, the earliest-delivered message is taken. *)

val sleep_until : float -> unit
(** [sleep_until t] releases the processor and resumes no earlier than
    absolute time [t] (immediately if [t] has passed). Sleeping does not
    count as busy time; it models a process waiting on an external timer,
    e.g. a camera delivering frames at 25 Hz. *)

(** {1 Building and running} *)

val spawn : t -> name:string -> on:int -> (unit -> unit) -> pid
(** [spawn t ~name ~on body] places a process on processor [on]. Bodies
    start running at time 0. Raises [Invalid_argument] for a bad processor
    id, or if the machine already ran. *)

val inject : t -> ?at:float -> pid -> string -> Skel.Value.t -> unit
(** [inject t pid port v] delivers an external message (e.g. the program
    input) at time [at] (default 0) without charging any link. In traces the
    injection appears as a zero-overhead send from the environment lane. *)

val halt_processor : t -> ?at:float -> int -> unit
(** Fault injection: at time [at] (default 0) the processor stops — its
    processes never run again and messages addressed to them are dropped.
    Messages already in flight on links still occupy them. The rest of the
    machine keeps running, so tests can observe how an executive behaves
    when part of the ring dies (SKiPPER itself has no fault tolerance: the
    pipeline stalls, which {!Executive.run} reports). *)

val run : ?until:float -> t -> float
(** Executes until the event queue drains (or simulated time exceeds
    [until], default infinite). Returns the time of the last event.
    A process still blocked in {!recv} when the queue drains is simply
    terminated (streams end this way); a [compute]/[send] deadlock cannot
    occur since both always progress. Raises [Failure] if called twice. *)

exception Process_failure of string * exn
(** Raised by {!run} when a process body raises: carries the process name
    and original exception. *)

(** {1 Results and metrics} *)

type stats = {
  finish_time : float;  (** time of last event *)
  messages : int;  (** total messages sent *)
  bytes : int;  (** total payload bytes sent *)
  busy : float array;  (** per-processor busy seconds *)
  hops_total : int;  (** total link traversals *)
}

val stats : t -> stats

val utilisation : t -> float
(** Mean processor busy fraction over the run ([0, 1]). *)

(** {1 Event trace}

    With [~trace:true], the machine records the full lifecycle of every
    computation and message. A message is born in a [Send] (or an
    environment injection, [Send] with [dur = 0] from processor [-1]),
    occupies each link along its route ([Hop], one per reservation), lands
    in the destination mailbox ([Deliver]) and is consumed by the receiving
    process ([Recv]; [dur = 0] when the delivery woke a blocked receiver,
    which pays no software overhead). All four share the message id, so
    exporters can pair them into arrows. *)

type trace_event = {
  time : float;
  proc : int;  (** hosting processor; -1 for environment injections *)
  pid : pid;  (** emitting process; -1 when none *)
  process : string;
  what : what;
}

and what =
  | Compute of { cycles : float; dur : float }
  | Send of { msg : int; dst : pid; port : string; bytes : int; dur : float }
  | Hop of {
      msg : int;
      link_src : int;
      link_dst : int;
      bytes : int;
      start : float;
      finish : float;
    }
  | Deliver of { msg : int; port : string }
  | Block of { ports : string list }
  | Recv of { msg : int; port : string; dur : float }
  | Done
  | Halted

val trace : t -> trace_event list
(** Recorded events in emission order (empty unless [~trace:true]). [Hop]
    events carry their own start time, which may lie after later-recorded
    events; sort by [time] for a chronological view. *)

val trace_truncated : t -> bool
(** True when tracing dropped events past [trace_limit]; exported timelines
    carry the flag (a truncated dump is incomplete, not wrong). *)

val trace_limit : t -> int

val emit_trace : t -> Skipper_trace.Event.timeline -> unit
(** Append this machine's recorded trace to [timeline] as structured events:
    compute/send/recv spans per process lane, link-occupancy spans on the
    links track, a flow pair per message (the arrows), and instants for
    deliveries, blocks and faults. Marks the timeline truncated when the
    trace is. *)

val timeline : t -> Skipper_trace.Event.timeline
(** {!emit_trace} into a fresh timeline. *)

(** {1 Accounting (always available, no tracing needed)} *)

val process_accounts : t -> (string * int * float * int) list
(** Per-process accounting, in spawn (pid) order:
    [(name, processor, busy_seconds, messages_sent)]. *)

type account = {
  aname : string;  (** process name *)
  on : int;  (** hosting processor *)
  busy_s : float;  (** busy seconds (compute + kernel overheads) *)
  blocked_s : float;
      (** seconds spent blocked in {!recv}; a process still blocked when the
          run drained is charged up to the finish time *)
  sends : int;
  finished : bool;  (** body ran to completion *)
}

val accounts : t -> account list
(** Per-process busy/blocked breakdown, in spawn order. Idle time is
    [finish - busy - blocked]. *)

val link_occupancy : t -> ((int * int) * float * int) list
(** Per directed link [(src, dst)]: total occupied seconds and number of
    transfers, sorted by link; only links that carried traffic appear. *)

val port_depths : t -> ((string * string) * int) list
(** High-water mailbox depth per [(process name, port)], sorted — a depth
    over 1 means messages queued faster than the process consumed them. *)

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart of processor occupation. Raises [Invalid_argument]
    when the machine was created without [~trace:true] (an untraced machine
    has no intervals to draw). *)

(** {1 Cost constants} *)

val send_overhead_cycles : float
(** Software cost charged to a sender per message (kernel primitive cost). *)

val recv_overhead_cycles : float
val local_copy_bandwidth : float
(** Bytes/second for same-processor message copies. *)
