(** Cost model for static mapping.

    SynDEx's "adequation" needs per-operation worst/mean execution times and
    per-dependency data sizes. Dynamic skeletons make exact values
    data-dependent, so the mapper works from estimates: a table of mean
    cycles per sequential function and mean bytes per channel, both
    overridable per call site. The machine simulator then charges *actual*
    costs at run time; the scheduler only needs estimates good enough for
    placement decisions. *)

type t = {
  node_cycles : Procnet.Graph.node -> float;
      (** mean cycles per activation of a process *)
  edge_bytes : Procnet.Graph.edge -> int;
      (** mean payload bytes per message on a channel *)
  send_overhead_cycles : float;
      (** kernel cycles charged on the sender per posted message *)
  recv_overhead_cycles : float;
      (** kernel cycles charged on the receiver per completed receive *)
}

val default_send_overhead_cycles : float

val default_recv_overhead_cycles : float
(** The per-message kernel overheads of the simulated machine model; the
    defaults mirror [Machine.Sim] (200 / 150 cycles) so predicted comm
    slots line up with measured traces. *)

val local_copy_bandwidth : float
(** Bytes per second of a same-processor message copy (mirrors
    [Machine.Sim]); used to price intra-processor dependencies. *)

val make :
  ?fn_cycles:(string -> float option) ->
  ?control_cycles:float ->
  ?default_fn_cycles:float ->
  ?edge_bytes:(Procnet.Graph.edge -> int option) ->
  ?default_edge_bytes:int ->
  ?send_overhead_cycles:float ->
  ?recv_overhead_cycles:float ->
  unit ->
  t
(** [make ()] builds a model. [fn_cycles name] may return a per-function
    estimate (consulted for every node kind that carries a function name:
    compute, workers, split/merge, masters' fold, input/output).
    Control-only processes (join, fork, mem, routers) cost [control_cycles]
    (default 500). Unestimated functions cost [default_fn_cycles]
    (default 10000). [edge_bytes] likewise overrides the per-channel size
    (default 1024 bytes). [send_overhead_cycles] / [recv_overhead_cycles]
    calibrate the per-message kernel startup latency added around each
    predicted communication (defaults mirror the machine kernel). *)

val of_table : Skel.Funtable.t -> sample:(string -> Skel.Value.t option) -> t
(** Derives function costs by evaluating each registered function's cost
    model on a sample argument ([sample name]); functions without a sample
    fall back to defaults. *)

val node_function : Procnet.Graph.node -> string option
(** The sequential function a process applies, if any (masters report their
    fold function). *)
