(** The pluggable mapping engine.

    Every adequation strategy is a first-class, registered value: a name, a
    one-line description, a [map] function producing a static schedule, and
    an optional [frontier] entry point returning several candidate
    schedules as latency/period trade-off points. {!Passes} looks
    strategies up by name, so adding a mapper is [register] — no variant to
    extend, and the CLI help and error messages list {!names} as the single
    source of truth.

    Built-in strategies, registered at load time:
    - ["heft"] — the {!Heft} latency-minimising list scheduler;
    - ["canonical"] — the paper's Fig. 1 fixed layout ({!Place.canonical});
    - ["roundrobin"] — {!Place.round_robin};
    - ["throughput"] — frame-pipelined interval mapping: the process chain
      is partitioned into contiguous intervals, one per processor, so
      several frames are in flight at once and the steady-state period
      drops to the bottleneck interval (after Benoit, Kosch, Rehn-Sonigo &
      Robert, "Bi-criteria Pipeline Mappings");
    - ["bicriteria"] — bounded search over the interval mappings plus the
      HEFT point, emitting the latency/throughput Pareto frontier; [map]
      schedules the knee point (minimal latency x period). *)

type point = {
  point_label : string;
  point_schedule : Schedule.t;
  point_latency : float;  (** predicted one-frame latency (makespan) *)
  point_period : float;  (** predicted steady-state period *)
}

type t = {
  name : string;
  describe : string;
  map : Cost.t -> Archi.t -> Procnet.Graph.t -> Schedule.t;
  frontier : (Cost.t -> Archi.t -> Procnet.Graph.t -> point list) option;
}

val register : t -> unit
(** Adds a strategy to the registry. Raises [Invalid_argument] on a
    duplicate name. *)

val find : string -> t option
val names : unit -> string list
(** Registered strategy names, in registration order. *)

val registered : unit -> t list

val map : t -> Cost.t -> Archi.t -> Procnet.Graph.t -> Schedule.t

val frontier : t -> Cost.t -> Archi.t -> Procnet.Graph.t -> point list
(** The strategy's trade-off frontier; strategies without a [frontier]
    entry point return the singleton of their [map] schedule. *)

val pareto : point list -> point list
(** Dominance filter: drops every point dominated in (latency, period) by
    another, deduplicates coincident points, and orders the survivors by
    (latency, period, label). Exposed for tests. *)

val frontier_json : strategy:string -> arch:Archi.t -> point list -> string
(** Deterministic JSON rendering of a frontier (byte-identical across runs
    and [--jobs] levels): strategy, architecture, and per-point label,
    latency, period, frames in flight and placement. *)
