(* Mean link characteristics used by rank computation (placement-agnostic). *)
let mean_link_costs arch =
  match Archi.links arch with
  | [] -> (0.0, infinity)
  | links ->
      let n = float_of_int (List.length links) in
      let startup = List.fold_left (fun acc l -> acc +. l.Archi.startup) 0.0 links /. n in
      let bw = List.fold_left (fun acc l -> acc +. l.Archi.bandwidth) 0.0 links /. n in
      (startup, bw)

let mean_cycle_time arch =
  let procs = Archi.processors arch in
  Array.fold_left (fun acc p -> acc +. p.Archi.cycle_time) 0.0 procs
  /. float_of_int (Array.length procs)

let upward_ranks cost arch (dag : Dag.t) =
  ignore cost;
  let startup, bw = mean_link_costs arch in
  let ct = mean_cycle_time arch in
  let nops = Array.length dag.Dag.ops in
  let ranks = Array.make nops nan in
  let rec rank i =
    if not (Float.is_nan ranks.(i)) then ranks.(i)
    else begin
      let op = dag.Dag.ops.(i) in
      let self = op.Dag.cycles *. ct in
      let tail =
        List.fold_left
          (fun best (d : Dag.dep) ->
            let comm =
              if bw = infinity then 0.0
              else startup +. (float_of_int d.Dag.bytes /. bw)
            in
            Float.max best (comm +. rank d.Dag.dst_op))
          0.0 dag.Dag.succs.(i)
      in
      ranks.(i) <- self +. tail;
      ranks.(i)
    end
  in
  for i = 0 to nops - 1 do
    ignore (rank i)
  done;
  ranks

let map cost arch g =
  let dag = Dag.of_graph cost g in
  let nops = Array.length dag.Dag.ops in
  let nprocs = Archi.nprocs arch in
  let ranks = upward_ranks cost arch dag in
  (* Schedule ops by decreasing rank, but never before all predecessors are
     placed (rank order is consistent with topological order on a DAG when
     communication costs are non-negative; we enforce it anyway). Equal
     ranks break deterministically towards the lowest op id, so mapper
     output is byte-stable across platforms and list orderings. *)
  let order =
    List.sort
      (fun a b ->
        match compare ranks.(b) ranks.(a) with 0 -> compare a b | c -> c)
      (Dag.topological_order dag)
  in
  let placed = Array.make nops false in
  let op_proc = Array.make nops (-1) in
  let op_start = Array.make nops 0.0 and op_finish = Array.make nops 0.0 in
  let avail = Array.make nprocs 0.0 in
  let forced_proc i =
    List.fold_left
      (fun acc (a, b) ->
        if a = i && placed.(b) then Some op_proc.(b)
        else if b = i && placed.(a) then Some op_proc.(a)
        else acc)
      None dag.Dag.colocated
  in
  let cycle_time p = (Archi.processors arch).(p).Archi.cycle_time in
  (* Contention-free arrival estimate, calibrated with the same per-message
     kernel overheads the prediction engine charges (send on the producer,
     receive on the candidate); remote dependencies pay per-hop startup via
     Archi.transfer_time, local ones the memory-copy bandwidth. *)
  let est i p =
    List.fold_left
      (fun acc (d : Dag.dep) ->
        let src = d.Dag.src_op in
        let arrival =
          match d.Dag.edge with
          | None -> op_finish.(src)
          | Some _ ->
              let sp = op_proc.(src) in
              let overheads =
                (cost.Cost.send_overhead_cycles *. cycle_time sp)
                +. (cost.Cost.recv_overhead_cycles *. cycle_time p)
              in
              if sp = p then
                op_finish.(src) +. overheads
                +. (float_of_int d.Dag.bytes /. Cost.local_copy_bandwidth)
              else
                op_finish.(src) +. overheads
                +. Archi.transfer_time arch sp p d.Dag.bytes
        in
        Float.max acc arrival)
      avail.(p) dag.Dag.preds.(i)
  in
  let schedule_op i =
    let candidates =
      match forced_proc i with Some p -> [ p ] | None -> List.init nprocs Fun.id
    in
    let best =
      List.fold_left
        (fun best p ->
          match Archi.route arch 0 p with
          | exception Failure _ -> best (* unreachable processor *)
          | _ ->
              let s = est i p in
              let f = s +. (dag.Dag.ops.(i).Dag.cycles *. cycle_time p) in
              (* equal finish times break towards the lowest processor id
                 (candidates are scanned in ascending order) *)
              (match best with
              | Some (_, bf, bp) when bf < f || (bf = f && bp < p) -> best
              | _ -> Some (s, f, p)))
        None candidates
    in
    match best with
    | None -> failwith "Heft.map: no reachable processor"
    | Some (s, f, p) ->
        placed.(i) <- true;
        op_proc.(i) <- p;
        op_start.(i) <- s;
        op_finish.(i) <- f;
        avail.(p) <- f
  in
  (* Place ops respecting precedence: repeatedly take the highest-ranked op
     whose predecessors are all placed. *)
  let remaining = ref order in
  while !remaining <> [] do
    let ready, blocked =
      List.partition
        (fun i -> List.for_all (fun (d : Dag.dep) -> placed.(d.Dag.src_op)) dag.Dag.preds.(i))
        !remaining
    in
    match ready with
    | [] -> failwith "Heft.map: cyclic scheduling graph"
    | i :: rest ->
        schedule_op i;
        remaining := rest @ blocked
  done;
  (* Derive the per-node placement (colocated halves agree by construction)
     and hand the final timing to the shared prediction engine, so HEFT and
     fixed placements produce comparable schedules (including static link
     contention). The EFT search above used contention-free estimates. *)
  let placement = Array.make (Procnet.Graph.nnodes g) 0 in
  Array.iteri
    (fun node ops ->
      match ops with
      | op :: _ -> placement.(node) <- op_proc.(op)
      | [] -> ())
    dag.Dag.ops_of_node;
  Place.of_placement cost arch g placement
