(** Static schedules: the output of the adequation step.

    A schedule fixes where every process runs ([placement]), when each
    operation of one stream iteration executes, and the total order of
    communications on every link. SynDEx's key guarantee — a dead-lock free
    distributed executive — comes from this static per-link total ordering;
    {!deadlock_free} checks it explicitly by verifying that the union of
    operation precedence, message causality and per-link FIFO order is
    acyclic. *)

type op_slot = {
  node : int;
  part : Dag.part;
  proc : int;
  start : float;
  finish : float;
}

type hop_slot = {
  hop_src : int;
  hop_dst : int;
  hop_start : float;
  hop_finish : float;
}
(** One directed-link reservation of a communication: the store-and-forward
    transfer charges [link.startup + bytes / link.bandwidth] per hop, placed
    first-fit around the link's earlier reservations (mirroring the machine
    kernel), so predicted link occupancy is per-hop honest rather than an
    even split of the end-to-end duration. *)

type comm_slot = {
  edge : Procnet.Graph.edge;
  from_proc : int;
  to_proc : int;
  route : int list;
  bytes : int;
  start : float;  (** departure from the source processor *)
  finish : float;  (** arrival at the destination processor *)
  hops : hop_slot list;  (** per-link reservations along [route], in order *)
}

type stage_interval = {
  stage_proc : int;  (** processor hosting this pipeline stage *)
  stage_nodes : int list;  (** process-network nodes of the interval *)
  stage_load : float;  (** per-frame busy time of the stage, seconds *)
}

type pipelining = {
  frames_in_flight : int;
      (** frames concurrently resident in the pipeline at steady state *)
  predicted_period : float;
      (** predicted steady-state inter-output time: the bottleneck stage *)
  stages : stage_interval list;
}
(** Pipelined-interval metadata attached by frame-pipelining mappers
    ([throughput], [bicriteria]): the conformance joiner and Gantt overlays
    use it to compare predicted against measured steady-state throughput. *)

type t = {
  graph : Procnet.Graph.t;
  arch : Archi.t;
  placement : int array;  (** node id -> processor *)
  ops : op_slot list;  (** sorted by start time *)
  comms : comm_slot list;  (** sorted by start time *)
  makespan : float;  (** predicted latency of one iteration, seconds *)
  pipeline : pipelining option;  (** interval metadata, pipelining mappers only *)
}

val resource_period : t -> float
(** Lower bound on the steady-state period with one frame per iteration in
    flight per resource: the busiest processor's compute load or the busiest
    directed link's occupancy, whichever is larger. *)

val period : t -> float
(** The schedule's predicted steady-state period: the pipelining metadata's
    bottleneck stage when present, {!resource_period} otherwise. *)

val nops : t -> int
(** Number of scheduled operation slots (one per node per iteration). *)

val ncomms : t -> int
(** Number of scheduled communication slots. *)

val validate : t -> (unit, string) result
(** Checks that ops on one processor do not overlap, every op's processor
    matches the placement, every comm joins the placements of its edge's
    endpoints, and comm routes only use existing links. *)

val link_orders : t -> ((int * int) * comm_slot list) list
(** Communications grouped per directed link (first hop attribution), each
    list in scheduled order: the static communication schedule. *)

val deadlock_free : t -> bool

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart of the predicted schedule, one row per processor. *)

val pp_summary : Format.formatter -> t -> unit
