(** Static schedules: the output of the adequation step.

    A schedule fixes where every process runs ([placement]), when each
    operation of one stream iteration executes, and the total order of
    communications on every link. SynDEx's key guarantee — a dead-lock free
    distributed executive — comes from this static per-link total ordering;
    {!deadlock_free} checks it explicitly by verifying that the union of
    operation precedence, message causality and per-link FIFO order is
    acyclic. *)

type op_slot = {
  node : int;
  part : Dag.part;
  proc : int;
  start : float;
  finish : float;
}

type comm_slot = {
  edge : Procnet.Graph.edge;
  from_proc : int;
  to_proc : int;
  route : int list;
  bytes : int;
  start : float;
  finish : float;
}

type t = {
  graph : Procnet.Graph.t;
  arch : Archi.t;
  placement : int array;  (** node id -> processor *)
  ops : op_slot list;  (** sorted by start time *)
  comms : comm_slot list;  (** sorted by start time *)
  makespan : float;  (** predicted latency of one iteration, seconds *)
}

val nops : t -> int
(** Number of scheduled operation slots (one per node per iteration). *)

val ncomms : t -> int
(** Number of scheduled communication slots. *)

val validate : t -> (unit, string) result
(** Checks that ops on one processor do not overlap, every op's processor
    matches the placement, every comm joins the placements of its edge's
    endpoints, and comm routes only use existing links. *)

val link_orders : t -> ((int * int) * comm_slot list) list
(** Communications grouped per directed link (first hop attribution), each
    list in scheduled order: the static communication schedule. *)

val deadlock_free : t -> bool

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart of the predicted schedule, one row per processor. *)

val pp_summary : Format.formatter -> t -> unit
