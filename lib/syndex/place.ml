(* Parallel work processes: df/tf workers and scm computes. Pipeline
   [Compute] stages stay with the control processes: shipping the full
   dataflow value to another processor usually costs more than it saves. *)
let is_worker (node : Procnet.Graph.node) =
  match node.kind with
  | Procnet.Graph.DfWorker _ | Procnet.Graph.TfWorker _ | Procnet.Graph.ScmCompute _ ->
      true
  | _ -> false

let canonical g arch =
  let nprocs = Archi.nprocs arch in
  let placement = Array.make (Procnet.Graph.nnodes g) 0 in
  let next = ref 0 in
  Array.iter
    (fun (node : Procnet.Graph.node) ->
      if is_worker node then begin
        (* Fig. 1 layout: worker i on P(i+1) around the ring, wrapping back
           to the master's processor last. *)
        let p = (!next + 1) mod nprocs in
        incr next;
        placement.(node.id) <- p
      end)
    (Procnet.Graph.nodes g);
  placement

let round_robin g arch =
  let nprocs = Archi.nprocs arch in
  Array.init (Procnet.Graph.nnodes g) (fun i -> i mod nprocs)

(* Store-and-forward transfer with static per-link reservation: the same
   first-fit contention model the machine simulator uses, so the predicted
   communication schedule mirrors what the executive will do. Each hop is
   charged the link's startup latency plus its byte time, placed around the
   link's earlier reservations. Returns the arrival time and the per-hop
   slots for the schedule's link occupancy accounting. *)
let reserve_transfer arch link_busy ~src ~dst ~bytes ~depart =
  if src = dst then (depart, [])
  else begin
    let path = Archi.route arch src dst in
    let rec hop depart acc = function
      | a :: (b :: _ as rest) ->
          let link =
            match Archi.link_between arch a b with
            | Some l -> l
            | None -> failwith "Place: route uses missing link"
          in
          let duration =
            link.Archi.startup +. (float_of_int bytes /. link.Archi.bandwidth)
          in
          let existing =
            Option.value ~default:Support.Intervals.empty
              (Hashtbl.find_opt link_busy (a, b))
          in
          let start, updated =
            Support.Intervals.reserve existing ~earliest:depart ~duration
          in
          Hashtbl.replace link_busy (a, b) updated;
          hop (start +. duration)
            ({ Schedule.hop_src = a; hop_dst = b; hop_start = start;
               hop_finish = start +. duration } :: acc)
            rest
      | _ -> (depart, List.rev acc)
    in
    hop depart [] path
  end

let of_placement cost arch g placement =
  if Array.length placement <> Procnet.Graph.nnodes g then
    invalid_arg "Place.of_placement: placement length mismatch";
  Array.iter
    (fun p ->
      if p < 0 || p >= Archi.nprocs arch then
        invalid_arg "Place.of_placement: placement names a missing processor")
    placement;
  let dag = Dag.of_graph cost g in
  let nops = Array.length dag.Dag.ops in
  let op_proc =
    Array.map (fun (op : Dag.op) -> placement.(op.Dag.node)) dag.Dag.ops
  in
  let op_start = Array.make nops 0.0 and op_finish = Array.make nops 0.0 in
  let avail = Array.make (Archi.nprocs arch) 0.0 in
  let link_busy = Hashtbl.create 16 in
  let cycle_time p = (Archi.processors arch).(p).Archi.cycle_time in
  (* per cross-processor dependency: (depart, arrival, hop slots) *)
  let transfers : (Dag.dep, float * float * Schedule.hop_slot list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun i ->
      let p = op_proc.(i) in
      let est =
        List.fold_left
          (fun acc (d : Dag.dep) ->
            let src = d.Dag.src_op in
            let arrival =
              match d.Dag.edge with
              | None -> op_finish.(src) (* intra-process ordering, no message *)
              | Some _ ->
                  let sp = op_proc.(src) in
                  let send_oh =
                    cost.Cost.send_overhead_cycles *. cycle_time sp
                  in
                  let recv_oh =
                    cost.Cost.recv_overhead_cycles *. cycle_time p
                  in
                  if sp = p then
                    op_finish.(src) +. send_oh
                    +. (float_of_int d.Dag.bytes /. Cost.local_copy_bandwidth)
                    +. recv_oh
                  else begin
                    let depart = op_finish.(src) +. send_oh in
                    let arrival, hops =
                      reserve_transfer arch link_busy ~src:sp ~dst:p
                        ~bytes:d.Dag.bytes ~depart
                    in
                    Hashtbl.replace transfers d (depart, arrival, hops);
                    arrival +. recv_oh
                  end
            in
            Float.max acc arrival)
          avail.(p) dag.Dag.preds.(i)
      in
      op_start.(i) <- est;
      op_finish.(i) <- est +. (dag.Dag.ops.(i).Dag.cycles *. cycle_time p);
      avail.(p) <- op_finish.(i))
    (Dag.topological_order dag);
  let ops =
    Array.to_list dag.Dag.ops
    |> List.map (fun (op : Dag.op) ->
           {
             Schedule.node = op.Dag.node;
             part = op.Dag.part;
             proc = op_proc.(op.Dag.op_id);
             start = op_start.(op.Dag.op_id);
             finish = op_finish.(op.Dag.op_id);
           })
    |> List.sort (fun (a : Schedule.op_slot) (b : Schedule.op_slot) ->
           compare (a.Schedule.start, a.Schedule.node) (b.Schedule.start, b.Schedule.node))
  in
  let comms =
    List.filter_map
      (fun (d : Dag.dep) ->
        match (d.Dag.edge, Hashtbl.find_opt transfers d) with
        | Some e, Some (depart, arrival, hops) ->
            let from_proc = op_proc.(d.Dag.src_op)
            and to_proc = op_proc.(d.Dag.dst_op) in
            Some
              {
                Schedule.edge = e;
                from_proc;
                to_proc;
                route = Archi.route arch from_proc to_proc;
                bytes = d.Dag.bytes;
                start = depart;
                finish = arrival;
                hops;
              }
        | _ -> None)
      dag.Dag.deps
    |> List.sort (fun (a : Schedule.comm_slot) (b : Schedule.comm_slot) ->
           compare (a.Schedule.start, a.Schedule.bytes) (b.Schedule.start, b.Schedule.bytes))
  in
  {
    Schedule.graph = g;
    arch;
    placement = Array.copy placement;
    ops;
    comms;
    makespan = Array.fold_left Float.max 0.0 op_finish;
    pipeline = None;
  }
