type op_slot = {
  node : int;
  part : Dag.part;
  proc : int;
  start : float;
  finish : float;
}

type hop_slot = {
  hop_src : int;
  hop_dst : int;
  hop_start : float;
  hop_finish : float;
}

type comm_slot = {
  edge : Procnet.Graph.edge;
  from_proc : int;
  to_proc : int;
  route : int list;
  bytes : int;
  start : float;
  finish : float;
  hops : hop_slot list;
}

type stage_interval = {
  stage_proc : int;
  stage_nodes : int list;
  stage_load : float;
}

type pipelining = {
  frames_in_flight : int;
  predicted_period : float;
  stages : stage_interval list;
}

type t = {
  graph : Procnet.Graph.t;
  arch : Archi.t;
  placement : int array;
  ops : op_slot list;
  comms : comm_slot list;
  makespan : float;
  pipeline : pipelining option;
}

(* Steady-state period bound of the schedule when one frame is issued per
   iteration: the busiest resource (processor compute load, or directed-link
   occupancy summed over hop reservations) limits the throughput. *)
let resource_period t =
  let nprocs = Archi.nprocs t.arch in
  let proc_load = Array.make nprocs 0.0 in
  List.iter
    (fun op -> proc_load.(op.proc) <- proc_load.(op.proc) +. (op.finish -. op.start))
    t.ops;
  let link_load = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun h ->
          let key = (h.hop_src, h.hop_dst) in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt link_load key) in
          Hashtbl.replace link_load key (prev +. (h.hop_finish -. h.hop_start)))
        c.hops)
    t.comms;
  let busiest = Array.fold_left Float.max 0.0 proc_load in
  Hashtbl.fold (fun _ load acc -> Float.max load acc) link_load busiest

let period t =
  match t.pipeline with
  | Some p -> p.predicted_period
  | None -> resource_period t

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let by_proc : (int, op_slot list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun op -> Hashtbl.replace by_proc op.proc (op :: (Option.value ~default:[] (Hashtbl.find_opt by_proc op.proc))))
    t.ops;
  let overlap =
    Hashtbl.fold
      (fun proc ops acc ->
        match acc with
        | Some _ -> acc
        | None ->
            let sorted =
              List.sort (fun (a : op_slot) (b : op_slot) -> compare a.start b.start) ops
            in
            let rec scan : op_slot list -> _ = function
              | a :: (b :: _ as rest) ->
                  if a.finish > b.start +. 1e-12 then Some (proc, a, b) else scan rest
              | _ -> None
            in
            scan sorted)
      by_proc None
  in
  match overlap with
  | Some (proc, a, b) ->
      err "processor %d: op for node %d overlaps op for node %d" proc a.node b.node
  | None -> (
      let placement_bad =
        List.find_opt (fun (op : op_slot) -> t.placement.(op.node) <> op.proc) t.ops
      in
      match placement_bad with
      | Some op -> err "op for node %d not on its placed processor" op.node
      | None -> (
          let comm_bad =
            List.find_opt
              (fun c ->
                let e = c.edge in
                t.placement.(e.Procnet.Graph.src) <> c.from_proc
                || t.placement.(e.Procnet.Graph.dst) <> c.to_proc)
              t.comms
          in
          match comm_bad with
          | Some c ->
              err "comm %d->%d does not join its endpoints' processors"
                c.edge.Procnet.Graph.src c.edge.Procnet.Graph.dst
          | None ->
              let route_bad =
                List.find_opt
                  (fun c ->
                    let rec hops = function
                      | a :: (b :: _ as rest) ->
                          (match Archi.link_between t.arch a b with
                          | None -> true
                          | Some _ -> hops rest)
                      | _ -> false
                    in
                    hops c.route)
                  t.comms
              in
              (match route_bad with
              | Some c ->
                  err "comm %d->%d routed over a missing link"
                    c.edge.Procnet.Graph.src c.edge.Procnet.Graph.dst
              | None -> Ok ())))

let link_orders t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let rec each = function
        | a :: (b :: _ as rest) ->
            let key = (a, b) in
            Hashtbl.replace table key
              (c :: Option.value ~default:[] (Hashtbl.find_opt table key));
            each rest
        | _ -> ()
      in
      each c.route)
    t.comms;
  Hashtbl.fold
    (fun key comms acc ->
      (key, List.sort (fun a b -> compare (a.start, a.edge) (b.start, b.edge)) comms)
      :: acc)
    table []
  |> List.sort compare

(* Deadlock freedom of the static executive: build the union of
   (a) op precedence induced by message causality (producer op -> comm ->
   consumer op) and (b) per-link FIFO order between consecutive comms, and
   check it is acyclic. Vertices: ops keyed by (node, part) and comms keyed
   by identity. *)
let deadlock_free t =
  let comm_key c = `Comm (c.edge.Procnet.Graph.src, c.edge.Procnet.Graph.src_port,
                          c.edge.Procnet.Graph.dst, c.edge.Procnet.Graph.dst_port) in
  let vertices = Hashtbl.create 64 in
  let n = ref 0 in
  let vid k =
    match Hashtbl.find_opt vertices k with
    | Some i -> i
    | None ->
        let i = !n in
        incr n;
        Hashtbl.add vertices k i;
        i
  in
  let edges = ref [] in
  let add_edge a b = edges := (vid a, vid b) :: !edges in
  (* Producer -> comm -> consumer, resolving split control operations by the
     port the channel uses (mirrors Dag.of_graph): a master's "task" output
     leaves its Dispatch half while "result"/"packet" inputs enter its
     Collect half; a mem's "state" output leaves Emit, "update" enters
     Store. *)
  let node_kind n = (Procnet.Graph.node t.graph n).Procnet.Graph.kind in
  let producer_part node port =
    match node_kind node with
    | Procnet.Graph.DfMaster _ | Procnet.Graph.TfMaster _ ->
        if port = "task" then Dag.Dispatch else Dag.Collect
    | Procnet.Graph.Mem _ -> Dag.Emit
    | _ -> Dag.Whole
  in
  let consumer_part node port =
    match node_kind node with
    | Procnet.Graph.DfMaster _ | Procnet.Graph.TfMaster _ ->
        if port = "result" || port = "packet" then Dag.Collect else Dag.Dispatch
    | Procnet.Graph.Mem _ -> Dag.Store
    | _ -> Dag.Whole
  in
  List.iter
    (fun c ->
      let e = c.edge in
      add_edge
        (`Op (e.Procnet.Graph.src, producer_part e.Procnet.Graph.src e.Procnet.Graph.src_port))
        (comm_key c);
      add_edge (comm_key c)
        (`Op (e.Procnet.Graph.dst, consumer_part e.Procnet.Graph.dst e.Procnet.Graph.dst_port)))
    t.comms;
  (* Intra-process ordering: a master dispatches before it collects. *)
  List.iter
    (fun (op : op_slot) ->
      if op.part = Dag.Dispatch then
        add_edge (`Op (op.node, Dag.Dispatch)) (`Op (op.node, Dag.Collect)))
    t.ops;
  List.iter
    (fun (_, comms) ->
      let rec chain = function
        | a :: (b :: _ as rest) ->
            add_edge (comm_key a) (comm_key b);
            chain rest
        | _ -> ()
      in
      chain comms)
    (link_orders t);
  (* Cycle check via DFS over the collected edges. *)
  let nv = !n in
  let adj = Array.make nv [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) !edges;
  let color = Array.make nv 0 in
  let rec dfs u =
    if color.(u) = 1 then false
    else if color.(u) = 2 then true
    else begin
      color.(u) <- 1;
      let ok = List.for_all dfs adj.(u) in
      color.(u) <- 2;
      ok
    end
  in
  let acyclic = ref true in
  for u = 0 to nv - 1 do
    if color.(u) = 0 && not (dfs u) then acyclic := false
  done;
  !acyclic

let gantt ?(width = 72) t =
  let buf = Buffer.create 512 in
  let horizon = if t.makespan > 0.0 then t.makespan else 1.0 in
  Buffer.add_string buf
    (Printf.sprintf "predicted schedule: 0 .. %.3f ms\n" (horizon *. 1e3));
  let nprocs = Archi.nprocs t.arch in
  for p = 0 to nprocs - 1 do
    let cells = Bytes.make width '.' in
    List.iter
      (fun (op : op_slot) ->
        if op.proc = p then begin
          let c0 = int_of_float (op.start /. horizon *. float_of_int width) in
          let c1 = int_of_float (op.finish /. horizon *. float_of_int width) in
          let mark =
            match (Procnet.Graph.node t.graph op.node).Procnet.Graph.kind with
            | Procnet.Graph.DfWorker _ | Procnet.Graph.TfWorker _
            | Procnet.Graph.ScmCompute _ ->
                'w'
            | Procnet.Graph.Compute _ -> '#'
            | _ -> '+'
          in
          for c = max 0 c0 to min (width - 1) (max c0 c1) do
            Bytes.set cells c mark
          done
        end)
      t.ops;
    Buffer.add_string buf (Printf.sprintf "P%-3d |%s|\n" p (Bytes.to_string cells))
  done;
  Buffer.contents buf

let pp_summary ppf t =
  let nprocs = Archi.nprocs t.arch in
  let used = Array.make nprocs false in
  Array.iter (fun p -> used.(p) <- true) t.placement;
  let nused = Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 used in
  Format.fprintf ppf
    "@[<v2>schedule for %s on %s:@ %d processes on %d/%d processors,@ %d \
     communications,@ predicted latency %.3f ms"
    (Procnet.Graph.name t.graph) (Archi.name t.arch)
    (Procnet.Graph.nnodes t.graph) nused nprocs (List.length t.comms)
    (t.makespan *. 1e3);
  (match t.pipeline with
  | Some p ->
      Format.fprintf ppf ",@ pipelined: %d stages, %d frames in flight, period %.3f ms"
        (List.length p.stages) p.frames_in_flight (p.predicted_period *. 1e3)
  | None -> ());
  Format.fprintf ppf "@]"

let nops t = List.length t.ops
let ncomms t = List.length t.comms
