type t = {
  node_cycles : Procnet.Graph.node -> float;
  edge_bytes : Procnet.Graph.edge -> int;
  send_overhead_cycles : float;
  recv_overhead_cycles : float;
}

let node_function (node : Procnet.Graph.node) =
  match node.kind with
  | Input fn | Output fn | Compute fn -> Some fn
  | ScmCompute { fn; _ } -> Some fn
  | ScmSplit { fn; _ } | ScmMerge { fn; _ } -> Some fn
  | DfMaster { acc; _ } | TfMaster { acc; _ } -> Some acc
  | DfWorker { comp } -> Some comp
  | TfWorker { work } -> Some work
  | Mem _ | Join | Fork | Router _ -> None

(* Per-message kernel overheads of the simulated machine (Machine.Sim
   charges 200 cycles to post a send and 150 to complete a recv); the
   predicted comm slots are calibrated against the same constants so the
   conformance joiner compares like with like. *)
let default_send_overhead_cycles = 200.0
let default_recv_overhead_cycles = 150.0
let local_copy_bandwidth = 4e8

let make ?(fn_cycles = fun _ -> None) ?(control_cycles = 500.0)
    ?(default_fn_cycles = 10_000.0) ?(edge_bytes = fun _ -> None)
    ?(default_edge_bytes = 1024)
    ?(send_overhead_cycles = default_send_overhead_cycles)
    ?(recv_overhead_cycles = default_recv_overhead_cycles) () =
  let node_cycles node =
    match node_function node with
    | None -> control_cycles
    | Some fn -> (
        match fn_cycles fn with Some c -> c | None -> default_fn_cycles)
  in
  let edge_bytes e =
    match edge_bytes e with Some b -> b | None -> default_edge_bytes
  in
  { node_cycles; edge_bytes; send_overhead_cycles; recv_overhead_cycles }

let of_table table ~sample =
  let fn_cycles name =
    match Skel.Funtable.find_opt table name with
    | None -> None
    | Some entry -> (
        match sample name with
        | Some v -> Some (entry.Skel.Funtable.cost v)
        | None -> None)
  in
  make ~fn_cycles ()
