(* The pluggable mapping engine: every adequation strategy is a named,
   registered [t]; Passes/skipperc look strategies up by name so the
   scheduler is an extension point instead of a closed variant.

   Besides wrapping the existing HEFT heuristic and the fixed placements,
   this module implements the frame-pipelined mappers of Benoit, Kosch,
   Rehn-Sonigo & Robert ("Bi-criteria Pipeline Mappings"): the process
   network is linearised into a stage chain and partitioned into contiguous
   intervals, one interval per processor, so successive frames overlap
   across the stages and the steady-state period drops to the bottleneck
   interval instead of the end-to-end latency. *)

type point = {
  point_label : string;
  point_schedule : Schedule.t;
  point_latency : float;
  point_period : float;
}

type t = {
  name : string;
  describe : string;
  map : Cost.t -> Archi.t -> Procnet.Graph.t -> Schedule.t;
  frontier : (Cost.t -> Archi.t -> Procnet.Graph.t -> point list) option;
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let order : string list ref = ref []

let register m =
  if Hashtbl.mem registry m.name then
    invalid_arg (Printf.sprintf "Mapper.register: duplicate strategy %S" m.name);
  Hashtbl.add registry m.name m;
  order := !order @ [ m.name ]

let find name = Hashtbl.find_opt registry name
let names () = !order
let registered () = List.map (Hashtbl.find registry) !order

let point schedule label =
  {
    point_label = label;
    point_schedule = schedule;
    point_latency = schedule.Schedule.makespan;
    point_period = Schedule.period schedule;
  }

let map m = m.map

let frontier m cost arch g =
  match m.frontier with
  | Some f -> f cost arch g
  | None -> [ point (m.map cost arch g) m.name ]

(* ------------------------------------------------------------------ *)
(* Interval mapping (the pipelined strategies)                         *)

(* Placement-agnostic means, as in HEFT's rank computation. *)
let mean_link_costs arch =
  match Archi.links arch with
  | [] -> (0.0, infinity)
  | links ->
      let n = float_of_int (List.length links) in
      let startup =
        List.fold_left (fun acc l -> acc +. l.Archi.startup) 0.0 links /. n
      in
      let bw =
        List.fold_left (fun acc l -> acc +. l.Archi.bandwidth) 0.0 links /. n
      in
      (startup, bw)

let mean_cycle_time arch =
  let procs = Archi.processors arch in
  Array.fold_left (fun acc p -> acc +. p.Archi.cycle_time) 0.0 procs
  /. float_of_int (Array.length procs)

(* Stage chain: process-network nodes by first appearance of one of their
   ops in the (deterministic) topological order of the scheduling DAG. *)
let linearize (dag : Dag.t) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun i ->
      let node = dag.Dag.ops.(i).Dag.node in
      if Hashtbl.mem seen node then None
      else begin
        Hashtbl.add seen node ();
        Some node
      end)
    (Dag.topological_order dag)
  |> Array.of_list

(* Best contiguous partition of the stage chain into [k] intervals,
   minimising the bottleneck interval time (compute load of the interval
   plus the communication entering it from earlier intervals, over mean
   link characteristics). Returns (bottleneck, cut points). Deterministic:
   ties keep the earliest cut. *)
let interval_partition cost arch (dag : Dag.t) seq k =
  ignore cost;
  let n = Array.length seq in
  let ct = mean_cycle_time arch in
  let startup, bw = mean_link_costs arch in
  let pos = Hashtbl.create 16 in
  Array.iteri (fun i node -> Hashtbl.replace pos node i) seq;
  let node_work = Array.make n 0.0 in
  Array.iter
    (fun (op : Dag.op) ->
      let i = Hashtbl.find pos op.Dag.node in
      node_work.(i) <- node_work.(i) +. (op.Dag.cycles *. ct))
    dag.Dag.ops;
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. node_work.(i)
  done;
  let comm bytes =
    if bw = infinity then 0.0 else startup +. (float_of_int bytes /. bw)
  in
  (* inbound.(a).(b): communication entering interval [a, b) from nodes
     before position a. *)
  let deps =
    List.filter_map
      (fun (d : Dag.dep) ->
        match d.Dag.edge with
        | None -> None
        | Some _ ->
            let sp = Hashtbl.find pos dag.Dag.ops.(d.Dag.src_op).Dag.node in
            let dp = Hashtbl.find pos dag.Dag.ops.(d.Dag.dst_op).Dag.node in
            if sp = dp then None else Some (min sp dp, max sp dp, d.Dag.bytes))
      dag.Dag.deps
  in
  let interval_cost a b =
    let inbound =
      List.fold_left
        (fun acc (sp, dp, bytes) ->
          if sp < a && dp >= a && dp < b then acc +. comm bytes else acc)
        0.0 deps
    in
    prefix.(b) -. prefix.(a) +. inbound
  in
  (* best.(j).(b): minimal bottleneck partitioning seq[0..b) into j
     intervals; cut.(j).(b) the position of the last cut. *)
  let best = Array.make_matrix (k + 1) (n + 1) infinity in
  let cut = Array.make_matrix (k + 1) (n + 1) 0 in
  best.(0).(0) <- 0.0;
  for j = 1 to k do
    for b = j to n - (k - j) do
      for a = j - 1 to b - 1 do
        let c = Float.max best.(j - 1).(a) (interval_cost a b) in
        if c < best.(j).(b) then begin
          best.(j).(b) <- c;
          cut.(j).(b) <- a
        end
      done
    done
  done;
  let rec cuts j b acc =
    if j = 0 then acc else cuts (j - 1) cut.(j).(b) (cut.(j).(b) :: acc)
  in
  (best.(k).(n), cuts k n [ n ])

(* Schedule the chain partition: interval [i] on processor [i], pipelining
   metadata from the resulting schedule's actual per-processor loads. *)
let interval_schedule cost arch g (dag : Dag.t) seq cuts =
  let placement = Array.make (Procnet.Graph.nnodes g) 0 in
  let bounds =
    (* cuts = [c0=0? ...]; cuts from interval_partition: positions of the
       k interval starts followed by n *)
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      | _ -> []
    in
    pairs cuts
  in
  List.iteri
    (fun stage (a, b) ->
      for i = a to b - 1 do
        placement.(seq.(i)) <- stage
      done)
    bounds;
  ignore dag;
  let sched = Place.of_placement cost arch g placement in
  let proc_load = Array.make (Archi.nprocs arch) 0.0 in
  List.iter
    (fun (op : Schedule.op_slot) ->
      proc_load.(op.Schedule.proc) <-
        proc_load.(op.Schedule.proc)
        +. (op.Schedule.finish -. op.Schedule.start))
    sched.Schedule.ops;
  let stages =
    List.mapi
      (fun stage (a, b) ->
        {
          Schedule.stage_proc = stage;
          stage_nodes = Array.to_list (Array.sub seq a (b - a));
          stage_load = proc_load.(stage);
        })
      bounds
  in
  {
    sched with
    Schedule.pipeline =
      Some
        {
          Schedule.frames_in_flight = List.length bounds;
          predicted_period = Schedule.resource_period sched;
          stages;
        };
  }

let interval_candidates cost arch g =
  let dag = Dag.of_graph cost g in
  let seq = linearize dag in
  let k_max = min (Archi.nprocs arch) (Array.length seq) in
  List.init k_max (fun i ->
      let k = i + 1 in
      let bottleneck, cuts = interval_partition cost arch dag seq k in
      (k, bottleneck, lazy (interval_schedule cost arch g dag seq cuts)))

(* ------------------------------------------------------------------ *)
(* Built-in strategies                                                 *)

let heft =
  {
    name = "heft";
    describe = "HEFT list scheduling: minimise one-iteration latency";
    map = Heft.map;
    frontier = None;
  }

let canonical =
  {
    name = "canonical";
    describe = "paper Fig. 1 layout: control on P0, workers spread";
    map =
      (fun cost arch g -> Place.of_placement cost arch g (Place.canonical g arch));
    frontier = None;
  }

let roundrobin =
  {
    name = "roundrobin";
    describe = "node i on processor i mod P";
    map =
      (fun cost arch g ->
        Place.of_placement cost arch g (Place.round_robin g arch));
    frontier = None;
  }

let throughput_map cost arch g =
  let candidates = interval_candidates cost arch g in
  (* smallest predicted bottleneck; ties towards fewer stages (equal
     throughput at lower latency and fewer processors) *)
  let _, _, sched =
    List.fold_left
      (fun (bk, bb, bs) (k, b, s) ->
        if b < bb then (k, b, s) else (bk, bb, bs))
      (match candidates with
      | (k, b, s) :: _ -> (k, b, s)
      | [] -> assert false)
      (match candidates with [] -> [] | _ :: tl -> tl)
  in
  Lazy.force sched

let throughput =
  {
    name = "throughput";
    describe =
      "frame-pipelined interval mapping: minimise the steady-state period";
    map = throughput_map;
    frontier = None;
  }

(* No emitted point dominated by another (minimising both latency and
   period); deterministic order by (latency, period, label). *)
let pareto points =
  let dominates p q =
    p.point_latency <= q.point_latency
    && p.point_period <= q.point_period
    && (p.point_latency < q.point_latency || p.point_period < q.point_period)
  in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.point_latency, a.point_period, a.point_label)
          (b.point_latency, b.point_period, b.point_label))
      points
  in
  List.filter
    (fun p -> not (List.exists (fun q -> q != p && dominates q p) sorted))
    sorted
  |> List.fold_left
       (fun acc p ->
         match acc with
         | q :: _
           when q.point_latency = p.point_latency
                && q.point_period = p.point_period ->
             acc (* coincident point: keep the first label *)
         | _ -> p :: acc)
       []
  |> List.rev

let bicriteria_frontier cost arch g =
  let interval_points =
    List.map
      (fun (k, _, sched) -> point (Lazy.force sched) (Printf.sprintf "interval-k%d" k))
      (interval_candidates cost arch g)
  in
  pareto (point (Heft.map cost arch g) "heft" :: interval_points)

let bicriteria_map cost arch g =
  (* knee of the frontier: minimal latency x period product, ties towards
     lower latency then label order *)
  match bicriteria_frontier cost arch g with
  | [] -> assert false
  | p :: ps ->
      let key p = (p.point_latency *. p.point_period, p.point_latency, p.point_label) in
      let best =
        List.fold_left (fun b q -> if key q < key b then q else b) p ps
      in
      best.point_schedule

let bicriteria =
  {
    name = "bicriteria";
    describe =
      "bounded latency/throughput search: schedule the Pareto knee, expose \
       the frontier";
    map = bicriteria_map;
    frontier = Some bicriteria_frontier;
  }

let () = List.iter register [ heft; canonical; roundrobin; throughput; bicriteria ]

(* ------------------------------------------------------------------ *)
(* Frontier serialisation                                              *)

let frontier_json ~strategy ~arch points =
  let module J = Support.Json in
  let point_json p =
    let fif =
      match p.point_schedule.Schedule.pipeline with
      | Some pl -> pl.Schedule.frames_in_flight
      | None -> 1
    in
    J.Obj
      [
        ("label", J.Str p.point_label);
        ("latency", J.Num p.point_latency);
        ("period", J.Num p.point_period);
        ("frames_in_flight", J.Num (float_of_int fif));
        ("placement",
         J.Arr
           (Array.to_list p.point_schedule.Schedule.placement
           |> List.map (fun pr -> J.Num (float_of_int pr))));
      ]
  in
  J.to_string
    (J.Obj
       [
         ("strategy", J.Str strategy);
         ("arch", J.Str (Archi.name arch));
         ("nprocs", J.Num (float_of_int (Archi.nprocs arch)));
         ("points", J.Arr (List.map point_json points));
       ])
