module V = Skel.Value

(* Streamed strip telemetry for the stateful df farm family: each frame's
   image is cut into horizontal strips whose pixel sums become the farm's
   task list, and each state-access mode gets a small deterministic compute
   function so the spec corpus and the conformance tests can pin
   parallel == sequential-oracle equivalence per mode. *)

let int_of v = V.to_int v
let pair_of name v =
  match v with
  | V.Tuple [ a; b ] -> (a, b)
  | _ -> raise (V.Type_error (name ^ " expects a pair"))

let register ?(nstrips = 8) table =
  let reg = Skel.Funtable.register table in
  reg "strip_sums" ~arity:1
    ~cost:(fun v ->
      match v with
      | V.Image img -> 200.0 +. float_of_int (Vision.Image.size img)
      | _ -> 200.0)
    (fun v ->
      match v with
      | V.Image img ->
          V.List
            (List.map
               (fun band ->
                 let strip = Vision.Image.extract_band img band in
                 V.Int (Vision.Image.fold ( + ) 0 strip))
               (Vision.Image.row_bands img nstrips))
      | _ -> raise (V.Type_error "strip_sums expects an image"));
  (* stateless / accumulator compute: coarse luminance bucket *)
  reg "bucket" ~arity:1 ~cost:(fun _ -> 400.0) (fun v -> V.Int (int_of v / 16));
  (* readonly compute: scale by the broadcast gain *)
  reg "gain_scale" ~arity:1
    ~cost:(fun _ -> 400.0)
    (fun v ->
      let g, x = pair_of "gain_scale" v in
      V.Int (int_of g * int_of x));
  (* owner compute: running per-partition peak, state travels with the task *)
  reg "owner_peak" ~arity:1
    ~cost:(fun _ -> 400.0)
    (fun v ->
      let s, x = pair_of "owner_peak" v in
      let peak = max (int_of s) (int_of x) in
      V.Tuple [ V.Int peak; V.Int peak ]);
  (* resource compute: serial smoothing of successive sums *)
  reg "res_smooth" ~arity:1
    ~cost:(fun _ -> 400.0)
    (fun v ->
      let s, x = pair_of "res_smooth" v in
      let s' = (int_of s + int_of x) / 2 in
      V.Tuple [ V.Int s'; V.Int s' ]);
  reg "add" ~arity:2
    ~cost:(fun _ -> 50.0)
    (fun v ->
      let z, y = pair_of "add" v in
      V.Int (int_of z + int_of y))

let comp_for = function
  | Skel.Ir.Stateless | Skel.Ir.Accumulator -> "bucket"
  | Skel.Ir.Read_only -> "gain_scale"
  | Skel.Ir.Owner -> "owner_peak"
  | Skel.Ir.Resource -> "res_smooth"

let init_for ?(nworkers = 4) mode =
  match mode with
  | Skel.Ir.Stateless | Skel.Ir.Accumulator -> V.Int 0
  | Skel.Ir.Read_only -> V.Tuple [ V.Int 3; V.Int 0 ]
  | Skel.Ir.Owner ->
      V.Tuple [ V.List (List.init nworkers (fun _ -> V.Int 0)); V.Int 0 ]
  | Skel.Ir.Resource -> V.Tuple [ V.Int 128; V.Int 0 ]

let ir ?(frames = 1) ?(nworkers = 4) mode =
  Skel.Ir.program ~frames
    ("stateful_" ^ Skel.Ir.state_mode_name mode)
    (Skel.Ir.Pipe
       [
         Skel.Ir.Seq "strip_sums";
         Skel.Ir.Df
           {
             nworkers;
             comp = comp_for mode;
             acc = "add";
             init = init_for ~nworkers mode;
             state = mode;
           };
       ])

let input_value ?(width = 64) ?(height = 64) () =
  let img = Vision.Image.create width height in
  V.Image (Vision.Image.mapi (fun x y _ -> ((7 * x) + (13 * y)) mod 251) img)
