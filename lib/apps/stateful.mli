(** Streamed strip telemetry exercising the stateful df farm family.

    Each frame's image is cut into horizontal strips whose pixel sums become
    the farm's task list; every {!Skel.Ir.state_mode} has a small
    deterministic compute function so the spec corpus and the conformance
    tests can pin parallel == sequential-oracle equivalence per mode:

    - [bucket] (stateless/accumulator): coarse luminance bucket of a sum;
    - [gain_scale] (readonly): scale by the broadcast gain;
    - [owner_peak] (owner): running per-partition peak;
    - [res_smooth] (resource): serial smoothing of successive sums;
    - [add]: the shared integer fold. *)

val register : ?nstrips:int -> Skel.Funtable.t -> unit
(** Registers [strip_sums] (image -> per-strip pixel sums, [nstrips]
    defaulting to 8), the per-mode compute functions and the [add] fold. *)

val comp_for : Skel.Ir.state_mode -> string
(** The compute-function name the mode's farm uses. *)

val init_for : ?nworkers:int -> Skel.Ir.state_mode -> Skel.Value.t
(** An init value with the shape the mode demands ([nworkers] partitions for
    owner, default 4). *)

val ir : ?frames:int -> ?nworkers:int -> Skel.Ir.state_mode -> Skel.Ir.program
(** [Pipe [strip_sums; Df mode]] over [nworkers] (default 4) workers. *)

val input_value : ?width:int -> ?height:int -> unit -> Skel.Value.t
(** A deterministic gradient image (default 64x64). *)
