(** Typed stage artifacts and per-stage instrumentation records.

    The Fig. 2 toolchain is a sequence of distinct stages; the pass manager
    ({!Passes}) threads one {!artifact} value from stage to stage and records
    one {!report} per executed pass — wall time, an artifact-size metric
    (IR nodes, graph processes/channels, schedule slots, ...) and whether the
    result came from the memoization cache. Reports print as a table
    ([skipperc --timings], bench E9) or dump as JSON. *)

type artifact =
  | Source of string  (** raw specification text *)
  | Ast of Minicaml.Ast.program  (** parsed, untyped *)
  | Typed of Minicaml.Ast.program * (string * string) list
      (** the same AST plus the inferred top-level schemes *)
  | Ir of Skel.Ir.program * Skel.Value.t option
      (** skeletal program + the input value when the source fixes one;
          produced by extraction and again (rewritten) by the transform
          pass *)
  | Graph of Procnet.Graph.t  (** expanded process network *)
  | Costed of Procnet.Graph.t * Syndex.Cost.t
      (** the network paired with the cost model the mapper will use *)
  | Schedule of Syndex.Schedule.t  (** adequation result *)
  | Macro of string  (** emitted m4 macro-code *)
  | Result of Executive.result  (** a finished simulated run *)

val kind : artifact -> string
(** Short constructor name, e.g. ["graph"]. *)

val size : artifact -> int * string
(** A size metric for the artifact with its unit label, e.g.
    [(34, "procs+chans")] for a graph, [(12, "ir nodes")] for a program. *)

val fingerprint : artifact -> string
(** Content digest of the artifact, used to seed the memoization key chain.
    Only [Source] and [Ir] (the two pipeline entry artifacts) need to be
    cheap; the rest digest a rendering. *)

val render : artifact -> string
(** Human-readable dump of the artifact ([skipperc --dump-stage]): pretty
    AST, type schemes, IR, DOT graph, per-node cost table, schedule summary
    + Gantt, macro-code, or run digest. *)

type report = {
  pass : string;  (** pass name *)
  start : float;  (** absolute wall-clock time the pass began, seconds *)
  wall : float;  (** wall-clock seconds spent in the pass *)
  size : int;  (** artifact size metric (see {!size}) *)
  metric : string;  (** unit label of [size] *)
  cached : bool;  (** true when the artifact came from the cache *)
  detail : string;  (** pass-specific note (rules applied, ...); may be empty *)
}

val emit_reports :
  ?t0:float -> Skipper_trace.Event.timeline -> report list -> unit
(** Append one span per report to the timeline's compile lane, with times
    re-based to [t0] (default: the first report's [start]) — this is how the
    pass manager's stage instrumentation lands on the same timeline as the
    simulator's events ([skipperc --trace-out]). *)

val pp_report_table : Format.formatter -> report list -> unit
(** Fixed-width table, one row per pass, in pipeline order. *)

val reports_to_json : report list -> string
(** JSON array of objects with the {!report} fields. *)
