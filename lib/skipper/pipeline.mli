(** The SKiPPER environment, end to end (paper Fig. 2).

    A thin façade over the staged pass manager ({!Passes}): compilation runs
    the front-end passes (parse, typecheck, extract, transform, expand),
    mapping and execution run the target passes (cost, map, emit, simulate).
    Every pass is timed into a {!Stage.report} retrievable with {!reports} /
    {!pp_timings}, and front-end artifacts are memoized when a
    {!Passes.cache} is supplied — compiling one source for many
    architectures pays the front end once (the paper's §4 "almost
    instantaneous" processor-count variants). *)

type compiled = {
  name : string;
  table : Skel.Funtable.t;
  program : Skel.Ir.program;
  graph : Procnet.Graph.t;
  input : Skel.Value.t option;  (** program input when the source fixes it *)
  signatures : (string * string) list;
      (** inferred type schemes of the top-level names (source path only) *)
  ctx : Passes.ctx;  (** the pass context; accumulates stage reports *)
  stages : (string * Stage.artifact) list;
      (** every front-end pass's output, by pass name, in pipeline order *)
}

type strategy = Passes.strategy
(** A mapping-strategy name from the {!Syndex.Mapper} registry (e.g.
    ["heft"], ["canonical"], ["roundrobin"], ["throughput"],
    ["bicriteria"]); see {!Syndex.Mapper.names}. *)

exception Compile_error of string
(** Carries a rendered, located error message from any stage (an alias of
    {!Passes.Pass_error}). *)

val compile_source :
  ?frames:int ->
  ?optimize:bool ->
  ?df_state:Skel.Ir.state_mode ->
  ?cache:Passes.cache ->
  table:Skel.Funtable.t ->
  string ->
  compiled
(** Parse, type-check (with the skeleton signatures in scope), extract the
    skeletal program, optionally normalise it with the transformational
    rules ({!Skel.Transform}, default off), and expand to a process network.
    Wrapper glue functions are registered into [table]. [df_state] overrides
    the declared state-access mode of every [df] farm (the [--df-state]
    flag); the program's init value must already have the target mode's
    shape. With [cache], every front-end artifact is memoized on (content
    hash, pass, options, table identity). *)

val compile_ir :
  ?optimize:bool ->
  ?df_state:Skel.Ir.state_mode ->
  ?cache:Passes.cache ->
  table:Skel.Funtable.t ->
  Skel.Ir.program ->
  compiled
(** The embedded-API entry: validates a hand-built program, then runs the
    transform and expand passes ([df_state] as in {!compile_source}). *)

val emulate : compiled -> Skel.Value.t -> Skel.Value.t
(** Sequential emulation via the declarative semantics ({!Skel.Sem}). *)

val default_cost : compiled -> Syndex.Cost.t
(** Static cost model for mapping; uses the generic defaults (the simulator
    charges exact data-dependent costs at run time regardless). *)

val map :
  ?strategy:strategy -> ?cost:Syndex.Cost.t -> compiled -> Archi.t ->
  Syndex.Schedule.t
(** Produce the static schedule/placement (default strategy ["canonical"],
    the paper's Fig. 1 layout; ["heft"] enables the automatic adequation
    heuristic, ["throughput"]/["bicriteria"] the frame-pipelined interval
    mappers). Runs the cost and map passes. *)

val execute :
  ?trace:bool ->
  ?input_period:float ->
  ?faults:(int * float) list ->
  ?restores:(int * float) list ->
  ?link_faults:Machine.Sim.link_fault list ->
  ?recovery:Executive.recovery ->
  ?checkpoint_every:int ->
  ?strategy:strategy ->
  ?cost:Syndex.Cost.t ->
  ?input:Skel.Value.t ->
  compiled ->
  Archi.t ->
  Executive.result
(** Map then run on the simulated machine (the cost, map and simulate
    passes). [input] overrides the compiled input; raises [Compile_error]
    when neither is available. [faults]/[restores]/[link_faults] inject the
    fault plan into the simulated machine, [recovery] enables the
    fault-tolerant df farm and [checkpoint_every] the master
    checkpoint/replay discipline (see {!Executive.run}); a stalled degraded
    run comes back as a [Stalled] outcome, not an exception. *)

val execute_with_schedule :
  ?trace:bool ->
  ?input_period:float ->
  ?faults:(int * float) list ->
  ?restores:(int * float) list ->
  ?link_faults:Machine.Sim.link_fault list ->
  ?recovery:Executive.recovery ->
  ?checkpoint_every:int ->
  ?strategy:strategy ->
  ?cost:Syndex.Cost.t ->
  ?input:Skel.Value.t ->
  compiled ->
  Archi.t ->
  Syndex.Schedule.t * Executive.result
(** {!execute}, also returning the static schedule the map pass produced —
    the predicted side of a conformance comparison
    ({!Skipper_trace.Conformance}) against the run's measured trace. *)

val check_equivalence :
  ?input:Skel.Value.t -> compiled -> Archi.t -> (Skel.Value.t, string) result
(** Runs both paths with fresh state and compares results; [Ok v] returns
    the common value. This is the paper's correctness story: the emulated
    specification and the distributed executive must agree. *)

val macro_code : compiled -> Syndex.Schedule.t -> string
(** The emit pass: per-processor m4 macro-code for a schedule. *)

val reports : compiled -> Stage.report list
(** Per-stage instrumentation, in execution order, accumulated across
    compile / map / execute calls on this value. *)

val timeline :
  ?result:Executive.result ->
  ?slo:Skipper_trace.Series.Slo.report ->
  compiled ->
  Skipper_trace.Event.timeline
(** One unified timeline for the whole toolchain run: every stage report as
    a span on the compile lane, plus — when [result] is given — the
    simulated run's full message-lifecycle trace (processor lanes, link
    lanes, flow arrows), plus — when [slo] is given — the SLO monitor's
    state transitions as instants on the SLO lanes. Export with
    {!Skipper_trace.Chrome.to_json} or {!Skipper_trace.Svg.gantt}. *)

val pp_timings : Format.formatter -> compiled -> unit
(** {!reports} as a fixed-width table. *)

val timings_json : compiled -> string
(** {!reports} as a JSON array. *)

val dump_stage :
  ?arch:Archi.t ->
  ?strategy:strategy ->
  ?cost:Syndex.Cost.t ->
  ?input:Skel.Value.t ->
  compiled ->
  string ->
  (string, string) result
(** Render one stage's artifact by pass name. Front-end stages come from
    the recorded compile artifacts; target stages ([cost], [map], [emit],
    [simulate]) are (re)run against [arch]. *)

val graph_dot : compiled -> string
val pp_signatures : Format.formatter -> compiled -> unit
