type strategy = string

exception Pass_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Pass_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Memoization cache                                                   *)

(* Bump whenever the marshalled shape of cached front-end artifacts changes
   (Stage.artifact constructors, Funtable.derivation, or anything they
   embed): persisted entries written under another stamp read as misses. *)
let artifact_format = "skipper-artifact-v2"

(* A cached pass result is the artifact plus the derived-function
   registrations the producing pass installed into its table — pure data
   (Funtable.derivation), replayed into the consuming table on a hit so the
   artifact's references resolve. This is what lets a hit cross tables and
   processes: the old scheme keyed on the table's physical identity
   precisely because these side effects were unrecorded closures. *)
type cached_entry = {
  artifact : Stage.artifact;
  derivations : (string * Skel.Funtable.derivation) list;
}

type cache = {
  entries : (string, cached_entry) Hashtbl.t;
  store : Support.Store.t option;
  mutable hits : int;
  mutable misses : int;
  mutable store_hits : int;
}

let create_cache ?store () =
  { entries = Hashtbl.create 64; store; hits = 0; misses = 0; store_hits = 0 }

let cache_stats c = (c.hits, c.misses)
let store_hits c = c.store_hits
let cache_store c = c.store

let reset_cache_stats c =
  c.hits <- 0;
  c.misses <- 0;
  c.store_hits <- 0

(* ------------------------------------------------------------------ *)
(* Context                                                             *)

type ctx = {
  table : Skel.Funtable.t;
  frames : int;
  optimize : bool;
  df_state : Skel.Ir.state_mode option;
      (* compile-time override: rewrite every Df stage to this mode *)
  arch : Archi.t option;
  strategy : strategy;
  cost_model : Syndex.Cost.t option;
  input : Skel.Value.t option;
  input_period : float option;
  trace : bool;
  faults : (int * float) list;  (* processor halts, (proc, at) *)
  restores : (int * float) list;
  link_faults : Machine.Sim.link_fault list;
  recovery : Executive.recovery option;
  checkpoint_every : int option;
  cache : cache option;
  mutable key : string;  (* running content hash; "" until the first pass *)
  reports : Stage.report list ref;  (* newest first; shared with retargets *)
}

let make_ctx ?cache ?(frames = 1) ?(optimize = false) ?df_state table =
  {
    table;
    frames;
    optimize;
    df_state;
    arch = None;
    strategy = "canonical";
    cost_model = None;
    input = None;
    input_period = None;
    trace = false;
    faults = [];
    restores = [];
    link_faults = [];
    recovery = None;
    checkpoint_every = None;
    cache;
    key = "";
    reports = ref [];
  }

let retarget ?cost ?input ?input_period ?(trace = false) ?(faults = [])
    ?(restores = []) ?(link_faults = []) ?recovery ?checkpoint_every ~strategy
    ctx arch =
  {
    ctx with
    arch = Some arch;
    strategy;
    cost_model = cost;
    input = (match input with Some _ -> input | None -> ctx.input);
    input_period;
    trace;
    faults;
    restores;
    link_faults;
    recovery;
    checkpoint_every;
  }

let reports ctx = List.rev !(ctx.reports)

(* ------------------------------------------------------------------ *)
(* Passes                                                              *)

type pass = {
  name : string;
  cacheable : bool;
  token : ctx -> string;  (* the options this pass reads, for the key *)
  apply : ctx -> Stage.artifact -> Stage.artifact * string;
}

let pass_name p = p.name
let no_token _ = ""

let mismatch pass art =
  error "pass %s: unexpected %s artifact" pass (Stage.kind art)

let lift = function Ok v -> v | Error msg -> error "%s" msg

let parse =
  {
    name = "parse";
    cacheable = true;
    token = no_token;
    apply =
      (fun _ctx -> function
        | Stage.Source src -> (Stage.Ast (lift (Minicaml.Stages.parse src)), "")
        | art -> mismatch "parse" art);
  }

let typecheck =
  {
    name = "typecheck";
    cacheable = true;
    token = no_token;
    apply =
      (fun _ctx -> function
        | Stage.Ast ast ->
            let schemes = lift (Minicaml.Stages.typecheck ast) in
            (Stage.Typed (ast, schemes), "")
        | art -> mismatch "typecheck" art);
  }

let extract =
  {
    name = "extract";
    cacheable = true;
    token = (fun ctx -> string_of_int ctx.frames);
    apply =
      (fun ctx -> function
        | Stage.Typed (ast, _) | Stage.Ast ast ->
            let ex =
              lift (Minicaml.Stages.extract ~frames:ctx.frames ctx.table ast)
            in
            ( Stage.Ir (ex.Minicaml.Extract.program, ex.Minicaml.Extract.input),
              "" )
        | art -> mismatch "extract" art);
  }

let transform =
  {
    name = "transform";
    cacheable = true;
    token =
      (fun ctx ->
        Printf.sprintf "%b/%s" ctx.optimize
          (match ctx.df_state with
          | None -> "-"
          | Some m -> Skel.Ir.state_mode_name m));
    apply =
      (fun ctx -> function
        | Stage.Ir (prog, input) ->
            (* The --df-state override rewrites every farm's declared mode
               before normalisation; the program's init must already have
               the target mode's shape (validate reports otherwise). *)
            let prog, restate =
              match ctx.df_state with
              | None -> (prog, "")
              | Some mode ->
                  let prog =
                    {
                      prog with
                      Skel.Ir.body =
                        Skel.Ir.with_state_mode mode prog.Skel.Ir.body;
                    }
                  in
                  (match Skel.Ir.validate ctx.table prog with
                  | Ok () -> ()
                  | Error msg ->
                      error "df-state %s: %s" (Skel.Ir.state_mode_name mode)
                        msg);
                  (prog, "df-state=" ^ Skel.Ir.state_mode_name mode)
            in
            if not ctx.optimize then
              ( Stage.Ir (prog, input),
                if restate = "" then "disabled" else restate )
            else
              let prog', applied = Skel.Transform.normalize ctx.table prog in
              let summary = Skel.Transform.applied_summary applied in
              ( Stage.Ir (prog', input),
                if restate = "" then summary else restate ^ "; " ^ summary )
        | art -> mismatch "transform" art);
  }

let expand =
  {
    name = "expand";
    cacheable = true;
    token = no_token;
    apply =
      (fun ctx -> function
        | Stage.Ir (prog, _) -> (
            try (Stage.Graph (Procnet.Expand.expand ctx.table prog), "")
            with Procnet.Expand.Expansion_error msg -> error "expansion: %s" msg)
        | art -> mismatch "expand" art);
  }

let cost =
  {
    name = "cost";
    cacheable = false;
    token = no_token;
    apply =
      (fun ctx -> function
        | Stage.Graph g ->
            let model, detail =
              match ctx.cost_model with
              | Some c -> (c, "user model")
              | None -> (Syndex.Cost.make (), "default model")
            in
            (Stage.Costed (g, model), detail)
        | art -> mismatch "cost" art);
  }

let the_arch pass ctx =
  match ctx.arch with
  | Some arch -> arch
  | None -> error "pass %s: no target architecture (retarget the context)" pass

(* Strategy lookup against the mapper registry: the single source of truth
   for valid names (CLI help and this error message both derive from it). *)
let mapper_of strategy =
  match Syndex.Mapper.find strategy with
  | Some m -> m
  | None ->
      error "unknown mapping strategy %S (expected one of %s)" strategy
        (String.concat ", " (Syndex.Mapper.names ()))

let map =
  {
    name = "map";
    cacheable = false;
    token =
      (fun ctx ->
        match ctx.arch with
        | Some arch ->
            Printf.sprintf "%s/%d/%s" (Archi.name arch) (Archi.nprocs arch)
              ctx.strategy
        | None -> ctx.strategy);
    apply =
      (fun ctx -> function
        | Stage.Costed (g, model) ->
            let arch = the_arch "map" ctx in
            let mapper = mapper_of ctx.strategy in
            let schedule = Syndex.Mapper.map mapper model arch g in
            (Stage.Schedule schedule, Archi.name arch)
        | art -> mismatch "map" art);
  }

let emit =
  {
    name = "emit";
    cacheable = false;
    token = no_token;
    apply =
      (fun _ctx -> function
        | Stage.Schedule s ->
            ( Stage.Macro
                (Executive.Macro.emit s.Syndex.Schedule.graph
                   ~placement:s.Syndex.Schedule.placement
                   ~arch:s.Syndex.Schedule.arch),
              "" )
        | art -> mismatch "emit" art);
  }

let simulate =
  {
    name = "simulate";
    cacheable = false;
    token = no_token;
    apply =
      (fun ctx -> function
        | Stage.Schedule s ->
            let input =
              match ctx.input with
              | Some v -> v
              | None -> error "pass simulate: no input value"
            in
            let r =
              Executive.run ~trace:ctx.trace ?input_period:ctx.input_period
                ~faults:ctx.faults ~restores:ctx.restores
                ~link_faults:ctx.link_faults ?recovery:ctx.recovery
                ?checkpoint_every:ctx.checkpoint_every
                ~table:ctx.table ~arch:s.Syndex.Schedule.arch
                ~placement:s.Syndex.Schedule.placement
                ~graph:s.Syndex.Schedule.graph ~frames:ctx.frames ~input ()
            in
            let detail =
              match r.Executive.outcome with
              | Executive.Completed -> ""
              | Executive.Stalled { collected; expected } ->
                  Printf.sprintf "stalled at %d/%d" collected expected
            in
            (Stage.Result r, detail)
        | art -> mismatch "simulate" art);
  }

let frontend = [ parse; typecheck; extract; transform; expand ]
let all = frontend @ [ cost; map; emit; simulate ]
let find name = List.find_opt (fun p -> p.name = name) all
let names = List.map (fun p -> p.name) all

(* ------------------------------------------------------------------ *)
(* Running                                                             *)

let record ctx pass ~start ~wall ~cached ~detail art =
  let size, metric = Stage.size art in
  ctx.reports :=
    { Stage.pass = pass.name; start; wall; size; metric; cached; detail }
    :: !(ctx.reports)

let advance_key ctx pass art =
  (* Seed the chain lazily with the entry artifact's digest and the table's
     content digest (base registrations only — see Funtable.digest), then
     extend per pass. Content, not identity: two independently constructed
     tables with the same registrations produce the same keys, which is
     what makes the cache meaningful across contexts and processes. *)
  if ctx.key = "" then
    ctx.key <- Stage.fingerprint art ^ "@" ^ Skel.Funtable.digest ctx.table;
  ctx.key <-
    Digest.to_hex
      (Digest.string
         (String.concat "\x00" [ ctx.key; pass.name; pass.token ctx ]))

(* Install a cached entry's table side effects. False when the current
   table already holds one of the names with a different recipe — the
   caller treats that as a miss and re-runs the pass (whose gensyms skip
   occupied names), so a collision degrades performance, never results. *)
let try_replay table entry =
  match Skel.Funtable.replay table entry.derivations with
  | () -> true
  | exception (Invalid_argument _ | Failure _) -> false

let store_find cache key =
  match cache.store with
  | None -> None
  | Some store -> (
      match Support.Store.get store ~key with
      | None -> None
      | Some payload -> (
          (* The store validated stamp and payload digest, so this is a
             string some skipper with our artifact format marshalled; a
             Marshal failure still only costs us the hit. *)
          try Some (Marshal.from_string (payload : string) 0 : cached_entry)
          with _ -> None))

let store_save cache key entry =
  match cache.store with
  | None -> ()
  | Some store ->
      Support.Store.put store ~key (Marshal.to_string entry [])

let run_uncached ctx pass art =
  let t0 = Unix.gettimeofday () in
  let out, detail = pass.apply ctx art in
  let wall = Unix.gettimeofday () -. t0 in
  record ctx pass ~start:t0 ~wall ~cached:false ~detail out;
  (out, wall, detail)

let run_pass ctx pass art =
  advance_key ctx pass art;
  match ctx.cache with
  | Some cache when pass.cacheable -> (
      let hit entry detail =
        record ctx pass
          ~start:(Unix.gettimeofday ())
          ~wall:0.0 ~cached:true ~detail entry.artifact;
        entry.artifact
      in
      let miss () =
        cache.misses <- cache.misses + 1;
        let before = List.length (Skel.Funtable.derivations ctx.table) in
        let t0 = Unix.gettimeofday () in
        let out, detail = pass.apply ctx art in
        let wall = Unix.gettimeofday () -. t0 in
        let derivations =
          (* Exactly the registrations this pass performed: the log only
             grows, so they are the suffix past the pre-pass length. *)
          List.filteri
            (fun i _ -> i >= before)
            (Skel.Funtable.derivations ctx.table)
        in
        let entry = { artifact = out; derivations } in
        Hashtbl.replace cache.entries ctx.key entry;
        store_save cache ctx.key entry;
        record ctx pass ~start:t0 ~wall ~cached:false ~detail out;
        out
      in
      match Hashtbl.find_opt cache.entries ctx.key with
      | Some entry when try_replay ctx.table entry ->
          cache.hits <- cache.hits + 1;
          hit entry "memoized"
      | Some _ -> miss ()
      | None -> (
          match store_find cache ctx.key with
          | Some entry when try_replay ctx.table entry ->
              cache.hits <- cache.hits + 1;
              cache.store_hits <- cache.store_hits + 1;
              Hashtbl.replace cache.entries ctx.key entry;
              hit entry "store"
          | _ -> miss ()))
  | _ ->
      let out, _, _ = run_uncached ctx pass art in
      out

let run ctx passes art =
  List.fold_left (fun a p -> run_pass ctx p a) art passes

let run_trace ctx passes art =
  let _, rev_outputs =
    List.fold_left
      (fun (a, acc) p ->
        let out = run_pass ctx p a in
        (out, out :: acc))
      (art, []) passes
  in
  List.rev rev_outputs
