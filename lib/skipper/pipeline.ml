type compiled = {
  name : string;
  table : Skel.Funtable.t;
  program : Skel.Ir.program;
  graph : Procnet.Graph.t;
  input : Skel.Value.t option;
  signatures : (string * string) list;
  ctx : Passes.ctx;
  stages : (string * Stage.artifact) list;
}

type strategy = Passes.strategy

exception Compile_error = Passes.Pass_error

let error fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

let stage_outputs passes artifacts =
  List.combine (List.map Passes.pass_name passes) artifacts

let find_stage compiled name = List.assoc_opt name compiled.stages

let the_ir stages =
  (* the last Ir artifact is the (possibly normalized) program; extraction's
     input survives the transform pass *)
  match
    List.fold_left
      (fun acc (_, art) ->
        match art with Stage.Ir (p, i) -> Some (p, i) | _ -> acc)
      None stages
  with
  | Some pi -> pi
  | None -> assert false

let the_graph stages =
  match
    List.find_map
      (fun (_, art) -> match art with Stage.Graph g -> Some g | _ -> None)
      stages
  with
  | Some g -> g
  | None -> assert false

let of_stages ~table ~ctx stages =
  let program, input = the_ir stages in
  let signatures =
    match List.assoc_opt "typecheck" stages with
    | Some (Stage.Typed (_, schemes)) -> schemes
    | _ -> []
  in
  {
    name = program.Skel.Ir.name;
    table;
    program;
    graph = the_graph stages;
    input;
    signatures;
    ctx;
    stages;
  }

let compile_source ?(frames = 1) ?(optimize = false) ?df_state ?cache ~table
    src =
  let ctx = Passes.make_ctx ?cache ~frames ~optimize ?df_state table in
  let artifacts = Passes.run_trace ctx Passes.frontend (Stage.Source src) in
  of_stages ~table ~ctx (stage_outputs Passes.frontend artifacts)

let compile_ir ?(optimize = false) ?df_state ?cache ~table program =
  (match Skel.Ir.validate table program with
  | Ok () -> ()
  | Error msg -> error "invalid program %s: %s" program.Skel.Ir.name msg);
  let ctx =
    Passes.make_ctx ?cache ~frames:program.Skel.Ir.frames ~optimize ?df_state
      table
  in
  let passes = [ Passes.transform; Passes.expand ] in
  let artifacts = Passes.run_trace ctx passes (Stage.Ir (program, None)) in
  of_stages ~table ~ctx (stage_outputs passes artifacts)

let emulate compiled input = Skel.Sem.run compiled.table compiled.program input

let default_cost _compiled = Syndex.Cost.make ()

let map ?(strategy = "canonical") ?cost compiled arch =
  let ctx = Passes.retarget ?cost ~strategy compiled.ctx arch in
  match
    Passes.run ctx [ Passes.cost; Passes.map ] (Stage.Graph compiled.graph)
  with
  | Stage.Schedule s -> s
  | _ -> assert false

let resolve_input compiled input =
  match (input, compiled.input) with
  | Some v, _ -> v
  | None, Some v -> v
  | None, None ->
      error "program %s needs an explicit input value" compiled.name

let execute_with_schedule ?(trace = false) ?input_period ?faults ?restores
    ?link_faults ?recovery ?checkpoint_every ?(strategy = "canonical") ?cost
    ?input compiled arch =
  let input = resolve_input compiled input in
  let ctx =
    Passes.retarget ?cost ~input ?input_period ~trace ?faults ?restores
      ?link_faults ?recovery ?checkpoint_every ~strategy compiled.ctx arch
  in
  match
    Passes.run_trace ctx
      [ Passes.cost; Passes.map; Passes.simulate ]
      (Stage.Graph compiled.graph)
  with
  | [ _; Stage.Schedule s; Stage.Result r ] -> (s, r)
  | _ -> assert false

let execute ?trace ?input_period ?faults ?restores ?link_faults ?recovery
    ?checkpoint_every ?strategy ?cost ?input compiled arch =
  snd
    (execute_with_schedule ?trace ?input_period ?faults ?restores ?link_faults
       ?recovery ?checkpoint_every ?strategy ?cost ?input compiled arch)

let check_equivalence ?input compiled arch =
  let input = resolve_input compiled input in
  let emulated = emulate compiled input in
  let result = execute ~input compiled arch in
  if Skel.Value.equal emulated result.Executive.value then Ok emulated
  else
    Error
      (Printf.sprintf "emulation and executive disagree:\n  emulated: %s\n  parallel: %s"
         (Skel.Value.to_string emulated)
         (Skel.Value.to_string result.Executive.value))

let macro_code compiled schedule =
  let ctx =
    Passes.retarget ~strategy:"canonical" compiled.ctx
      schedule.Syndex.Schedule.arch
  in
  match Passes.run_pass ctx Passes.emit (Stage.Schedule schedule) with
  | Stage.Macro m -> m
  | _ -> assert false

let reports compiled = Passes.reports compiled.ctx

let timeline ?result ?slo compiled =
  let tl = Skipper_trace.Event.create () in
  Stage.emit_reports tl (reports compiled);
  (match result with
  | Some r -> Machine.Sim.emit_trace r.Executive.sim tl
  | None -> ());
  Option.iter (Skipper_trace.Series.Slo.emit tl) slo;
  tl
let pp_timings ppf compiled = Stage.pp_report_table ppf (reports compiled)
let timings_json compiled = Stage.reports_to_json (reports compiled)

let dump_stage ?arch ?(strategy = "canonical") ?cost ?input compiled name =
  match find_stage compiled name with
  | Some art -> Ok (Stage.render art)
  | None -> (
      match (Passes.find name, arch) with
      | None, _ ->
          Error
            (Printf.sprintf "unknown stage %S (stages: %s)" name
               (String.concat ", " Passes.names))
      | Some _, None ->
          Error
            (Printf.sprintf
               "stage %s needs a target architecture (it was not run at \
                compile time)"
               name)
      | Some _, Some arch -> (
          let chain =
            match name with
            | "cost" -> [ Passes.cost ]
            | "map" -> [ Passes.cost; Passes.map ]
            | "emit" -> [ Passes.cost; Passes.map; Passes.emit ]
            | "simulate" -> [ Passes.cost; Passes.map; Passes.simulate ]
            | _ -> []
          in
          match chain with
          | [] ->
              Error
                (Printf.sprintf
                   "stage %s was not run for this program (front-end stages \
                    are only recorded when compiling from source)"
                   name)
          | chain -> (
              let input =
                match name with
                | "simulate" -> Some (resolve_input compiled input)
                | _ -> input
              in
              let ctx =
                Passes.retarget ?cost ?input ~strategy compiled.ctx arch
              in
              match Passes.run ctx chain (Stage.Graph compiled.graph) with
              | art -> Ok (Stage.render art)
              | exception Compile_error msg -> Error msg)))

let graph_dot compiled = Procnet.Graph.to_dot compiled.graph

let pp_signatures ppf compiled =
  List.iter
    (fun (name, scheme) -> Format.fprintf ppf "val %s : %s@." name scheme)
    compiled.signatures
