(** The staged pass manager behind {!Pipeline}.

    Each Fig. 2 toolchain stage is a named {!pass} with a typed input/output
    {!Stage.artifact}. A {!ctx} carries the compile options (function table,
    frame count, optimisation flag) and the execution target (architecture,
    mapping strategy, input); {!run_pass} threads an artifact through a
    pass, timing it and appending a {!Stage.report}.

    Front-end passes are memoized in an optional {!cache}: the key is a
    running content hash seeded with the entry artifact's digest and the
    table's {e content} digest ({!Skel.Funtable.digest}), then extended per
    pass with the pass name and the options that pass reads (frames for
    [extract], the optimise flag for [transform], ...). Compiling the same
    source for several architectures therefore runs
    parse/typecheck/extract/transform/expand exactly once — the paper's §4
    "almost instantaneous" variant builds — and equal compiles against
    independently constructed (but equally registered) tables share
    entries. Each cached result carries the derived-function registrations
    its pass performed ({!Skel.Funtable.derivation} values), replayed into
    the consuming table on a hit.

    When the cache is created over a {!Support.Store.t}, front-end results
    also persist on disk (marshalled under {!artifact_format}), so a second
    [skipperc] process compiling the same source starts warm. Target-
    dependent passes (cost, map, emit, simulate) always run: cost models
    contain closures and simulation is effectful, so they are not
    content-addressable. *)

type strategy = string
(** A mapping-strategy name, resolved against {!Syndex.Mapper} by the map
    pass; the default is ["canonical"]. Unknown names raise {!Pass_error}
    listing the registered strategies. *)

exception Pass_error of string
(** Rendered, located error message from any stage; re-exported by
    {!Pipeline} as [Compile_error]. *)

(** {1 Memoization cache} *)

type cache

val artifact_format : string
(** Version stamp of the marshalled cached-artifact encoding. Open stores
    destined for [?store] with this stamp, so entries written by an
    incompatible skipper build read as misses instead of garbage. *)

val create_cache : ?store:Support.Store.t -> unit -> cache
(** In-memory memo table, optionally backed by a persistent store shared
    across processes (and across domains — the store's counters are atomic
    and its writes are rename-atomic; the in-memory table itself is not
    shared between contexts living on different domains). *)

val cache_stats : cache -> int * int
(** [(hits, misses)] since creation or the last {!reset_cache_stats}. Hits
    count both in-memory and store hits; misses ran the pass. *)

val store_hits : cache -> int
(** How many of the hits were satisfied from the persistent store. *)

val cache_store : cache -> Support.Store.t option

val reset_cache_stats : cache -> unit

(** {1 Pass context} *)

type ctx

val make_ctx :
  ?cache:cache ->
  ?frames:int ->
  ?optimize:bool ->
  ?df_state:Skel.Ir.state_mode ->
  Skel.Funtable.t ->
  ctx
(** Front-end context: default [frames] 1, [optimize] false, no cache.
    [df_state], when given, makes the transform pass rewrite every [Df]
    stage's declared state-access mode (the [--df-state] override); the
    program's [init] must already have the target mode's shape. *)

val retarget :
  ?cost:Syndex.Cost.t ->
  ?input:Skel.Value.t ->
  ?input_period:float ->
  ?trace:bool ->
  ?faults:(int * float) list ->
  ?restores:(int * float) list ->
  ?link_faults:Machine.Sim.link_fault list ->
  ?recovery:Executive.recovery ->
  ?checkpoint_every:int ->
  strategy:strategy ->
  ctx ->
  Archi.t ->
  ctx
(** Derives a back-end context for one (architecture, strategy) target.
    The returned context shares the report list and cache with the parent,
    so per-stage timings accumulate across compile + map + execute.
    [faults]/[restores]/[link_faults]/[recovery]/[checkpoint_every]
    (default: none) are the fault-injection plan, recovery policy and
    checkpoint cadence handed to {!Executive.run} by the simulate pass. *)

val reports : ctx -> Stage.report list
(** All reports recorded through this context (and its retargets), in
    execution order. *)

(** {1 Passes} *)

type pass

val pass_name : pass -> string

val parse : pass  (** [Source] -> [Ast] *)

val typecheck : pass  (** [Ast] -> [Typed] *)

val extract : pass  (** [Typed] -> [Ir] (reads [frames]) *)

val transform : pass
(** [Ir] -> [Ir]; applies the [df_state] mode override (when set, with
    re-validation), then {!Skel.Transform.normalize} when [optimize] is
    set, otherwise the identity (reported as ["disabled"]). *)

val expand : pass  (** [Ir] -> [Graph] *)

val cost : pass
(** [Graph] -> [Costed]; uses the retargeted cost model or the default. *)

val map : pass  (** [Costed] -> [Schedule] (needs a retargeted context) *)

val emit : pass  (** [Schedule] -> [Macro] *)

val simulate : pass
(** [Schedule] -> [Result] (needs a retargeted context with an input). *)

val frontend : pass list
(** [parse; typecheck; extract; transform; expand] — the memoized prefix. *)

val all : pass list
(** Every pass in pipeline order (backend chain ends with [emit] then
    [simulate]; drivers pick the suffix they need). *)

val find : string -> pass option
val names : string list

(** {1 Running} *)

val run_pass : ctx -> pass -> Stage.artifact -> Stage.artifact
(** Raises [Pass_error] on a stage failure or an artifact-type mismatch. *)

val run : ctx -> pass list -> Stage.artifact -> Stage.artifact

val run_trace : ctx -> pass list -> Stage.artifact -> Stage.artifact list
(** Like {!run} but returns every pass's output, aligned with the pass
    list. *)
