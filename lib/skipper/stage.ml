type artifact =
  | Source of string
  | Ast of Minicaml.Ast.program
  | Typed of Minicaml.Ast.program * (string * string) list
  | Ir of Skel.Ir.program * Skel.Value.t option
  | Graph of Procnet.Graph.t
  | Costed of Procnet.Graph.t * Syndex.Cost.t
  | Schedule of Syndex.Schedule.t
  | Macro of string
  | Result of Executive.result

let kind = function
  | Source _ -> "source"
  | Ast _ -> "ast"
  | Typed _ -> "typed"
  | Ir _ -> "ir"
  | Graph _ -> "graph"
  | Costed _ -> "costed"
  | Schedule _ -> "schedule"
  | Macro _ -> "macro"
  | Result _ -> "result"

let rec ir_nodes = function
  | Skel.Ir.Seq _ | Skel.Ir.Scm _ | Skel.Ir.Df _ | Skel.Ir.Tf _ -> 1
  | Skel.Ir.Pipe ts -> 1 + List.fold_left (fun acc t -> acc + ir_nodes t) 0 ts
  | Skel.Ir.Itermem { loop; _ } -> 1 + ir_nodes loop

let lines s = List.length (String.split_on_char '\n' s)

let size = function
  | Source s -> (String.length s, "bytes")
  | Ast prog -> (List.length prog, "bindings")
  | Typed (_, schemes) -> (List.length schemes, "schemes")
  | Ir (p, _) -> (ir_nodes p.Skel.Ir.body, "ir nodes")
  | Graph g | Costed (g, _) ->
      (Procnet.Graph.nnodes g + Procnet.Graph.nedges g, "procs+chans")
  | Schedule s -> (Syndex.Schedule.nops s + Syndex.Schedule.ncomms s, "slots")
  | Macro m -> (lines m, "lines")
  | Result r -> (List.length r.Executive.outputs, "frames")

let fingerprint art =
  let text =
    match art with
    | Source s -> s
    | Ast prog | Typed (prog, _) ->
        Format.asprintf "%a" Minicaml.Ast.pp_program prog
    | Ir (p, input) ->
        Format.asprintf "%a/%s" Skel.Ir.pp_program p
          (match input with Some v -> Skel.Value.to_string v | None -> "-")
    | Graph g | Costed (g, _) -> Procnet.Graph.to_dot g
    | Schedule s -> Format.asprintf "%a" Syndex.Schedule.pp_summary s
    | Macro m -> m
    | Result r -> Executive.summary r
  in
  Digest.to_hex (Digest.string (kind art ^ ":" ^ text))

let render = function
  | Source s -> s
  | Ast prog -> Format.asprintf "%a" Minicaml.Ast.pp_program prog
  | Typed (_, schemes) ->
      String.concat ""
        (List.map (fun (n, s) -> Printf.sprintf "val %s : %s\n" n s) schemes)
  | Ir (p, input) ->
      Format.asprintf "%a%s" Skel.Ir.pp_program p
        (match input with
        | Some v -> Printf.sprintf "\ninput: %s\n" (Skel.Value.to_string v)
        | None -> "")
  | Graph g -> Procnet.Graph.to_dot g
  | Costed (g, cost) ->
      let b = Buffer.create 256 in
      Buffer.add_string b "node                             cycles      bytes-out\n";
      Array.iter
        (fun node ->
          let out_bytes =
            List.fold_left
              (fun acc e -> acc + cost.Syndex.Cost.edge_bytes e)
              0
              (Procnet.Graph.out_edges g node.Procnet.Graph.id)
          in
          Buffer.add_string b
            (Printf.sprintf "%-28s %10.0f %10d\n" node.Procnet.Graph.label
               (cost.Syndex.Cost.node_cycles node)
               out_bytes))
        (Procnet.Graph.nodes g);
      Buffer.contents b
  | Schedule s ->
      Format.asprintf "%a@.%s" Syndex.Schedule.pp_summary s
        (Syndex.Schedule.gantt s)
  | Macro m -> m
  | Result r -> Executive.summary r ^ "\n"

type report = {
  pass : string;
  start : float;
  wall : float;
  size : int;
  metric : string;
  cached : bool;
  detail : string;
}

(* Stage spans on the unified timeline: one span per report on the compile
   lane, re-based so the first pass starts at the timeline origin (gaps
   between passes — e.g. the simulated run between a map and a later dump —
   are preserved). *)
let emit_reports ?t0 tl reports =
  let t0 =
    match (t0, reports) with
    | Some t0, _ -> t0
    | None, r :: _ -> r.start
    | None, [] -> 0.0
  in
  List.iter
    (fun r ->
      let args =
        [
          ("size", Skipper_trace.Event.Count r.size);
          ("metric", Skipper_trace.Event.Str r.metric);
          ("cached", Skipper_trace.Event.Str (string_of_bool r.cached));
        ]
        @ if r.detail = "" then [] else [ ("detail", Skipper_trace.Event.Str r.detail) ]
      in
      Skipper_trace.Event.span tl ~lane:Skipper_trace.Event.compile_lane
        ~cat:"stage" ~args ~name:r.pass
        ~time:(Float.max 0.0 (r.start -. t0))
        ~dur:r.wall ())
    reports

let pp_report_table ppf reports =
  Format.fprintf ppf "%-12s %10s  %-20s %-7s %s@." "stage" "wall (ms)"
    "artifact" "cached" "notes";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %10.2f  %-20s %-7s %s@." r.pass (r.wall *. 1e3)
        (Printf.sprintf "%d %s" r.size r.metric)
        (if r.cached then "yes" else "no")
        r.detail)
    reports;
  let total = List.fold_left (fun acc r -> acc +. r.wall) 0.0 reports in
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "%-12s %10.2f@." "total" (total *. 1e3)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let reports_to_json reports =
  let field r =
    Printf.sprintf
      {|{"pass":"%s","wall_ms":%.3f,"size":%d,"metric":"%s","cached":%b,"detail":"%s"}|}
      (json_escape r.pass) (r.wall *. 1e3) r.size (json_escape r.metric)
      r.cached (json_escape r.detail)
  in
  "[" ^ String.concat "," (List.map field reports) ^ "]"
