(** Compile-as-a-service: a long-lived daemon over a Unix domain socket.

    [skipperc serve] keeps one process — with its warm in-process caches and
    one shared persistent {!Support.Store} — alive across many compile/run
    requests, so interactive rebuilds pay none of the process-startup or
    cold-cache cost. The wire protocol is deliberately small:

    - every frame is a 4-byte big-endian length followed by that many bytes
      of JSON;
    - a client frame is a {e batch}: [{"requests": [r1; r2; ...]}] (a bare
      request object is accepted as a batch of one);
    - the server replies with one frame [{"responses": [...]}], responses
      in request order;
    - request ops: ["compile"], ["run"], ["stats"], ["metrics"],
      ["shutdown"]. Compile and run carry [app] (names the function table)
      and [src] (the source text) plus optional
      [frames]/[optimize]/[procs]/[strategy].

    Requests within a batch are independent, so the server farms them on
    {!Support.Domain_pool} ([config.jobs] workers); each request compiles
    against a fresh table and a fresh in-memory cache layered over the
    shared store, which is safe across domains (atomic counters,
    rename-atomic writes). A failed request produces a
    [{"status": "error"}] response; it never takes the batch or the server
    down.

    {2 Observability}

    The daemon is fully instrumented:
    - every request gets an id ([r0], [r1], ...) and a structured
      {!Support.Log} record (level [info], event ["request"], fields
      op/status/wall_ms), with batch- and connection-lifecycle records
      around it at [debug]/[info]/[warn];
    - a {!Support.Metrics} registry carries request/error/batch/byte
      counters, client and queue-depth gauges, per-op latency histograms
      ([skipper_serve_request_seconds{op=...}], sharing
      {!Support.Histogram}'s buckets with the windowed series), per-domain
      cumulative busy seconds, pass-cache counters, the
      [skipper_serve_aborted_frames] count of clients vanishing mid-frame,
      and — mirrored at snapshot time — every {!Support.Store} counter;
    - with a [timeline], each request lands as a span on its pool domain's
      lane ({!Skipper_trace.Event.pool_lane}), times relative to daemon
      start, like {!Skipper_trace.Pool.emit} does for sweeps.

    Workers return pure outcomes; the dispatching domain applies all log,
    registry and timeline updates in submit order. Under a pinned log clock
    the daemon's log bytes and histogram contents are therefore identical
    at any [--jobs] level. A [stats] or [metrics] request observes the
    totals as of the {e previous} batch plus the current batch's arrival
    counts — a batch does not see its own latency observations.

    The library stays application-agnostic: callers inject how an [app]
    name maps to a function table and an input value, and how a processor
    count maps to an architecture. *)

exception Protocol_error of string
(** Malformed framing (oversized or negative length). Malformed JSON or
    requests inside a well-framed batch produce error {e responses}
    instead. A client that disconnects mid-frame is not a protocol error:
    the server logs it, bumps [skipper_serve_aborted_frames] and keeps
    serving everyone else. *)

type config = {
  table_of : string -> Skel.Funtable.t;
      (** fresh function table for one compile of [app]; called per
          request, possibly from a pool domain *)
  input_of : string -> Skel.Value.t option;
      (** input value for [run] when the source does not fix one *)
  arch_of : int -> Archi.t;  (** architecture for a [run] at [procs] *)
  store : Support.Store.t option;  (** shared across all requests *)
  jobs : int;  (** domain-pool width for batch requests *)
  log : Support.Log.t;  (** structured log; [Support.Log.null] to disable *)
  metrics : Support.Metrics.t option;
      (** registry to instrument; [None] uses a private one (still served
          by [stats]/[metrics] requests, but not visible to the caller
          after {!serve} returns) *)
  timeline : Skipper_trace.Event.timeline option;
      (** unified timeline for per-request pool spans *)
}

type request =
  | Compile of { app : string; src : string; frames : int; optimize : bool }
  | Run of {
      app : string;
      src : string;
      frames : int;
      optimize : bool;
      procs : int;
      strategy : string;
    }
  | Stats
      (** Deep snapshot: request/batch/error/aborted-frame counts, uptime,
          client count, the shared store's full counters and the whole
          registry as JSON ({!Support.Metrics.json}). *)
  | Metrics_dump
      (** The registry as a Prometheus text exposition, in the response's
          ["exposition"] field. *)
  | Shutdown

val parse_request : Support.Json.t -> (request, string) result

val serve : config -> socket:string -> unit -> int
(** Binds [socket] (unlinking any stale file) and serves batches until a
    [shutdown] request; returns the total number of requests served.
    Connected clients are multiplexed with [select] — an idle client never
    blocks another client's connection or requests; one frame is handled at
    a time, in arrival order. The socket file is removed on exit, also on
    exceptions. Store counters are mirrored into the registry one last time
    before returning, so a caller-supplied [config.metrics] is
    scrape-ready after shutdown. *)

val render_top : Support.Json.t -> string
(** Renders a [stats] response as the one-screen [skipperc top] dashboard:
    uptime, request rate, error/aborted counts, cache hit ratio, store
    counters, per-op latency quantiles and per-domain busy fractions. Pure
    function of the JSON (tested without a daemon). *)

(** {1 Client side} *)

val call :
  ?retries:int ->
  ?delay:float ->
  socket:string ->
  Support.Json.t list ->
  (Support.Json.t list, string) result
(** One connection, one batch: connect (retrying [retries] times, default
    50, sleeping [delay] seconds, default 0.1, while the daemon is still
    binding), send the batch, return the responses in request order. *)

val req_compile :
  ?frames:int -> ?optimize:bool -> app:string -> string -> Support.Json.t

val req_run :
  ?frames:int ->
  ?optimize:bool ->
  ?strategy:string ->
  procs:int ->
  app:string ->
  string ->
  Support.Json.t

val req_stats : Support.Json.t
val req_metrics : Support.Json.t
val req_shutdown : Support.Json.t
