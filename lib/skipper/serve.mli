(** Compile-as-a-service: a long-lived daemon over a Unix domain socket.

    [skipperc serve] keeps one process — with its warm in-process caches and
    one shared persistent {!Support.Store} — alive across many compile/run
    requests, so interactive rebuilds pay none of the process-startup or
    cold-cache cost. The wire protocol is deliberately small:

    - every frame is a 4-byte big-endian length followed by that many bytes
      of JSON;
    - a client frame is a {e batch}: [{"requests": [r1; r2; ...]}] (a bare
      request object is accepted as a batch of one);
    - the server replies with one frame [{"responses": [...]}], responses
      in request order;
    - request ops: ["compile"], ["run"], ["stats"], ["shutdown"]. Compile
      and run carry [app] (names the function table) and [src] (the source
      text) plus optional [frames]/[optimize]/[procs]/[strategy].

    Requests within a batch are independent, so the server farms them on
    {!Support.Domain_pool} ([config.jobs] workers); each request compiles
    against a fresh table and a fresh in-memory cache layered over the
    shared store, which is safe across domains (atomic counters,
    rename-atomic writes). A failed request produces a
    [{"status": "error"}] response; it never takes the batch or the server
    down.

    The library stays application-agnostic: callers inject how an [app]
    name maps to a function table and an input value, and how a processor
    count maps to an architecture. *)

exception Protocol_error of string
(** Malformed framing (oversized or negative length). Malformed JSON or
    requests inside a well-framed batch produce error {e responses}
    instead. *)

type config = {
  table_of : string -> Skel.Funtable.t;
      (** fresh function table for one compile of [app]; called per
          request, possibly from a pool domain *)
  input_of : string -> Skel.Value.t option;
      (** input value for [run] when the source does not fix one *)
  arch_of : int -> Archi.t;  (** architecture for a [run] at [procs] *)
  store : Support.Store.t option;  (** shared across all requests *)
  jobs : int;  (** domain-pool width for batch requests *)
}

type request =
  | Compile of { app : string; src : string; frames : int; optimize : bool }
  | Run of {
      app : string;
      src : string;
      frames : int;
      optimize : bool;
      procs : int;
      strategy : string;
    }
  | Stats
  | Shutdown

val parse_request : Support.Json.t -> (request, string) result

val serve : config -> socket:string -> unit -> int
(** Binds [socket] (unlinking any stale file) and serves batches until a
    [shutdown] request; returns the total number of requests served.
    Connected clients are multiplexed with [select] — an idle client never
    blocks another client's connection or requests; one frame is handled at
    a time, in arrival order. The socket file is removed on exit, also on
    exceptions. *)

(** {1 Client side} *)

val call :
  ?retries:int ->
  ?delay:float ->
  socket:string ->
  Support.Json.t list ->
  (Support.Json.t list, string) result
(** One connection, one batch: connect (retrying [retries] times, default
    50, sleeping [delay] seconds, default 0.1, while the daemon is still
    binding), send the batch, return the responses in request order. *)

val req_compile :
  ?frames:int -> ?optimize:bool -> app:string -> string -> Support.Json.t

val req_run :
  ?frames:int ->
  ?optimize:bool ->
  ?strategy:string ->
  procs:int ->
  app:string ->
  string ->
  Support.Json.t

val req_stats : Support.Json.t
val req_shutdown : Support.Json.t
