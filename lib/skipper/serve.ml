module Json = Support.Json
module Metrics = Support.Metrics
module Log = Support.Log
module Event = Skipper_trace.Event

exception Protocol_error of string

let protocol_error fmt =
  Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian length, then that many bytes of JSON.    *)

(* A frame larger than this is a protocol desync (or a hostile peer), not
   a plausible batch; fail before allocating the "length". *)
let max_frame = 64 * 1024 * 1024

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
  in
  go 0

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let read_frame fd =
  let hdr = read_exact fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then
    protocol_error "frame length %d out of range" len;
  Bytes.to_string (read_exact fd len)

let write_frame fd payload =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (String.length payload));
  write_all fd (Bytes.to_string hdr);
  write_all fd payload

(* The server-side read distinguishes a clean close (EOF exactly on a
   frame boundary) from a client vanishing mid-frame — a partial length
   prefix or a truncated payload. The latter is an aborted frame: logged,
   counted, and never allowed to take the serve loop down. *)

type incoming = Frame of string | Closed | Aborted of string

type chunk = Complete of bytes | Empty | Short

let read_chunk fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Complete buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then Empty else Short
      | k -> go (off + k)
  in
  go 0

let recv fd =
  match read_chunk fd 4 with
  | Empty -> Closed
  | Short -> Aborted "partial length prefix"
  | Complete hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        protocol_error "frame length %d out of range" len;
      if len = 0 then Frame ""
      else (
        match read_chunk fd len with
        | Complete b -> Frame (Bytes.to_string b)
        | Empty | Short ->
            Aborted (Printf.sprintf "truncated payload (expected %d bytes)" len))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type config = {
  table_of : string -> Skel.Funtable.t;
  input_of : string -> Skel.Value.t option;
  arch_of : int -> Archi.t;
  store : Support.Store.t option;
  jobs : int;
  log : Log.t;
  metrics : Metrics.t option;
  timeline : Event.timeline option;
}

type request =
  | Compile of { app : string; src : string; frames : int; optimize : bool }
  | Run of {
      app : string;
      src : string;
      frames : int;
      optimize : bool;
      procs : int;
      strategy : string;
    }
  | Stats
  | Metrics_dump
  | Shutdown

let str_field j k = Option.bind (Json.member k j) Json.to_str

let int_field j k default =
  match Option.bind (Json.member k j) Json.to_float with
  | Some f -> int_of_float f
  | None -> default

let bool_field j k default =
  match Json.member k j with Some (Json.Bool b) -> b | _ -> default

let parse_request j =
  match str_field j "op" with
  | Some "compile" -> (
      match (str_field j "app", str_field j "src") with
      | Some app, Some src ->
          Ok
            (Compile
               {
                 app;
                 src;
                 frames = int_field j "frames" 1;
                 optimize = bool_field j "optimize" false;
               })
      | _ -> Error "compile needs \"app\" and \"src\" fields")
  | Some "run" -> (
      match (str_field j "app", str_field j "src") with
      | Some app, Some src ->
          Ok
            (Run
               {
                 app;
                 src;
                 frames = int_field j "frames" 1;
                 optimize = bool_field j "optimize" false;
                 procs = int_field j "procs" 4;
                 strategy =
                   Option.value (str_field j "strategy") ~default:"canonical";
               })
      | _ -> Error "run needs \"app\" and \"src\" fields")
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics_dump
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request without an \"op\" field"

let op_name = function
  | Compile _ -> "compile"
  | Run _ -> "run"
  | Stats -> "stats"
  | Metrics_dump -> "metrics"
  | Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Server state and instruments                                        *)

let num n = Json.Num (float_of_int n)
let ok fields = Json.Obj (("status", Json.Str "ok") :: fields)

let err msg =
  Json.Obj [ ("status", Json.Str "error"); ("message", Json.Str msg) ]

let cache_json cache =
  let hits, misses = Passes.cache_stats cache in
  Json.Obj
    [
      ("hits", num hits);
      ("misses", num misses);
      ("store_hits", num (Passes.store_hits cache));
    ]

let store_json = function
  | None -> Json.Null
  | Some store ->
      let c = Support.Store.counters store in
      Json.Obj
        [
          ("hits", num c.Support.Store.hits);
          ("misses", num c.Support.Store.misses);
          ("absent", num c.Support.Store.absent);
          ("corrupt", num c.Support.Store.corrupt);
          ("stamp_mismatch", num c.Support.Store.stamp_mismatch);
          ("writes", num c.Support.Store.writes);
          ("evictions", num c.Support.Store.evictions);
          ("bytes_read", num c.Support.Store.bytes_read);
          ("bytes_written", num c.Support.Store.bytes_written);
        ]

type server = {
  cfg : config;
  reg : Metrics.t;
  start_s : float;  (** daemon start, [Unix.gettimeofday] *)
  mutable requests : int;
  mutable batches : int;
  mutable errors : int;
  mutable aborted : int;
  mutable nclients : int;
  mutable next_req : int;  (** request-id counter; ids are ["r<N>"] *)
  c_requests : Metrics.counter;
  c_errors : Metrics.counter;
  c_batches : Metrics.counter;
  c_aborted : Metrics.counter;
  c_bytes_read : Metrics.counter;
  c_bytes_written : Metrics.counter;
  c_cache_hits : Metrics.counter;
  c_cache_misses : Metrics.counter;
  c_cache_store_hits : Metrics.counter;
  g_clients : Metrics.gauge;
  g_queue : Metrics.gauge;
}

let make_server cfg =
  let reg = match cfg.metrics with Some r -> r | None -> Metrics.create () in
  let c = Metrics.counter reg and g = Metrics.gauge reg in
  {
    cfg;
    reg;
    start_s = Unix.gettimeofday ();
    requests = 0;
    batches = 0;
    errors = 0;
    aborted = 0;
    nclients = 0;
    next_req = 0;
    c_requests =
      c ~help:"Requests received (including unparseable ones)"
        "skipper_serve_requests_total";
    c_errors = c ~help:"Requests answered with an error" "skipper_serve_errors_total";
    c_batches = c ~help:"Frames (batches) handled" "skipper_serve_batches_total";
    c_aborted =
      c ~help:"Frames dropped because the client vanished mid-frame"
        "skipper_serve_aborted_frames";
    c_bytes_read = c ~help:"Frame bytes read, headers included"
        "skipper_serve_bytes_read_total";
    c_bytes_written = c ~help:"Frame bytes written, headers included"
        "skipper_serve_bytes_written_total";
    c_cache_hits =
      c ~help:"In-memory pass-cache hits across requests"
        "skipper_serve_cache_hits_total";
    c_cache_misses =
      c ~help:"In-memory pass-cache misses across requests"
        "skipper_serve_cache_misses_total";
    c_cache_store_hits =
      c ~help:"Pass-cache misses answered by the persistent store"
        "skipper_serve_cache_store_hits_total";
    g_clients = g ~help:"Connected clients" "skipper_serve_clients";
    g_queue =
      g ~help:"Requests of the batch currently being farmed"
        "skipper_serve_queue_depth";
  }

(* Mirror the shared store's own atomic counters into the registry, so one
   scrape carries both serve- and store-side tallies. Called right before
   each snapshot (stats/metrics responses and shutdown). *)
let sync_store s =
  match s.cfg.store with
  | None -> ()
  | Some store ->
      let c = Support.Store.counters store in
      let set name help v =
        Metrics.set (Metrics.counter s.reg ~help name) v
      in
      set "skipper_store_hits_total" "Store lookups served from disk"
        c.Support.Store.hits;
      set "skipper_store_misses_total" "Store lookups that found no usable entry"
        c.Support.Store.misses;
      set "skipper_store_absent_total" "Store misses: no entry file"
        c.Support.Store.absent;
      set "skipper_store_corrupt_total" "Store misses: entry unreadable"
        c.Support.Store.corrupt;
      set "skipper_store_stamp_mismatch_total"
        "Store misses: entry from another format stamp"
        c.Support.Store.stamp_mismatch;
      set "skipper_store_writes_total" "Store entries written"
        c.Support.Store.writes;
      set "skipper_store_evictions_total" "Store entries evicted over the size limit"
        c.Support.Store.evictions;
      set "skipper_store_bytes_read_total" "Store payload bytes read by hits"
        c.Support.Store.bytes_read;
      set "skipper_store_bytes_written_total" "Store payload bytes written"
        c.Support.Store.bytes_written

let uptime_s s = Unix.gettimeofday () -. s.start_s

let stats_fields s =
  sync_store s;
  [
    ("requests", num s.requests);
    ("batches", num s.batches);
    ("errors", num s.errors);
    ("aborted_frames", num s.aborted);
    ("clients", num s.nclients);
    ("uptime_s", Json.Num (uptime_s s));
    ("store", store_json s.cfg.store);
    ("metrics", Metrics.json s.reg);
  ]

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)

(* What a worker returns: the response plus everything the dispatcher
   needs to account for the request. All registry, log and timeline
   updates happen on the dispatching domain, in submit order, so the
   daemon's deterministic observability surfaces (log bytes under a
   pinned clock, histogram sums) do not depend on [--jobs]. *)
type outcome = {
  resp : Json.t;
  out_op : string;
  out_ok : bool;
  out_wall : float;  (** seconds *)
  out_cache : (int * int * int) option;  (** hits, misses, store hits *)
}

let compile_fields cfg ~app ~src ~frames ~optimize =
  let table = cfg.table_of app in
  let cache = Passes.create_cache ?store:cfg.store () in
  let compiled = Pipeline.compile_source ~frames ~optimize ~cache ~table src in
  let fields =
    [
      ("graph_digest", Json.Str (Stage.fingerprint (Stage.Graph compiled.Pipeline.graph)));
      ("cache", cache_json cache);
    ]
  in
  (compiled, fields, cache)

let handle_request s req =
  let cfg = s.cfg in
  let t0 = Unix.gettimeofday () in
  let cache_taken = ref None in
  let timed op fields =
    ok
      (("op", Json.Str op) :: fields
      @ [ ("wall_ms", Json.Num ((Unix.gettimeofday () -. t0) *. 1e3)) ])
  in
  let resp =
    try
      match req with
      | Compile { app; src; frames; optimize } ->
          let _, fields, cache = compile_fields cfg ~app ~src ~frames ~optimize in
          cache_taken := Some cache;
          timed "compile" fields
      | Run { app; src; frames; optimize; procs; strategy } ->
          let compiled, fields, cache =
            compile_fields cfg ~app ~src ~frames ~optimize
          in
          cache_taken := Some cache;
          let input = cfg.input_of app in
          let result =
            Pipeline.execute ?input ~strategy compiled (cfg.arch_of procs)
          in
          timed "run"
            (fields
            @ [
                ("value", Json.Str (Skel.Value.to_string result.Executive.value));
                ("frames", num (List.length result.Executive.outputs));
                ( "messages",
                  num result.Executive.stats.Machine.Sim.messages );
              ])
      | Stats -> timed "stats" (stats_fields s)
      | Metrics_dump ->
          sync_store s;
          timed "metrics" [ ("exposition", Json.Str (Metrics.to_prometheus s.reg)) ]
      | Shutdown -> timed "shutdown" []
    with
    | Passes.Pass_error m -> err ("compile error: " ^ m)
    | Executive.Executive_error m -> err ("executive error: " ^ m)
    | Failure m | Invalid_argument m -> err m
  in
  let is_ok =
    match Json.member "status" resp with Some (Json.Str "ok") -> true | _ -> false
  in
  {
    resp;
    out_op = op_name req;
    out_ok = is_ok;
    out_wall = Unix.gettimeofday () -. t0;
    out_cache =
      Option.map
        (fun c ->
          let h, m = Passes.cache_stats c in
          (h, m, Passes.store_hits c))
        !cache_taken;
  }

let latency_hist s op =
  Metrics.histogram s.reg
    ~help:"Request handling latency by op, seconds"
    ~labels:[ ("op", op) ] "skipper_serve_request_seconds"

(* Dispatcher-side accounting for one finished request. *)
let account s ~req_id (o : outcome) =
  Metrics.observe (latency_hist s o.out_op) o.out_wall;
  if not o.out_ok then begin
    s.errors <- s.errors + 1;
    Metrics.incr s.c_errors
  end;
  Option.iter
    (fun (h, m, sh) ->
      Metrics.add s.c_cache_hits h;
      Metrics.add s.c_cache_misses m;
      Metrics.add s.c_cache_store_hits sh)
    o.out_cache;
  Log.info s.cfg.log ~req:req_id
    ~fields:
      [
        ("op", Json.Str o.out_op);
        ("status", Json.Str (if o.out_ok then "ok" else "error"));
        ("wall_ms", Json.Num (o.out_wall *. 1e3));
      ]
    "request"

(* Lay the batch's per-request spans on the unified timeline, one lane per
   pool domain, times relative to daemon start — the daemon counterpart of
   [Skipper_trace.Pool.emit]. *)
let emit_spans s ~t0 ~ids ~ops (stats : Support.Domain_pool.stats) =
  match s.cfg.timeline with
  | None -> ()
  | Some tl ->
      let off = t0 -. s.start_s in
      List.iter
        (fun (sp : Support.Domain_pool.span) ->
          let id = List.nth_opt ids sp.Support.Domain_pool.job in
          let op = List.nth_opt ops sp.Support.Domain_pool.job in
          Event.span tl
            ~lane:(Event.pool_lane sp.Support.Domain_pool.domain)
            ~cat:"serve"
            ~args:
              [
                ("req", Event.Str (Option.value id ~default:"?"));
                ("op", Event.Str (Option.value op ~default:"?"));
              ]
            ~name:
              (Printf.sprintf "%s:%s"
                 (Option.value id ~default:"?")
                 (Option.value op ~default:"?"))
            ~time:(off +. sp.Support.Domain_pool.start_s)
            ~dur:
              (sp.Support.Domain_pool.finish_s
              -. sp.Support.Domain_pool.start_s)
            ())
        stats.Support.Domain_pool.spans

(* One frame = one batch. Requests are independent, so they are farmed on
   the domain pool; responses come back in request order (Domain_pool's
   submit-order guarantee), which is the protocol's pairing rule. *)
let handle_batch s ~client payload =
  match Json.parse payload with
  | Error m ->
      s.batches <- s.batches + 1;
      Metrics.incr s.c_batches;
      Log.warn s.cfg.log
        ~fields:[ ("client", Json.Str client); ("error", Json.Str m) ]
        "bad_batch";
      ([ err ("bad request: " ^ m) ], false)
  | Ok json ->
      let reqs =
        match Option.bind (Json.member "requests" json) Json.to_list with
        | Some l -> l
        | None -> [ json ] (* a bare request is a batch of one *)
      in
      let parsed = List.map parse_request reqs in
      let ids =
        List.map
          (fun _ ->
            let id = Printf.sprintf "r%d" s.next_req in
            s.next_req <- s.next_req + 1;
            id)
          parsed
      in
      let ops =
        List.map
          (function Ok r -> op_name r | Error _ -> "invalid")
          parsed
      in
      s.batches <- s.batches + 1;
      s.requests <- s.requests + List.length reqs;
      Metrics.incr s.c_batches;
      Metrics.add s.c_requests (List.length reqs);
      Log.debug s.cfg.log
        ~fields:
          [
            ("client", Json.Str client);
            ("requests", num (List.length reqs));
            ("ids", Json.Arr (List.map (fun i -> Json.Str i) ids));
          ]
        "batch_parsed";
      Metrics.set_gauge s.g_queue (float_of_int (List.length reqs));
      let t0 = Unix.gettimeofday () in
      let outcomes, pool_stats =
        Support.Domain_pool.run_stats ~jobs:s.cfg.jobs
          (List.map
             (fun p () ->
               match p with
               | Error m ->
                   let t = Unix.gettimeofday () in
                   {
                     resp = err m;
                     out_op = "invalid";
                     out_ok = false;
                     out_wall = Unix.gettimeofday () -. t;
                     out_cache = None;
                   }
               | Ok req -> handle_request s req)
             parsed)
      in
      Metrics.set_gauge s.g_queue 0.0;
      List.iter2 (fun id o -> account s ~req_id:id o) ids outcomes;
      let domains = pool_stats.Support.Domain_pool.domains in
      for d = 0 to domains - 1 do
        Metrics.add_gauge
          (Metrics.gauge s.reg
             ~help:"Cumulative busy seconds per pool domain"
             ~labels:[ ("domain", string_of_int d) ]
             "skipper_serve_domain_busy_seconds")
          pool_stats.Support.Domain_pool.busy_s.(d)
      done;
      emit_spans s ~t0 ~ids ~ops pool_stats;
      let shutdown =
        List.exists (function Ok Shutdown -> true | _ -> false) parsed
      in
      (List.map (fun o -> o.resp) outcomes, shutdown)

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)

let serve cfg ~socket () =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let s = make_server cfg in
  (* clients carry a stable id for the log ("c0", "c1", ...) *)
  let clients = ref [] in
  let next_client = ref 0 in
  let close_quietly c = try Unix.close c with Unix.Unix_error _ -> () in
  let client_id c =
    match List.assq_opt c !clients with Some id -> id | None -> "c?"
  in
  let set_clients () =
    s.nclients <- List.length !clients;
    Metrics.set_gauge s.g_clients (float_of_int s.nclients)
  in
  let drop ?(reason = "eof") client =
    Log.info cfg.log
      ~fields:
        [ ("client", Json.Str (client_id client)); ("reason", Json.Str reason) ]
      "client_disconnected";
    clients := List.filter (fun (c, _) -> c != client) !clients;
    set_clients ();
    close_quietly client
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (c, _) -> close_quietly c) !clients;
      Unix.close fd;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 16;
      Log.info cfg.log
        ~fields:[ ("socket", Json.Str socket); ("jobs", num cfg.jobs) ]
        "listening";
      let stop = ref false in
      (* The listener and every connected client are polled together with
         select, and each readable client is served one frame per round.
         An idle or slow client therefore never blocks another client's
         connection or requests — only the frame actually being handled
         occupies the server. Connection order still decides nothing;
         frame arrival order does. *)
      while not !stop do
        match Unix.select (fd :: List.map fst !clients) [] [] (-1.0) with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | readable, _, _ ->
            List.iter
              (fun r ->
                if r = fd then begin
                  let client, _ = Unix.accept fd in
                  let id = Printf.sprintf "c%d" !next_client in
                  incr next_client;
                  clients := !clients @ [ (client, id) ];
                  set_clients ();
                  Log.info cfg.log
                    ~fields:[ ("client", Json.Str id) ]
                    "client_connected"
                end
                else if not !stop then
                  let id = client_id r in
                  match recv r with
                  | Closed -> drop r
                  | Aborted reason ->
                      s.aborted <- s.aborted + 1;
                      Metrics.incr s.c_aborted;
                      Log.warn cfg.log
                        ~fields:
                          [
                            ("client", Json.Str id);
                            ("reason", Json.Str reason);
                          ]
                        "aborted_frame";
                      drop ~reason:"aborted_frame" r
                  | exception Protocol_error m ->
                      Log.warn cfg.log
                        ~fields:
                          [ ("client", Json.Str id); ("error", Json.Str m) ]
                        "protocol_error";
                      drop ~reason:"protocol_error" r
                  | exception Unix.Unix_error (e, _, _) ->
                      Log.warn cfg.log
                        ~fields:
                          [
                            ("client", Json.Str id);
                            ("error", Json.Str (Unix.error_message e));
                          ]
                        "client_io_error";
                      drop ~reason:"io_error" r
                  | Frame frame -> (
                      Metrics.add s.c_bytes_read (4 + String.length frame);
                      Log.debug cfg.log
                        ~fields:
                          [
                            ("client", Json.Str id);
                            ("bytes", num (String.length frame));
                          ]
                        "batch_accepted";
                      let t0 = Unix.gettimeofday () in
                      match
                        let responses, shutdown = handle_batch s ~client:id frame in
                        let reply =
                          Json.to_string
                            (Json.Obj [ ("responses", Json.Arr responses) ])
                        in
                        write_frame r reply;
                        Metrics.add s.c_bytes_written (4 + String.length reply);
                        Log.debug cfg.log
                          ~fields:
                            [
                              ("client", Json.Str id);
                              ("bytes", num (String.length reply));
                              ( "wall_ms",
                                Json.Num ((Unix.gettimeofday () -. t0) *. 1e3)
                              );
                            ]
                          "batch_replied";
                        shutdown
                      with
                      | shutdown -> if shutdown then stop := true
                      | exception Unix.Unix_error (e, _, _) ->
                          Log.warn cfg.log
                            ~fields:
                              [
                                ("client", Json.Str id);
                                ("error", Json.Str (Unix.error_message e));
                              ]
                            "client_io_error";
                          drop ~reason:"io_error" r))
              readable
      done;
      sync_store s;
      Log.info cfg.log
        ~fields:
          [ ("requests", num s.requests); ("uptime_s", Json.Num (uptime_s s)) ]
        "shutdown");
  s.requests

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

let connect ?(retries = 50) ?(delay = 0.1) socket =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0 ->
        Unix.close fd;
        Unix.sleepf delay;
        go (n - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  go retries

let rpc fd requests =
  write_frame fd (Json.to_string (Json.Obj [ ("requests", Json.Arr requests) ]));
  match Json.parse (read_frame fd) with
  | Error m -> Error ("bad response frame: " ^ m)
  | Ok json -> (
      match Option.bind (Json.member "responses" json) Json.to_list with
      | Some rs when List.length rs = List.length requests -> Ok rs
      | Some rs ->
          Error
            (Printf.sprintf "expected %d responses, got %d"
               (List.length requests) (List.length rs))
      | None -> Error "response without a \"responses\" array")

let call ?retries ?delay ~socket requests =
  let fd = connect ?retries ?delay socket in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> rpc fd requests)

(* Request builders, so clients do not hand-roll the field names. *)

let req_compile ?(frames = 1) ?(optimize = false) ~app src =
  Json.Obj
    [
      ("op", Json.Str "compile");
      ("app", Json.Str app);
      ("src", Json.Str src);
      ("frames", num frames);
      ("optimize", Json.Bool optimize);
    ]

let req_run ?(frames = 1) ?(optimize = false) ?(strategy = "canonical") ~procs
    ~app src =
  Json.Obj
    [
      ("op", Json.Str "run");
      ("app", Json.Str app);
      ("src", Json.Str src);
      ("frames", num frames);
      ("optimize", Json.Bool optimize);
      ("procs", num procs);
      ("strategy", Json.Str strategy);
    ]

let req_stats = Json.Obj [ ("op", Json.Str "stats") ]
let req_metrics = Json.Obj [ ("op", Json.Str "metrics") ]
let req_shutdown = Json.Obj [ ("op", Json.Str "shutdown") ]

(* ------------------------------------------------------------------ *)
(* The `skipperc top` view                                             *)

(* Renders a stats response (the ok/"op":"stats" object) as a one-screen
   text dashboard. Pure function of the JSON, so it is unit-testable and
   `skipperc top` is a thin fetch-and-print loop around it. *)
let render_top stats =
  let buf = Buffer.create 1024 in
  let fnum j k = match Option.bind (Json.member k j) Json.to_float with
    | Some f -> f
    | None -> 0.0
  in
  let inum j k = int_of_float (fnum j k) in
  let uptime = fnum stats "uptime_s" in
  let requests = inum stats "requests" in
  let rate = if uptime > 0.0 then float_of_int requests /. uptime else 0.0 in
  Buffer.add_string buf
    (Printf.sprintf "skipperc serve — up %.1fs, %d client(s)\n" uptime
       (inum stats "clients"));
  Buffer.add_string buf
    (Printf.sprintf
       "requests %d (%.1f/s)   batches %d   errors %d   aborted frames %d\n"
       requests rate (inum stats "batches") (inum stats "errors")
       (inum stats "aborted_frames"));
  let metrics =
    Option.value (Json.member "metrics" stats) ~default:(Json.Obj [])
  in
  let section k =
    match Option.bind (Json.member k metrics) Json.to_list with
    | Some l -> l
    | None -> []
  in
  let counter_value name =
    List.fold_left
      (fun acc j ->
        match Option.bind (Json.member "name" j) Json.to_str with
        | Some n when n = name -> int_of_float (fnum j "value")
        | _ -> acc)
      0 (section "counters")
  in
  let ch = counter_value "skipper_serve_cache_hits_total" in
  let cm = counter_value "skipper_serve_cache_misses_total" in
  let csh = counter_value "skipper_serve_cache_store_hits_total" in
  let ratio =
    if ch + cm > 0 then 100.0 *. float_of_int ch /. float_of_int (ch + cm)
    else 0.0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "cache: hits %d   misses %d   store hits %d   hit ratio %.1f%%\n" ch cm
       csh ratio);
  (match Json.member "store" stats with
  | Some (Json.Obj _ as st) ->
      Buffer.add_string buf
        (Printf.sprintf
           "store: hits %d   absent %d   corrupt %d   stale %d   writes %d   evictions %d\n"
           (inum st "hits") (inum st "absent") (inum st "corrupt")
           (inum st "stamp_mismatch") (inum st "writes") (inum st "evictions"))
  | _ -> ());
  let hists =
    List.filter
      (fun j ->
        match Option.bind (Json.member "name" j) Json.to_str with
        | Some "skipper_serve_request_seconds" -> true
        | _ -> false)
      (section "histograms")
  in
  if hists <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-10s %8s %10s %10s %10s\n" "op" "count" "p50_ms"
         "p95_ms" "p99_ms");
    List.iter
      (fun h ->
        let op =
          match
            Option.bind (Json.member "labels" h) (Json.member "op")
            |> Fun.flip Option.bind Json.to_str
          with
          | Some o -> o
          | None -> "?"
        in
        Buffer.add_string buf
          (Printf.sprintf "%-10s %8d %10.2f %10.2f %10.2f\n" op
             (inum h "count")
             (fnum h "p50" *. 1e3)
             (fnum h "p95" *. 1e3)
             (fnum h "p99" *. 1e3)))
      hists
  end;
  let busy =
    List.filter_map
      (fun j ->
        match Option.bind (Json.member "name" j) Json.to_str with
        | Some "skipper_serve_domain_busy_seconds" ->
            let d =
              match
                Option.bind (Json.member "labels" j) (Json.member "domain")
                |> Fun.flip Option.bind Json.to_str
              with
              | Some d -> d
              | None -> "?"
            in
            Some (d, fnum j "value")
        | _ -> None)
      (section "gauges")
  in
  if busy <> [] && uptime > 0.0 then begin
    Buffer.add_string buf "domains:";
    List.iter
      (fun (d, b) ->
        Buffer.add_string buf
          (Printf.sprintf "  d%s %.1f%%" d (100.0 *. b /. uptime)))
      busy;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf
