module Json = Support.Json

exception Protocol_error of string

let protocol_error fmt =
  Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian length, then that many bytes of JSON.    *)

(* A frame larger than this is a protocol desync (or a hostile peer), not
   a plausible batch; fail before allocating the "length". *)
let max_frame = 64 * 1024 * 1024

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
  in
  go 0

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let read_frame fd =
  let hdr = read_exact fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then
    protocol_error "frame length %d out of range" len;
  Bytes.to_string (read_exact fd len)

let write_frame fd payload =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (String.length payload));
  write_all fd (Bytes.to_string hdr);
  write_all fd payload

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type config = {
  table_of : string -> Skel.Funtable.t;
  input_of : string -> Skel.Value.t option;
  arch_of : int -> Archi.t;
  store : Support.Store.t option;
  jobs : int;
}

type request =
  | Compile of { app : string; src : string; frames : int; optimize : bool }
  | Run of {
      app : string;
      src : string;
      frames : int;
      optimize : bool;
      procs : int;
      strategy : string;
    }
  | Stats
  | Shutdown

let str_field j k = Option.bind (Json.member k j) Json.to_str

let int_field j k default =
  match Option.bind (Json.member k j) Json.to_float with
  | Some f -> int_of_float f
  | None -> default

let bool_field j k default =
  match Json.member k j with Some (Json.Bool b) -> b | _ -> default

let parse_request j =
  match str_field j "op" with
  | Some "compile" -> (
      match (str_field j "app", str_field j "src") with
      | Some app, Some src ->
          Ok
            (Compile
               {
                 app;
                 src;
                 frames = int_field j "frames" 1;
                 optimize = bool_field j "optimize" false;
               })
      | _ -> Error "compile needs \"app\" and \"src\" fields")
  | Some "run" -> (
      match (str_field j "app", str_field j "src") with
      | Some app, Some src ->
          Ok
            (Run
               {
                 app;
                 src;
                 frames = int_field j "frames" 1;
                 optimize = bool_field j "optimize" false;
                 procs = int_field j "procs" 4;
                 strategy =
                   Option.value (str_field j "strategy") ~default:"canonical";
               })
      | _ -> Error "run needs \"app\" and \"src\" fields")
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request without an \"op\" field"

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)

let num n = Json.Num (float_of_int n)
let ok fields = Json.Obj (("status", Json.Str "ok") :: fields)

let err msg =
  Json.Obj [ ("status", Json.Str "error"); ("message", Json.Str msg) ]

let cache_json cache =
  let hits, misses = Passes.cache_stats cache in
  Json.Obj
    [
      ("hits", num hits);
      ("misses", num misses);
      ("store_hits", num (Passes.store_hits cache));
    ]

let store_json = function
  | None -> Json.Null
  | Some store ->
      let c = Support.Store.counters store in
      Json.Obj
        [
          ("hits", num c.Support.Store.hits);
          ("misses", num c.Support.Store.misses);
          ("writes", num c.Support.Store.writes);
          ("corrupt", num c.Support.Store.corrupt);
          ("evictions", num c.Support.Store.evictions);
        ]

type server_state = {
  mutable requests : int;
  mutable batches : int;
  mutable errors : int;
}

let compile_fields cfg ~app ~src ~frames ~optimize =
  let table = cfg.table_of app in
  let cache = Passes.create_cache ?store:cfg.store () in
  let compiled = Pipeline.compile_source ~frames ~optimize ~cache ~table src in
  let fields =
    [
      ("graph_digest", Json.Str (Stage.fingerprint (Stage.Graph compiled.Pipeline.graph)));
      ("cache", cache_json cache);
    ]
  in
  (compiled, fields)

let handle_request cfg state req =
  let t0 = Unix.gettimeofday () in
  let timed op fields =
    ok
      (("op", Json.Str op) :: fields
      @ [ ("wall_ms", Json.Num ((Unix.gettimeofday () -. t0) *. 1e3)) ])
  in
  try
    match req with
    | Compile { app; src; frames; optimize } ->
        let _, fields = compile_fields cfg ~app ~src ~frames ~optimize in
        timed "compile" fields
    | Run { app; src; frames; optimize; procs; strategy } ->
        let compiled, fields = compile_fields cfg ~app ~src ~frames ~optimize in
        let input = cfg.input_of app in
        let result =
          Pipeline.execute ?input ~strategy compiled (cfg.arch_of procs)
        in
        timed "run"
          (fields
          @ [
              ("value", Json.Str (Skel.Value.to_string result.Executive.value));
              ("frames", num (List.length result.Executive.outputs));
              ( "messages",
                num result.Executive.stats.Machine.Sim.messages );
            ])
    | Stats ->
        timed "stats"
          [
            ("requests", num state.requests);
            ("batches", num state.batches);
            ("errors", num state.errors);
            ("store", store_json cfg.store);
          ]
    | Shutdown -> timed "shutdown" []
  with
  | Passes.Pass_error m -> err ("compile error: " ^ m)
  | Executive.Executive_error m -> err ("executive error: " ^ m)
  | Failure m | Invalid_argument m -> err m

let is_error r =
  match Json.member "status" r with Some (Json.Str "error") -> true | _ -> false

(* One frame = one batch. Requests are independent, so they are farmed on
   the domain pool; responses come back in request order (Domain_pool's
   submit-order guarantee), which is the protocol's pairing rule. *)
let handle_batch cfg state payload =
  match Json.parse payload with
  | Error m -> ([ err ("bad request: " ^ m) ], false)
  | Ok json ->
      let reqs =
        match Option.bind (Json.member "requests" json) Json.to_list with
        | Some l -> l
        | None -> [ json ] (* a bare request is a batch of one *)
      in
      let parsed = List.map parse_request reqs in
      state.batches <- state.batches + 1;
      state.requests <- state.requests + List.length reqs;
      let responses =
        Support.Domain_pool.run ~jobs:cfg.jobs
          (List.map
             (fun p () ->
               match p with
               | Error m -> err m
               | Ok req -> handle_request cfg state req)
             parsed)
      in
      state.errors <- state.errors + List.length (List.filter is_error responses);
      let shutdown =
        List.exists (function Ok Shutdown -> true | _ -> false) parsed
      in
      (responses, shutdown)

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)

let serve cfg ~socket () =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let state = { requests = 0; batches = 0; errors = 0 } in
  let clients = ref [] in
  let close_quietly c = try Unix.close c with Unix.Unix_error _ -> () in
  let drop client =
    clients := List.filter (fun c -> c <> client) !clients;
    close_quietly client
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_quietly !clients;
      Unix.close fd;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 16;
      let stop = ref false in
      (* The listener and every connected client are polled together with
         select, and each readable client is served one frame per round.
         An idle or slow client therefore never blocks another client's
         connection or requests — only the frame actually being handled
         occupies the server. Connection order still decides nothing;
         frame arrival order does. *)
      while not !stop do
        match Unix.select (fd :: !clients) [] [] (-1.0) with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | readable, _, _ ->
            List.iter
              (fun r ->
                if r = fd then begin
                  let client, _ = Unix.accept fd in
                  clients := !clients @ [ client ]
                end
                else if not !stop then
                  match
                    let frame = read_frame r in
                    let responses, shutdown = handle_batch cfg state frame in
                    write_frame r
                      (Json.to_string
                         (Json.Obj [ ("responses", Json.Arr responses) ]));
                    shutdown
                  with
                  | shutdown -> if shutdown then stop := true
                  | exception End_of_file -> drop r
                  | exception Protocol_error _ -> drop r
                  | exception Unix.Unix_error _ -> drop r)
              readable
      done);
  state.requests

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

let connect ?(retries = 50) ?(delay = 0.1) socket =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0 ->
        Unix.close fd;
        Unix.sleepf delay;
        go (n - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  go retries

let rpc fd requests =
  write_frame fd (Json.to_string (Json.Obj [ ("requests", Json.Arr requests) ]));
  match Json.parse (read_frame fd) with
  | Error m -> Error ("bad response frame: " ^ m)
  | Ok json -> (
      match Option.bind (Json.member "responses" json) Json.to_list with
      | Some rs when List.length rs = List.length requests -> Ok rs
      | Some rs ->
          Error
            (Printf.sprintf "expected %d responses, got %d"
               (List.length requests) (List.length rs))
      | None -> Error "response without a \"responses\" array")

let call ?retries ?delay ~socket requests =
  let fd = connect ?retries ?delay socket in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> rpc fd requests)

(* Request builders, so clients do not hand-roll the field names. *)

let req_compile ?(frames = 1) ?(optimize = false) ~app src =
  Json.Obj
    [
      ("op", Json.Str "compile");
      ("app", Json.Str app);
      ("src", Json.Str src);
      ("frames", num frames);
      ("optimize", Json.Bool optimize);
    ]

let req_run ?(frames = 1) ?(optimize = false) ?(strategy = "canonical") ~procs
    ~app src =
  Json.Obj
    [
      ("op", Json.Str "run");
      ("app", Json.Str app);
      ("src", Json.Str src);
      ("frames", num frames);
      ("optimize", Json.Bool optimize);
      ("procs", num procs);
      ("strategy", Json.Str strategy);
    ]

let req_stats = Json.Obj [ ("op", Json.Str "stats") ]
let req_shutdown = Json.Obj [ ("op", Json.Str "shutdown") ]
