(* Metrics registry. The registry itself is a mutex-protected list of
   instruments (registration is rare); the instruments carry their own
   synchronisation (atomics; a mutex per histogram) so the hot increment
   paths never contend on the registry lock. *)

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = { hmu : Mutex.t; hist : Histogram.t }

type body =
  | Counter of counter
  | Gauge of gauge
  | Hist of histogram

type instrument = {
  name : string;
  labels : (string * string) list;
  help : string;
  body : body;
}

type t = { mu : Mutex.t; mutable instruments : instrument list }

let create () = { mu = Mutex.create (); instruments = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

(* Idempotent registration: same (name, labels) returns the existing
   instrument; a kind clash is a programming error worth failing loudly. *)
let register t ~help ~labels ~name make match_body =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match
        List.find_opt
          (fun i -> String.equal i.name name && i.labels = labels)
          t.instruments
      with
      | Some i -> (
          match match_body i.body with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Metrics: %s already registered as a %s" name
                   (kind_name i.body)))
      | None ->
          let v, body = make () in
          t.instruments <- { name; labels; help; body } :: t.instruments;
          v)

let counter t ?(help = "") ?(labels = []) name =
  register t ~help ~labels ~name
    (fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let set c n = Atomic.set c n
let value c = Atomic.get c

let gauge t ?(help = "") ?(labels = []) name =
  register t ~help ~labels ~name
    (fun () ->
      let g = Atomic.make 0.0 in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g v

let rec add_gauge g v =
  let cur = Atomic.get g in
  if not (Atomic.compare_and_set g cur (cur +. v)) then add_gauge g v

let gauge_value g = Atomic.get g

let histogram t ?(help = "") ?(labels = []) name =
  register t ~help ~labels ~name
    (fun () ->
      let h = { hmu = Mutex.create (); hist = Histogram.create () } in
      (h, Hist h))
    (function Hist h -> Some h | _ -> None)

let observe h v =
  Mutex.lock h.hmu;
  Histogram.add h.hist v;
  Mutex.unlock h.hmu

let snapshot h =
  Mutex.lock h.hmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock h.hmu)
    (fun () -> Histogram.copy h.hist)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

(* Deterministic order whatever the registration interleaving. *)
let sorted t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      List.sort
        (fun a b ->
          match String.compare a.name b.name with
          | 0 -> compare a.labels b.labels
          | c -> c)
        t.instruments)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let json t =
  let instruments = sorted t in
  let base i rest =
    ("name", Json.Str i.name) :: ("labels", labels_json i.labels) :: rest
  in
  let pick f = List.filter_map f instruments in
  let counters =
    pick (fun i ->
        match i.body with
        | Counter c ->
            Some (Json.Obj (base i [ ("value", Json.Num (float_of_int (Atomic.get c))) ]))
        | _ -> None)
  in
  let gauges =
    pick (fun i ->
        match i.body with
        | Gauge g -> Some (Json.Obj (base i [ ("value", Json.Num (Atomic.get g)) ]))
        | _ -> None)
  in
  let histograms =
    pick (fun i ->
        match i.body with
        | Hist hm ->
            let h = snapshot hm in
            let buckets =
              List.map
                (fun (le, n) ->
                  Json.Obj
                    [ ("le", Json.Num le); ("n", Json.Num (float_of_int n)) ])
                (Histogram.buckets h)
            in
            Some
              (Json.Obj
                 (base i
                    [
                      ("count", Json.Num (float_of_int (Histogram.count h)));
                      ("sum", Json.Num (Histogram.sum h));
                      ("mean", Json.Num (Histogram.mean h));
                      ("p50", Json.Num (Histogram.quantile h 0.50));
                      ("p95", Json.Num (Histogram.quantile h 0.95));
                      ("p99", Json.Num (Histogram.quantile h 0.99));
                      ("buckets", Json.Arr buckets);
                    ]))
        | _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.Arr counters);
      ("gauges", Json.Arr gauges);
      ("histograms", Json.Arr histograms);
    ]

let to_json t = Json.to_string (json t)

(* Prometheus text exposition, following Series.to_prometheus conventions. *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

let to_prometheus t =
  let instruments = sorted t in
  let buf = Buffer.create 1024 in
  let headed = Hashtbl.create 16 in
  let head i =
    if not (Hashtbl.mem headed i.name) then begin
      Hashtbl.add headed i.name ();
      if i.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" i.name i.help);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" i.name (kind_name i.body))
    end
  in
  List.iter
    (fun i ->
      head i;
      let lbl = render_labels i.labels in
      match i.body with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" i.name lbl (Atomic.get c))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %.9f\n" i.name lbl (Atomic.get g))
      | Hist hm ->
          let h = snapshot hm in
          let with_le le rest =
            match i.labels with
            | [] -> Printf.sprintf "{le=\"%s\"}%s" le rest
            | _ ->
                Printf.sprintf "{%s,le=\"%s\"}%s"
                  (String.concat ","
                     (List.map
                        (fun (k, v) ->
                          Printf.sprintf "%s=\"%s\"" k (escape_label v))
                        i.labels))
                  le rest
          in
          let cum = ref 0 in
          List.iter
            (fun (le, n) ->
              cum := !cum + n;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" i.name
                   (with_le (Printf.sprintf "%.9g" le) "")
                   !cum))
            (Histogram.buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" i.name (with_le "+Inf" "")
               (Histogram.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %.9f\n" i.name lbl (Histogram.sum h));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" i.name lbl (Histogram.count h)))
    instruments;
  Buffer.contents buf
