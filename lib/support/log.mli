(** Structured JSONL logging for long-lived processes.

    One logger renders one JSON object per line and hands it to a sink
    (a channel, a file, or a capture function in tests). Every line carries
    a fixed prefix — a monotonic sequence number, a timestamp, the level
    and the event name — then the caller's fields in caller order, so logs
    are machine-parseable ({!Json.parse} line by line) and greppable.

    Two properties matter for the daemon:
    - {b Domain safety}: sequence numbering and the sink call are atomic
      under an internal mutex, so pool domains may log concurrently without
      tearing lines or duplicating sequence numbers.
    - {b Determinism for tests}: the clock is injectable. With a pinned
      clock (and a single writer), two runs produce byte-identical logs —
      the serve tests rely on it.

    Line schema (field order fixed):
    [{"seq":N,"ts_s":T,"level":"info","event":"...","req":"r3",...fields}]
    — ["req"] only when a request id was given. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> (level, string) result
(** Accepts the {!level_name} spellings plus ["warning"]; the error lists
    the valid set. *)

type t

val create : ?level:level -> ?clock:(unit -> float) -> (string -> unit) -> t
(** A logger writing through the sink, which receives one complete line
    {e without} the trailing newline. Records at a level below [level]
    (default [Info]) are dropped before rendering. [clock] (default
    [Unix.gettimeofday]) stamps [ts_s]; inject a fixed clock to pin log
    bytes in tests. *)

val to_channel : ?level:level -> ?clock:(unit -> float) -> out_channel -> t
(** Logger appending ["line\n"] to the channel and flushing per line (a
    crash must not swallow the tail of the log). *)

val null : t
(** Drops everything; the no-logging default for library callers. *)

val enabled : t -> level -> bool
(** Whether a record at this level would be kept — lets callers skip
    building expensive fields. *)

val log :
  t ->
  level ->
  ?req:string ->
  ?fields:(string * Json.t) list ->
  string ->
  unit
(** [log t lvl ~req ~fields event] emits one line. [fields] keep their
    order after the fixed prefix. *)

val debug : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit
val info : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit
val warn : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit
val error : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit

val sequence : t -> int
(** Lines emitted (and so the next line's [seq]); dropped-by-level records
    do not count. *)
