(** Domain-safe metrics registry for long-lived processes.

    A registry holds named instruments — monotonic {e counters}, settable
    {e gauges}, and log-bucketed latency {e histograms} (the shared
    {!Histogram}, so expositions line up bucket-for-bucket with the
    windowed series' {!Skipper_trace.Series.Hist}). Registration is
    idempotent: asking for an existing (name, labels) pair returns the same
    instrument, so independent call sites accumulate into one series — and
    asking for it as a different instrument kind is an [Invalid_argument].

    Concurrency: counters and gauges are [Atomic.t] (gauge adds via a CAS
    loop), histogram observation serialises behind a per-histogram mutex —
    so pool domains may increment freely and no count is ever lost (pinned
    by an 8-domain qcheck in [test_metrics]). Snapshots ({!json},
    {!to_prometheus}) are deterministic functions of the instrument values:
    instruments sort by (name, labels) and numbers print with fixed
    formats, so two registries holding equal values render byte-identical
    text whatever the registration or increment interleaving. *)

type t

val create : unit -> t

(** {1 Counters} — monotonic integer totals. *)

type counter

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
(** Mirror an externally-maintained total (e.g. {!Store.counters}) into the
    registry at snapshot time. *)

val value : counter -> int

(** {1 Gauges} — floats that go up and down. *)

type gauge

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — {!Histogram} under a mutex. *)

type histogram

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string -> histogram

val observe : histogram -> float -> unit

val snapshot : histogram -> Histogram.t
(** A consistent copy; read it with the {!Histogram} accessors. *)

(** {1 Snapshots} *)

val json : t -> Json.t
(** [{"counters":[...],"gauges":[...],"histograms":[...]}], each instrument
    as [{"name","labels","value"}] (histograms carry
    [count]/[sum]/[mean]/[p50]/[p95]/[p99]/[buckets]), sorted by
    (name, labels). *)

val to_json : t -> string

val to_prometheus : t -> string
(** Prometheus text exposition, one [# HELP]/[# TYPE] block per metric
    name, following the same conventions as
    {!Skipper_trace.Series.to_prometheus} ([_bucket{le="..."}] cumulative
    histograms with [+Inf], [_sum], [_count]; [%.9g] bucket bounds, [%.9f]
    float values). *)
