let pattern key = "%{" ^ key ^ "}"

let subst ~key ~value s =
  let pat = pattern key in
  let plen = String.length pat and n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + plen <= n && String.sub s !i plen = pat then begin
      Buffer.add_string buf value;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let mem ~key s =
  let pat = pattern key in
  let plen = String.length pat and n = String.length s in
  let rec go i = i + plen <= n && (String.sub s i plen = pat || go (i + 1)) in
  plen > 0 && go 0
