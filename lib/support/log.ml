(* Structured JSONL logging. The mutex serialises sequence assignment and
   the sink call together, so a line's seq always matches its position in
   the sink's output even under concurrent writers. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other ->
      Error
        (Printf.sprintf "unknown log level %S (expected debug, info, warn or error)"
           other)

type t = {
  level : level;
  clock : unit -> float;
  sink : string -> unit;
  mu : Mutex.t;
  mutable seq : int;
}

let create ?(level = Info) ?(clock = Unix.gettimeofday) sink =
  { level; clock; sink; mu = Mutex.create (); seq = 0 }

let to_channel ?level ?clock oc =
  create ?level ?clock (fun line ->
      Out_channel.output_string oc line;
      Out_channel.output_char oc '\n';
      Out_channel.flush oc)

let null = create ~level:Error (fun _ -> ())

let enabled t lvl = t != null && severity lvl >= severity t.level

let log t lvl ?req ?(fields = []) event =
  if enabled t lvl then begin
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        let seq = t.seq in
        t.seq <- seq + 1;
        let line =
          Json.Obj
            ([
               ("seq", Json.Num (float_of_int seq));
               ("ts_s", Json.Num (t.clock ()));
               ("level", Json.Str (level_name lvl));
               ("event", Json.Str event);
             ]
            @ (match req with
              | Some r -> [ ("req", Json.Str r) ]
              | None -> [])
            @ fields)
        in
        t.sink (Json.to_string line))
  end

let debug t ?req ?fields event = log t Debug ?req ?fields event
let info t ?req ?fields event = log t Info ?req ?fields event
let warn t ?req ?fields event = log t Warn ?req ?fields event
let error t ?req ?fields event = log t Error ?req ?fields event
let sequence t = t.seq
