(** Persistent content-addressed artifact store.

    An entry is an immutable byte payload under an opaque string key. The
    pass manager uses it to make front-end compile artifacts survive
    [skipperc] invocations: keys are content hashes of
    (source digest, pass name, pass options, table digest), so equal
    compiles in different processes address the same on-disk entry.

    Layout: one file per entry under [dir]/objects, named by the MD5 of
    the key (keys need not be filesystem-safe). Every entry carries a
    magic, the store's format [stamp], the full key and an MD5 payload
    checksum.

    Invariants:
    - {b Atomicity}: writes land via a temp file in [dir]/tmp plus
      [Unix.rename], so readers never observe a partial entry and
      concurrent writers (domains or processes) race benignly — last
      writer wins.
    - {b Corruption tolerance}: a damaged, truncated, stamp-mismatched or
      foreign entry reads as a miss (counted in [corrupt]), never as an
      exception or a wrong payload.
    - {b Stamping}: the caller's [stamp] versions the payload encoding;
      bumping it orphans (rather than misreads) every old entry.

    All counters are [Atomic.t], so a store may be shared across the
    domain pool and across server clients. *)

type t

type counters = {
  hits : int;
  misses : int;  (** by construction [absent + corrupt + stamp_mismatch] *)
  absent : int;  (** lookups that found no entry file at all *)
  corrupt : int;  (** entries present but unreadable *)
  stamp_mismatch : int;
      (** well-formed entries written under a different format stamp —
          orphaned by a stamp bump, not damaged *)
  writes : int;
  evictions : int;
  bytes_read : int;  (** payload bytes returned by hits *)
  bytes_written : int;  (** payload bytes stored by writes *)
}

val open_store :
  ?dir:string -> ?stamp:string -> ?limit_bytes:int -> unit -> t
(** Opens (creating directories as needed) the store at [dir], defaulting
    to {!default_dir}. [stamp] (default ["skipper-store-v1"]) versions the
    payload format. When [limit_bytes] is given, each write prunes oldest
    entries (by mtime) until the store fits — pruning is best-effort and
    write-side only. *)

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/skipper], else [$HOME/.cache/skipper], else a
    directory under the system temp dir. *)

val dir : t -> string
val stamp : t -> string

val put : t -> key:string -> string -> unit
(** Stores the payload under [key], overwriting any previous entry. *)

val get : t -> key:string -> string option
(** [None] on absent or unreadable entries; never raises on entry
    content. *)

val mem : t -> key:string -> bool
(** Presence only — does not validate the entry or touch counters. *)

val counters : t -> counters
val reset_counters : t -> unit
