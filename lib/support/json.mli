(** Minimal JSON reader/printer for the machine-readable artifacts the
    toolchain itself produces (bench [--json] summaries, conformance
    reports, the committed bench baseline).

    This is deliberately not a general-purpose JSON library: it parses
    finite numbers only and prints with a fixed, deterministic format.
    String escapes are complete, though — all eight short escapes plus
    [\uXXXX] including surrogate pairs (decoded to UTF-8), since baseline
    and series files may be edited by hand or produced by other tools. The
    printer mirrors the short escapes ([\n \t \r \b \f]) and falls back to
    [\u00XX] for the remaining control characters. The bench baseline gate
    round-trips through it, so the hard requirement is
    [parse (to_string v) = Ok v] for values built of those pieces. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** key order preserved *)

exception Parse_error of string

val parse : string -> (t, string) result
(** Whole-string parse; trailing non-whitespace is an error. *)

val to_string : t -> string
(** Compact rendering. Integral numbers print without a fractional part,
    other floats with [%.9g]; object key order is preserved. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
