(** [%{key}] path templating, shared by the per-variant artifact paths of
    [skipperc run --procs A,B,...] sweeps.

    [subst] replaces {e every} occurrence of ["%{key}"] — a sweep path
    like ["out/%{procs}/trace-%{procs}.json"] must expand both — and
    leaves strings without the template untouched. *)

val subst : key:string -> value:string -> string -> string
(** [subst ~key:"procs" ~value:"8" s] replaces every ["%{procs}"] in [s]
    with ["8"]. Substituted text is not rescanned, so a [value] containing
    the pattern does not loop. *)

val mem : key:string -> string -> bool
(** Whether [s] contains ["%{key}"] at least once. *)
