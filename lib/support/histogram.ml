(* Geometric buckets, ratio 2^(1/8), from 1 microsecond. 2^(1/8) is
   computed by three correctly-rounded square roots — no [log]/[Float.pow],
   whose last bits vary across libm implementations and would break the
   cross-platform byte-identity of bucket assignment. *)
let ratio = sqrt (sqrt (sqrt 2.0))
let lowest = 1e-6
let nbuckets = 248 (* 31 octaves above 1 us: covers ~2000 s *)

let bounds =
  let b = Array.make nbuckets lowest in
  for i = 1 to nbuckets - 1 do
    b.(i) <- b.(i - 1) *. ratio
  done;
  b

type t = {
  counts : int array; (* one slot per bound; last slot absorbs overflow *)
  mutable n : int;
  mutable total : float; (* exact sum of samples, not bucket-quantised *)
}

let create () = { counts = Array.make nbuckets 0; n = 0; total = 0.0 }

(* Smallest bucket whose upper bound contains [v] (v <= bounds.(i));
   values at or below the lowest bound land in bucket 0, values beyond
   the last bound clamp into it. *)
let bucket_of v =
  if v <= bounds.(0) then 0
  else if v > bounds.(nbuckets - 1) then nbuckets - 1
  else begin
    let lo = ref 0 and hi = ref (nbuckets - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let add t v =
  let v = Float.max v 0.0 in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. v

let merge a b =
  let t = create () in
  for i = 0 to nbuckets - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.n <- a.n + b.n;
  t.total <- a.total +. b.total;
  t

let copy t = { counts = Array.copy t.counts; n = t.n; total = t.total }
let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n

let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let rank = min rank t.n in
    let seen = ref 0 and result = ref bounds.(nbuckets - 1) in
    (try
       for i = 0 to nbuckets - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           result := bounds.(i);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bounds.(i), t.counts.(i)) :: !acc
  done;
  !acc
