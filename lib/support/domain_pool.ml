type span = { job : int; domain : int; start_s : float; finish_s : float }

type stats = {
  njobs : int;
  domains : int;
  wall_s : float;
  busy_s : float array;
  jobs_run : int array;
  spans : span list;
}

let speedup s =
  if s.wall_s <= 0.0 then 1.0
  else
    let work = Array.fold_left ( +. ) 0.0 s.busy_s in
    if work <= 0.0 then 1.0 else work /. s.wall_s

let default_jobs () = Domain.recommended_domain_count ()

let jobs_from_env ?(var = "SKIPPER_JOBS") ?(default = 1) () =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> default)

(* One worker's trip through the job list: pull the next unclaimed index,
   run it, record its outcome and span, repeat until the counter runs past
   the end. [cells] is written disjointly (one writer per index) and reads
   happen only after every worker joined, so no cell needs to be atomic. *)
let worker ~next ~cells ~(thunks : (unit -> 'a) array) ~t0 w =
  let spans = ref [] in
  let rec pull () =
    let i = Atomic.fetch_and_add next 1 in
    if i < Array.length thunks then begin
      let start_s = Unix.gettimeofday () -. t0 in
      let outcome = try Ok (thunks.(i) ()) with e -> Error e in
      let finish_s = Unix.gettimeofday () -. t0 in
      cells.(i) <- Some outcome;
      spans := { job = i; domain = w; start_s; finish_s } :: !spans;
      pull ()
    end
  in
  pull ();
  !spans

let run_stats ?(jobs = 1) thunks =
  let thunks = Array.of_list thunks in
  let njobs = Array.length thunks in
  let domains = max 1 (min jobs njobs) in
  let t0 = Unix.gettimeofday () in
  let cells = Array.make njobs None in
  let next = Atomic.make 0 in
  (* Workers 1..domains-1 are spawned domains; the calling domain is worker
     0, so [jobs] is the true parallelism degree. *)
  let spawned =
    List.init (domains - 1) (fun k ->
        Domain.spawn (fun () -> worker ~next ~cells ~thunks ~t0 (k + 1)))
  in
  let own_spans = worker ~next ~cells ~thunks ~t0 0 in
  let all_spans = own_spans :: List.map Domain.join spawned in
  let wall_s = Unix.gettimeofday () -. t0 in
  let busy_s = Array.make domains 0.0 in
  let jobs_run = Array.make domains 0 in
  let spans =
    List.concat all_spans
    |> List.sort (fun a b -> compare a.job b.job)
  in
  List.iter
    (fun s ->
      busy_s.(s.domain) <- busy_s.(s.domain) +. (s.finish_s -. s.start_s);
      jobs_run.(s.domain) <- jobs_run.(s.domain) + 1)
    spans;
  let stats = { njobs; domains; wall_s; busy_s; jobs_run; spans } in
  (* Deterministic failure: re-raise the earliest submitted job's exception
     (all jobs ran either way, so no sibling was torn down mid-flight). *)
  let results =
    Array.map
      (function
        | Some outcome -> outcome
        | None -> Error (Failure "Domain_pool: job never ran"))
      cells
  in
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  ( Array.to_list
      (Array.map (function Ok v -> v | Error _ -> assert false) results),
    stats )

let run ?jobs thunks = fst (run_stats ?jobs thunks)
let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)
