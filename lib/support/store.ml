(* On-disk content-addressed artifact store.

   Entries are immutable byte payloads keyed by an opaque string (in
   practice the pass manager's running content hash). Each entry is one
   file under [dir]/objects/<p>/<name> whose name is the MD5 of the key —
   keys therefore never need to be filesystem-safe — and whose header
   carries a magic, the caller's format stamp, the full key and a payload
   checksum. Writes go through [dir]/tmp + Unix.rename, so concurrent
   writers (domains or whole processes) race benignly: the rename is
   atomic, last writer wins, and a reader only ever sees a complete entry.
   Reads never raise on a damaged entry: any header mismatch, checksum
   failure or truncation counts as [corrupt] and reads as a miss. *)

let magic = "SKIPSTORE1"

type counters = {
  hits : int;
  misses : int;  (** [absent + corrupt + stamp_mismatch] *)
  absent : int;
  corrupt : int;  (** entries present but unreadable (treated as misses) *)
  stamp_mismatch : int;  (** well-formed entries written under another stamp *)
  writes : int;
  evictions : int;
  bytes_read : int;  (** payload bytes returned by hits *)
  bytes_written : int;  (** payload bytes stored by writes *)
}

type t = {
  dir : string;
  stamp : string;
  limit_bytes : int option;
  hits : int Atomic.t;
  absent : int Atomic.t;
  writes : int Atomic.t;
  corrupt : int Atomic.t;
  stamp_mismatch : int Atomic.t;
  evictions : int Atomic.t;
  bytes_read : int Atomic.t;
  bytes_written : int Atomic.t;
}

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "skipper"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "skipper"
      | _ -> Filename.concat (Filename.get_temp_dir_name ()) "skipper-cache")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let objects_dir t = Filename.concat t.dir "objects"
let tmp_dir t = Filename.concat t.dir "tmp"

let open_store ?dir ?(stamp = "skipper-store-v1") ?limit_bytes () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let t =
    {
      dir;
      stamp;
      limit_bytes;
      hits = Atomic.make 0;
      absent = Atomic.make 0;
      writes = Atomic.make 0;
      corrupt = Atomic.make 0;
      stamp_mismatch = Atomic.make 0;
      evictions = Atomic.make 0;
      bytes_read = Atomic.make 0;
      bytes_written = Atomic.make 0;
    }
  in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  t

let dir t = t.dir
let stamp t = t.stamp

let counters t =
  let absent = Atomic.get t.absent in
  let corrupt = Atomic.get t.corrupt in
  let stamp_mismatch = Atomic.get t.stamp_mismatch in
  {
    hits = Atomic.get t.hits;
    misses = absent + corrupt + stamp_mismatch;
    absent;
    corrupt;
    stamp_mismatch;
    writes = Atomic.get t.writes;
    evictions = Atomic.get t.evictions;
    bytes_read = Atomic.get t.bytes_read;
    bytes_written = Atomic.get t.bytes_written;
  }

let reset_counters t =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      t.hits;
      t.absent;
      t.writes;
      t.corrupt;
      t.stamp_mismatch;
      t.evictions;
      t.bytes_read;
      t.bytes_written;
    ]

(* Keys are hashed into the file name (two-level fan-out), so arbitrary key
   strings work and directories stay small. *)
let entry_path t ~key =
  let h = Digest.to_hex (Digest.string key) in
  Filename.concat (objects_dir t) (Filename.concat (String.sub h 0 2) h)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let unique =
  let n = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add n 1

let render_entry t ~key payload =
  (* Header lines are length-prefixed where content may contain anything. *)
  let b = Buffer.create (String.length payload + 256) in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b t.stamp;
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (String.length key));
  Buffer.add_char b '\n';
  Buffer.add_string b key;
  Buffer.add_char b '\n';
  Buffer.add_string b (Digest.to_hex (Digest.string payload));
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (String.length payload));
  Buffer.add_char b '\n';
  Buffer.add_string b payload;
  Buffer.contents b

(* FIFO eviction by mtime: only consulted when a [limit_bytes] was given,
   and only on the write path, so reads stay cheap. *)
let evict_over_limit t limit =
  let files = ref [] in
  let total = ref 0 in
  let objects = objects_dir t in
  Array.iter
    (fun sub ->
      let subdir = Filename.concat objects sub in
      if Sys.is_directory subdir then
        Array.iter
          (fun f ->
            let path = Filename.concat subdir f in
            match Unix.stat path with
            | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                files := (st_mtime, st_size, path) :: !files;
                total := !total + st_size
            | _ | (exception Unix.Unix_error _) -> ())
          (try Sys.readdir subdir with Sys_error _ -> [||]))
    (try Sys.readdir objects with Sys_error _ -> [||]);
  if !total > limit then
    List.iter
      (fun (_, size, path) ->
        if !total > limit then begin
          (try
             Sys.remove path;
             Atomic.incr t.evictions
           with Sys_error _ -> ());
          total := !total - size
        end)
      (List.sort compare !files)

let put t ~key payload =
  let target = entry_path t ~key in
  mkdir_p (Filename.dirname target);
  let tmp =
    Filename.concat (tmp_dir t)
      (Printf.sprintf "put.%d.%d.%d" (Unix.getpid ())
         (Domain.self () :> int)
         (unique ()))
  in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (render_entry t ~key payload));
  Unix.rename tmp target;
  Atomic.incr t.writes;
  ignore (Atomic.fetch_and_add t.bytes_written (String.length payload));
  Option.iter (evict_over_limit t) t.limit_bytes

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

exception Bad_entry
exception Stale_entry
(* [Stale_entry]: magic line fine but the stamp differs — a well-formed
   entry from another format generation, worth counting apart from real
   corruption when deciding whether a cache is damaged or merely old. *)

let read_entry t ~key path =
  In_channel.with_open_bin path (fun ic ->
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> raise Bad_entry
      in
      let exact n =
        if n < 0 then raise Bad_entry;
        match In_channel.really_input_string ic n with
        | Some s -> s
        | None -> raise Bad_entry
      in
      let int_line () =
        match int_of_string_opt (line ()) with
        | Some n -> n
        | None -> raise Bad_entry
      in
      if line () <> magic then raise Bad_entry;
      if line () <> t.stamp then raise Stale_entry;
      let klen = int_line () in
      if exact klen <> key then raise Bad_entry;
      if exact 1 <> "\n" then raise Bad_entry;
      let digest = line () in
      let plen = int_line () in
      let payload = exact plen in
      (* trailing bytes would mean a torn or overlong write *)
      if In_channel.input_char ic <> None then raise Bad_entry;
      if Digest.to_hex (Digest.string payload) <> digest then raise Bad_entry;
      payload)

let get t ~key =
  let path = entry_path t ~key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.absent;
    None
  end
  else
    match read_entry t ~key path with
    | payload ->
        Atomic.incr t.hits;
        ignore (Atomic.fetch_and_add t.bytes_read (String.length payload));
        Some payload
    | exception Stale_entry ->
        Atomic.incr t.stamp_mismatch;
        None
    | exception _ ->
        (* a bad entry is a miss, never a crash *)
        Atomic.incr t.corrupt;
        None

let mem t ~key = Sys.file_exists (entry_path t ~key)
