type verdict = { checked : int; failures : string list }

let ok v = v.failures = []

let fail fmt = Printf.ksprintf (fun m -> m) fmt

(* Entries are identified by their "experiment" field; a baseline file is a
   JSON array of such objects. *)
let index_entries json =
  match Json.to_list json with
  | None -> Error "expected a JSON array of experiment entries"
  | Some entries ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
            match Option.bind (Json.member "experiment" e) Json.to_str with
            | Some name -> go ((name, e) :: acc) rest
            | None -> Error "entry without an \"experiment\" field")
      in
      go [] entries

let compare_field ~exact ~volatile ~tolerance ~entry key baseline current =
  match (baseline, current) with
  | Json.Str a, Json.Str b ->
      if a = b then None
      else Some (fail "%s.%s: %S (baseline) vs %S (current)" entry key a b)
  | Json.Num _, Json.Num _ when List.mem key volatile ->
      (* wall-clock-shaped: presence and numeric shape only *)
      None
  | Json.Num a, Json.Num b ->
      (* Floats compare by bit pattern, not (=): NaN = NaN is false (so a
         NaN baseline field could never pass) and 0. = -0. is true (so a
         sign flip would pass silently, while printing confusingly with
         %g). Bitwise identity is the honest notion of "the same float". *)
      let bits_a = Int64.bits_of_float a and bits_b = Int64.bits_of_float b in
      if bits_a = bits_b then None
      else if List.mem key exact then
        Some
          (fail
             "%s.%s: deterministic field drifted: %g (baseline) vs %g \
              (current) — bit patterns 0x%Lx vs 0x%Lx"
             entry key a b bits_a bits_b)
      else
        let delta = Float.abs (a -. b) in
        let scale = Float.max (Float.abs a) (Float.abs b) in
        if delta <= 1e-12 || delta <= (tolerance *. scale) then None
        else
          Some
            (fail
               "%s.%s: %g (baseline) vs %g (current), drift %.3g exceeds \
                tolerance %.3g"
               entry key a b
               (if scale > 0.0 then delta /. scale else delta)
               tolerance)
  | a, b ->
      if a = b then None
      else Some (fail "%s.%s: value shape changed" entry key)

let compare_entry ~exact ~volatile ~tolerance name baseline current =
  match (baseline, current) with
  | Json.Obj bfields, Json.Obj cfields ->
      let bkeys = List.map fst bfields and ckeys = List.map fst cfields in
      let missing = List.filter (fun k -> not (List.mem k ckeys)) bkeys in
      let added = List.filter (fun k -> not (List.mem k bkeys)) ckeys in
      let shape =
        List.map (fail "%s: field %s missing from current run" name) missing
        @ List.map (fail "%s: field %s not in baseline" name) added
      in
      let diffs =
        List.filter_map
          (fun (k, bv) ->
            match List.assoc_opt k cfields with
            | None -> None (* already reported as missing *)
            | Some cv -> compare_field ~exact ~volatile ~tolerance ~entry:name k bv cv)
          bfields
      in
      shape @ diffs
  | _ -> [ fail "%s: entry is not an object" name ]

let compare ?(exact = []) ?(volatile = []) ?(tolerance = 0.01) ~baseline
    ~current () =
  match (index_entries baseline, index_entries current) with
  | Error m, _ -> { checked = 0; failures = [ "baseline: " ^ m ] }
  | _, Error m -> { checked = 0; failures = [ "current: " ^ m ] }
  | Ok base, Ok cur ->
      let missing =
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name cur then None
            else Some (fail "%s: experiment missing from current run" name))
          base
      in
      let added =
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name base then None
            else
              Some
                (fail "%s: experiment not in baseline (run --update-baseline)"
                   name))
          cur
      in
      let diffs =
        List.concat_map
          (fun (name, bentry) ->
            match List.assoc_opt name cur with
            | None -> []
            | Some centry ->
                compare_entry ~exact ~volatile ~tolerance name bentry centry)
          base
      in
      { checked = List.length base; failures = missing @ added @ diffs }
