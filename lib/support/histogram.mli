(** Mergeable log-bucketed latency histogram.

    Buckets are geometric with ratio [2^(1/8)] (eight per octave, ≤ 9%
    relative resolution) from 1 µs upward; every bound is derived by IEEE
    multiplication from the base, so bucket assignment is deterministic
    across platforms. [merge] adds counts bucket-wise — it is associative
    and commutative, which is what lets per-window histograms from
    partitioned streams combine exactly.

    This module is the single histogram implementation in the tree: the
    windowed series ({!Skipper_trace.Series.Hist} is an alias of it) and
    the daemon metrics registry ({!Metrics}) share it, so their expositions
    are bucket-for-bucket comparable. The structure itself is {e not}
    domain-safe — concurrent writers must serialise {!add} (the registry
    does, behind a mutex); merging and reading a quiescent histogram is
    safe anywhere. *)

type t

val create : unit -> t
val add : t -> float -> unit

val merge : t -> t -> t
(** Fresh histogram holding both operands' samples. *)

val copy : t -> t
(** Snapshot; later [add]s to the original leave the copy unchanged. *)

val count : t -> int

val sum : t -> float
(** Exact sum of the samples (not bucket-quantised). *)

val mean : t -> float
(** [sum / count]; [0.0] when empty. *)

val quantile : t -> float -> float
(** Nearest-rank quantile ([rank = max 1 (ceil (q * count))]) reported as
    the containing bucket's upper bound — conservative by at most one
    bucket ratio. [0.0] when empty. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as (upper bound seconds, count), ascending —
    Prometheus [le] semantics. *)
