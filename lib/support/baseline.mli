(** Regression gate over persisted benchmark summaries.

    A baseline is a JSON array of per-experiment objects (the bench
    harness's [--json] format), committed to the repository. [compare]
    diffs a freshly produced array against it: fields named in [exact]
    must match bit-for-bit (simulation-deterministic counters — messages,
    drops, reissues — where any drift is a real behaviour change), every
    other numeric field must agree within a relative [tolerance] (timing
    shaped values, where cost-model refinements legitimately move the
    needle a little). Missing/added experiments and missing/added fields
    are failures in both directions, so the baseline cannot silently rot:
    intentional changes go through an explicit [--update-baseline]. *)

type verdict = {
  checked : int;  (** baseline entries compared *)
  failures : string list;  (** human-readable, one per divergence *)
}

val ok : verdict -> bool

val compare :
  ?exact:string list ->
  ?tolerance:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  verdict
(** [exact] defaults to [[]]; [tolerance] (relative, against the larger
    magnitude) defaults to [0.01]. Absolute drifts below [1e-12] always
    pass, so zero-valued fields do not trip on formatting noise. *)
