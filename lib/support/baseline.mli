(** Regression gate over persisted benchmark summaries.

    A baseline is a JSON array of per-experiment objects (the bench
    harness's [--json] format), committed to the repository. [compare]
    diffs a freshly produced array against it: fields named in [exact]
    must match bit-for-bit (simulation-deterministic counters — messages,
    drops, reissues — where any drift is a real behaviour change), fields
    named in [volatile] are checked for presence and numeric shape only
    (wall-clock measurements — serve latency percentiles — whose values
    vary run to run but whose absence means the experiment regressed),
    and every other numeric field must agree within a relative [tolerance]
    (timing shaped values, where cost-model refinements legitimately move
    the needle a little). Numeric identity is bit-pattern identity
    ([Int64.bits_of_float]), so a NaN baseline field can pass (against an
    identical NaN) and an exact [0.] vs [-0.] flip fails loudly instead of
    sliding through [(=)]. Missing/added experiments and missing/added
    fields are failures in both directions, so the baseline cannot
    silently rot: intentional changes go through an explicit
    [--update-baseline]. *)

type verdict = {
  checked : int;  (** baseline entries compared *)
  failures : string list;  (** human-readable, one per divergence *)
}

val ok : verdict -> bool

val compare :
  ?exact:string list ->
  ?volatile:string list ->
  ?tolerance:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  verdict
(** [exact] and [volatile] default to [[]]; [tolerance] (relative, against
    the larger magnitude) defaults to [0.01]. Absolute drifts below
    [1e-12] always pass, so zero-valued fields do not trip on formatting
    noise. [volatile] wins over [exact] when a key is named in both. *)
