(** A reusable pool of OCaml 5 domains for farming independent jobs.

    The pool targets sweep-level parallelism: each job is a self-contained
    closure (it builds its own tables, machines and buffers, and returns its
    findings as a value) so jobs share nothing mutable and the farm is
    embarrassingly parallel. Results always come back in {e submit order},
    never completion order, so a parallel run is observationally identical
    to a sequential one — callers print, record and export results exactly
    as if they had run the jobs in a [List.map].

    Scheduling is work-stealing-free by design: workers pull the next job
    index from a shared atomic counter, which keeps the pool fair on uneven
    job costs (FastFlow's farm-with-autoscheduling, TR-12-04) without any
    per-worker queues to drain deterministically.

    With [jobs <= 1] (the default) everything runs in the calling domain and
    no domain is ever spawned, so sequential behaviour — including exception
    propagation — is the plain [List.map] one. *)

type span = {
  job : int;  (** submit-order index of the job *)
  domain : int;  (** pool worker (0 .. domains-1) that ran it *)
  start_s : float;  (** seconds from pool start *)
  finish_s : float;
}

type stats = {
  njobs : int;
  domains : int;  (** workers actually used (1 when sequential) *)
  wall_s : float;  (** pool wall-clock, start to last join *)
  busy_s : float array;  (** per-worker busy seconds, length [domains] *)
  jobs_run : int array;  (** per-worker job counts, length [domains] *)
  spans : span list;  (** one per job, in submit order *)
}

val speedup : stats -> float
(** Sum of per-job busy time over pool wall time — the classic
    work/wall ratio ([1.0] when sequential, up to [domains] when the farm
    scales perfectly). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the machine's useful domain
    count. *)

val jobs_from_env : ?var:string -> ?default:int -> unit -> int
(** Worker count from the environment ([SKIPPER_JOBS] unless [var] says
    otherwise), falling back to [default] (itself defaulting to 1). Test
    suites use this to opt in to parallel execution without a flag. *)

val run_stats : ?jobs:int -> (unit -> 'a) list -> 'a list * stats
(** [run_stats ~jobs thunks] executes every thunk and returns their results
    in submit order plus the pool telemetry. At most
    [min jobs (List.length thunks)] workers run concurrently (the calling
    domain is one of them, so [jobs] really is the parallelism degree, not
    [jobs + 1]).

    If a job raises, every job still runs to completion (a sweep is never
    half-torn-down), then the exception of the {e earliest submitted} failed
    job is re-raised in the calling domain — deterministic even when several
    jobs fail. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** {!run_stats} without the telemetry. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [run ~jobs (List.map (fun x () -> f x) xs)]. *)
