type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing: a plain recursive-descent reader over the string. It accepts
   exactly the subset our exporters emit (no surrogate-pair decoding needed
   — \u escapes below 0x80 only come from control characters). *)

type state = { s : string; mutable i : int }

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let advance st = st.i <- st.i + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error "offset %d: expected %c, found %c" st.i c d
  | None -> error "offset %d: expected %c, found end of input" st.i c

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error "unterminated string at offset %d" st.i
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error "unterminated escape at offset %d" st.i
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if st.i + 4 > String.length st.s then
                  error "truncated \\u escape at offset %d" st.i;
                let hex = String.sub st.s st.i 4 in
                st.i <- st.i + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> error "bad \\u escape %S" hex
                in
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else begin
                  (* UTF-8 encode the BMP scalar; surrogates unsupported. *)
                  if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                end
            | c -> error "unknown escape \\%c" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.i in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let token = String.sub st.s start (st.i - start) in
  match float_of_string_opt token with
  | Some f -> f
  | None -> error "bad number %S at offset %d" token start

let parse_literal st word value =
  let n = String.length word in
  if st.i + n <= String.length st.s && String.sub st.s st.i n = word then begin
    st.i <- st.i + n;
    value
  end
  else error "offset %d: expected %s" st.i word

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, v) :: acc)
          | _ -> error "offset %d: expected , or } in object" st.i
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error "offset %d: expected , or ] in array" st.i
        in
        Arr (elements [])
      end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { s; i = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.i < String.length s then
        Error (Printf.sprintf "trailing content at offset %d" st.i)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.9g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
      ^ "}"

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
