type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing: a plain recursive-descent reader over the string. Strings
   accept the full JSON escape set, including \uXXXX with surrogate pairs
   decoded to UTF-8 — baseline and series files are occasionally edited or
   produced by other tools, so "valid JSON" must not depend on which
   escapes those tools favour. *)

type state = { s : string; mutable i : int }

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let advance st = st.i <- st.i + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error "offset %d: expected %c, found %c" st.i c d
  | None -> error "offset %d: expected %c, found end of input" st.i c

(* One \uXXXX unit; the caller pairs surrogates. *)
let hex4 st =
  if st.i + 4 > String.length st.s then
    error "truncated \\u escape at offset %d" st.i;
  let hex = String.sub st.s st.i 4 in
  st.i <- st.i + 4;
  let ok = String.for_all (function
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
    | _ -> false) hex
  in
  if not ok then error "bad \\u escape %S" hex;
  int_of_string ("0x" ^ hex)

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error "unterminated string at offset %d" st.i
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error "unterminated escape at offset %d" st.i
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let code = hex4 st in
                if code >= 0xD800 && code <= 0xDBFF then begin
                  (* high surrogate: the low half must follow as \uXXXX *)
                  let at = st.i in
                  if
                    st.i + 2 > String.length st.s
                    || st.s.[st.i] <> '\\'
                    || st.s.[st.i + 1] <> 'u'
                  then error "unpaired surrogate \\u%04X at offset %d" code at;
                  st.i <- st.i + 2;
                  let low = hex4 st in
                  if low < 0xDC00 || low > 0xDFFF then
                    error "bad low surrogate \\u%04X at offset %d" low at;
                  add_utf8 b
                    (0x10000
                    + ((code - 0xD800) lsl 10)
                    + (low - 0xDC00))
                end
                else if code >= 0xDC00 && code <= 0xDFFF then
                  error "unpaired low surrogate \\u%04X at offset %d" code
                    (st.i - 4)
                else add_utf8 b code
            | c -> error "unknown escape \\%c" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.i in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let token = String.sub st.s start (st.i - start) in
  match float_of_string_opt token with
  | Some f -> f
  | None -> error "bad number %S at offset %d" token start

let parse_literal st word value =
  let n = String.length word in
  if st.i + n <= String.length st.s && String.sub st.s st.i n = word then begin
    st.i <- st.i + n;
    value
  end
  else error "offset %d: expected %s" st.i word

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, v) :: acc)
          | _ -> error "offset %d: expected , or } in object" st.i
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error "offset %d: expected , or ] in array" st.i
        in
        Arr (elements [])
      end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { s; i = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.i < String.length s then
        Error (Printf.sprintf "trailing content at offset %d" st.i)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

(* Mirrors the short escapes the parser accepts; remaining control
   characters fall back to \u00XX. Bytes >= 0x20 (including raw UTF-8
   sequences) pass through untouched. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.9g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
      ^ "}"

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
