module V = Skel.Value

exception Extract_error of string * Ast.loc

type extraction = { program : Skel.Ir.program; input : V.t option }

let error loc fmt = Printf.ksprintf (fun m -> raise (Extract_error (m, loc))) fmt

(* Flatten an application spine: [f a b c] -> (f, [a; b; c]). *)
let rec spine = function
  | Ast.App (f, a, _) ->
      let head, args = spine f in
      (head, args @ [ a ])
  | e -> (e, [])

(* What a stage argument is, relative to the current dataflow value. *)
type arg_spec =
  | Whole  (** the dataflow value itself *)
  | Proj of int  (** component [i] of the dataflow tuple *)
  | Const of V.t

(* The shape of the value currently travelling on the wire. *)
type dataflow =
  | Single of string
  | Components of string list  (** names of the tuple components, in order *)

(* The counter is global, but a replayed cached compile may have installed
   names minted by another process (see Funtable.derive), so skip any name
   the table already holds. *)
let gensym =
  let n = ref 0 in
  fun table base ->
    let rec fresh () =
      incr n;
      let name = Printf.sprintf "%s__s%d" base !n in
      if Skel.Funtable.mem table name then fresh () else name
    in
    fresh ()

let external_entry table loc name =
  match Skel.Funtable.find_opt table name with
  | Some e -> e
  | None -> error loc "external function %s is not registered" name

(* Evaluate a closed expression to a ground constant using the sequential
   evaluator over the global environment. *)
let const_value ctx genv loc e =
  match Eval.eval_expr ctx genv e with
  | v -> (
      match Eval.to_skel v with
      | v -> v
      | exception Eval.Runtime_error msg -> error loc "argument is not a constant: %s" msg)
  | exception Eval.Runtime_error msg ->
      error loc "cannot evaluate argument at compile time: %s" msg

let classify ctx genv dataflow arg =
  let loc = Ast.expr_loc arg in
  match (arg, dataflow) with
  | Ast.Var (x, _), Single d when x = d -> Whole
  | Ast.Var (x, _), Components names when List.mem x names ->
      let rec index i = function
        | y :: _ when y = x -> i
        | _ :: rest -> index (i + 1) rest
        | [] -> assert false
      in
      Proj (index 0 names)
  (* A tuple that reconstructs the dataflow components in order, e.g.
     [scm n s c m (lane, im)] where the loop parameter is [(lane, im)], is
     the dataflow value itself. *)
  | Ast.Tuple (es, _), Components names
    when List.length es = List.length names
         && List.for_all2
              (fun e n -> match e with Ast.Var (x, _) -> x = n | _ -> false)
              es names ->
      Whole
  | _ -> Const (const_value ctx genv loc arg)

(* Register a unary wrapper applying [fn_name] to arguments assembled from
   the incoming dataflow value per [specs]. This is the glue code SKiPPER
   generates around user C functions; the closure itself is built by
   Funtable.derive from the pure-data recipe, so a cached compile can
   replay the registration. *)
let register_wrapper table fn_name specs =
  let specs =
    List.map
      (function
        | Whole -> Skel.Funtable.Whole
        | Proj i -> Skel.Funtable.Proj i
        | Const c -> Skel.Funtable.Const c)
      specs
  in
  let wrapper = gensym table fn_name in
  Skel.Funtable.derive table wrapper
    (Skel.Funtable.Wrapper { base = fn_name; specs });
  wrapper

let expect_external_var table _loc what = function
  | Ast.Var (x, vloc) ->
      let _ = external_entry table vloc x in
      x
  | e -> error (Ast.expr_loc e) "%s must be an external function name, got %a" what
           (fun () e -> Format.asprintf "%a" Ast.pp_expr e) e

let expect_int loc = function
  | V.Int n -> n
  | v -> error loc "expected an integer constant, got %s" (V.to_string v)

(* Translate one stage application. Returns the IR stage. The dataflow value
   enters the stage whole; [dataflow] describes its shape. *)
(* The df surface family: each name is the same farm with a different
   declared state-access mode (and thus a different init shape, checked by
   Ir.validate). *)
let df_family =
  [
    ("df", Skel.Ir.Stateless);
    ("df_ro", Skel.Ir.Read_only);
    ("df_own", Skel.Ir.Owner);
    ("df_acc", Skel.Ir.Accumulator);
    ("df_res", Skel.Ir.Resource);
  ]

let translate_stage table ctx genv dataflow rhs =
  let loc = Ast.expr_loc rhs in
  match spine rhs with
  | Ast.Var (df, _), [ n; comp; acc; z; xs ]
    when List.mem_assoc df df_family ->
      (match classify ctx genv dataflow xs with
      | Whole -> ()
      | _ -> error loc "%s must be applied to the current dataflow list" df);
      let nworkers = expect_int loc (const_value ctx genv loc n) in
      Skel.Ir.Df
        {
          nworkers;
          comp = expect_external_var table loc (df ^ " compute function") comp;
          acc = expect_external_var table loc (df ^ " accumulation function") acc;
          init = const_value ctx genv loc z;
          state = List.assoc df df_family;
        }
  | Ast.Var ("tf", _), [ n; work; acc; z; xs ] ->
      (match classify ctx genv dataflow xs with
      | Whole -> ()
      | _ -> error loc "tf must be applied to the current dataflow list");
      let nworkers = expect_int loc (const_value ctx genv loc n) in
      Skel.Ir.Tf
        {
          nworkers;
          work = expect_external_var table loc "tf work function" work;
          acc = expect_external_var table loc "tf accumulation function" acc;
          init = const_value ctx genv loc z;
        }
  | Ast.Var ("scm", _), [ n; split; comp; merge; x ] ->
      (match classify ctx genv dataflow x with
      | Whole -> ()
      | _ -> error loc "scm must be applied to the current dataflow value");
      let nparts = expect_int loc (const_value ctx genv loc n) in
      Skel.Ir.Scm
        {
          nparts;
          split = expect_external_var table loc "scm split function" split;
          compute = expect_external_var table loc "scm compute function" comp;
          merge = expect_external_var table loc "scm merge function" merge;
        }
  | Ast.Var (skel, _), _
    when List.mem skel [ "tf"; "scm"; "itermem" ]
         || List.mem_assoc skel df_family ->
      error loc "%s used with the wrong number of arguments" skel
  | Ast.Var (f, floc), args ->
      let entry = external_entry table floc f in
      if List.length args <> entry.Skel.Funtable.arity then
        error loc "%s expects %d argument(s), got %d" f entry.Skel.Funtable.arity
          (List.length args);
      let specs = List.map (classify ctx genv dataflow) args in
      let uses_flow =
        List.exists (function Whole | Proj _ -> true | Const _ -> false) specs
      in
      if not uses_flow then
        error loc "stage %s does not consume the dataflow value" f;
      (* Identity wrappers are skipped when the call is exactly [f flow]. *)
      if specs = [ Whole ] then Skel.Ir.Seq f
      else Skel.Ir.Seq (register_wrapper table f specs)
  | head, _ ->
      error (Ast.expr_loc head) "unsupported stage expression %s"
        (Format.asprintf "%a" Ast.pp_expr head)

(* Translate a function body: a linear let-chain of stages. *)
let translate_chain table ctx genv dataflow body =
  let rec go dataflow acc expr =
    match expr with
    | Ast.Let { recursive = false; pat = Ast.Pvar (v, _); bound; body; _ } ->
        let stage = translate_stage table ctx genv dataflow bound in
        go (Single v) (stage :: acc) body
    | Ast.Let { recursive = true; loc; _ } ->
        error loc "recursive bindings are not allowed in a skeletal pipeline"
    | Ast.Let { pat; loc; _ } ->
        error loc "pipeline bindings must bind a simple name, got %s"
          (Format.asprintf "%a" Ast.pp_pattern pat)
    | Ast.Var (x, loc) -> (
        (* Final expression is just a variable: must be the dataflow. *)
        match dataflow with
        | Single d when d = x -> List.rev acc
        | _ -> error loc "pipeline result %s is not the dataflow value" x)
    | rhs ->
        let stage = translate_stage table ctx genv dataflow rhs in
        List.rev (stage :: acc)
  in
  match go dataflow [] body with [ s ] -> s | stages -> Skel.Ir.Pipe stages

(* Find the syntactic definition of a (possibly named) function. *)
let resolve_function tops loc = function
  | Ast.Lambda (ps, body, _) -> (ps, body)
  | Ast.Var (name, vloc) -> (
      let def =
        List.find_map
          (function
            | Ast.Tlet { pat = Ast.Pvar (x, _); expr; _ } when x = name -> Some expr
            | _ -> None)
          tops
      in
      match def with
      | Some (Ast.Lambda (ps, body, _)) -> (ps, body)
      | Some _ -> error vloc "%s is not a function definition" name
      | None -> error vloc "unknown loop function %s" name)
  | e -> error loc "expected a function, got %s" (Format.asprintf "%a" Ast.pp_expr e)

let dataflow_of_params loc = function
  | [ Ast.Pvar (x, _) ] -> Single x
  | [ Ast.Ptuple (ps, _) ] ->
      Components
        (List.map
           (function
             | Ast.Pvar (x, _) -> x
             | p -> error (Ast.pattern_loc p) "loop pattern components must be names")
           ps)
  | _ -> error loc "pipeline functions must take a single (possibly tuple) parameter"

let extract ?(frames = 1) ?(name = "main") table prog =
  let ctx = Eval.make_ctx ~frames:0 table in
  (* Global environment: all top-level bindings except [main] (whose
     evaluation would run the stream loop). *)
  let globals =
    List.filter
      (function
        | Ast.Tlet { pat = Ast.Pvar ("main", _); _ } -> false
        | _ -> true)
      prog
  in
  let genv =
    try Eval.eval_program ctx globals
    with Eval.Runtime_error msg ->
      raise (Extract_error ("evaluating globals: " ^ msg, Ast.noloc))
  in
  let main_expr, main_loc =
    match
      List.find_map
        (function
          | Ast.Tlet { pat = Ast.Pvar ("main", _); expr; loc; _ } -> Some (expr, loc)
          | _ -> None)
        prog
    with
    | Some x -> x
    | None -> raise (Extract_error ("program has no 'main' binding", Ast.noloc))
  in
  match spine main_expr with
  | Ast.Var ("itermem", _), [ inp; loop; out; z; x ] ->
      let input_fn = expect_external_var table main_loc "itermem input function" inp in
      let output_fn = expect_external_var table main_loc "itermem output function" out in
      let init = const_value ctx genv main_loc z in
      let input = const_value ctx genv main_loc x in
      let params, body = resolve_function prog main_loc loop in
      let dataflow = dataflow_of_params main_loc params in
      let loop_stage = translate_chain table ctx genv dataflow body in
      {
        program =
          Skel.Ir.program ~frames name
            (Skel.Ir.Itermem { input = input_fn; loop = loop_stage; output = output_fn; init });
        input = Some input;
      }
  | Ast.Lambda _, [] ->
      let params, body = resolve_function prog main_loc main_expr in
      let dataflow = dataflow_of_params main_loc params in
      { program = Skel.Ir.program ~frames name (translate_chain table ctx genv dataflow body);
        input = None }
  | _ ->
      (* main = <stage chain> applied to ... : treat as a one-stage pipeline
         whose input is the (constant) last argument when recognisable. *)
      let head, args = spine main_expr in
      (match (head, List.rev args) with
      | Ast.Var (f, _), last :: _
        when List.mem_assoc f df_family || f = "tf" || f = "scm" ->
          let input = const_value ctx genv main_loc last in
          let dataflow = Single "__input" in
          let rewritten =
            (* Rebuild the application with the last argument replaced by the
               dataflow variable. *)
            let rec rebuild e =
              match e with
              | Ast.App (f', a, l) when a == last -> Ast.App (rebuild f', Ast.Var ("__input", l), l)
              | Ast.App (f', a, l) -> Ast.App (rebuild f', a, l)
              | e -> e
            in
            rebuild main_expr
          in
          let stage = translate_stage table ctx genv dataflow rewritten in
          { program = Skel.Ir.program ~frames name stage; input = Some input }
      | _ ->
          error main_loc
            "main must be an itermem application, a function, or a skeleton \
             application")
