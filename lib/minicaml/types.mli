(** Types and unification for the specification language.

    Standard Hindley–Milner with level-based generalisation (Rémy-style):
    each unification variable carries the let-nesting level at which it was
    created; [generalize] quantifies exactly the variables deeper than the
    current level. Abstract data carried between external C functions
    ([image], [window], [mark], ...) appears as opaque nullary constructors.
*)

type ty =
  | Tvar of tv ref
  | Tcon of string * ty list
      (** ["int"], ["list" [t]], ["->" [a; b]], ["tuple" ts], or an opaque
          external type name *)

and tv = Unbound of int * int  (** id, level *) | Link of ty

type scheme = { vars : int list; body : ty }
(** [vars] are the ids of the quantified unification variables. *)

val reset_counter : unit -> unit
(** Historical no-op, kept for callers. The variable counter is atomic and
    monotonic so concurrent inference runs on separate domains can never
    alias two live variable ids; reproducible variable {e names} come from
    {!to_string}, which letters variables by order of first appearance
    rather than by raw id. *)

val new_var : int -> ty
(** [new_var level] is a fresh unification variable at [level]. *)

val int_t : ty
val float_t : ty
val bool_t : ty
val string_t : ty
val unit_t : ty
val list_t : ty -> ty
val arrow : ty -> ty -> ty
val arrows : ty list -> ty -> ty
val tuple : ty list -> ty
val con : string -> ty list -> ty

val repr : ty -> ty
(** Follows links to the representative. *)

exception Unify_error of ty * ty

val unify : ty -> ty -> unit
(** Raises [Unify_error] on constructor clash or occurs-check failure. The
    error carries the two whole types being unified at the point of failure.
*)

val generalize : int -> ty -> scheme
(** [generalize level ty] quantifies the unbound variables of [ty] whose
    level is strictly greater than [level]. *)

val instantiate : int -> scheme -> ty
(** Fresh instance at the given level. *)

val mono : ty -> scheme

val of_type_expr : Ast.type_expr -> scheme
(** Interprets a syntactic type from an [external] declaration; named type
    variables ('a, 'b, ...) become quantified variables; unknown type names
    become opaque constructors. Raises [Failure] on arity misuse of builtin
    constructors. *)

val to_string : ty -> string
(** Pretty form with variables renamed to 'a, 'b, ... deterministically. *)

val scheme_to_string : scheme -> string
