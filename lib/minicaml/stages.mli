(** Result-typed entry points for the front-end stages.

    The parser, type-checker and extractor each signal failure with their
    own located exception; every driver (the {!Skipper_lib.Pipeline} pass
    manager, [skipperc check], the REPL) used to re-implement the same
    catch-and-render glue. These wrappers centralise it: each stage returns
    [Ok artifact] or [Error message] with the location already rendered into
    the message. The stages keep no per-run mutable state (the type-variable
    counter is atomic and monotonic), so they are safe to run concurrently
    from a {!Support.Domain_pool} sweep. *)

val parse : string -> (Ast.program, string) result
(** Lex and parse a specification source. *)

val typecheck : Ast.program -> ((string * string) list, string) result
(** Infer the top-level schemes under the initial (skeleton) environment;
    returns [(name, rendered_scheme)] pairs in binding order. Scheme names
    are deterministic per run because rendering letters variables by first
    appearance, independent of raw variable ids. *)

val extract :
  ?frames:int ->
  ?name:string ->
  Skel.Funtable.t ->
  Ast.program ->
  (Extract.extraction, string) result
(** Skeleton-instance extraction; registers wrapper functions into the
    table as a side effect (see {!Extract.extract}). *)
