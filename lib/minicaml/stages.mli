(** Result-typed entry points for the front-end stages.

    The parser, type-checker and extractor each signal failure with their
    own located exception; every driver (the {!Skipper_lib.Pipeline} pass
    manager, [skipperc check], the REPL) used to re-implement the same
    catch-and-render glue. These wrappers centralise it: each stage returns
    [Ok artifact] or [Error message] with the location already rendered into
    the message, and resets whatever per-run state the stage keeps (the
    type-variable counter). *)

val parse : string -> (Ast.program, string) result
(** Lex and parse a specification source. *)

val typecheck : Ast.program -> ((string * string) list, string) result
(** Infer the top-level schemes under the initial (skeleton) environment;
    returns [(name, rendered_scheme)] pairs in binding order. Resets the
    type-variable counter so scheme names are deterministic per run. *)

val extract :
  ?frames:int ->
  ?name:string ->
  Skel.Funtable.t ->
  Ast.program ->
  (Extract.extraction, string) result
(** Skeleton-instance extraction; registers wrapper functions into the
    table as a side effect (see {!Extract.extract}). *)
