type ty = Tvar of tv ref | Tcon of string * ty list
and tv = Unbound of int * int | Link of ty

type scheme = { vars : int list; body : ty }

(* Atomic and monotonic: concurrent inference jobs on separate domains
   (e.g. a Domain_pool sweep compiling several specs) draw from one
   counter, so variable ids stay globally unique — ids are identity in the
   occurs check, [generalize] and [instantiate], and a reset racing a
   concurrent inference could alias two live variables. Raw ids therefore
   differ run to run, but nothing observable depends on them: [to_string]
   letters variables by order of first appearance within each type. *)
let counter = Atomic.make 0
let reset_counter () = ()

let new_var level =
  Tvar (ref (Unbound (1 + Atomic.fetch_and_add counter 1, level)))

let int_t = Tcon ("int", [])
let float_t = Tcon ("float", [])
let bool_t = Tcon ("bool", [])
let string_t = Tcon ("string", [])
let unit_t = Tcon ("unit", [])
let list_t t = Tcon ("list", [ t ])
let arrow a b = Tcon ("->", [ a; b ])
let arrows args ret = List.fold_right arrow args ret
let tuple ts = Tcon ("tuple", ts)
let con name args = Tcon (name, args)

let rec repr = function
  | Tvar ({ contents = Link t } as r) ->
      let t' = repr t in
      r := Link t';
      t'
  | t -> t

exception Unify_error of ty * ty

(* During unification of [a] and [b], occurs-check and level adjustment: any
   unbound variable inside the bound type is lowered to [level] so it cannot
   later be generalised past the binding point. *)
let rec occurs_adjust id level t =
  match repr t with
  | Tvar ({ contents = Unbound (id', level') } as r) ->
      if id = id' then raise Exit
      else if level' > level then r := Unbound (id', level)
  | Tvar { contents = Link _ } -> assert false
  | Tcon (_, args) -> List.iter (occurs_adjust id level) args

let unify a b =
  let rec go a b =
    let a = repr a and b = repr b in
    match (a, b) with
    | Tvar r1, Tvar r2 when r1 == r2 -> ()
    | Tvar ({ contents = Unbound (id, level) } as r), t
    | t, Tvar ({ contents = Unbound (id, level) } as r) -> (
        match occurs_adjust id level t with
        | () -> r := Link t
        | exception Exit -> raise (Unify_error (a, b)))
    | Tcon (n1, args1), Tcon (n2, args2) ->
        if n1 <> n2 || List.length args1 <> List.length args2 then
          raise (Unify_error (a, b))
        else List.iter2 go args1 args2
    | Tvar { contents = Link _ }, _ | _, Tvar { contents = Link _ } -> assert false
  in
  try go a b with Unify_error _ -> raise (Unify_error (a, b))

let generalize level ty =
  let vars = ref [] in
  let rec walk t =
    match repr t with
    | Tvar { contents = Unbound (id, level') } ->
        if level' > level && not (List.mem id !vars) then vars := id :: !vars
    | Tvar { contents = Link _ } -> assert false
    | Tcon (_, args) -> List.iter walk args
  in
  walk ty;
  { vars = List.rev !vars; body = ty }

let instantiate level scheme =
  if scheme.vars = [] then scheme.body
  else begin
    let mapping = List.map (fun id -> (id, new_var level)) scheme.vars in
    let rec copy t =
      match repr t with
      | Tvar { contents = Unbound (id, _) } as orig -> (
          match List.assoc_opt id mapping with Some fresh -> fresh | None -> orig)
      | Tvar { contents = Link _ } -> assert false
      | Tcon (n, args) -> Tcon (n, List.map copy args)
    in
    copy scheme.body
  end

let mono ty = { vars = []; body = ty }

let builtin_arities =
  [ ("int", 0); ("float", 0); ("bool", 0); ("string", 0); ("unit", 0); ("list", 1) ]

let of_type_expr texpr =
  let named = Hashtbl.create 4 in
  let rec go = function
    | Ast.Tvar_expr (name, _) -> (
        match Hashtbl.find_opt named name with
        | Some v -> v
        | None ->
            (* Level max_int: always generalisable. *)
            let v = new_var max_int in
            Hashtbl.add named name v;
            v)
    | Ast.Tarrow_expr (a, b, _) -> arrow (go a) (go b)
    | Ast.Ttuple_expr (ts, _) -> tuple (List.map go ts)
    | Ast.Tname (n, args, _) -> (
        let args = List.map go args in
        match List.assoc_opt n builtin_arities with
        | Some arity when arity <> List.length args ->
            failwith
              (Printf.sprintf "type constructor %s expects %d argument(s)" n arity)
        | _ -> Tcon (n, args))
  in
  let body = go texpr in
  generalize (-1) body

(* Deterministic pretty printing: unbound variables are lettered in order of
   first appearance. *)
let to_string ty =
  let names = Hashtbl.create 8 in
  let next = ref 0 in
  let name_of id =
    match Hashtbl.find_opt names id with
    | Some n -> n
    | None ->
        let i = !next in
        incr next;
        let n =
          if i < 26 then Printf.sprintf "'%c" (Char.chr (Char.code 'a' + i))
          else Printf.sprintf "'t%d" i
        in
        Hashtbl.add names id n;
        n
  in
  (* Precedence levels: 0 = arrow position (no parens needed), 1 = tuple
     component (parenthesise arrows), 2 = constructor argument
     (parenthesise arrows and tuples). Sub-terms are rendered left to right
     so variable letters follow reading order. *)
  let rec go level t =
    match repr t with
    | Tvar { contents = Unbound (id, _) } -> name_of id
    | Tvar { contents = Link _ } -> assert false
    | Tcon ("->", [ a; b ]) ->
        let left = go 1 a in
        let right = go 0 b in
        let s = left ^ " -> " ^ right in
        if level > 0 then "(" ^ s ^ ")" else s
    | Tcon ("tuple", ts) ->
        let parts = List.map (go 2) ts in
        let s = String.concat " * " parts in
        if level > 1 then "(" ^ s ^ ")" else s
    | Tcon ("list", [ t ]) ->
        let elt = go 2 t in
        elt ^ " list"
    | Tcon (n, []) -> n
    | Tcon (n, args) ->
        let parts = List.map (go 0) args in
        Printf.sprintf "(%s) %s" (String.concat ", " parts) n
  in
  go 0 ty

let scheme_to_string s = to_string s.body
