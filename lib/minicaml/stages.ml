let located stage msg loc =
  Error (Format.asprintf "%s: %s (at %a)" stage msg Ast.pp_loc loc)

let parse src =
  match Parser.program src with
  | ast -> Ok ast
  | exception Parser.Parse_error (msg, loc) -> located "parse error" msg loc
  | exception Lexer.Lex_error (msg, loc) -> located "lexical error" msg loc

let typecheck ast =
  Types.reset_counter ();
  match Infer.infer_program Infer.initial_env ast with
  | _, schemes ->
      Ok (List.map (fun (n, s) -> (n, Types.scheme_to_string s)) schemes)
  | exception Infer.Type_error (msg, loc) -> located "type error" msg loc

let extract ?frames ?name table ast =
  match Extract.extract ?frames ?name table ast with
  | extraction -> Ok extraction
  | exception Extract.Extract_error (msg, loc) ->
      located "skeleton extraction" msg loc
