module Env = Map.Make (String)
module V = Skel.Value

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type value =
  | Vbase of V.t
  | Vtuple of value list
  | Vlist of value list
  | Vclos of closure
  | Vbuiltin of string * int * value list

and closure = {
  params : Ast.pattern list;
  body : Ast.expr;
  cenv : value Env.t ref;
}

type ctx = {
  table : Skel.Funtable.t;
  frames : int;
  mutable collected : V.t list;
  mutable final_state : V.t option;
  mutable cycles : float;
}

type env = value Env.t

let make_ctx ?(frames = 1) table =
  { table; frames; collected = []; final_state = None; cycles = 0.0 }

let rec to_skel = function
  | Vbase v -> v
  | Vtuple vs -> V.Tuple (List.map to_skel vs)
  | Vlist vs -> V.List (List.map to_skel vs)
  | Vclos _ -> error "cannot pass a closure to an external function"
  | Vbuiltin (name, _, _) -> error "cannot pass builtin %s to an external function" name

let of_skel = function
  | V.Tuple vs -> Vtuple (List.map (fun v -> Vbase v) vs)
  | V.List vs -> Vlist (List.map (fun v -> Vbase v) vs)
  | v -> Vbase v

let rec value_equal a b =
  match (a, b) with
  | Vbase x, Vbase y -> V.equal x y
  | Vtuple xs, Vtuple ys | Vlist xs, Vlist ys ->
      List.length xs = List.length ys && List.for_all2 value_equal xs ys
  (* Mixed representations of the same data compare through Skel values. *)
  | (Vbase _ | Vtuple _ | Vlist _), (Vbase _ | Vtuple _ | Vlist _) ->
      V.equal (to_skel a) (to_skel b)
  | _ -> error "cannot compare functional values"

let rec pp_value ppf = function
  | Vbase v -> V.pp ppf v
  | Vtuple vs ->
      Format.fprintf ppf "(@[%a@])"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_value)
        vs
  | Vlist vs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_value)
        vs
  | Vclos _ -> Format.pp_print_string ppf "<fun>"
  | Vbuiltin (name, _, _) -> Format.fprintf ppf "<builtin %s>" name

let value_compare a b =
  match (a, b) with
  | Vbase (V.Int x), Vbase (V.Int y) -> compare x y
  | Vbase (V.Float x), Vbase (V.Float y) -> compare x y
  | Vbase (V.Str x), Vbase (V.Str y) -> compare x y
  | Vbase (V.Bool x), Vbase (V.Bool y) -> compare x y
  | a, b -> V.compare (to_skel a) (to_skel b)

let as_int = function Vbase (V.Int n) -> n | v -> error "expected int, got %s" (Format.asprintf "%a" pp_value v)
let as_float = function Vbase (V.Float f) -> f | v -> error "expected float, got %s" (Format.asprintf "%a" pp_value v)
let as_bool = function Vbase (V.Bool b) -> b | v -> error "expected bool, got %s" (Format.asprintf "%a" pp_value v)
let as_string = function Vbase (V.Str s) -> s | v -> error "expected string, got %s" (Format.asprintf "%a" pp_value v)
let as_list = function
  | Vlist vs -> vs
  | Vbase (V.List vs) -> List.map (fun v -> Vbase v) vs
  | v -> error "expected list, got %s" (Format.asprintf "%a" pp_value v)
let as_pair = function
  | Vtuple [ a; b ] -> (a, b)
  | Vbase (V.Tuple [ a; b ]) -> (Vbase a, Vbase b)
  | v -> error "expected pair, got %s" (Format.asprintf "%a" pp_value v)

(* ------------------------------------------------------------------ *)
(* Application                                                         *)

let to_list_opt = function
  | Vlist vs -> Some vs
  | Vbase (V.List vs) -> Some (List.map (fun v -> Vbase v) vs)
  | _ -> None

(* Pattern matching: [None] when the value does not match. *)
let rec try_match env pat v =
  let ( let* ) = Option.bind in
  match pat with
  | Ast.Pvar (x, _) -> Some (Env.add x v env)
  | Ast.Pwild _ -> Some env
  | Ast.Punit _ -> ( match v with Vbase V.Unit -> Some env | _ -> None)
  | Ast.Pconst (c, _) -> (
      match (c, v) with
      | Ast.Cint a, Vbase (V.Int b) when a = b -> Some env
      | Ast.Cfloat a, Vbase (V.Float b) when a = b -> Some env
      | Ast.Cbool a, Vbase (V.Bool b) when a = b -> Some env
      | Ast.Cstring a, Vbase (V.Str b) when String.equal a b -> Some env
      | Ast.Cunit, Vbase V.Unit -> Some env
      | _ -> None)
  | Ast.Pnil _ -> (
      match to_list_opt v with Some [] -> Some env | Some _ | None -> None)
  | Ast.Pcons (ph, pt, _) -> (
      match to_list_opt v with
      | Some (h :: t) ->
          let* env = try_match env ph h in
          try_match env pt (Vlist t)
      | Some [] | None -> None)
  | Ast.Ptuple (ps, _) -> (
      let vs =
        match v with
        | Vtuple vs -> Some vs
        | Vbase (V.Tuple vs) -> Some (List.map (fun v -> Vbase v) vs)
        | _ -> None
      in
      match vs with
      | Some vs when List.length vs = List.length ps ->
          List.fold_left2
            (fun env p v ->
              let* env = env in
              try_match env p v)
            (Some env) ps vs
      | Some _ | None -> None)

(* Irrefutable use (let bindings and function parameters). *)
let bind_pattern env pat v =
  match try_match env pat v with
  | Some env -> env
  | None ->
      error "pattern %s does not match %s"
        (Format.asprintf "%a" Ast.pp_pattern pat)
        (Format.asprintf "%a" pp_value v)

let rec apply ctx f arg =
  match f with
  | Vclos { params = [ p ]; body; cenv } -> eval ctx (bind_pattern !cenv p arg) body
  | Vclos { params = p :: rest; body; cenv } ->
      Vclos { params = rest; body; cenv = ref (bind_pattern !cenv p arg) }
  | Vclos { params = []; _ } -> error "closure with no parameters"
  | Vbuiltin (name, arity, got) ->
      let got = got @ [ arg ] in
      if List.length got >= arity then apply_builtin ctx name got
      else Vbuiltin (name, arity, got)
  | v -> error "cannot apply non-function %s" (Format.asprintf "%a" pp_value v)

and apply_external ctx name args =
  let entry = Skel.Funtable.find ctx.table name in
  let packed =
    match args with [ v ] -> to_skel v | vs -> V.Tuple (List.map to_skel vs)
  in
  ctx.cycles <- ctx.cycles +. entry.Skel.Funtable.cost packed;
  of_skel (entry.Skel.Funtable.apply packed)

and apply_builtin ctx name args =
  match (name, args) with
  | "map", [ f; l ] -> Vlist (List.map (apply ctx f) (as_list l))
  | "fold_left", [ f; z; l ] ->
      List.fold_left (fun acc x -> apply ctx (apply ctx f acc) x) z (as_list l)
  | "length", [ l ] -> Vbase (V.Int (List.length (as_list l)))
  | "rev", [ l ] -> Vlist (List.rev (as_list l))
  | "fst", [ p ] -> fst (as_pair p)
  | "snd", [ p ] -> snd (as_pair p)
  | "not", [ b ] -> Vbase (V.Bool (not (as_bool b)))
  | "ignore", [ _ ] -> Vbase V.Unit
  | "print_int", [ _ ] | "print_string", [ _ ] -> Vbase V.Unit
  | "string_of_int", [ n ] -> Vbase (V.Str (string_of_int (as_int n)))
  | "float_of_int", [ n ] -> Vbase (V.Float (float_of_int (as_int n)))
  | "int_of_float", [ f ] -> Vbase (V.Int (int_of_float (as_float f)))
  | "abs", [ n ] -> Vbase (V.Int (abs (as_int n)))
  | "min", [ a; b ] -> if value_compare a b <= 0 then a else b
  | "max", [ a; b ] -> if value_compare a b >= 0 then a else b
  (* The skeletons, by their declarative definitions (paper §2). *)
  | ("df" | "df_acc"), [ _n; comp; acc; z; xs ] ->
      (* df_acc differs from df only across frames (the executive carries
         the fold result into the next frame's seed); one application is
         the same declarative fold. *)
      List.fold_left
        (fun z x -> apply ctx (apply ctx acc z) (apply ctx comp x))
        z (as_list xs)
  | "df_ro", [ _n; comp; acc; z; xs ] ->
      let env, seed = as_pair z in
      List.fold_left
        (fun z x -> apply ctx (apply ctx acc z) (apply ctx comp (Vtuple [ env; x ])))
        seed (as_list xs)
  | "df_own", [ n; comp; acc; z; xs ] ->
      let states, seed = as_pair z in
      let states = Array.of_list (as_list states) in
      let n = as_int n in
      fst
        (List.fold_left
           (fun (z, i) x ->
             let k = i mod n in
             let s', y = as_pair (apply ctx comp (Vtuple [ states.(k); x ])) in
             states.(k) <- s';
             (apply ctx (apply ctx acc z) y, i + 1))
           (seed, 0) (as_list xs))
  | "df_res", [ _n; comp; acc; z; xs ] ->
      let s0, seed = as_pair z in
      let s = ref s0 in
      List.fold_left
        (fun z x ->
          let s', y = as_pair (apply ctx comp (Vtuple [ !s; x ])) in
          s := s';
          apply ctx (apply ctx acc z) y)
        seed (as_list xs)
  | "scm", [ n; split; comp; merge; x ] ->
      let parts = as_list (apply ctx (apply ctx split n) x) in
      apply ctx merge (Vlist (List.map (apply ctx comp) parts))
  | "tf", [ _n; work; acc; z; xs ] ->
      let rec loop z = function
        | [] -> z
        | x :: rest ->
            let subs, y = as_pair (apply ctx work x) in
            loop (apply ctx (apply ctx acc z) y) (as_list subs @ rest)
      in
      loop z (as_list xs)
  | "itermem", [ inp; loop; out; z; x ] ->
      let feed i =
        match inp with
        | Vbuiltin (name, 2, []) when Skel.Funtable.mem ctx.table name ->
            (* camera convention: external input functions of arity 2 also
               receive the frame index *)
            apply ctx (apply ctx inp x) (Vbase (V.Int i))
        | _ -> apply ctx inp x
      in
      let rec drive z i =
        if i >= ctx.frames then begin
          ctx.final_state <- Some (to_skel z);
          Vbase V.Unit
        end
        else begin
          let z', y = as_pair (apply ctx loop (Vtuple [ z; feed i ])) in
          let shown = apply ctx out y in
          ctx.collected <- to_skel shown :: ctx.collected;
          drive z' (i + 1)
        end
      in
      drive z 0
  | _ ->
      if Skel.Funtable.mem ctx.table name then apply_external ctx name args
      else error "unknown builtin %s" name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

and eval ctx env expr =
  match expr with
  | Ast.Const (c, _) -> (
      match c with
      | Ast.Cunit -> Vbase V.Unit
      | Ast.Cbool b -> Vbase (V.Bool b)
      | Ast.Cint n -> Vbase (V.Int n)
      | Ast.Cfloat f -> Vbase (V.Float f)
      | Ast.Cstring s -> Vbase (V.Str s))
  | Ast.Var (x, loc) -> (
      match Env.find_opt x env with
      | Some v -> v
      | None -> error "unbound variable %s at %s" x (Format.asprintf "%a" Ast.pp_loc loc))
  | Ast.Tuple (es, _) -> Vtuple (List.map (eval ctx env) es)
  | Ast.List (es, _) -> Vlist (List.map (eval ctx env) es)
  | Ast.App (f, a, _) ->
      let vf = eval ctx env f in
      let va = eval ctx env a in
      apply ctx vf va
  | Ast.Lambda (ps, body, _) -> Vclos { params = ps; body; cenv = ref env }
  | Ast.Let { recursive; pat; bound; body; _ } ->
      let env' = eval_binding ctx env ~recursive ~pat ~bound in
      eval ctx env' body
  | Ast.If (c, t, e, _) -> if as_bool (eval ctx env c) then eval ctx env t else eval ctx env e
  | Ast.Binop (op, a, b, _) -> eval_binop ctx env op a b
  | Ast.Uminus (e, _) -> (
      match eval ctx env e with
      | Vbase (V.Int n) -> Vbase (V.Int (-n))
      | Vbase (V.Float f) -> Vbase (V.Float (-.f))
      | v -> error "unary minus on %s" (Format.asprintf "%a" pp_value v))
  | Ast.Seq (a, b, _) ->
      let _ = eval ctx env a in
      eval ctx env b
  | Ast.Match (scrutinee, arms, loc) ->
      let v = eval ctx env scrutinee in
      let rec try_arms = function
        | [] ->
            error "match failure on %s at %s"
              (Format.asprintf "%a" pp_value v)
              (Format.asprintf "%a" Ast.pp_loc loc)
        | (pat, body) :: rest -> (
            match try_match env pat v with
            | Some env' -> eval ctx env' body
            | None -> try_arms rest)
      in
      try_arms arms

and eval_binop ctx env op a b =
  let va = eval ctx env a in
  let vb = eval ctx env b in
  match op with
  | "+" -> Vbase (V.Int (as_int va + as_int vb))
  | "-" -> Vbase (V.Int (as_int va - as_int vb))
  | "*" -> Vbase (V.Int (as_int va * as_int vb))
  | "/" ->
      let d = as_int vb in
      if d = 0 then error "division by zero" else Vbase (V.Int (as_int va / d))
  | "mod" ->
      let d = as_int vb in
      if d = 0 then error "division by zero" else Vbase (V.Int (as_int va mod d))
  | "+." -> Vbase (V.Float (as_float va +. as_float vb))
  | "-." -> Vbase (V.Float (as_float va -. as_float vb))
  | "*." -> Vbase (V.Float (as_float va *. as_float vb))
  | "/." -> Vbase (V.Float (as_float va /. as_float vb))
  | "^" -> Vbase (V.Str (as_string va ^ as_string vb))
  | "&&" -> Vbase (V.Bool (as_bool va && as_bool vb))
  | "||" -> Vbase (V.Bool (as_bool va || as_bool vb))
  | "=" -> Vbase (V.Bool (value_equal va vb))
  | "<>" -> Vbase (V.Bool (not (value_equal va vb)))
  | "<" -> Vbase (V.Bool (value_compare va vb < 0))
  | ">" -> Vbase (V.Bool (value_compare va vb > 0))
  | "<=" -> Vbase (V.Bool (value_compare va vb <= 0))
  | ">=" -> Vbase (V.Bool (value_compare va vb >= 0))
  | "::" -> Vlist (va :: as_list vb)
  | "@" -> Vlist (as_list va @ as_list vb)
  | _ -> error "unknown operator %s" op

and eval_binding ctx env ~recursive ~pat ~bound =
  if recursive then begin
    match (pat, bound) with
    | Ast.Pvar (x, _), Ast.Lambda (ps, body, _) ->
        let cenv = ref env in
        let clos = Vclos { params = ps; body; cenv } in
        cenv := Env.add x clos env;
        Env.add x clos env
    | _ -> error "let rec only supports function bindings"
  end
  else bind_pattern env pat (eval ctx env bound)

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)

let builtin_arities =
  [
    ("map", 2); ("fold_left", 3); ("length", 1); ("rev", 1); ("fst", 1); ("snd", 1);
    ("not", 1); ("ignore", 1); ("print_int", 1); ("print_string", 1);
    ("string_of_int", 1); ("float_of_int", 1); ("int_of_float", 1); ("abs", 1);
    ("min", 2); ("max", 2); ("df", 5); ("df_ro", 5); ("df_own", 5);
    ("df_acc", 5); ("df_res", 5); ("scm", 5); ("tf", 5); ("itermem", 5);
  ]

let initial_env (_ : ctx) =
  List.fold_left
    (fun env (name, arity) -> Env.add name (Vbuiltin (name, arity, [])) env)
    Env.empty builtin_arities

let eval_expr ctx env expr = eval ctx env expr

let eval_program_env ctx start prog =
  List.fold_left
    (fun env top ->
      match top with
      | Ast.Texternal { name; _ } ->
          let entry =
            match Skel.Funtable.find_opt ctx.table name with
            | Some entry -> entry
            | None ->
                error "external %s is not registered in the function table" name
          in
          (* Arity-0 externals are constants (e.g. [empty_list]): evaluate
             them once at binding time. *)
          if entry.Skel.Funtable.arity = 0 then
            Env.add name (of_skel (entry.Skel.Funtable.apply V.Unit)) env
          else Env.add name (Vbuiltin (name, entry.Skel.Funtable.arity, [])) env
      | Ast.Tlet { recursive; pat; expr; _ } ->
          eval_binding ctx env ~recursive ~pat ~bound:expr)
    start prog

let eval_program ctx prog = eval_program_env ctx (initial_env ctx) prog

let lookup env name = Env.find_opt name env

let run_main ctx prog =
  let env = eval_program ctx prog in
  match Env.find_opt "main" env with
  | Some v -> v
  | None -> error "program has no 'main' binding"

let emulation_result ctx main_value =
  match ctx.final_state with
  | Some st -> V.Tuple [ st; V.List (List.rev ctx.collected) ]
  | None -> to_skel main_value
