exception Type_error of string * Ast.loc

module Env = Map.Make (String)

type env = Types.scheme Env.t

let error loc fmt = Printf.ksprintf (fun m -> raise (Type_error (m, loc))) fmt

let skeleton_names =
  [ "scm"; "df"; "df_ro"; "df_own"; "df_acc"; "df_res"; "tf"; "itermem" ]

(* The published skeleton signatures. Schemes are built from parsed type
   expressions so the source of truth stays readable. *)
let scheme_of_string s = Types.of_type_expr (Parser.type_expression s)

let builtin_schemes =
  [
    ("df", "int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c");
    (* The stateful farm family: same farm, different state-access modes.
       The init argument carries the state alongside the fold seed (a pair,
       or a per-worker state list for the owner mode). *)
    ("df_acc", "int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c");
    ("df_ro", "int -> ('e * 'a -> 'b) -> ('c -> 'b -> 'c) -> 'e * 'c -> 'a list -> 'c");
    ("df_own",
     "int -> ('s * 'a -> 's * 'b) -> ('c -> 'b -> 'c) -> 's list * 'c -> 'a list -> 'c");
    ("df_res",
     "int -> ('s * 'a -> 's * 'b) -> ('c -> 'b -> 'c) -> 's * 'c -> 'a list -> 'c");
    ("scm", "int -> (int -> 'a -> 'b list) -> ('b -> 'c) -> ('c list -> 'd) -> 'a -> 'd");
    ("tf", "int -> ('a -> 'a list * 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c");
    ("itermem", "('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit");
    ("map", "('a -> 'b) -> 'a list -> 'b list");
    ("fold_left", "('a -> 'b -> 'a) -> 'a -> 'b list -> 'a");
    ("length", "'a list -> int");
    ("rev", "'a list -> 'a list");
    ("fst", "'a * 'b -> 'a");
    ("snd", "'a * 'b -> 'b");
    ("not", "bool -> bool");
    ("ignore", "'a -> unit");
    ("print_int", "int -> unit");
    ("print_string", "string -> unit");
    ("string_of_int", "int -> string");
    ("float_of_int", "int -> float");
    ("int_of_float", "float -> int");
    ("abs", "int -> int");
    ("min", "'a -> 'a -> 'a");
    ("max", "'a -> 'a -> 'a");
  ]

let initial_env =
  List.fold_left
    (fun env (name, sig_) -> Env.add name (scheme_of_string sig_) env)
    Env.empty builtin_schemes

let lookup env name = Env.find_opt name env
let bindings env = Env.bindings env

let binop_type op =
  let open Types in
  match op with
  | "+" | "-" | "*" | "/" | "mod" -> Some (int_t, int_t, int_t)
  | "+." | "-." | "*." | "/." -> Some (float_t, float_t, float_t)
  | "^" -> Some (string_t, string_t, string_t)
  | "&&" | "||" -> Some (bool_t, bool_t, bool_t)
  | _ -> None

let rec bind_pattern env level pat ty =
  match pat with
  | Ast.Pvar (x, _) -> Env.add x (Types.mono ty) env
  | Ast.Pwild _ -> env
  | Ast.Punit loc -> (
      match Types.unify ty Types.unit_t with
      | () -> env
      | exception Types.Unify_error (a, b) ->
          error loc "pattern () does not match %s (conflict %s vs %s)"
            (Types.to_string ty) (Types.to_string a) (Types.to_string b))
  | Ast.Ptuple (ps, loc) -> (
      let tys = List.map (fun _ -> Types.new_var level) ps in
      match Types.unify ty (Types.tuple tys) with
      | () -> List.fold_left2 (fun env p t -> bind_pattern env level p t) env ps tys
      | exception Types.Unify_error _ ->
          error loc "tuple pattern does not match type %s" (Types.to_string ty))
  | Ast.Pconst (c, loc) -> (
      let tc =
        match c with
        | Ast.Cunit -> Types.unit_t
        | Ast.Cbool _ -> Types.bool_t
        | Ast.Cint _ -> Types.int_t
        | Ast.Cfloat _ -> Types.float_t
        | Ast.Cstring _ -> Types.string_t
      in
      match Types.unify ty tc with
      | () -> env
      | exception Types.Unify_error _ ->
          error loc "literal pattern does not match type %s" (Types.to_string ty))
  | Ast.Pnil loc -> (
      match Types.unify ty (Types.list_t (Types.new_var level)) with
      | () -> env
      | exception Types.Unify_error _ ->
          error loc "[] pattern does not match type %s" (Types.to_string ty))
  | Ast.Pcons (ph, pt, loc) -> (
      let elt = Types.new_var level in
      match Types.unify ty (Types.list_t elt) with
      | () ->
          let env = bind_pattern env level ph elt in
          bind_pattern env level pt ty
      | exception Types.Unify_error _ ->
          error loc "cons pattern does not match type %s" (Types.to_string ty))

let rec infer env level expr =
  match expr with
  | Ast.Const (c, _) -> (
      match c with
      | Ast.Cunit -> Types.unit_t
      | Ast.Cbool _ -> Types.bool_t
      | Ast.Cint _ -> Types.int_t
      | Ast.Cfloat _ -> Types.float_t
      | Ast.Cstring _ -> Types.string_t)
  | Ast.Var (x, loc) -> (
      match Env.find_opt x env with
      | Some scheme -> Types.instantiate level scheme
      | None -> error loc "unbound variable %s" x)
  | Ast.Tuple (es, _) -> Types.tuple (List.map (infer env level) es)
  | Ast.List (es, _) ->
      let elt = Types.new_var level in
      List.iter
        (fun e ->
          let t = infer env level e in
          unify_at (Ast.expr_loc e) t elt ~ctx:(fun () ->
              "list elements must share a type"))
        es;
      Types.list_t elt
  | Ast.App (f, a, loc) ->
      let tf = infer env level f in
      let ta = infer env level a in
      let tr = Types.new_var level in
      unify_at loc tf (Types.arrow ta tr) ~ctx:(fun () -> "function application");
      tr
  | Ast.Lambda (ps, body, _) ->
      let param_tys = List.map (fun _ -> Types.new_var level) ps in
      let env' =
        List.fold_left2 (fun env p t -> bind_pattern env level p t) env ps param_tys
      in
      Types.arrows param_tys (infer env' level body)
  | Ast.Let { recursive; pat; bound; body; loc } ->
      let env' = infer_binding env level ~recursive ~pat ~bound ~loc in
      infer env' level body
  | Ast.If (c, t, e, loc) ->
      unify_at (Ast.expr_loc c) (infer env level c) Types.bool_t ~ctx:(fun () ->
          "if condition");
      let tt = infer env level t in
      let te = infer env level e in
      unify_at loc tt te ~ctx:(fun () -> "if branches");
      tt
  | Ast.Binop (op, a, b, loc) -> (
      let ta = infer env level a and tb = infer env level b in
      match op with
      | "::" ->
          unify_at loc tb (Types.list_t ta) ~ctx:(fun () -> "cons");
          tb
      | "@" ->
          let elt = Types.new_var level in
          unify_at loc ta (Types.list_t elt) ~ctx:(fun () -> "append");
          unify_at loc tb (Types.list_t elt) ~ctx:(fun () -> "append");
          ta
      | "=" | "<>" | "<" | ">" | "<=" | ">=" ->
          unify_at loc ta tb ~ctx:(fun () -> "comparison operands");
          Types.bool_t
      | _ -> (
          match binop_type op with
          | Some (ta', tb', tr) ->
              unify_at (Ast.expr_loc a) ta ta' ~ctx:(fun () -> "operator " ^ op);
              unify_at (Ast.expr_loc b) tb tb' ~ctx:(fun () -> "operator " ^ op);
              tr
          | None -> error loc "unknown operator %s" op))
  | Ast.Uminus (e, loc) ->
      unify_at loc (infer env level e) Types.int_t ~ctx:(fun () -> "unary minus");
      Types.int_t
  | Ast.Seq (a, b, _) ->
      unify_at (Ast.expr_loc a) (infer env level a) Types.unit_t ~ctx:(fun () ->
          "sequenced expression must have type unit");
      infer env level b
  | Ast.Match (scrutinee, arms, loc) ->
      if arms = [] then error loc "match expression with no arms";
      let tscrut = infer env level scrutinee in
      let tres = Types.new_var level in
      List.iter
        (fun (pat, body) ->
          let env' = bind_pattern env level pat tscrut in
          unify_at (Ast.expr_loc body) (infer env' level body) tres ~ctx:(fun () ->
              "match arms must share a type"))
        arms;
      tres

and unify_at loc t1 t2 ~ctx =
  match Types.unify t1 t2 with
  | () -> ()
  | exception Types.Unify_error (a, b) ->
      error loc "%s: cannot unify %s with %s" (ctx ()) (Types.to_string a)
        (Types.to_string b)

and infer_binding env level ~recursive ~pat ~bound ~loc =
  if recursive then begin
    match pat with
    | Ast.Pvar (x, _) ->
        let tv = Types.new_var (level + 1) in
        let env_rec = Env.add x (Types.mono tv) env in
        let tb = infer env_rec (level + 1) bound in
        unify_at loc tb tv ~ctx:(fun () -> "recursive binding " ^ x);
        Env.add x (Types.generalize level tb) env
    | _ -> error loc "only simple names can be bound with let rec"
  end
  else begin
    let tb = infer env (level + 1) bound in
    match pat with
    | Ast.Pvar (x, _) -> Env.add x (Types.generalize level tb) env
    | _ ->
        (* Destructuring bindings stay monomorphic. *)
        bind_pattern env level pat tb
  end

let infer_expr env expr = infer env 0 expr

let infer_program env prog =
  let bound = ref [] in
  let env =
    List.fold_left
      (fun env top ->
        match top with
        | Ast.Texternal { name; ty; loc } -> (
            match Types.of_type_expr ty with
            | scheme ->
                bound := (name, scheme) :: !bound;
                Env.add name scheme env
            | exception Failure msg -> error loc "%s" msg)
        | Ast.Tlet { recursive; pat; expr; loc } ->
            let env' = infer_binding env 0 ~recursive ~pat ~bound:expr ~loc in
            List.iter
              (fun x ->
                match Env.find_opt x env' with
                | Some scheme -> bound := (x, scheme) :: !bound
                | None -> ())
              (Ast.pattern_vars pat);
            env')
      env prog
  in
  (env, List.rev !bound)
