(* Benchmark harness: regenerates every quantitative result of the paper's
   evaluation (section 4) plus the companion experiments indexed in
   DESIGN.md (E1-E9), and a bechamel micro-benchmark suite of the core
   computational kernels.

     dune exec bench/main.exe           runs E1..E9
     dune exec bench/main.exe -- e4     runs one experiment
     dune exec bench/main.exe -- micro  runs the bechamel suite

   Reported latencies are *simulated* times on the T9000-era machine model;
   the paper's numbers were measured on the real Transvision platform, so
   shapes (ratios, scaling, crossovers), not absolute values, are the
   reproduction target. EXPERIMENTS.md records the output of this harness
   against the paper's claims. *)

module V = Skel.Value

let ms t = t *. 1e3
let line () = print_endline (String.make 74 '-')

let header id title =
  print_newline ();
  line ();
  Printf.printf "%s: %s\n" id title;
  line ()

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json) and per-experiment traces
   (--trace-dir): each experiment passes its headline run to [observe],
   which records a Machine.Metrics report and, when tracing, dumps the
   run's Chrome trace. *)

let json_out : string option ref = ref None
let trace_dir : string option ref = ref None
let recorded : (string * Machine.Metrics.report) list ref = ref []
let tracing () = !trace_dir <> None

(* Experiment-specific numeric fields appended to an experiment's --json
   entry (e.g. E15's conformance scalars). Must be simulation-deterministic
   like everything else in the summary. *)
let extra_fields : (string * (string * float) list) list ref = ref []
let record_extras ~experiment extras =
  extra_fields := (experiment, extras) :: !extra_fields

(* ------------------------------------------------------------------ *)
(* Parallel sweeps (--jobs): the per-variant runs of a sweep are
   self-contained jobs (each builds its own tables, graphs and machine)
   farmed across the domain pool. Jobs only *return* data — every print,
   [observe] and file write happens in the main domain, in submit order —
   so stdout rows, the --json file and the trace dumps are byte-identical
   at any --jobs level. Wall-clock pool telemetry goes to stderr and to
   its own trace file, never into the deterministic artifacts. *)

let jobs = ref 1
let pool_stats : (string * Support.Domain_pool.stats) list ref = ref []

let farm ~name xs f =
  let results, stats =
    Support.Domain_pool.run_stats ~jobs:!jobs (List.map (fun x () -> f x) xs)
  in
  if !jobs > 1 then begin
    pool_stats := (name, stats) :: !pool_stats;
    Printf.eprintf
      "bench: %s: %d jobs on %d domains, %.3f s wall, speedup %.2fx\n" name
      stats.Support.Domain_pool.njobs stats.Support.Domain_pool.domains
      stats.Support.Domain_pool.wall_s
      (Support.Domain_pool.speedup stats)
  end;
  results

let write_pool_traces () =
  Option.iter
    (fun dir ->
      List.iter
        (fun (name, stats) ->
          Out_channel.with_open_bin
            (Filename.concat dir (Printf.sprintf "pool.%s.trace.json" name))
            (fun oc ->
              Out_channel.output_string oc
                (Skipper_trace.Pool.to_json ~label:name stats)))
        (List.rev !pool_stats))
    !trace_dir

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let observe ~experiment (r : Executive.result) =
  recorded := (experiment, Executive.metrics r) :: !recorded;
  Option.iter
    (fun dir ->
      if Machine.Sim.trace_truncated r.Executive.sim then
        Printf.eprintf "bench: warning: %s trace truncated at %d events\n"
          experiment
          (Machine.Sim.trace_limit r.Executive.sim);
      write_file
        (Filename.concat dir (experiment ^ ".trace.json"))
        (Skipper_trace.Chrome.to_json (Executive.timeline r)))
    !trace_dir

let summary_entries () =
  let entry (name, rep) =
    let extras =
      (* merge every record_extras call for this experiment, in call order *)
      List.concat_map snd
        (List.filter (fun (n, _) -> n = name) (List.rev !extra_fields))
    in
    "  " ^ Machine.Metrics.summary_json ~extras ~experiment:name rep
  in
  "[\n" ^ String.concat ",\n" (List.map entry (List.rev !recorded)) ^ "\n]\n"

let write_summary_json path =
  write_file path (summary_entries ());
  Printf.eprintf "bench: wrote %d experiment summaries to %s\n"
    (List.length !recorded) path

(* ------------------------------------------------------------------ *)
(* Baseline regression gate (--check-baseline / --update-baseline): the
   committed bench/baseline.json pins every experiment's summary entry.
   Counter-like fields must match exactly (any drift is a behaviour
   change); timing-shaped fields get a small relative tolerance so
   deliberate cost-model refinements do not trip on rounding. *)

let exact_baseline_fields =
  [
    "messages"; "bytes"; "dropped_msgs"; "deadline_misses"; "reissues";
    "trace_truncated"; "serve_requests"; "serve_cold_misses";
    "serve_warm_misses"; "store_warm_misses"; "checkpoints";
    "replayed_frames"; "stall_collected";
  ]

(* Wall-clock-shaped fields (E9's serve latency percentiles): the gate
   checks they are present and numeric, never their values. *)
let volatile_baseline_fields =
  [
    "serve_p50_ms";
    "serve_p95_ms";
    "serve_p99_ms";
    "serve_throughput_rps";
    "serve_hit_ratio";
  ]

let check_against_baseline path =
  let parse label s =
    match Support.Json.parse s with
    | Ok v -> v
    | Error msg -> failwith (Printf.sprintf "%s: %s" label msg)
  in
  let baseline =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> parse path s
    | exception Sys_error msg ->
        failwith
          (Printf.sprintf
             "%s (run with --update-baseline to create the baseline)" msg)
  in
  let current = parse "current run" (summary_entries ()) in
  let verdict =
    Support.Baseline.compare ~exact:exact_baseline_fields
      ~volatile:volatile_baseline_fields ~baseline ~current ()
  in
  if Support.Baseline.ok verdict then begin
    Printf.eprintf "bench: baseline check passed (%d experiments vs %s)\n"
      verdict.Support.Baseline.checked path;
    true
  end
  else begin
    Printf.eprintf "bench: baseline check FAILED against %s:\n" path;
    List.iter
      (fun f -> Printf.eprintf "  %s\n" f)
      verdict.Support.Baseline.failures;
    Printf.eprintf
      "bench: if the change is intentional, refresh with --update-baseline\n";
    false
  end

(* Farmed jobs must not touch [recorded] or write files themselves; they
   return the (experiment, result) pairs they would have observed and the
   main domain commits them in submit order. *)
let commit1 obs = Option.iter (fun (e, r) -> observe ~experiment:e r) obs

(* ------------------------------------------------------------------ *)
(* Shared tracking-run helper                                          *)

type tracking_run = {
  steady_ms : float;  (* steady-state per-frame latency, tracking mode *)
  reinit_ms : float;  (* latency of an isolated reinitialisation frame *)
  messages : int;
  utilisation : float;
  metrics : Machine.Metrics.report;  (* full analysis of the stream run *)
  obs : (string * Executive.result) option;
      (* headline run to [commit1] in the main domain *)
}

let run_tracking ?(frames = 20) ?(fps = 25.0) ?observe_as ~nproc () =
  let config = Tracking.Funcs.(with_nproc nproc default_config) in
  let arch = Archi.ring nproc in
  (* steady state over a paced stream *)
  let table = Tracking.Funcs.table config in
  let prog = Tracking.Funcs.ir ~frames config in
  let g = Procnet.Expand.expand table prog in
  let r =
    Executive.run
      ~trace:(observe_as <> None && tracing ())
      ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames ~input_period:(1.0 /. fps)
      ~input:(Tracking.Funcs.input_value config)
      ()
  in
  let steady = List.nth r.Executive.latencies (frames - 1) in
  (* isolated reinitialisation frame (the initial state is Reinit mode) *)
  let table1 = Tracking.Funcs.table config in
  let prog1 = Tracking.Funcs.ir ~frames:1 config in
  let g1 = Procnet.Expand.expand table1 prog1 in
  let r1 =
    Executive.run ~table:table1 ~arch
      ~placement:(Syndex.Place.canonical g1 arch)
      ~graph:g1 ~frames:1
      ~input:(Tracking.Funcs.input_value config)
      ()
  in
  {
    steady_ms = ms steady;
    reinit_ms = ms r1.Executive.first_latency;
    messages = r.Executive.stats.Machine.Sim.messages;
    utilisation = Machine.Sim.utilisation r.Executive.sim;
    metrics = Machine.Metrics.analyse r.Executive.sim;
    obs = Option.map (fun experiment -> (experiment, r)) observe_as;
  }

(* ------------------------------------------------------------------ *)
(* E1: the paper's headline numbers                                    *)

let e1 () =
  header "E1"
    "vehicle tracking on a ring of 8 T9000s, 25 Hz 512x512 stream (paper s4)";
  let r = run_tracking ~nproc:8 ~observe_as:"e1" () in
  commit1 r.obs;
  let frame_period_ms = 40.0 in
  Printf.printf "%-38s %12s %12s\n" "quantity" "paper" "measured";
  Printf.printf "%-38s %12s %9.1f ms\n" "tracking-phase latency" "30 ms" r.steady_ms;
  Printf.printf "%-38s %12s %9.1f ms\n" "reinitialisation latency" "110 ms" r.reinit_ms;
  Printf.printf "%-38s %12s %12s\n" "tracking keeps up with 25 Hz" "yes (1/1)"
    (if r.steady_ms <= frame_period_ms then "yes (1/1)" else "no");
  let skip = int_of_float (ceil (r.reinit_ms /. frame_period_ms)) in
  Printf.printf "%-38s %12s %12s\n" "reinit processes one image out of" "3"
    (string_of_int skip);
  Printf.printf "%-38s %12s %12d\n" "messages per 20-frame run" "-" r.messages;
  Printf.printf "%-38s %12s %12.2f\n" "mean processor utilisation" "-" r.utilisation;
  Printf.printf "%-38s %12s %12.2f\n" "processor imbalance (max/mean)" "-"
    (Machine.Metrics.imbalance r.metrics);
  (match Machine.Metrics.hottest_link r.metrics with
  | Some l ->
      Printf.printf "%-38s %12s %9.1f %%\n"
        (Printf.sprintf "hottest link P%d->P%d occupancy" l.Machine.Metrics.src
           l.Machine.Metrics.dst)
        "-"
        (Machine.Metrics.link_contention r.metrics *. 100.0)
  | None -> ());
  Printf.printf "%-38s %12s %12d\n" "deepest mailbox backlog" "-"
    (Machine.Metrics.max_port_depth r.metrics)

(* ------------------------------------------------------------------ *)
(* E2: scaling with the number of processors                           *)

let e2 () =
  header "E2"
    "latency vs processor count (paper: variant processor counts are \
     'almost instantaneous' to produce)";
  Printf.printf "%6s %16s %16s %14s\n" "procs" "tracking (ms)" "reinit (ms)"
    "reinit speedup";
  let rows =
    farm ~name:"e2" [ 1; 2; 4; 8; 12; 16 ] (fun p ->
        ( p,
          run_tracking ~frames:12
            ?observe_as:(if p = 8 then Some "e2" else None)
            ~nproc:p () ))
  in
  let base = ref 0.0 in
  List.iter
    (fun (p, r) ->
      commit1 r.obs;
      if p = 1 then base := r.reinit_ms;
      Printf.printf "%6d %16.1f %16.1f %14.2f\n" p r.steady_ms r.reinit_ms
        (!base /. r.reinit_ms))
    rows;
  (* The "almost instantaneous" claim itself: with the memoizing pass
     manager, producing a variant for another processor count re-runs only
     the mapping — every front-end artifact is a cache hit. This part stays
     sequential whatever --jobs says: the artifact cache is a plain Hashtbl
     shared across the variants (that sharing *is* the experiment), and it
     is not safe to mutate from several domains. *)
  let config = Tracking.Funcs.default_config in
  let table = Tracking.Funcs.table config in
  let src = Tracking.Funcs.source config in
  let cache = Skipper_lib.Passes.create_cache () in
  Printf.printf
    "\nfront-end cost per processor-count variant (memoized pass manager):\n";
  Printf.printf "%6s %20s %18s\n" "procs" "compile+map (ms)" "front end";
  List.iter
    (fun p ->
      let t0 = Unix.gettimeofday () in
      let c = Skipper_lib.Pipeline.compile_source ~frames:12 ~cache ~table src in
      let _sched = Skipper_lib.Pipeline.map c (Archi.ring p) in
      let dt = ms (Unix.gettimeofday () -. t0) in
      let frontend_passes =
        [ "parse"; "typecheck"; "extract"; "transform"; "expand" ]
      in
      let cached =
        List.for_all
          (fun r ->
            (not (List.mem r.Skipper_lib.Stage.pass frontend_passes))
            || r.Skipper_lib.Stage.cached)
          (Skipper_lib.Pipeline.reports c)
      in
      Printf.printf "%6d %20.3f %18s\n" p dt
        (if cached then "memoized" else "compiled"))
    [ 1; 2; 4; 8; 12; 16 ];
  let hits, misses = Skipper_lib.Passes.cache_stats cache in
  Printf.printf "  artifact cache: %d hits, %d misses (front end ran once)\n"
    hits misses

(* ------------------------------------------------------------------ *)
(* E3: skeleton-generated executive vs hand-crafted parallel version   *)

let e3 () =
  header "E3"
    "SKiPPER executive vs hand-crafted master/worker (paper: performances \
     'similar to an existing hand-crafted parallel version')";
  let nproc = 8 in
  let frames = 12 in
  let skel = run_tracking ~frames ~nproc ~observe_as:"e3" () in
  commit1 skel.obs;
  let hand =
    Handcoded.run ~input_period:0.04
      ~config:Tracking.Funcs.(with_nproc nproc default_config)
      ~frames (Archi.ring nproc)
  in
  let hand_steady = ms (List.nth hand.Handcoded.latencies (frames - 1)) in
  Printf.printf "%-30s %14s %14s\n" "" "skeleton" "hand-crafted";
  Printf.printf "%-30s %11.1f ms %11.1f ms\n" "tracking latency" skel.steady_ms
    hand_steady;
  Printf.printf "%-30s %14d %14d\n" "messages (12 frames)" skel.messages
    hand.Handcoded.stats.Machine.Sim.messages;
  Printf.printf "%-30s %13.1f%%\n" "overhead of generated code"
    ((skel.steady_ms -. hand_steady) /. hand_steady *. 100.0);
  Printf.printf
    "development effort (paper): <1 day with SKiPPER vs >10 days by hand\n"

(* ------------------------------------------------------------------ *)
(* E4: df vs scm on uneven workloads                                   *)

let uneven_table () =
  let t = Skel.Funtable.create () in
  (* item = Record {id; cost}; processing burns [cost] cycles. *)
  Skel.Funtable.register t "work"
    ~cost:(fun v -> V.to_float (V.field "cost" v))
    (fun v -> V.Int (V.to_int (V.field "id" v)));
  Skel.Funtable.register t "collect" ~arity:2 ~cost:(fun _ -> 200.0) (fun v ->
      let acc, x = V.to_pair v in
      V.Int (V.to_int acc + V.to_int x));
  (* static split for scm: deal items round-robin into n chunks *)
  Skel.Funtable.register t "deal" ~arity:2 ~cost:(fun _ -> 500.0) (fun v ->
      match v with
      | V.Tuple [ V.Int n; V.List xs ] ->
          let buckets = Array.make n [] in
          List.iteri (fun i x -> buckets.(i mod n) <- x :: buckets.(i mod n)) xs;
          V.List (Array.to_list (Array.map (fun l -> V.List (List.rev l)) buckets))
      | _ -> raise (V.Type_error "deal"));
  Skel.Funtable.register t "work_chunk"
    ~cost:(fun v ->
      List.fold_left
        (fun acc x -> acc +. V.to_float (V.field "cost" x))
        0.0 (V.to_list v))
    (fun v ->
      V.Int
        (List.fold_left (fun acc x -> acc + V.to_int (V.field "id" x)) 0 (V.to_list v)));
  Skel.Funtable.register t "sum_chunks" ~cost:(fun _ -> 500.0) (fun v ->
      V.Int (List.fold_left (fun acc x -> acc + V.to_int x) 0 (V.to_list v)));
  t

let uneven_items rng n =
  (* Zipf-flavoured costs: a few heavy items among many light ones -- the
     tracking workload's shape (window sizes vary widely, paper s4). *)
  List.init n (fun i ->
      let heavy = Support.Prng.int rng 10 = 0 in
      let cost =
        if heavy then 400_000 + Support.Prng.int rng 400_000
        else 10_000 + Support.Prng.int rng 40_000
      in
      V.Record [ ("id", V.Int i); ("cost", V.Float (float_of_int cost)) ])

let e4 () =
  header "E4"
    "df (dynamic load balancing) vs scm (static split) on uneven window \
     workloads (the rationale for df, paper s2/s4)";
  let nworkers = 8 in
  let arch = Archi.ring (nworkers + 1) in
  Printf.printf "%8s %14s %14s %10s\n" "items" "scm (ms)" "df (ms)" "df gain";
  let rows =
    farm ~name:"e4" [ 16; 32; 64; 128 ] (fun nitems ->
        let rng = Support.Prng.create (1000 + nitems) in
        let items = V.List (uneven_items rng nitems) in
        let run ?observe_as prog =
          let table = uneven_table () in
          let g = Procnet.Expand.expand table prog in
          let r =
            Executive.run
              ~trace:(observe_as <> None && tracing ())
              ~table ~arch
              ~placement:(Syndex.Place.canonical g arch)
              ~graph:g ~frames:1 ~input:items ()
          in
          ( ms r.Executive.first_latency,
            r.Executive.value,
            Option.map (fun e -> (e, r)) observe_as )
        in
        let scm_ms, scm_v, _ =
          run
            (Skel.Ir.program "scm"
               (Skel.Ir.Scm
                  { nparts = nworkers; split = "deal"; compute = "work_chunk";
                    merge = "sum_chunks" }))
        in
        let df_ms, df_v, obs =
          run
            ?observe_as:(if nitems = 128 then Some "e4" else None)
            (Skel.Ir.program "df"
               (Skel.Ir.Df { nworkers; comp = "work"; acc = "collect"; init = V.Int 0; state = Skel.Ir.Stateless }))
        in
        (nitems, scm_ms, scm_v, df_ms, df_v, obs))
  in
  List.iter
    (fun (nitems, scm_ms, scm_v, df_ms, df_v, obs) ->
      commit1 obs;
      assert (V.equal scm_v df_v);
      Printf.printf "%8d %14.1f %14.1f %9.2fx\n" nitems scm_ms df_ms (scm_ms /. df_ms))
    rows

(* ------------------------------------------------------------------ *)
(* E5: the Fig. 1 process network template                             *)

let e5 () =
  header "E5" "df process network template on a ring (paper Fig. 1)";
  Printf.printf "%8s %11s %10s %22s %20s\n" "workers" "processes" "channels"
    "predicted latency(ms)" "simulated (ms)";
  List.iter
    (fun n ->
      let fig1 =
        Procnet.Templates.df_ring ~nworkers:n ~comp:"work" ~acc:"collect"
          ~init:(V.Int 0)
      in
      (* The executable (router-free) equivalent of the same farm. *)
      let table = uneven_table () in
      let prog =
        Skel.Ir.program "df"
          (Skel.Ir.Df { nworkers = n; comp = "work"; acc = "collect"; init = V.Int 0; state = Skel.Ir.Stateless })
      in
      let g = Procnet.Expand.expand table prog in
      let arch = Archi.ring (n + 1) in
      let placement = Syndex.Place.canonical g arch in
      (* the static model sees each worker once per iteration, so its cost
         estimate is its expected share of the 32 fixed-cost items *)
      let cost =
        Syndex.Cost.make
          ~fn_cycles:(fun f ->
            if f = "work" then Some (float_of_int (32 / n) *. 100_000.0) else None)
          ()
      in
      let sched = Syndex.Place.of_placement cost arch g placement in
      (* fixed total work (32 x 100k cycles) so latency scales with n *)
      let items =
        List.init 32 (fun i ->
            V.Record [ ("id", V.Int i); ("cost", V.Float 100_000.0) ])
      in
      let r =
        Executive.run
          ~trace:(n = 8 && tracing ())
          ~table ~arch ~placement ~graph:g ~frames:1 ~input:(V.List items) ()
      in
      if n = 8 then observe ~experiment:"e5" r;
      Printf.printf "%8d %11d %10d %22.2f %20.2f\n" n
        (Procnet.Graph.nnodes fig1)
        (List.length (Procnet.Graph.edges fig1))
        (ms sched.Syndex.Schedule.makespan)
        (ms r.Executive.first_latency))
    [ 2; 4; 8 ];
  print_endline
    "(process/channel counts are for the literal Fig. 1 template with explicit\n\
    \ M->W / W->M routers; the executive routes at link level instead)"

(* ------------------------------------------------------------------ *)
(* E6: the itermem stream loop                                         *)

let e6 () =
  header "E6" "itermem stream behaviour (paper Fig. 4): latency vs camera rate";
  let nproc = 8 in
  let frames = 20 in
  Printf.printf "%10s %18s %16s %16s\n" "fps" "mean latency(ms)" "period (ms)"
    "keeps up?";
  List.iter
    (fun fps ->
      let config = Tracking.Funcs.(with_nproc nproc default_config) in
      let table = Tracking.Funcs.table config in
      let prog = Tracking.Funcs.ir ~frames config in
      let g = Procnet.Expand.expand table prog in
      let arch = Archi.ring nproc in
      let r =
        Executive.run
          ~trace:(fps = 25.0 && tracing ())
          ~table ~arch
          ~placement:(Syndex.Place.canonical g arch)
          ~graph:g ~frames ~input_period:(1.0 /. fps)
          ~input:(Tracking.Funcs.input_value config)
          ()
      in
      if fps = 25.0 then observe ~experiment:"e6" r;
      (* mean of the last half of the stream (past the reinit transient) *)
      let tail = List.filteri (fun i _ -> i >= frames / 2) r.Executive.latencies in
      let mean = List.fold_left ( +. ) 0.0 tail /. float_of_int (List.length tail) in
      let period =
        match r.Executive.period with Some p -> ms p | None -> nan
      in
      Printf.printf "%10.0f %18.1f %16.1f %16s\n" fps (ms mean) period
        (if ms mean <= (1000.0 /. fps) +. 1.0 then "yes" else "no (backlog)"))
    [ 10.0; 25.0; 50.0 ]

(* ------------------------------------------------------------------ *)
(* E7: connected-component labelling with scm (companion app, ref [7]) *)

let e7 () =
  header "E7" "scm-parallel connected-component labelling, 512x512 (ref [7])";
  let img = Apps.Ccl_scm.blobs_image ~seed:11 ~nblobs:60 512 512 in
  let reference = (Vision.Ccl.label ~threshold:128 img).Vision.Ccl.ncomponents in
  Printf.printf "sequential labelling: %d components\n" reference;
  Printf.printf "%8s %14s %12s %12s\n" "bands" "latency (ms)" "speedup" "components";
  let rows =
    farm ~name:"e7" [ 1; 2; 4; 8 ] (fun nparts ->
        let table = Skel.Funtable.create () in
        Apps.Ccl_scm.register table;
        let prog = Apps.Ccl_scm.ir ~nparts in
        let g = Procnet.Expand.expand table prog in
        let arch = Archi.ring (nparts + 1) in
        let r =
          Executive.run
            ~trace:(nparts = 8 && tracing ())
            ~table ~arch
            ~placement:(Syndex.Place.canonical g arch)
            ~graph:g ~frames:1 ~input:(V.Image img) ()
        in
        let n, _ = Apps.Ccl_scm.result_summary r.Executive.value in
        ( nparts,
          ms r.Executive.first_latency,
          n,
          if nparts = 8 then Some ("e7", r) else None ))
  in
  let base = ref 0.0 in
  List.iter
    (fun (nparts, latency, n, obs) ->
      commit1 obs;
      assert (n = reference);
      if nparts = 1 then base := latency;
      Printf.printf "%8d %14.1f %12.2f %12d\n" nparts latency (!base /. latency) n)
    rows

(* ------------------------------------------------------------------ *)
(* E8: road following (companion app, ref [6])                         *)

let e8 () =
  header "E8" "road following by white-line detection (ref [6])";
  let width = 512 and height = 512 in
  let frames = 15 and nstrips = 6 in
  let table = Skel.Funtable.create () in
  Apps.Road.register ~width ~height table;
  let prog = Apps.Road.ir ~frames ~nstrips () in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring (nstrips + 1) in
  let r =
    Executive.run ~trace:(tracing ()) ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames ~input_period:0.04
      ~input:(Apps.Road.input_value ~width ~height)
      ()
  in
  observe ~experiment:"e8" r;
  let lanes = List.map Apps.Road.lane_of_value r.Executive.outputs in
  let offsets = List.map (fun l -> l.Apps.Road.offset) lanes in
  let mean = List.fold_left ( +. ) 0.0 offsets /. float_of_int (List.length offsets) in
  let rms =
    sqrt
      (List.fold_left (fun acc o -> acc +. ((o -. mean) ** 2.0)) 0.0 offsets
      /. float_of_int (List.length offsets))
  in
  let tail_latency = ms (List.nth r.Executive.latencies (frames - 1)) in
  Printf.printf "strips: %d on ring-%d, %d frames at 25 Hz\n" nstrips (nstrips + 1)
    frames;
  Printf.printf "steady per-frame latency: %.1f ms (40 ms budget: %s)\n" tail_latency
    (if tail_latency <= 40.0 then "met" else "exceeded");
  Printf.printf "lane offset: mean %.1f px, jitter (rms) %.2f px\n" mean rms;
  Printf.printf "mean confidence: %.2f\n"
    (List.fold_left (fun acc l -> acc +. l.Apps.Road.confidence) 0.0 lanes
    /. float_of_int (List.length lanes))

(* ------------------------------------------------------------------ *)
(* E9: the Fig. 2 toolchain path                                       *)

let e9 () =
  header "E9" "toolchain traversal and emulation/executive equivalence (paper Fig. 2)";
  (* The whole Fig. 2 path now runs through the staged pass manager; the
     per-stage table below is sourced from the Stage.report records the
     passes produce, not from ad-hoc timers. *)
  let config = Tracking.Funcs.default_config in
  let table = Tracking.Funcs.table config in
  let src = Tracking.Funcs.source config in
  let cache = Skipper_lib.Passes.create_cache () in
  let compiled =
    Skipper_lib.Pipeline.compile_source ~frames:5 ~cache ~table src
  in
  let arch = Archi.ring 8 in
  let sched = Skipper_lib.Pipeline.map ~strategy:"heft" compiled arch in
  let macro = Skipper_lib.Pipeline.macro_code compiled sched in
  let input = Option.get compiled.Skipper_lib.Pipeline.input in
  let seq = Skipper_lib.Pipeline.emulate compiled input in
  let r = Skipper_lib.Pipeline.execute ~trace:(tracing ()) ~input compiled arch in
  observe ~experiment:"e9" r;
  Format.printf "%a" Skipper_lib.Pipeline.pp_timings compiled;
  Printf.printf "macro-code size: %d lines\n"
    (List.length (String.split_on_char '\n' macro));
  Printf.printf "process graph: %d processes, %d channels\n"
    (Procnet.Graph.nnodes compiled.Skipper_lib.Pipeline.graph)
    (Procnet.Graph.nedges compiled.Skipper_lib.Pipeline.graph);
  Printf.printf "schedule deadlock-free: %b\n" (Syndex.Schedule.deadlock_free sched);
  Printf.printf "emulation == distributed executive: %b\n"
    (V.equal seq r.Executive.value);
  (* Recompiling the same program is free: every front-end pass memoizes.
     Reset the hit/miss counters first so the line below accounts for the
     warm recompile alone, not the cold compile above (misses must be 0). *)
  Skipper_lib.Passes.reset_cache_stats cache;
  let t0 = Unix.gettimeofday () in
  let _again = Skipper_lib.Pipeline.compile_source ~frames:5 ~cache ~table src in
  let hits, misses = Skipper_lib.Passes.cache_stats cache in
  Printf.printf "warm recompile: %.3f ms (cache: %d hits, %d misses)\n"
    (ms (Unix.gettimeofday () -. t0))
    hits misses;
  (* -- persistent store: the cache key is content-addressed, so a second
     compile against an independently constructed (but equally registered)
     table, with a fresh in-memory cache, hits every front-end pass from
     disk — the cross-process warm start. *)
  let tmp_name prefix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s.%d" prefix (Unix.getpid ()))
  in
  let store_dir = tmp_name "skipper-bench-store" in
  let store =
    Support.Store.open_store ~dir:store_dir
      ~stamp:Skipper_lib.Passes.artifact_format ()
  in
  let cold_cache = Skipper_lib.Passes.create_cache ~store () in
  let t0 = Unix.gettimeofday () in
  let _ =
    Skipper_lib.Pipeline.compile_source ~frames:5 ~cache:cold_cache
      ~table:(Tracking.Funcs.table config) src
  in
  let cold_ms = ms (Unix.gettimeofday () -. t0) in
  let _, cold_misses = Skipper_lib.Passes.cache_stats cold_cache in
  let warm_cache = Skipper_lib.Passes.create_cache ~store () in
  let t0 = Unix.gettimeofday () in
  let _ =
    Skipper_lib.Pipeline.compile_source ~frames:5 ~cache:warm_cache
      ~table:(Tracking.Funcs.table config) src
  in
  let warm_ms = ms (Unix.gettimeofday () -. t0) in
  let warm_hits, warm_misses = Skipper_lib.Passes.cache_stats warm_cache in
  Printf.printf
    "store recompile (fresh table + fresh cache): cold %d misses, warm %d \
     hits (%d from store, %d misses)\n"
    cold_misses warm_hits
    (Skipper_lib.Passes.store_hits warm_cache)
    warm_misses;
  Printf.eprintf "bench: e9 store cold %.3f ms, warm %.3f ms\n" cold_ms warm_ms;
  (* -- compile service: an in-process serve daemon over the same store;
     one cold batch then one warm batch of compile requests, percentiles
     over the server-measured per-request wall times. jobs = 1 keeps the
     batch order (and so the cold-batch miss count) deterministic. *)
  let socket = tmp_name "skipper-bench-serve" ^ ".sock" in
  let registry = Support.Metrics.create () in
  let cfg =
    {
      Skipper_lib.Serve.table_of = (fun _ -> Tracking.Funcs.table config);
      input_of = (fun _ -> None);
      arch_of = Archi.ring;
      store = Some store;
      jobs = 1;
      log = Support.Log.null;
      metrics = Some registry;
      timeline = None;
    }
  in
  let daemon =
    Domain.spawn (fun () -> Skipper_lib.Serve.serve cfg ~socket ())
  in
  let batch = 8 in
  let requests =
    List.init batch (fun _ ->
        Skipper_lib.Serve.req_compile ~frames:7 ~app:"tracking" src)
  in
  let cache_field name r =
    Option.bind (Support.Json.member "cache" r) (Support.Json.member name)
    |> Fun.flip Option.bind Support.Json.to_float
  in
  let send label =
    let t0 = Unix.gettimeofday () in
    match Skipper_lib.Serve.call ~socket requests with
    | Error msg -> failwith (Printf.sprintf "e9 serve (%s): %s" label msg)
    | Ok responses ->
        let wall_s = Unix.gettimeofday () -. t0 in
        let misses =
          List.fold_left ( +. ) 0.0
            (List.filter_map (cache_field "misses") responses)
        in
        (wall_s, misses)
  in
  (* frames:7 differs from the compiles above, so the daemon's first
     request really is cold for the extract/transform/expand suffix *)
  let _, serve_cold_misses = send "cold" in
  let warm_wall, serve_warm_misses = send "warm" in
  (match Skipper_lib.Serve.call ~socket [ Skipper_lib.Serve.req_shutdown ] with
  | Ok _ -> ()
  | Error msg -> failwith (Printf.sprintf "e9 serve shutdown: %s" msg));
  let served = Domain.join daemon in
  (* Quantiles straight from the daemon's own metrics registry (the
     shared-bucket latency histogram), not from re-measured wall times —
     the bench reads the same numbers a `metrics` scrape would. *)
  let compile_hist =
    Support.Metrics.snapshot
      (Support.Metrics.histogram registry ~labels:[ ("op", "compile") ]
         "skipper_serve_request_seconds")
  in
  if Support.Histogram.count compile_hist = 0 then
    failwith "e9 serve: empty compile latency histogram";
  let q p = Support.Histogram.quantile compile_hist p in
  let cache_counter name =
    Support.Metrics.value (Support.Metrics.counter registry name)
  in
  let reg_hits = cache_counter "skipper_serve_cache_hits_total" in
  let reg_misses = cache_counter "skipper_serve_cache_misses_total" in
  let hit_ratio =
    if reg_hits + reg_misses = 0 then 0.0
    else float_of_int reg_hits /. float_of_int (reg_hits + reg_misses)
  in
  let throughput = float_of_int batch /. warm_wall in
  Printf.printf
    "serve sweep: %d requests served; cold batch misses %.0f, warm batch \
     misses %.0f\n"
    served serve_cold_misses serve_warm_misses;
  Printf.printf
    "serve compile latency (registry): p50 %.3f ms, p95 %.3f ms, p99 %.3f \
     ms over %d requests; cache hit ratio %.2f; throughput %.0f req/s\n"
    (ms (q 0.50)) (ms (q 0.95)) (ms (q 0.99))
    (Support.Histogram.count compile_hist)
    hit_ratio throughput;
  record_extras ~experiment:"e9"
    [
      (* deterministic: protocol and cache behaviour *)
      ("serve_requests", float_of_int served);
      ("serve_cold_misses", serve_cold_misses);
      ("serve_warm_misses", serve_warm_misses);
      ("store_warm_misses", float_of_int warm_misses);
      (* volatile: wall-clock shaped, gated for presence only *)
      ("serve_p50_ms", ms (q 0.50));
      ("serve_p95_ms", ms (q 0.95));
      ("serve_p99_ms", ms (q 0.99));
      ("serve_throughput_rps", throughput);
      ("serve_hit_ratio", hit_ratio);
    ]


(* ------------------------------------------------------------------ *)
(* E10: mapper shoot-out                                               *)

(* Every registered mapping strategy on two workloads: a saturated 6-stage
   pipeline (where frame pipelining pays — successive frames overlap across
   the stage intervals, so the steady-state period drops below the
   end-to-end latency) and the tracking application (a paced, feedback-bound
   stream). Each run reports the predicted makespan and period, the measured
   steady-state period and latency percentiles, and the conformance
   divergence of the predicted schedule against the measured trace. *)

let e10 () =
  header "E10"
    "mapper shoot-out: every registered strategy on a saturated 6-stage \
     pipeline and on the paced tracking application";
  let mappers = Syndex.Mapper.names () in
  let conformance_of ~schedule ?input_period (r : Executive.result) =
    match
      Machine.Profile.conformance ~schedule
        ~output_times:r.Executive.output_times ?input_period r.Executive.sim
    with
    | Ok rep -> rep
    | Error msg -> failwith msg
  in
  let pct l f = match l with Some (s : Machine.Metrics.latency_stats) -> ms (f s) | None -> nan in
  (* Sustained ms/frame for saturated runs (all frames injected at t = 0):
     last completion / frame count. Inter-output spacing would flatter a
     serialised mapping — the final stage drains its backlog back-to-back,
     so spacing shows one stage time regardless of actual throughput. *)
  let sustained (r : Executive.result) =
    match List.rev r.Executive.output_times with
    | last :: _ -> last /. float_of_int (List.length r.Executive.output_times)
    | [] -> nan
  in
  (* -- workload 1: synthetic 6-stage chain, all frames injected at t=0 -- *)
  let nstages = 6 in
  let stage_cycles = 40_000.0 (* 2 ms per stage at 20 MHz *) in
  let chain_frames = 12 in
  let chain_rows =
    farm ~name:"e10"
      (List.map (fun m -> (m, ())) mappers)
      (fun (strategy, ()) ->
        let table = Skel.Funtable.create () in
        for i = 1 to nstages do
          Skel.Funtable.register table
            (Printf.sprintf "s%d" i)
            ~arity:1
            ~cost:(fun _ -> stage_cycles)
            (fun v -> v)
        done;
        let ir =
          Skel.Ir.program ~frames:chain_frames "stagechain"
            (Skel.Ir.Pipe
               (List.init nstages (fun i ->
                    Skel.Ir.Seq (Printf.sprintf "s%d" (i + 1)))))
        in
        let compiled = Skipper_lib.Pipeline.compile_ir ~table ir in
        let arch = Archi.ring 8 in
        let cost = Syndex.Cost.make ~fn_cycles:(fun _ -> Some stage_cycles) () in
        let schedule, r =
          Skipper_lib.Pipeline.execute_with_schedule ~trace:true ~strategy ~cost
            ~input:(V.Int 0) compiled arch
        in
        let rep = conformance_of ~schedule r in
        (strategy, schedule, r, rep))
  in
  Printf.printf "6-stage chain (%d x %.1f ms), ring 8, %d frames, saturated input:\n"
    nstages
    (ms (stage_cycles *. 5e-8))
    chain_frames;
  Printf.printf "%-12s %10s %10s %10s %8s %8s %8s %9s\n" "strategy" "mkspan"
    "period*" "sustained" "p50" "p95" "p99" "diverg.";
  Printf.printf "%-12s %10s %10s %10s %8s %8s %8s %9s\n" "" "(ms)" "pred(ms)"
    "(ms/frm)" "(ms)" "(ms)" "(ms)" "";
  List.iter
    (fun (strategy, (schedule : Syndex.Schedule.t), (r : Executive.result),
          (rep : Skipper_trace.Conformance.report)) ->
      let stats = Machine.Metrics.latency_stats r.Executive.latencies in
      let meas_period = sustained r in
      Printf.printf "%-12s %10.2f %10.2f %10.2f %8.2f %8.2f %8.2f %9.3f\n"
        strategy
        (ms schedule.Syndex.Schedule.makespan)
        (ms (Syndex.Schedule.period schedule))
        (ms meas_period)
        (pct stats (fun s -> s.Machine.Metrics.p50))
        (pct stats (fun s -> s.Machine.Metrics.p95))
        (pct stats (fun s -> s.Machine.Metrics.p99))
        rep.Skipper_trace.Conformance.divergence;
      record_extras ~experiment:"e10"
        [
          (strategy ^ "_makespan_ms", ms schedule.Syndex.Schedule.makespan);
          (strategy ^ "_period_ms", ms meas_period);
          (strategy ^ "_p50_ms", pct stats (fun s -> s.Machine.Metrics.p50));
          (strategy ^ "_p95_ms", pct stats (fun s -> s.Machine.Metrics.p95));
          (strategy ^ "_p99_ms", pct stats (fun s -> s.Machine.Metrics.p99));
          (strategy ^ "_divergence", rep.Skipper_trace.Conformance.divergence);
        ])
    chain_rows;
  let meas name =
    match List.find_opt (fun (s, _, _, _) -> s = name) chain_rows with
    | Some (_, _, (r : Executive.result), _) -> sustained r
    | None -> nan
  in
  Printf.printf
    "measured sustained period, throughput vs heft: %.2f ms vs %.2f ms (%s)\n"
    (ms (meas "throughput")) (ms (meas "heft"))
    (if meas "throughput" < meas "heft" then "pipelining wins" else "no gain");
  (* -- workload 2: the tracking application, paced at 25 fps -- *)
  let config = Tracking.Funcs.default_config in
  let frames = 10 in
  let arch = Archi.ring config.Tracking.Funcs.nproc in
  let tracking_rows =
    farm ~name:"e10-tracking"
      (List.map (fun m -> (m, ())) mappers)
      (fun (strategy, ()) ->
        let table = Tracking.Funcs.table config in
        let compiled =
          Skipper_lib.Pipeline.compile_ir ~table (Tracking.Funcs.ir ~frames config)
        in
        let schedule, r =
          Skipper_lib.Pipeline.execute_with_schedule ~trace:true ~strategy
            ~input_period:0.04
            ~input:(Tracking.Funcs.input_value config)
            compiled arch
        in
        let rep = conformance_of ~schedule ~input_period:0.04 r in
        (strategy, schedule, r, rep, if strategy = "heft" then Some ("e10", r) else None))
  in
  Printf.printf "\ntracking application, ring %d, %d frames at 25 fps:\n"
    config.Tracking.Funcs.nproc frames;
  Printf.printf "%-12s %10s %10s %8s %8s %8s %9s\n" "strategy" "mkspan"
    "steady" "p50" "p95" "p99" "diverg.";
  Printf.printf "%-12s %10s %10s %8s %8s %8s %9s\n" "" "(ms)" "(ms)" "(ms)"
    "(ms)" "(ms)" "";
  List.iter
    (fun (strategy, (schedule : Syndex.Schedule.t), (r : Executive.result),
          (rep : Skipper_trace.Conformance.report), obs) ->
      commit1 obs;
      let stats = Machine.Metrics.latency_stats r.Executive.latencies in
      Printf.printf "%-12s %10.2f %10.1f %8.1f %8.1f %8.1f %9.3f\n" strategy
        (ms schedule.Syndex.Schedule.makespan)
        (ms (List.nth r.Executive.latencies (frames - 1)))
        (pct stats (fun s -> s.Machine.Metrics.p50))
        (pct stats (fun s -> s.Machine.Metrics.p95))
        (pct stats (fun s -> s.Machine.Metrics.p99))
        rep.Skipper_trace.Conformance.divergence)
    tracking_rows

(* ------------------------------------------------------------------ *)
(* E11: topology ablation                                              *)

let e11 () =
  header "E11" "ablation: target topology at 8 processors (paper: the Transvision \
                ring is one configuration among several)";
  let config = Tracking.Funcs.default_config in
  let frames = 10 in
  Printf.printf "%-10s %18s %18s\n" "topology" "tracking (ms)" "reinit (ms)";
  let rows =
    farm ~name:"e11"
      [
        ("ring", Archi.ring 8);
        ("chain", Archi.chain 8);
        ("star", Archi.star 8);
        ("grid-2x4", Archi.grid 2 4);
        ("full", Archi.fully_connected 8);
      ]
      (fun (name, arch) ->
        let run frames' prog_frames =
          let table = Tracking.Funcs.table config in
          let prog = Tracking.Funcs.ir ~frames:prog_frames config in
          let g = Procnet.Expand.expand table prog in
          let headline = name = "ring" && prog_frames > 1 in
          let r =
            Executive.run
              ~trace:(headline && tracing ())
              ~table ~arch
              ~placement:(Syndex.Place.canonical g arch)
              ~graph:g ~frames:prog_frames
              ?input_period:(if prog_frames > 1 then Some 0.04 else None)
              ~input:(Tracking.Funcs.input_value config)
              ()
          in
          ( List.nth r.Executive.latencies (frames' - 1),
            if headline then Some ("e11", r) else None )
        in
        let tracking, obs = run frames frames in
        let reinit, _ = run 1 1 in
        (name, ms tracking, ms reinit, obs))
  in
  List.iter
    (fun (name, tracking, reinit, obs) ->
      commit1 obs;
      Printf.printf "%-10s %18.1f %18.1f\n" name tracking reinit)
    rows

(* ------------------------------------------------------------------ *)
(* E12: transformational-rule ablation (paper 6, future work)          *)

let e12 () =
  header "E12"
    "ablation: inter-skeleton transformational rules (paper s6): a pipeline \
     with fusable stages and a degenerate 1-worker farm";
  (* A deliberately naive specification: two sequential stages and a
     single-worker farm (e.g. written for a 1-processor test target). *)
  let build () =
    let t = Skel.Funtable.create () in
    Skel.Funtable.register t "prep" ~cost:(fun _ -> 20_000.0) (fun v -> v);
    Skel.Funtable.register t "mask" ~cost:(fun _ -> 30_000.0) (fun v -> v);
    Skel.Funtable.register t "heavy" ~cost:(fun _ -> 200_000.0) (fun v -> v);
    Skel.Funtable.register t "keep" ~arity:2 ~cost:(fun _ -> 200.0) (fun v ->
        let acc, _ = V.to_pair v in
        V.Int (V.to_int acc + 1));
    Skel.Funtable.register t "enlist" ~cost:(fun _ -> 1000.0) (fun v ->
        V.List (List.init 4 (fun i -> V.Tuple [ v; V.Int i ])));
    let prog =
      Skel.Ir.program "naive"
        (Skel.Ir.Pipe
           [
             Skel.Ir.Seq "prep";
             Skel.Ir.Seq "mask";
             Skel.Ir.Seq "enlist";
             Skel.Ir.Df { nworkers = 1; comp = "heavy"; acc = "keep"; init = V.Int 0; state = Skel.Ir.Stateless };
           ])
    in
    (t, prog)
  in
  let arch = Archi.ring 4 in
  let measure optimize =
    let t, prog = build () in
    let compiled = Skipper_lib.Pipeline.compile_ir ~optimize ~table:t prog in
    let r =
      Skipper_lib.Pipeline.execute
        ~trace:(optimize && tracing ())
        ~input:(V.Int 1) compiled arch
    in
    if optimize then observe ~experiment:"e12" r;
    ( Procnet.Graph.nnodes compiled.Skipper_lib.Pipeline.graph,
      r.Executive.stats.Machine.Sim.messages,
      ms r.Executive.first_latency,
      r.Executive.value )
  in
  let n0, m0, l0, v0 = measure false in
  let n1, m1, l1, v1 = measure true in
  assert (V.equal v0 v1);
  Printf.printf "%-26s %12s %12s\n" "" "naive" "normalised";
  Printf.printf "%-26s %12d %12d\n" "processes" n0 n1;
  Printf.printf "%-26s %12d %12d\n" "messages" m0 m1;
  Printf.printf "%-26s %9.2f ms %9.2f ms\n" "latency" l0 l1;
  Printf.printf "results identical: true\n"


(* ------------------------------------------------------------------ *)
(* E13: skeleton nesting (extension; paper s5 compares with OCamlP3L)  *)

let e13 () =
  header "E13"
    "extension: nested skeletons (paper s5: OCamlP3L nests freely, SKiPPER-0 \
     does not) -- outer df over items whose computation is an inner pipeline";
  let build nworkers =
    let t = Skel.Funtable.create () in
    Skel.Funtable.register t "stretch" ~cost:(fun _ -> 2000.0) (fun v ->
        V.List (List.init 8 (fun i -> V.Tuple [ v; V.Int i ])));
    Skel.Funtable.register t "heavy" ~cost:(fun _ -> 60_000.0) (fun v ->
        match v with V.Tuple [ V.Int x; V.Int i ] -> V.Int (x + i) | _ -> v);
    Skel.Funtable.register t "plus" ~arity:2 ~cost:(fun _ -> 200.0) (fun v ->
        let a, b = V.to_pair v in
        V.Int (V.to_int a + V.to_int b));
    let inner =
      Skel.Ir.Pipe
        [
          Skel.Ir.Seq "stretch";
          Skel.Ir.Df { nworkers = 2; comp = "heavy"; acc = "plus"; init = V.Int 0; state = Skel.Ir.Stateless };
        ]
    in
    let program =
      Skel.Ir.program "nested"
        (Skel.Nest.df ~table:t ~nworkers ~comp:inner ~acc:"plus" ~init:(V.Int 0))
    in
    (t, program)
  in
  Printf.printf "%8s %16s %12s\n" "workers" "latency (ms)" "speedup";
  let rows =
    farm ~name:"e13" [ 1; 2; 4; 8 ] (fun nworkers ->
        let t, program = build nworkers in
        let g = Procnet.Expand.expand t program in
        let arch = Archi.ring (nworkers + 1) in
        let r =
          Executive.run
            ~trace:(nworkers = 8 && tracing ())
            ~table:t ~arch
            ~placement:(Syndex.Place.canonical g arch)
            ~graph:g ~frames:1
            ~input:(V.List (List.init 24 (fun i -> V.Int i)))
            ()
        in
        ( nworkers,
          ms r.Executive.first_latency,
          if nworkers = 8 then Some ("e13", r) else None ))
  in
  let base = ref 0.0 in
  List.iter
    (fun (nworkers, latency, obs) ->
      commit1 obs;
      if nworkers = 1 then base := latency;
      Printf.printf "%8d %16.1f %11.2fx\n" nworkers latency (!base /. latency))
    rows;
  print_endline
    "(inner skeletons run serialised on their worker -- SKiPPER-II's initial\n\
    \ nesting model; the outer farm still scales)"

(* ------------------------------------------------------------------ *)
(* E14: fault sweep over the df farm                                   *)

let e14 () =
  header "E14"
    "fault sweep: df farm under injected faults (drop/delay/duplicate/halt), \
     with and without reissue recovery";
  let nworkers = 4 in
  let frames = 6 in
  let nitems = 24 in
  let arch = Archi.ring (nworkers + 1) in
  let prog =
    Skel.Ir.program "df"
      (Skel.Ir.Df { nworkers; comp = "work"; acc = "plus"; init = V.Int 0; state = Skel.Ir.Stateless })
  in
  let input = V.List (List.init nitems (fun i -> V.Int i)) in
  let expected = V.Int (nitems * (nitems - 1) / 2) in
  let run ?(faults = []) ?(link_faults = []) ?recovery ?input_period
      ?observe_as () =
    let t = Skel.Funtable.create () in
    Skel.Funtable.register t "work" ~cost:(fun _ -> 50_000.0) (fun v -> v);
    Skel.Funtable.register t "plus" ~arity:2 ~cost:(fun _ -> 200.0) (fun v ->
        let a, b = V.to_pair v in
        V.Int (V.to_int a + V.to_int b));
    let g = Procnet.Expand.expand t prog in
    let r =
      Executive.run
        ~trace:(observe_as <> None && tracing ())
        ~faults ~link_faults ?recovery ?input_period ~table:t ~arch
        ~placement:(Syndex.Place.canonical g arch)
        ~graph:g ~frames ~input ()
    in
    (r, Option.map (fun e -> (e, r)) observe_as)
  in
  (* the healthy run must come first: pace and recovery timeout below are
     derived from it, so it cannot join the farmed scenarios *)
  let baseline, _ = run () in
  (* pace and timeout derived from the healthy run so the sweep is
     self-calibrating across cost-model changes *)
  let pace = baseline.Executive.first_latency *. 1.5 in
  let recovery = Executive.recovery (baseline.Executive.first_latency *. 0.5) in
  let show name (r : Executive.result) =
    let outcome, frames_done =
      match r.Executive.outcome with
      | Executive.Completed -> ("completed", List.length r.Executive.outputs)
      | Executive.Stalled { collected; _ } -> ("STALLED", collected)
    in
    Printf.printf "%-28s %10s %4d/%d %8s %9d %9d %7d %7d\n" name outcome
      frames_done frames
      (if List.for_all (fun v -> V.equal v expected) r.Executive.outputs then
         "ok"
       else "WRONG")
      r.Executive.stats.Machine.Sim.dropped_msgs r.Executive.reissues
      r.Executive.retired_workers r.Executive.deadline_misses
  in
  Printf.printf "%-28s %10s %6s %8s %9s %9s %7s %7s\n" "scenario" "outcome"
    "frames" "values" "dropped" "reissues" "retired" "missed";
  show "healthy" baseline;
  let scenarios =
    [
      ( "drop 3rd task (recover)",
        fun () ->
          run
            ~link_faults:[ Machine.Sim.link_fault ~schedule:(Machine.Sim.Nth 3)
                             Machine.Sim.Drop ]
            ~recovery ~input_period:pace () );
      ( "delay every 5th (recover)",
        fun () ->
          run
            ~link_faults:[ Machine.Sim.link_fault ~schedule:(Machine.Sim.Every 5)
                             (Machine.Sim.Delay (baseline.Executive.first_latency)) ]
            ~recovery ~input_period:pace () );
      ( "duplicate every 4th (recover)",
        fun () ->
          run
            ~link_faults:[ Machine.Sim.link_fault ~schedule:(Machine.Sim.Every 4)
                             Machine.Sim.Duplicate ]
            ~recovery ~input_period:pace () );
      ( "halt worker P2 (recover)",
        fun () ->
          run
            ~faults:[ (2, baseline.Executive.first_latency *. 0.3) ]
            ~recovery ~input_period:pace ~observe_as:"e14" () );
      ( "halt worker P2 (no recovery)",
        fun () ->
          run
            ~faults:[ (2, baseline.Executive.first_latency *. 0.3) ]
            ~input_period:pace () );
    ]
  in
  List.iter
    (fun (name, (r, obs)) ->
      commit1 obs;
      show name r)
    (farm ~name:"e14.scenarios" scenarios (fun (name, f) -> (name, f ())));
  (* probability sweep: seeded random drops on every link *)
  Printf.printf "\ndrop-probability sweep (recovery on, seeded):\n";
  Printf.printf "%8s %10s %8s %9s %9s %14s\n" "p(drop)" "outcome" "values"
    "dropped" "reissues" "latency x";
  List.iter
    (fun (p, (r : Executive.result)) ->
      Printf.printf "%8.2f %10s %8s %9d %9d %13.2fx\n" p
        (match r.Executive.outcome with
        | Executive.Completed -> "completed"
        | Executive.Stalled _ -> "STALLED")
        (if List.for_all (fun v -> V.equal v expected) r.Executive.outputs then
           "ok"
         else "WRONG")
        r.Executive.stats.Machine.Sim.dropped_msgs r.Executive.reissues
        (r.Executive.stats.Machine.Sim.finish_time
        /. baseline.Executive.stats.Machine.Sim.finish_time))
    (farm ~name:"e14.prob" [ 0.0; 0.02; 0.05; 0.1 ] (fun p ->
         let r, _ =
           run
             ~link_faults:
               [ Machine.Sim.link_fault
                   ~schedule:(Machine.Sim.Prob (p, 42)) Machine.Sim.Drop ]
             ~recovery ~input_period:pace ()
         in
         (p, r)))

(* ------------------------------------------------------------------ *)
(* E15: schedule conformance — predicted vs measured divergence         *)

let e15 () =
  header "E15"
    "schedule conformance: predicted (adequation) vs measured (simulated) \
     divergence across ring sizes, with the measured critical path";
  Printf.printf "%6s %15s %15s %11s %11s %6s  %s\n" "procs" "predicted (ms)"
    "measured (ms)" "error" "divergence" "path" "dominant path element";
  let frames = 5 in
  let rows =
    farm ~name:"e15" [ 4; 8; 16 ] (fun nproc ->
        let config = Tracking.Funcs.(with_nproc nproc default_config) in
        let table = Tracking.Funcs.table config in
        let compiled =
          Skipper_lib.Pipeline.compile_ir ~table (Tracking.Funcs.ir ~frames config)
        in
        let arch = Archi.ring nproc in
        let input_period = 0.04 in
        let schedule, r =
          Skipper_lib.Pipeline.execute_with_schedule ~trace:true ~input_period
            ~input:(Tracking.Funcs.input_value config)
            compiled arch
        in
        let report =
          match
            Machine.Profile.conformance ~schedule
              ~output_times:r.Executive.output_times ~input_period
              r.Executive.sim
          with
          | Ok rep -> rep
          | Error msg -> failwith msg
        in
        (nproc, report, if nproc = 8 then Some ("e15", r) else None))
  in
  List.iter
    (fun (nproc, (rep : Skipper_trace.Conformance.report), obs) ->
      commit1 obs;
      if obs <> None then
        record_extras ~experiment:"e15"
          [
            ("makespan_error", rep.Skipper_trace.Conformance.makespan_error);
            ("divergence", rep.Skipper_trace.Conformance.divergence);
          ];
      let dominant =
        List.fold_left
          (fun best (e : Skipper_trace.Conformance.path_elem) ->
            match best with
            | Some (b : Skipper_trace.Conformance.path_elem)
              when b.Skipper_trace.Conformance.share
                   >= e.Skipper_trace.Conformance.share -> best
            | _ -> Some e)
          None rep.Skipper_trace.Conformance.path
      in
      Printf.printf "%6d %15.3f %15.3f %+10.1f%% %11.3f %6d  %s\n" nproc
        (ms rep.Skipper_trace.Conformance.predicted_makespan)
        (ms rep.Skipper_trace.Conformance.measured_makespan)
        (rep.Skipper_trace.Conformance.makespan_error *. 100.0)
        rep.Skipper_trace.Conformance.divergence
        (List.length rep.Skipper_trace.Conformance.path)
        (match dominant with
        | Some e ->
            Printf.sprintf "%s (%.0f%%)" e.Skipper_trace.Conformance.elem_label
              (e.Skipper_trace.Conformance.share *. 100.0)
        | None -> "-"))
    rows;
  print_endline
    "(error is measured-vs-predicted makespan; the gap quantifies how far\n\
    \ the generic static cost model sits from the data-dependent simulated\n\
    \ costs -- the paper's rationale for measuring the real executive)"

(* ------------------------------------------------------------------ *)
(* E16: windowed telemetry and SLO alerting through a processor outage  *)

let e16 () =
  header "E16"
    "windowed series + SLO monitor: tracking pipeline through a processor \
     outage, with burn-rate alerting, degraded-window throughput and \
     time-to-recovery";
  let module S = Skipper_trace.Series in
  let nproc = 8 in
  let frames = 10 in
  let config = Tracking.Funcs.(with_nproc nproc default_config) in
  let arch = Archi.ring nproc in
  let run ?(faults = []) ?(restores = []) ?recovery ?input_period () =
    let table = Tracking.Funcs.table config in
    let compiled =
      Skipper_lib.Pipeline.compile_ir ~table (Tracking.Funcs.ir ~frames config)
    in
    Skipper_lib.Pipeline.execute ~trace:true ?input_period ~faults ~restores
      ?recovery
      ~input:(Tracking.Funcs.input_value config)
      compiled arch
  in
  (* the unpaced probe calibrates the pace, then the healthy paced run
     calibrates the latency SLO: the experiment tracks cost-model changes
     instead of pinning absolute milliseconds. The healthy run cannot join
     the farmed scenarios — the thresholds derive from it. *)
  let probe = run () in
  let pace = probe.Executive.first_latency *. 1.5 in
  let healthy = run ~input_period:pace () in
  let hmax =
    List.fold_left Float.max 0.0 healthy.Executive.latencies
  in
  (* the timeout must exceed any healthy frame (no spurious reissues) and a
     timed-out frame must overshoot both the latency SLO and the pace
     budget: one full pace does all three *)
  let recovery = Executive.recovery ~max_strikes:100 pace in
  let halt_at = pace *. 2.5 and restore_at = pace *. 6.5 in
  let specs =
    [
      Printf.sprintf "p99_latency<%.6fms" (ms (hmax *. 1.5));
      "miss_rate<1%";
      Printf.sprintf "throughput>=%.6ffps" (0.5 /. pace);
    ]
  in
  let parsed =
    List.map
      (fun s ->
        match S.Slo.parse s with Ok sp -> sp | Error e -> failwith e)
      specs
  in
  let scenarios =
    [
      ( "outage P2 (recover)",
        fun () ->
          run ~input_period:pace
            ~faults:[ (2, halt_at) ]
            ~restores:[ (2, restore_at) ]
            ~recovery () );
      ( "outage P2 (no recovery)",
        fun () ->
          run ~input_period:pace
            ~faults:[ (2, halt_at) ]
            ~restores:[ (2, restore_at) ]
            () );
    ]
  in
  Printf.printf
    "outage: halt P2 at %.2f ms, restore at %.2f ms; %d frames paced at \
     %.2f ms\n"
    (ms halt_at) (ms restore_at) frames (ms pace);
  Printf.printf "%-22s %-26s %-9s %5s %9s %9s %9s\n" "scenario" "slo" "state"
    "fail" "burn ms" "first ms" "ttr ms";
  let opt_ms = function Some t -> Printf.sprintf "%9.2f" (ms t) | None -> "        -" in
  List.iter
    (fun (name, (r : Executive.result), series, (rep : S.Slo.report)) ->
      List.iter
        (fun (m : S.Slo.monitor) ->
          Printf.printf "%-22s %-26s %-9s %5d %9.2f %s %s\n" name
            m.S.Slo.spec.S.Slo.raw
            (S.Slo.state_name m.S.Slo.final)
            m.S.Slo.failing_windows
            (ms m.S.Slo.total_burn)
            (opt_ms m.S.Slo.first_violation)
            (opt_ms m.S.Slo.time_to_recovery))
        rep.S.Slo.monitors;
      Printf.printf
        "%-22s (%d/%d frames, %d reissues, %d deadline misses)\n" ""
        (List.length r.Executive.outputs) frames r.Executive.reissues
        r.Executive.deadline_misses;
      (* windowed throughput split at the outage boundaries: the series
         answers "what was throughput *during* the fault?" directly *)
      if name = "outage P2 (recover)" then begin
        let nwin = Array.length series.S.windows in
        let mean_thr sel =
          let n = ref 0 and acc = ref 0.0 in
          Array.iter
            (fun (w : S.window) ->
              if sel w then begin
                incr n;
                acc := !acc +. S.throughput series w
              end)
            series.S.windows;
          if !n = 0 then 0.0 else !acc /. float_of_int !n
        in
        let in_outage (w : S.window) =
          w.S.w_start < restore_at && w.S.w_finish > halt_at
        in
        let degraded_thr = mean_thr in_outage in
        let healthy_thr = mean_thr (fun w -> not (in_outage w)) in
        let lat = List.hd rep.S.Slo.monitors in
        Printf.printf
          "outage telemetry: %d windows, throughput %.1f fps degraded vs \
           %.1f fps healthy windows\n"
          nwin degraded_thr healthy_thr;
        record_extras ~experiment:"e16"
          [
            ("degraded_throughput_fps", degraded_thr);
            ("healthy_throughput_fps", healthy_thr);
            ( "time_to_recovery_ms",
              match lat.S.Slo.time_to_recovery with
              | Some t -> ms t
              | None -> 0.0 );
            ("violated_windows", float_of_int lat.S.Slo.failing_windows);
            ("total_burn_ms", ms lat.S.Slo.total_burn);
          ];
        observe ~experiment:"e16" r;
        Option.iter
          (fun dir ->
            write_file
              (Filename.concat dir "e16.series.json")
              (S.to_json ~slo:rep series);
            write_file
              (Filename.concat dir "e16.series.csv")
              (S.to_csv series);
            match
              Skipper_trace.Svg.gantt ~bands:(S.Slo.bands rep)
                (Executive.timeline r)
            with
            | Ok svg -> write_file (Filename.concat dir "e16.gantt.svg") svg
            | Error e -> failwith e)
          !trace_dir
      end)
    (let eval name (r : Executive.result) =
       let series =
         match Executive.series r with
         | Ok s -> s
         | Error e -> failwith e
       in
       (name, r, series, S.Slo.evaluate parsed series)
     in
     eval "healthy" healthy
     :: farm ~name:"e16" scenarios (fun (name, f) -> eval name (f ())))

(* ------------------------------------------------------------------ *)
(* E17: stateful farm under a mid-stream master outage                 *)

(* An accumulator df farm is the worst case for the master: it holds the
   only copy of the cross-frame fold state, so killing its processor
   mid-stream loses the stream — unless the master checkpoints. The
   experiment paces a multi-frame stream, halts the master's processor
   between two frame outputs, and contrasts the uncheckpointed stall with
   the checkpointed replay, which must complete and agree with the
   sequential oracle. *)

let e17 () =
  header "E17"
    "stateful farm checkpoint/replay: accumulator df through a mid-stream \
     master outage — uncheckpointed stall vs checkpointed replay";
  let nworkers = 6 in
  let frames = 8 in
  let nitems = 24 in
  let table = Skel.Funtable.create () in
  (* value-dependent compute cost shuffles worker completion order, so the
     replayed merge is exercised out of arrival order *)
  Skel.Funtable.register table "weigh" ~arity:1
    ~cost:(fun v -> 20_000.0 +. float_of_int (271 * V.to_int v mod 9973))
    (fun v -> V.Int ((3 * V.to_int v) + 1));
  Skel.Funtable.register table "add" ~arity:2
    ~cost:(fun _ -> 500.0)
    (fun v ->
      let a, b = V.to_pair v in
      V.Int (V.to_int a + V.to_int b));
  let program =
    Skel.Ir.program ~frames "e17_acc_farm"
      (Skel.Ir.Df
         {
           nworkers;
           comp = "weigh";
           acc = "add";
           init = V.Int 0;
           state = Skel.Ir.Accumulator;
         })
  in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring (nworkers + 1) in
  let placement = Syndex.Place.canonical g arch in
  let input = V.List (List.init nitems (fun i -> V.Int ((7 * i) + 3))) in
  let run ?faults ?restores ?checkpoint_every ?input_period () =
    Executive.run ~trace:true ?faults ?restores ?checkpoint_every
      ?input_period ~table ~arch ~placement ~graph:g ~frames ~input ()
  in
  (* calibrate the pace from the unpaced probe, then locate the outage
     between two frame outputs of a healthy checkpointed run — the halt
     instant tracks cost-model changes instead of pinning milliseconds *)
  let probe = run () in
  let pace = probe.Executive.first_latency *. 1.5 in
  let healthy = run ~input_period:pace ~checkpoint_every:2 () in
  let times = Array.of_list healthy.Executive.output_times in
  let halt_at = (times.(4) +. times.(5)) /. 2.0 in
  let restore_at = halt_at +. pace in
  Printf.printf
    "%d workers, %d frames x %d items paced at %.2f ms; master on P0: halt \
     %.2f ms, restore %.2f ms\n"
    nworkers frames nitems (ms pace) (ms halt_at) (ms restore_at);
  let scenarios =
    [
      ( "outage, no checkpoint",
        fun () ->
          run ~input_period:pace
            ~faults:[ (0, halt_at) ]
            ~restores:[ (0, restore_at) ]
            () );
      ( "outage, checkpoint k=2",
        fun () ->
          run ~input_period:pace ~checkpoint_every:2
            ~faults:[ (0, halt_at) ]
            ~restores:[ (0, restore_at) ]
            () );
    ]
  in
  let pct l f =
    match l with
    | Some (s : Machine.Metrics.latency_stats) -> ms (f s)
    | None -> nan
  in
  let rows =
    ("healthy, checkpoint k=2", healthy)
    :: farm ~name:"e17" scenarios (fun (name, f) -> (name, f ()))
  in
  Printf.printf "%-24s %-10s %6s %5s %7s %8s %8s %9s\n" "scenario" "outcome"
    "frames" "ckpts" "replay" "p50 ms" "p95 ms" "finish ms";
  let stalled = ref 0 in
  let checkpointed = ref None in
  List.iter
    (fun (name, (r : Executive.result)) ->
      let outcome, got =
        match r.Executive.outcome with
        | Executive.Completed -> ("completed", frames)
        | Executive.Stalled { collected; _ } ->
            stalled := collected;
            ("stalled", collected)
      in
      if name = "outage, checkpoint k=2" then checkpointed := Some r;
      let stats = Machine.Metrics.latency_stats r.Executive.latencies in
      let finish =
        match List.rev r.Executive.output_times with t :: _ -> t | [] -> 0.0
      in
      Printf.printf "%-24s %-10s %6d %5d %7d %8.2f %8.2f %9.2f\n" name
        outcome got r.Executive.checkpoints r.Executive.replayed_frames
        (pct stats (fun s -> s.Machine.Metrics.p50))
        (pct stats (fun s -> s.Machine.Metrics.p95))
        (ms finish))
    rows;
  let ck =
    match !checkpointed with
    | Some r -> r
    | None -> failwith "e17: checkpointed scenario missing"
  in
  (* the replayed stream is oracle-exact: the acceptance gate of the
     stateful-farm engine, enforced every bench run *)
  let oracle = Skel.Sem.run table program input in
  if not (V.equal oracle ck.Executive.value) then
    failwith "e17: checkpointed replay diverges from the sequential oracle";
  let stream = Skel.Sem.run_stream table program input in
  if not (List.for_all2 V.equal stream ck.Executive.outputs) then
    failwith "e17: replayed per-frame outputs diverge from the oracle";
  print_endline "checkpointed replay agrees with the sequential oracle";
  let finish_of (r : Executive.result) =
    match List.rev r.Executive.output_times with t :: _ -> t | [] -> 0.0
  in
  let stats = Machine.Metrics.latency_stats ck.Executive.latencies in
  record_extras ~experiment:"e17"
    [
      ("checkpoints", float_of_int ck.Executive.checkpoints);
      ("replayed_frames", float_of_int ck.Executive.replayed_frames);
      ("stall_collected", float_of_int !stalled);
      ("outage_p50_ms", pct stats (fun s -> s.Machine.Metrics.p50));
      ("outage_p95_ms", pct stats (fun s -> s.Machine.Metrics.p95));
      ("outage_p99_ms", pct stats (fun s -> s.Machine.Metrics.p99));
      ("recovery_overhead_ms", ms (finish_of ck -. finish_of healthy));
    ];
  observe ~experiment:"e17" ck;
  Option.iter
    (fun dir ->
      match Skipper_trace.Svg.gantt (Executive.timeline ck) with
      | Ok svg -> write_file (Filename.concat dir "e17.gantt.svg") svg
      | Error e -> failwith e)
    !trace_dir

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks                                           *)

let micro () =
  header "micro" "bechamel micro-benchmarks of the computational kernels";
  let open Bechamel in
  let open Toolkit in
  let img256 = Apps.Ccl_scm.blobs_image ~seed:3 ~nblobs:30 256 256 in
  let tracking_src = Tracking.Funcs.source Tracking.Funcs.default_config in
  let tracking_graph =
    let table = Tracking.Funcs.table Tracking.Funcs.default_config in
    Procnet.Expand.expand table (Tracking.Funcs.ir Tracking.Funcs.default_config)
  in
  let df_run () =
    let table = Skel.Funtable.create () in
    Skel.Funtable.register table "w" ~cost:(fun _ -> 10_000.0) (fun v -> v);
    Skel.Funtable.register table "k" ~arity:2 ~cost:(fun _ -> 100.0) (fun v ->
        fst (V.to_pair v));
    let prog =
      Skel.Ir.program "p"
        (Skel.Ir.Df { nworkers = 4; comp = "w"; acc = "k"; init = V.Int 0; state = Skel.Ir.Stateless })
    in
    let g = Procnet.Expand.expand table prog in
    let arch = Archi.ring 5 in
    ignore
      (Executive.run ~table ~arch
         ~placement:(Syndex.Place.canonical g arch)
         ~graph:g ~frames:1
         ~input:(V.List (List.init 16 (fun i -> V.Int i)))
         ())
  in
  (* One Test.make per kernel; E1..E9 above are the table/figure harnesses. *)
  let tests =
    [
      Test.make ~name:"ccl-label-256x256"
        (Staged.stage (fun () -> ignore (Vision.Ccl.label ~threshold:128 img256)));
      Test.make ~name:"threshold-256x256"
        (Staged.stage (fun () -> ignore (Vision.Ops.threshold 128 img256)));
      Test.make ~name:"sobel-256x256"
        (Staged.stage (fun () -> ignore (Vision.Ops.sobel_magnitude img256)));
      Test.make ~name:"scene-frame-256x256"
        (Staged.stage (fun () ->
             ignore
               (Vision.Scene.frame
                  { Vision.Scene.default_params with Vision.Scene.width = 256; height = 256 }
                  7)));
      Test.make ~name:"parse+typecheck-tracking"
        (Staged.stage (fun () ->
             let ast = Minicaml.Parser.program tracking_src in
             ignore (Minicaml.Infer.infer_program Minicaml.Infer.initial_env ast)));
      Test.make ~name:"heft-map-tracking-ring8"
        (Staged.stage (fun () ->
             ignore
               (Syndex.Heft.map (Syndex.Cost.make ()) (Archi.ring 8) tracking_graph)));
      Test.make ~name:"simulate-df-farm" (Staged.stage df_run);
    ]
  in
  List.iter
    (fun test ->
      let results =
        let quota = Time.second 0.5 in
        let raw =
          Benchmark.all
            (Benchmark.cfg ~limit:2000 ~quota ())
            Instance.[ monotonic_clock ]
            (Test.make_grouped ~name:"kernels" [ test ])
        in
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-36s %12.3f us/run\n" name (est /. 1e3)
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
  ]

let () =
  let baseline_path = ref "bench/baseline.json" in
  let check_baseline = ref false in
  let update_baseline = ref false in
  let rec parse_flags = function
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse_flags rest
    | "--trace-dir" :: dir :: rest ->
        trace_dir := Some dir;
        parse_flags rest
    | "--jobs" :: n :: rest ->
        jobs :=
          (if n = "auto" then Support.Domain_pool.default_jobs ()
           else int_of_string n);
        parse_flags rest
    | "--baseline" :: path :: rest ->
        baseline_path := path;
        parse_flags rest
    | "--check-baseline" :: rest ->
        check_baseline := true;
        parse_flags rest
    | "--update-baseline" :: rest ->
        update_baseline := true;
        parse_flags rest
    | x :: rest -> x :: parse_flags rest
    | [] -> []
  in
  let names = parse_flags (List.tl (Array.to_list Sys.argv)) in
  Option.iter
    (fun dir ->
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    !trace_dir;
  (match names with
  | [ "micro" ] -> micro ()
  | [ name ] -> (
      match List.assoc_opt (String.lowercase_ascii name) experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (e1..e17 or micro)\n" name;
          exit 1)
  | _ ->
      print_endline "SKiPPER experiment harness (see DESIGN.md, experiment index)";
      List.iter (fun (_, f) -> f ()) experiments;
      print_newline ();
      print_endline
        "All experiments completed. Run with 'micro' for bechamel kernels.");
  Option.iter write_summary_json !json_out;
  write_pool_traces ();
  if !update_baseline then begin
    write_file !baseline_path (summary_entries ());
    Printf.eprintf "bench: wrote baseline (%d experiments) to %s\n"
      (List.length !recorded) !baseline_path
  end;
  if !check_baseline && not (check_against_baseline !baseline_path) then exit 1
