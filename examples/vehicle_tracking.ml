(* The paper's section-4 case study, end to end from the ML source text:
   real-time vehicle detection and tracking on a ring of 8 T9000-style
   processors, fed by a synthetic 25 Hz 512x512 video stream with two lead
   vehicles carrying three bright marks each.

   Run with: dune exec examples/vehicle_tracking.exe *)

let frames = 25

let () =
  let config = Tracking.Funcs.default_config in
  let table = Tracking.Funcs.table config in

  (* Compile the specification exactly as a SKiPPER user wrote it. *)
  let source = Tracking.Funcs.source config in
  print_endline "--- specification ---";
  print_string source;
  let compiled =
    Skipper_lib.Pipeline.compile_source ~frames ~table source
  in
  print_endline "--- inferred signatures ---";
  Format.printf "%a" Skipper_lib.Pipeline.pp_signatures compiled;

  (* The process network and its mapping onto the ring. *)
  let arch = Archi.ring config.Tracking.Funcs.nproc in
  let schedule = Skipper_lib.Pipeline.map compiled arch in
  Format.printf "--- mapping ---@.%a@." Syndex.Schedule.pp_summary schedule;
  Printf.printf "deadlock-free executive: %b\n"
    (Syndex.Schedule.deadlock_free schedule);

  (* Run the distributed executive against the 25 Hz stream. *)
  let result =
    Skipper_lib.Pipeline.execute ~input_period:0.04 compiled arch
  in
  print_endline "--- per-frame latency (ms) ---";
  List.iteri
    (fun i l ->
      let mode = if i = 0 then "  (reinitialisation)" else "" in
      Printf.printf "frame %2d: %7.2f%s\n" i (l *. 1e3) mode)
    result.Executive.latencies;

  (* Steady state: the paper reports ~30 ms for the tracking phase and
     ~110 ms for reinitialisation on the same hardware model. *)
  let steady =
    match List.rev result.Executive.latencies with l :: _ -> l *. 1e3 | [] -> 0.0
  in
  Printf.printf "steady-state tracking latency: %.1f ms (paper: ~30 ms)\n" steady;

  (* Machine-level view of the run (SynDEx's optional performance
     measurement, paper section 3). *)
  print_endline "--- machine metrics ---";
  print_string (Machine.Metrics.to_string (Machine.Metrics.analyse result.Executive.sim));

  (* And the sequential emulation sees exactly the same marks. *)
  let table2 = Tracking.Funcs.table config in
  let compiled2 =
    Skipper_lib.Pipeline.compile_source ~frames ~table:table2
      (Tracking.Funcs.source config)
  in
  let emulated =
    Skipper_lib.Pipeline.emulate compiled2
      (Option.get compiled2.Skipper_lib.Pipeline.input)
  in
  Printf.printf "emulation agrees with executive: %b\n"
    (Skel.Value.equal emulated result.Executive.value);

  (* Per-stage cost of everything the pass manager ran for this program:
     the front-end passes once, then cost/map/simulate for the target. *)
  print_endline "--- pipeline stages ---";
  Format.printf "%a" Skipper_lib.Pipeline.pp_timings compiled
