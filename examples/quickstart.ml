(* Quickstart: a data farm in five steps.

   Squares a list of numbers with the df skeleton, checks the sequential
   emulation against the parallel executive on a 4-processor ring, and
   prints both results plus the machine metrics.

   Run with: dune exec examples/quickstart.exe *)

module V = Skel.Value

let () =
  (* 1. Register the application's sequential functions (the paper's "C
        functions"), each with a cost model in processor cycles. *)
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "square" ~cost:(fun _ -> 20_000.0) (fun v ->
      V.Int (V.to_int v * V.to_int v));
  Skel.Funtable.register table "add" ~arity:2 ~cost:(fun _ -> 500.0) (fun v ->
      let a, b = V.to_pair v in
      V.Int (V.to_int a + V.to_int b));

  (* 2. Write the skeletal program: sum the squares with a 3-worker farm. *)
  let program =
    Skel.Ir.program "sum-of-squares"
      (Skel.Ir.Df { nworkers = 3; comp = "square"; acc = "add"; init = V.Int 0; state = Skel.Ir.Stateless })
  in
  let input = V.List (List.init 10 (fun i -> V.Int (i + 1))) in

  (* 3. Sequential emulation: the declarative semantics, runnable anywhere. *)
  let emulated = Skel.Sem.run table program input in
  Printf.printf "emulated result:  %s\n" (V.to_string emulated);

  (* 4. Parallel execution: expand to a process network, map it onto a ring
        of four T9000-style processors, run the generated executive on the
        machine simulator. *)
  let compiled = Skipper_lib.Pipeline.compile_ir ~table program in
  let arch = Archi.ring 4 in
  let result = Skipper_lib.Pipeline.execute ~input compiled arch in
  Printf.printf "parallel result:  %s\n" (V.to_string result.Executive.value);

  (* 5. They agree (the paper's correctness story), and the machine metrics
        show what the run cost. *)
  assert (V.equal emulated result.Executive.value);
  Printf.printf "latency: %.3f ms over %d messages (%d bytes)\n"
    (result.Executive.first_latency *. 1e3)
    result.Executive.stats.Machine.Sim.messages
    result.Executive.stats.Machine.Sim.bytes;

  (* 6. Every stage the pass manager ran, with wall time and artifact size
        (the same report `skipperc --timings` prints). *)
  Format.printf "%a" Skipper_lib.Pipeline.pp_timings compiled;
  print_endline "quickstart: OK"
