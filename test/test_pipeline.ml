(* Tests for the top-level environment facade: compilation errors with
   located messages, mapping strategies, equivalence checking, and the
   artefact emitters. *)

module P = Skipper_lib.Pipeline
module V = Skel.Value

let simple_table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 1000.0);
      ( "plus",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 100.0 );
    ]

let simple_src =
  {|external sq : int -> int
external plus : int -> int -> int
let main = fun xs -> df 3 sq plus 0 xs|}

let test_compile_source_ok () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  Alcotest.(check string) "name" "main" c.P.name;
  Alcotest.(check (list string)) "skeletons" [ "df" ]
    (Skel.Ir.skeleton_instances c.P.program.Skel.Ir.body);
  Alcotest.(check bool) "signatures recorded" true
    (List.mem_assoc "main" c.P.signatures)

let expect_error ?(check = fun _ -> true) f =
  try
    ignore (f ());
    Alcotest.fail "expected Compile_error"
  with P.Compile_error msg -> Alcotest.(check bool) ("message: " ^ msg) true (check msg)

let test_compile_parse_error () =
  expect_error
    ~check:(fun m -> Astring.String.is_infix ~affix:"parse error" m)
    (fun () -> P.compile_source ~table:(simple_table ()) "let main = (")

let test_compile_type_error () =
  expect_error
    ~check:(fun m -> Astring.String.is_infix ~affix:"type error" m)
    (fun () -> P.compile_source ~table:(simple_table ()) "let main = 1 + true")

let test_compile_extract_error () =
  expect_error
    ~check:(fun m -> Astring.String.is_infix ~affix:"extraction" m)
    (fun () -> P.compile_source ~table:(simple_table ()) "let main = 42")

let test_compile_ir_validates () =
  expect_error (fun () ->
      P.compile_ir ~table:(simple_table ())
        (Skel.Ir.program "bad" (Skel.Ir.Seq "missing")))

let test_emulate_and_execute_agree () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let input = V.List (List.init 7 (fun i -> V.Int i)) in
  let emulated = P.emulate c input in
  Alcotest.(check bool) "expected sum of squares" true (V.equal emulated (V.Int 91));
  List.iter
    (fun strategy ->
      let r = P.execute ~strategy ~input c (Archi.ring 4) in
      Alcotest.(check bool) "strategy agrees" true (V.equal emulated r.Executive.value))
    (Syndex.Mapper.names ())

let test_check_equivalence () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let input = V.List [ V.Int 2; V.Int 3 ] in
  match P.check_equivalence ~input c (Archi.ring 3) with
  | Ok v -> Alcotest.(check bool) "13" true (V.equal v (V.Int 13))
  | Error m -> Alcotest.fail m

let test_execute_requires_input () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  expect_error (fun () -> P.execute c (Archi.ring 2))

let test_map_strategies_differ_but_validate () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let arch = Archi.ring 4 in
  List.iter
    (fun strategy ->
      let s = P.map ~strategy c arch in
      match Syndex.Schedule.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid schedule: %s" m)
    (Syndex.Mapper.names ())

let test_unknown_strategy_lists_names () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  expect_error
    ~check:(fun m ->
      Astring.String.is_infix ~affix:"unknown mapping strategy" m
      && Astring.String.is_infix ~affix:"heft" m
      && Astring.String.is_infix ~affix:"bicriteria" m)
    (fun () -> P.map ~strategy:"hetf" c (Archi.ring 4))

(* The reason pipelined mapping exists: on a pure stage chain under
   saturated input, the interval mapper's measured steady-state period must
   beat HEFT's (which serialises the chain on one processor to avoid
   communication, so its period is the whole chain's compute time). *)
let test_throughput_beats_heft_period () =
  let nstages = 6 in
  let table = Skel.Funtable.create () in
  for i = 1 to nstages do
    Skel.Funtable.register table
      (Printf.sprintf "s%d" i)
      ~arity:1
      ~cost:(fun _ -> 40_000.0)
      (fun v -> v)
  done;
  let ir =
    Skel.Ir.program ~frames:8 "chain"
      (Skel.Ir.Pipe
         (List.init nstages (fun i -> Skel.Ir.Seq (Printf.sprintf "s%d" (i + 1)))))
  in
  let c = P.compile_ir ~table ir in
  let arch = Archi.ring 8 in
  let cost = Syndex.Cost.make ~fn_cycles:(fun _ -> Some 40_000.0) () in
  (* Sustained ms/frame: all frames are injected at t = 0, so the last
     output's completion time divided by the frame count converges on the
     true steady-state period. Inter-output spacing would be misleading
     here — a serialised chain drains its last stage's backlog back-to-back,
     so its spacing shows one stage time even at 1/6th the throughput. *)
  let period strategy =
    let r = P.execute ~strategy ~cost ~input:(V.Int 0) c arch in
    match List.rev r.Executive.output_times with
    | last :: _ -> last /. float_of_int (List.length r.Executive.output_times)
    | [] -> Alcotest.failf "%s: no outputs" strategy
  in
  let heft = period "heft" and throughput = period "throughput" in
  Alcotest.(check bool)
    (Printf.sprintf "throughput period %.6f < heft period %.6f" throughput heft)
    true
    (throughput < heft)

let test_macro_and_dot () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let arch = Archi.ring 4 in
  let s = P.map c arch in
  let macro = P.macro_code c s in
  Alcotest.(check bool) "macro has farm" true
    (Astring.String.is_infix ~affix:"farm_" macro);
  let dot = P.graph_dot c in
  Alcotest.(check bool) "dot is a digraph" true
    (Astring.String.is_prefix ~affix:"digraph" dot)

let test_signature_report () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let text = Format.asprintf "%a" P.pp_signatures c in
  Alcotest.(check bool) "mentions main" true
    (Astring.String.is_infix ~affix:"val main :" text)

let test_tracking_end_to_end_equivalence () =
  let config =
    {
      Tracking.Funcs.default_config with
      Tracking.Funcs.scene =
        { Vision.Scene.default_params with Vision.Scene.width = 192; height = 192 };
      nproc = 3;
    }
  in
  let table = Tracking.Funcs.table config in
  let c = P.compile_source ~frames:3 ~table (Tracking.Funcs.source config) in
  match P.check_equivalence c (Archi.ring 4) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "pipeline"
    [
      ( "compilation",
        [
          Alcotest.test_case "compile source" `Quick test_compile_source_ok;
          Alcotest.test_case "parse error" `Quick test_compile_parse_error;
          Alcotest.test_case "type error" `Quick test_compile_type_error;
          Alcotest.test_case "extract error" `Quick test_compile_extract_error;
          Alcotest.test_case "IR validation" `Quick test_compile_ir_validates;
        ] );
      ( "execution",
        [
          Alcotest.test_case "emulate/execute agree" `Quick test_emulate_and_execute_agree;
          Alcotest.test_case "check_equivalence" `Quick test_check_equivalence;
          Alcotest.test_case "input required" `Quick test_execute_requires_input;
          Alcotest.test_case "strategies validate" `Quick test_map_strategies_differ_but_validate;
          Alcotest.test_case "unknown strategy error" `Quick test_unknown_strategy_lists_names;
          Alcotest.test_case "throughput beats heft period" `Quick
            test_throughput_beats_heft_period;
          Alcotest.test_case "tracking end-to-end" `Quick test_tracking_end_to_end_equivalence;
        ] );
      ( "artefacts",
        [
          Alcotest.test_case "macro and dot" `Quick test_macro_and_dot;
          Alcotest.test_case "signatures" `Quick test_signature_report;
        ] );
    ]
