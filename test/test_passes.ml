(* Tests for the staged pass manager: per-stage reports, artifact
   memoization (hit/miss behaviour across architecture variants, source
   edits and table content — including hits across independently
   constructed equal tables, with derived-function replay, and through the
   persistent on-disk store), stage dumps, and a qcheck property that the
   optimized (Skel.Transform) and unoptimized pipelines are
   emulation-equivalent on random skeletal programs. *)

module P = Skipper_lib.Pipeline
module Passes = Skipper_lib.Passes
module Stage = Skipper_lib.Stage
module V = Skel.Value
module Ir = Skel.Ir

let value_testable = Alcotest.testable V.pp V.equal

let simple_table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 1000.0);
      ( "plus",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 100.0 );
    ]

let simple_src =
  {|external sq : int -> int
external plus : int -> int -> int
let main = fun xs -> df 3 sq plus 0 xs|}

let frontend_names = [ "parse"; "typecheck"; "extract"; "transform"; "expand" ]
let nfrontend = List.length frontend_names

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

let test_reports_cover_frontend () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let reports = P.reports c in
  Alcotest.(check (list string)) "one report per front-end pass" frontend_names
    (List.map (fun r -> r.Stage.pass) reports);
  List.iter
    (fun r ->
      Alcotest.(check bool) "wall time non-negative" true (r.Stage.wall >= 0.0);
      Alcotest.(check bool) "no cache in play" false r.Stage.cached;
      Alcotest.(check bool) "sized" true (r.Stage.size > 0))
    reports

let test_reports_accumulate_across_calls () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let arch = Archi.ring 4 in
  let _schedule = P.map c arch in
  let _r = P.execute ~input:(V.List [ V.Int 1; V.Int 2 ]) c arch in
  let names = List.map (fun r -> r.Stage.pass) (P.reports c) in
  Alcotest.(check (list string)) "compile + map + execute stages"
    (frontend_names @ [ "cost"; "map"; "cost"; "map"; "simulate" ])
    names

let test_timings_render () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  let table = Format.asprintf "%a" P.pp_timings c in
  List.iter
    (fun pass ->
      Alcotest.(check bool) ("table mentions " ^ pass) true
        (Astring.String.is_infix ~affix:pass table))
    frontend_names;
  let json = P.timings_json c in
  Alcotest.(check bool) "json array" true
    (Astring.String.is_prefix ~affix:"[{" json);
  Alcotest.(check bool) "json has wall_ms" true
    (Astring.String.is_infix ~affix:{|"wall_ms"|} json)

(* ------------------------------------------------------------------ *)
(* Cache behaviour                                                     *)

let test_variant_compiles_reuse_frontend () =
  (* The acceptance scenario: compiling the E1 tracking program onto ring
     sizes {1,2,4,8,12,16} performs parse/typecheck/extract/expand exactly
     once; every variant after the first is pure cache hits. *)
  let cache = Passes.create_cache () in
  let config = Tracking.Funcs.default_config in
  let table = Tracking.Funcs.table config in
  let src = Tracking.Funcs.source config in
  let rings = [ 1; 2; 4; 8; 12; 16 ] in
  List.iter
    (fun p ->
      let c = P.compile_source ~frames:12 ~cache ~table src in
      let schedule = P.map c (Archi.ring p) in
      match Syndex.Schedule.validate schedule with
      | Ok () -> ()
      | Error m -> Alcotest.failf "ring-%d: invalid schedule: %s" p m)
    rings;
  let hits, misses = Passes.cache_stats cache in
  Alcotest.(check int) "front end ran exactly once" nfrontend misses;
  Alcotest.(check int) "every other variant memoized"
    (nfrontend * (List.length rings - 1))
    hits

let test_edited_source_invalidates () =
  let cache = Passes.create_cache () in
  let table = simple_table () in
  let _ = P.compile_source ~cache ~table simple_src in
  let edited = simple_src ^ "\n" in
  let _ = P.compile_source ~cache ~table edited in
  let _, misses = Passes.cache_stats cache in
  Alcotest.(check int) "both compiles ran the front end" (2 * nfrontend) misses

let test_option_change_invalidates_downstream () =
  let cache = Passes.create_cache () in
  let table = simple_table () in
  let _ = P.compile_source ~cache ~frames:1 ~table simple_src in
  let _ = P.compile_source ~cache ~frames:2 ~table simple_src in
  let hits, misses = Passes.cache_stats cache in
  (* parse and typecheck do not read [frames]: reused. extract, transform
     and expand sit after the option enters the key chain: re-run. *)
  Alcotest.(check int) "parse+typecheck reused" 2 hits;
  Alcotest.(check int) "extract onward re-ran" (nfrontend + 3) misses

(* Regression: the cache used to key on the table's physical identity, so
   two independently constructed but equal tables never shared artifacts.
   The key is a content digest now — equal registrations, equal keys. *)
let test_equal_tables_share () =
  let cache = Passes.create_cache () in
  let input = V.List (List.init 5 (fun i -> V.Int i)) in
  let c1 = P.compile_source ~cache ~table:(simple_table ()) simple_src in
  let c2 = P.compile_source ~cache ~table:(simple_table ()) simple_src in
  let hits, misses = Passes.cache_stats cache in
  Alcotest.(check int) "second compile fully cached" nfrontend hits;
  Alcotest.(check int) "front end ran once" nfrontend misses;
  Alcotest.(check value_testable) "same emulation" (P.emulate c1 input)
    (P.emulate c2 input)

let test_different_registrations_invalidate () =
  let cache = Passes.create_cache () in
  let other = simple_table () in
  Skel.Funtable.register other "extra" (fun v -> v);
  let _ = P.compile_source ~cache ~table:(simple_table ()) simple_src in
  let _ = P.compile_source ~cache ~table:other simple_src in
  let hits, misses = Passes.cache_stats cache in
  Alcotest.(check int) "no sharing across differing tables" 0 hits;
  Alcotest.(check int) "both compiles ran" (2 * nfrontend) misses

(* A source whose extraction registers a derived wrapper ([plus ys 100]
   consumes the dataflow value plus a constant): a cache hit on a fresh
   table must replay that registration or emulation would fail on the
   unknown wrapper name. *)
let wrapper_src =
  {|external sq : int -> int
external plus : int -> int -> int
let main = fun xs ->
  let ys = df 3 sq plus 0 xs in
  plus ys 100|}

let test_wrapper_replay_across_tables () =
  let cache = Passes.create_cache () in
  let input = V.List [ V.Int 1; V.Int 2; V.Int 3 ] in
  let c1 = P.compile_source ~cache ~table:(simple_table ()) wrapper_src in
  let c2 = P.compile_source ~cache ~table:(simple_table ()) wrapper_src in
  Alcotest.(check bool) "second compile fully cached" true
    (List.for_all (fun r -> r.Stage.cached) (P.reports c2));
  Alcotest.(check value_testable) "replayed wrapper evaluates" (V.Int 114)
    (P.emulate c2 input);
  Alcotest.(check value_testable) "same emulation" (P.emulate c1 input)
    (P.emulate c2 input)

(* Same replay requirement for the transform pass: [df 1] serialises into a
   derived sequential fold registered during normalization. *)
let test_transform_replay_across_tables () =
  let src =
    {|external sq : int -> int
external plus : int -> int -> int
let main = fun xs -> df 1 sq plus 0 xs|}
  in
  let cache = Passes.create_cache () in
  let input = V.List [ V.Int 2; V.Int 3 ] in
  let c1 = P.compile_source ~optimize:true ~cache ~table:(simple_table ()) src in
  let c2 = P.compile_source ~optimize:true ~cache ~table:(simple_table ()) src in
  Alcotest.(check bool) "second compile fully cached" true
    (List.for_all (fun r -> r.Stage.cached) (P.reports c2));
  Alcotest.(check value_testable) "replayed serialisation evaluates"
    (V.Int 13) (P.emulate c2 input);
  Alcotest.(check value_testable) "same emulation" (P.emulate c1 input)
    (P.emulate c2 input)

(* The persistent store: a fresh cache (as a new process would have) over
   the same store directory starts warm, and the artifacts still resolve
   against a freshly constructed table. *)
let test_store_warm_start () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "skipper-test-passes-store.%d" (Unix.getpid ()))
  in
  let store () =
    Support.Store.open_store ~dir ~stamp:Passes.artifact_format ()
  in
  let input = V.List [ V.Int 1; V.Int 2; V.Int 3 ] in
  let cold = Passes.create_cache ~store:(store ()) () in
  let c1 = P.compile_source ~cache:cold ~table:(simple_table ()) wrapper_src in
  let _, cold_misses = Passes.cache_stats cold in
  Alcotest.(check int) "cold compile ran the front end" nfrontend cold_misses;
  let warm = Passes.create_cache ~store:(store ()) () in
  let c2 = P.compile_source ~cache:warm ~table:(simple_table ()) wrapper_src in
  let warm_hits, warm_misses = Passes.cache_stats warm in
  Alcotest.(check int) "warm compile all hits" nfrontend warm_hits;
  Alcotest.(check int) "warm compile no misses" 0 warm_misses;
  Alcotest.(check int) "every hit came from the store" nfrontend
    (Passes.store_hits warm);
  Alcotest.(check value_testable) "same emulation" (P.emulate c1 input)
    (P.emulate c2 input)

let test_cached_compile_is_equivalent () =
  let cache = Passes.create_cache () in
  let table = simple_table () in
  let input = V.List (List.init 7 (fun i -> V.Int i)) in
  let c1 = P.compile_source ~cache ~table simple_src in
  let c2 = P.compile_source ~cache ~table simple_src in
  Alcotest.(check value_testable) "same emulation" (P.emulate c1 input)
    (P.emulate c2 input);
  Alcotest.(check bool) "second compile fully cached" true
    (List.for_all (fun r -> r.Stage.cached) (P.reports c2));
  match P.check_equivalence ~input c2 (Archi.ring 4) with
  | Ok v -> Alcotest.(check value_testable) "sum of squares" (V.Int 91) v
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Stage dumps                                                         *)

let test_dump_stages () =
  let c = P.compile_source ~table:(simple_table ()) simple_src in
  (match P.dump_stage c "typecheck" with
  | Ok text ->
      Alcotest.(check bool) "schemes listed" true
        (Astring.String.is_infix ~affix:"val main :" text)
  | Error m -> Alcotest.fail m);
  (match P.dump_stage c "expand" with
  | Ok text ->
      Alcotest.(check bool) "dot graph" true
        (Astring.String.is_prefix ~affix:"digraph" text)
  | Error m -> Alcotest.fail m);
  (match P.dump_stage ~arch:(Archi.ring 4) c "map" with
  | Ok text ->
      Alcotest.(check bool) "schedule summary" true
        (Astring.String.is_infix ~affix:"schedule" text)
  | Error m -> Alcotest.fail m);
  (match P.dump_stage c "map" with
  | Ok _ -> Alcotest.fail "map without an architecture should fail"
  | Error m ->
      Alcotest.(check bool) "asks for an architecture" true
        (Astring.String.is_infix ~affix:"architecture" m));
  match P.dump_stage c "nosuch" with
  | Ok _ -> Alcotest.fail "unknown stage should fail"
  | Error m ->
      Alcotest.(check bool) "lists stages" true
        (Astring.String.is_infix ~affix:"parse" m)

(* ------------------------------------------------------------------ *)
(* Optimized/unoptimized equivalence on random skeletal programs        *)

let property_table () =
  Skel.Funtable.of_list
    [
      ("inc", 1, (fun v -> V.Int (V.to_int v + 1)), fun _ -> 1000.0);
      ("dbl", 1, (fun v -> V.Int (2 * V.to_int v)), fun _ -> 2000.0);
      ( "enlist",
        1,
        (fun v ->
          let n = V.to_int v in
          V.List [ V.Int n; V.Int (n + 1); V.Int (n + 2) ]),
        fun _ -> 500.0 );
      ( "add",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 100.0 );
      ( "replicate",
        2,
        (fun v ->
          match v with
          | V.Tuple [ V.Int n; x ] -> V.List (List.init n (fun _ -> x))
          | _ -> raise (V.Type_error "replicate")),
        fun _ -> 100.0 );
      ( "sum_list",
        1,
        (fun v -> V.Int (List.fold_left (fun a x -> a + V.to_int x) 0 (V.to_list v))),
        fun _ -> 100.0 );
      ( "halve",
        1,
        (fun v ->
          let n = V.to_int v in
          if n > 3 then V.Tuple [ V.List [ V.Int (n / 2); V.Int ((n / 2) - 1) ]; V.Int 0 ]
          else V.Tuple [ V.List []; V.Int n ]),
        fun _ -> 500.0 );
    ]

(* Each generated unit maps an int to an int, so arbitrary chains compose. *)
let unit_gen =
  QCheck.Gen.(
    oneof
      [
        return (Ir.Seq "inc");
        return (Ir.Seq "dbl");
        map
          (fun n ->
            Ir.Pipe
              [
                Ir.Seq "enlist";
                Ir.Df { nworkers = 1 + n; comp = "inc"; acc = "add"; init = V.Int 0; state = Ir.Stateless };
              ])
          (int_bound 3);
        map
          (fun n ->
            Ir.Scm
              {
                nparts = 1 + n;
                split = "replicate";
                compute = "dbl";
                merge = "sum_list";
              })
          (int_bound 3);
        map
          (fun n ->
            Ir.Pipe
              [
                Ir.Seq "enlist";
                Ir.Tf { nworkers = 1 + n; work = "halve"; acc = "add"; init = V.Int 0 };
              ])
          (int_bound 2);
      ])

let program_gen =
  QCheck.Gen.(
    map
      (fun units -> Ir.program "prop" (Ir.Pipe units))
      (list_size (int_range 1 4) unit_gen))

let arbitrary_program =
  QCheck.make program_gen ~print:(fun p ->
      Format.asprintf "%a" Ir.pp_program p)

let prop_optimized_pipeline_equivalent =
  QCheck.Test.make
    ~name:"optimized and unoptimized pipelines are emulation-equivalent"
    ~count:60
    (QCheck.pair arbitrary_program (QCheck.int_bound 5))
    (fun (program, seed) ->
      let input = V.Int seed in
      let plain = P.compile_ir ~table:(property_table ()) program in
      let optimized =
        P.compile_ir ~optimize:true ~table:(property_table ()) program
      in
      V.equal (P.emulate plain input) (P.emulate optimized input))

let prop_optimized_executive_equivalent =
  QCheck.Test.make
    ~name:"optimized staged path matches the executive" ~count:15
    (QCheck.pair arbitrary_program (QCheck.int_bound 5))
    (fun (program, seed) ->
      let input = V.Int seed in
      let optimized =
        P.compile_ir ~optimize:true ~table:(property_table ()) program
      in
      match P.check_equivalence ~input optimized (Archi.ring 4) with
      | Ok _ -> true
      | Error m -> QCheck.Test.fail_report m)

let () =
  Alcotest.run "passes"
    [
      ( "reports",
        [
          Alcotest.test_case "front-end coverage" `Quick test_reports_cover_frontend;
          Alcotest.test_case "accumulate across calls" `Quick
            test_reports_accumulate_across_calls;
          Alcotest.test_case "timings render" `Quick test_timings_render;
        ] );
      ( "cache",
        [
          Alcotest.test_case "ring variants reuse front end" `Quick
            test_variant_compiles_reuse_frontend;
          Alcotest.test_case "edited source invalidates" `Quick
            test_edited_source_invalidates;
          Alcotest.test_case "option change invalidates downstream" `Quick
            test_option_change_invalidates_downstream;
          Alcotest.test_case "equal tables share" `Quick test_equal_tables_share;
          Alcotest.test_case "different registrations invalidate" `Quick
            test_different_registrations_invalidate;
          Alcotest.test_case "wrapper replay across tables" `Quick
            test_wrapper_replay_across_tables;
          Alcotest.test_case "transform replay across tables" `Quick
            test_transform_replay_across_tables;
          Alcotest.test_case "store warm start" `Quick test_store_warm_start;
          Alcotest.test_case "cached compile equivalent" `Quick
            test_cached_compile_is_equivalent;
        ] );
      ( "dumps",
        [ Alcotest.test_case "dump stages" `Quick test_dump_stages ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_optimized_pipeline_equivalent;
          QCheck_alcotest.to_alcotest prop_optimized_executive_equivalent;
        ] );
    ]
