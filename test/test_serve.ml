(* Smoke tests for the compile daemon: a real server domain on a temp
   Unix socket backed by a temp store, exercised through real client
   connections — plus pure request-parsing checks that need no daemon.
   The end-to-end test is the ISSUE's acceptance scenario: two clients,
   identical artifacts, the second compile fully warm from the shared
   store, a bad request that errors without killing its batch, and a
   clean counted shutdown. *)

module Serve = Skipper_lib.Serve
module Passes = Skipper_lib.Passes
module Json = Support.Json
module V = Skel.Value

let simple_table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 1000.0);
      ( "plus",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 100.0 );
    ]

let simple_src =
  {|external sq : int -> int
external plus : int -> int -> int
let main = fun xs -> df 3 sq plus 0 xs|}

let tmp_name prefix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s.%d" prefix (Unix.getpid ()))

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S: %s" name (Json.to_string j)

let str name j =
  match Json.to_str (field name j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let numf name j =
  match Json.to_float (field name j) with
  | Some f -> f
  | None -> Alcotest.failf "field %S is not a number" name

let test_parse_request () =
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "stats") ]) with
  | Ok Serve.Stats -> ()
  | _ -> Alcotest.fail "stats must parse");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "shutdown") ]) with
  | Ok Serve.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown must parse");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "compile") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compile without app/src must be rejected");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "frobnicate") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must be rejected");
  (match Serve.parse_request (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing op must be rejected");
  match
    Serve.parse_request
      (Serve.req_run ~frames:3 ~optimize:true ~procs:8 ~app:"a" "src")
  with
  | Ok (Serve.Run { app = "a"; src = "src"; frames = 3; optimize = true;
                    procs = 8; strategy = "canonical" }) -> ()
  | _ -> Alcotest.fail "builder output must parse back"

let test_serve_end_to_end () =
  let socket = tmp_name "skipper-test-serve.sock" in
  let store_dir = tmp_name "skipper-test-serve-store" in
  let store =
    Support.Store.open_store ~dir:store_dir ~stamp:Passes.artifact_format ()
  in
  let cfg =
    {
      Serve.table_of = (fun _ -> simple_table ());
      input_of = (fun _ -> Some (V.List [ V.Int 1; V.Int 2; V.Int 3 ]));
      arch_of = Archi.ring;
      store = Some store;
      jobs = 2;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
  let call reqs =
    match Serve.call ~socket reqs with
    | Ok rs -> rs
    | Error m -> Alcotest.failf "client call failed: %s" m
  in
  (* first client: compile and run the same program in one batch *)
  let compile1, run1 =
    match
      call
        [
          Serve.req_compile ~frames:2 ~app:"simple" simple_src;
          Serve.req_run ~frames:2 ~procs:4 ~app:"simple" simple_src;
        ]
    with
    | [ a; b ] -> (a, b)
    | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs)
  in
  Alcotest.(check string) "compile ok" "ok" (str "status" compile1);
  Alcotest.(check string) "run ok" "ok" (str "status" run1);
  Alcotest.(check string) "run evaluated the program" "14" (str "value" run1);
  let digest1 = str "graph_digest" compile1 in
  Alcotest.(check string) "compile and run agree on the artifact" digest1
    (str "graph_digest" run1);
  (* second client, fresh connection: identical artifact, and the compile
     is fully warm from the shared store (its request-local cache starts
     empty, so every hit is a store hit) *)
  let compile2 =
    match call [ Serve.req_compile ~frames:2 ~app:"simple" simple_src ] with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  in
  Alcotest.(check string) "identical artifact across clients" digest1
    (str "graph_digest" compile2);
  let cache2 = field "cache" compile2 in
  Alcotest.(check int) "warm compile misses nothing" 0
    (int_of_float (numf "misses" cache2));
  Alcotest.(check bool) "warm compile hits" true (numf "hits" cache2 > 0.0);
  Alcotest.(check (float 0.0)) "every hit came from the store"
    (numf "hits" cache2) (numf "store_hits" cache2);
  (* a bad request errors without killing its batch: the compile riding in
     the same batch still succeeds *)
  (match
     call
       [
         Json.Obj [ ("op", Json.Str "frobnicate") ];
         Serve.req_compile ~frames:2 ~app:"simple" simple_src;
       ]
   with
  | [ bad; good ] ->
      Alcotest.(check string) "unknown op rejected" "error" (str "status" bad);
      Alcotest.(check string) "batch survives the error" "ok"
        (str "status" good)
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  (* error accounting is tallied once a batch completes, so a later stats
     request observes it *)
  (match call [ Serve.req_stats ] with
  | [ stats ] ->
      Alcotest.(check string) "stats ok" "ok" (str "status" stats);
      Alcotest.(check bool) "stats counted the error" true
        (numf "errors" stats >= 1.0);
      Alcotest.(check bool) "store counters exposed" true
        (numf "hits" (field "store" stats) > 0.0)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* shutdown, then the server domain returns its request count *)
  (match call [ Serve.req_shutdown ] with
  | [ r ] -> Alcotest.(check string) "shutdown ok" "ok" (str "status" r)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  let served = Domain.join daemon in
  Alcotest.(check int) "every request counted" 7 served

(* Regression for the one-client-at-a-time accept loop: a connected but
   idle client must not block other clients. Client A connects first and
   sends nothing; client B then completes a full round-trip; finally A
   speaks on its original connection and is still served. Under the old
   sequential loop this test hangs at B's call. *)
let test_concurrent_clients () =
  let socket = tmp_name "skipper-test-serve-conc.sock" in
  let cfg =
    {
      Serve.table_of = (fun _ -> simple_table ());
      input_of = (fun _ -> None);
      arch_of = Archi.ring;
      store = None;
      jobs = 1;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec retry n =
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when n > 0 ->
          Unix.sleepf 0.05;
          retry (n - 1)
    in
    retry 100;
    fd
  in
  let send_frame fd j =
    let body = Bytes.of_string (Json.to_string j) in
    let hdr = Bytes.create 4 in
    Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length body));
    ignore (Unix.write fd hdr 0 4);
    ignore (Unix.write fd body 0 (Bytes.length body))
  in
  let read_exact fd n =
    let b = Bytes.create n in
    let rec go off =
      if off < n then begin
        let k = Unix.read fd b off (n - off) in
        if k = 0 then Alcotest.fail "server closed the connection early";
        go (off + k)
      end
    in
    go 0;
    b
  in
  let read_frame fd =
    let len = Int32.to_int (Bytes.get_int32_be (read_exact fd 4) 0) in
    match Json.parse (Bytes.to_string (read_exact fd len)) with
    | Ok j -> j
    | Error m -> Alcotest.failf "bad response frame: %s" m
  in
  (* A connects and goes idle *)
  let a = connect () in
  (* B connects later and must be served while A still holds its
     connection open *)
  (match Serve.call ~socket [ Serve.req_stats ] with
  | Ok [ r ] ->
      Alcotest.(check string) "B served while A idles" "ok" (str "status" r)
  | Ok rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  | Error m -> Alcotest.failf "client B failed: %s" m);
  (* A finally speaks — its original connection still works *)
  send_frame a (Json.Obj [ ("requests", Json.Arr [ Serve.req_stats ]) ]);
  (match Json.member "responses" (read_frame a) with
  | Some (Json.Arr [ r ]) ->
      Alcotest.(check string) "A served after B" "ok" (str "status" r)
  | _ -> Alcotest.fail "A's batch got no response list");
  Unix.close a;
  (match Serve.call ~socket [ Serve.req_shutdown ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "shutdown failed: %s" m);
  let served = Domain.join daemon in
  Alcotest.(check int) "all three batches counted" 3 served

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "parse_request" `Quick test_parse_request;
          Alcotest.test_case "end to end" `Quick test_serve_end_to_end;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
        ] );
    ]
