(* Smoke tests for the compile daemon: a real server domain on a temp
   Unix socket backed by a temp store, exercised through real client
   connections — plus pure request-parsing checks that need no daemon.
   The end-to-end test is the ISSUE's acceptance scenario: two clients,
   identical artifacts, the second compile fully warm from the shared
   store, a bad request that errors without killing its batch, and a
   clean counted shutdown. *)

module Serve = Skipper_lib.Serve
module Passes = Skipper_lib.Passes
module Json = Support.Json
module V = Skel.Value

let simple_table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 1000.0);
      ( "plus",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 100.0 );
    ]

let simple_src =
  {|external sq : int -> int
external plus : int -> int -> int
let main = fun xs -> df 3 sq plus 0 xs|}

let tmp_name prefix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s.%d" prefix (Unix.getpid ()))

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S: %s" name (Json.to_string j)

let str name j =
  match Json.to_str (field name j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let numf name j =
  match Json.to_float (field name j) with
  | Some f -> f
  | None -> Alcotest.failf "field %S is not a number" name

let test_parse_request () =
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "stats") ]) with
  | Ok Serve.Stats -> ()
  | _ -> Alcotest.fail "stats must parse");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "shutdown") ]) with
  | Ok Serve.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown must parse");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "compile") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compile without app/src must be rejected");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "frobnicate") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must be rejected");
  (match Serve.parse_request (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing op must be rejected");
  match
    Serve.parse_request
      (Serve.req_run ~frames:3 ~optimize:true ~procs:8 ~app:"a" "src")
  with
  | Ok (Serve.Run { app = "a"; src = "src"; frames = 3; optimize = true;
                    procs = 8; strategy = "canonical" }) -> ()
  | _ -> Alcotest.fail "builder output must parse back"

(* A capturing logger with a pinned clock: lines land in a shared list
   (the logger's own mutex serialises the sink), readable after the server
   domain is joined. *)
let capture_log () =
  let lines = ref [] in
  let log =
    Support.Log.create ~level:Support.Log.Debug
      ~clock:(fun () -> 0.0)
      (fun l -> lines := l :: !lines)
  in
  (log, fun () -> List.rev !lines)

let test_serve_end_to_end () =
  let socket = tmp_name "skipper-test-serve.sock" in
  let store_dir = tmp_name "skipper-test-serve-store" in
  let store =
    Support.Store.open_store ~dir:store_dir ~stamp:Passes.artifact_format ()
  in
  let log, log_lines = capture_log () in
  let cfg =
    {
      Serve.table_of = (fun _ -> simple_table ());
      input_of = (fun _ -> Some (V.List [ V.Int 1; V.Int 2; V.Int 3 ]));
      arch_of = Archi.ring;
      store = Some store;
      jobs = 2;
      log;
      metrics = None;
      timeline = None;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
  let call reqs =
    match Serve.call ~socket reqs with
    | Ok rs -> rs
    | Error m -> Alcotest.failf "client call failed: %s" m
  in
  (* first client: compile and run the same program in one batch *)
  let compile1, run1 =
    match
      call
        [
          Serve.req_compile ~frames:2 ~app:"simple" simple_src;
          Serve.req_run ~frames:2 ~procs:4 ~app:"simple" simple_src;
        ]
    with
    | [ a; b ] -> (a, b)
    | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs)
  in
  Alcotest.(check string) "compile ok" "ok" (str "status" compile1);
  Alcotest.(check string) "run ok" "ok" (str "status" run1);
  Alcotest.(check string) "run evaluated the program" "14" (str "value" run1);
  let digest1 = str "graph_digest" compile1 in
  Alcotest.(check string) "compile and run agree on the artifact" digest1
    (str "graph_digest" run1);
  (* second client, fresh connection: identical artifact, and the compile
     is fully warm from the shared store (its request-local cache starts
     empty, so every hit is a store hit) *)
  let compile2 =
    match call [ Serve.req_compile ~frames:2 ~app:"simple" simple_src ] with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  in
  Alcotest.(check string) "identical artifact across clients" digest1
    (str "graph_digest" compile2);
  let cache2 = field "cache" compile2 in
  Alcotest.(check int) "warm compile misses nothing" 0
    (int_of_float (numf "misses" cache2));
  Alcotest.(check bool) "warm compile hits" true (numf "hits" cache2 > 0.0);
  Alcotest.(check (float 0.0)) "every hit came from the store"
    (numf "hits" cache2) (numf "store_hits" cache2);
  (* a bad request errors without killing its batch: the compile riding in
     the same batch still succeeds *)
  (match
     call
       [
         Json.Obj [ ("op", Json.Str "frobnicate") ];
         Serve.req_compile ~frames:2 ~app:"simple" simple_src;
       ]
   with
  | [ bad; good ] ->
      Alcotest.(check string) "unknown op rejected" "error" (str "status" bad);
      Alcotest.(check string) "batch survives the error" "ok"
        (str "status" good)
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  (* error accounting is tallied once a batch completes, so a later stats
     request observes it *)
  (match call [ Serve.req_stats ] with
  | [ stats ] ->
      Alcotest.(check string) "stats ok" "ok" (str "status" stats);
      Alcotest.(check bool) "stats counted the error" true
        (numf "errors" stats >= 1.0);
      Alcotest.(check bool) "store counters exposed" true
        (numf "hits" (field "store" stats) > 0.0)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* the deepened stats response carries the whole registry snapshot *)
  (match call [ Serve.req_stats ] with
  | [ stats ] ->
      Alcotest.(check bool) "uptime exposed" true (numf "uptime_s" stats >= 0.0);
      Alcotest.(check (float 0.0)) "no aborted frames in a clean run" 0.0
        (numf "aborted_frames" stats);
      let st = field "store" stats in
      Alcotest.(check bool) "store bytes surfaced" true
        (numf "bytes_written" st > 0.0);
      Alcotest.(check (float 0.0)) "store misses decompose" (numf "misses" st)
        (numf "absent" st +. numf "corrupt" st +. numf "stamp_mismatch" st);
      let metrics = field "metrics" stats in
      (match Json.member "histograms" metrics with
      | Some (Json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "stats must embed registry histograms")
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* shutdown, then the server domain returns its request count *)
  (match call [ Serve.req_shutdown ] with
  | [ r ] -> Alcotest.(check string) "shutdown ok" "ok" (str "status" r)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  let served = Domain.join daemon in
  Alcotest.(check int) "every request counted" 8 served;
  (* the captured log is parseable JSONL with monotonic seqs and
     per-request ids on every "request" record *)
  let lines = log_lines () in
  Alcotest.(check bool) "log captured lines" true (List.length lines > 0);
  List.iteri
    (fun i line ->
      match Json.parse line with
      | Error m -> Alcotest.failf "log line %d is not JSON (%s): %s" i m line
      | Ok j ->
          Alcotest.(check (float 0.0))
            "log seq matches line position" (float_of_int i) (numf "seq" j);
          if str "event" j = "request" then
            Alcotest.(check bool) "request record has an id" true
              (String.length (str "req" j) > 0))
    lines;
  let request_lines =
    List.filter
      (fun l ->
        match Json.parse l with
        | Ok j -> (match Json.member "event" j with
            | Some (Json.Str "request") -> true
            | _ -> false)
        | Error _ -> false)
      lines
  in
  Alcotest.(check int) "one log record per request" served
    (List.length request_lines)

(* Regression for the one-client-at-a-time accept loop: a connected but
   idle client must not block other clients. Client A connects first and
   sends nothing; client B then completes a full round-trip; finally A
   speaks on its original connection and is still served. Under the old
   sequential loop this test hangs at B's call. *)
let test_concurrent_clients () =
  let socket = tmp_name "skipper-test-serve-conc.sock" in
  let cfg =
    {
      Serve.table_of = (fun _ -> simple_table ());
      input_of = (fun _ -> None);
      arch_of = Archi.ring;
      store = None;
      jobs = 1;
      log = Support.Log.null;
      metrics = None;
      timeline = None;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec retry n =
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when n > 0 ->
          Unix.sleepf 0.05;
          retry (n - 1)
    in
    retry 100;
    fd
  in
  let send_frame fd j =
    let body = Bytes.of_string (Json.to_string j) in
    let hdr = Bytes.create 4 in
    Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length body));
    ignore (Unix.write fd hdr 0 4);
    ignore (Unix.write fd body 0 (Bytes.length body))
  in
  let read_exact fd n =
    let b = Bytes.create n in
    let rec go off =
      if off < n then begin
        let k = Unix.read fd b off (n - off) in
        if k = 0 then Alcotest.fail "server closed the connection early";
        go (off + k)
      end
    in
    go 0;
    b
  in
  let read_frame fd =
    let len = Int32.to_int (Bytes.get_int32_be (read_exact fd 4) 0) in
    match Json.parse (Bytes.to_string (read_exact fd len)) with
    | Ok j -> j
    | Error m -> Alcotest.failf "bad response frame: %s" m
  in
  (* A connects and goes idle *)
  let a = connect () in
  (* B connects later and must be served while A still holds its
     connection open *)
  (match Serve.call ~socket [ Serve.req_stats ] with
  | Ok [ r ] ->
      Alcotest.(check string) "B served while A idles" "ok" (str "status" r)
  | Ok rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  | Error m -> Alcotest.failf "client B failed: %s" m);
  (* A finally speaks — its original connection still works *)
  send_frame a (Json.Obj [ ("requests", Json.Arr [ Serve.req_stats ]) ]);
  (match Json.member "responses" (read_frame a) with
  | Some (Json.Arr [ r ]) ->
      Alcotest.(check string) "A served after B" "ok" (str "status" r)
  | _ -> Alcotest.fail "A's batch got no response list");
  Unix.close a;
  (match Serve.call ~socket [ Serve.req_shutdown ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "shutdown failed: %s" m);
  let served = Domain.join daemon in
  Alcotest.(check int) "all three batches counted" 3 served

(* Regression: a client vanishing mid-frame — after a partial length
   prefix, or after a length prefix promising more payload than it sends —
   must be logged and counted as an aborted frame, and must never take the
   serve loop down. Under the old exception-only read path these close as
   anonymous End_of_file drops; worse, a blocking read could wedge. *)
let test_aborted_frames () =
  let socket = tmp_name "skipper-test-serve-abort.sock" in
  let log, log_lines = capture_log () in
  let cfg =
    {
      Serve.table_of = (fun _ -> simple_table ());
      input_of = (fun _ -> None);
      arch_of = Archi.ring;
      store = None;
      jobs = 1;
      log;
      metrics = None;
      timeline = None;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
  let call reqs =
    match Serve.call ~socket reqs with
    | Ok rs -> rs
    | Error m -> Alcotest.failf "client call failed: %s" m
  in
  (* wait for the daemon before writing raw garbage at it *)
  (match call [ Serve.req_stats ] with
  | [ r ] -> Alcotest.(check string) "daemon up" "ok" (str "status" r)
  | _ -> Alcotest.fail "stats before the aborts failed");
  let raw_connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  (* abort 1: two bytes of the four-byte length prefix, then gone *)
  let a = raw_connect () in
  ignore (Unix.write a (Bytes.make 2 '\001') 0 2);
  Unix.close a;
  (* abort 2: a header promising 64 bytes, then only 10 of them *)
  let b = raw_connect () in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 64l;
  ignore (Unix.write b hdr 0 4);
  ignore (Unix.write b (Bytes.make 10 'x') 0 10);
  Unix.close b;
  (* the daemon keeps serving; poll stats until both aborts are counted *)
  let rec poll n =
    match call [ Serve.req_stats ] with
    | [ stats ] when numf "aborted_frames" stats >= 2.0 -> stats
    | [ _ ] when n > 0 ->
        Unix.sleepf 0.05;
        poll (n - 1)
    | [ stats ] ->
        Alcotest.failf "aborted frames never counted: %s" (Json.to_string stats)
    | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  in
  let stats = poll 100 in
  Alcotest.(check (float 0.0)) "both aborts counted" 2.0
    (numf "aborted_frames" stats);
  (* still compiling after the aborts *)
  (match call [ Serve.req_compile ~frames:2 ~app:"simple" simple_src ] with
  | [ r ] -> Alcotest.(check string) "daemon survives aborts" "ok" (str "status" r)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  ignore (call [ Serve.req_shutdown ]);
  ignore (Domain.join daemon);
  let aborted_logged =
    List.filter
      (fun l ->
        match Json.parse l with
        | Ok j -> (match Json.member "event" j with
            | Some (Json.Str "aborted_frame") -> true
            | _ -> false)
        | Error _ -> false)
      (log_lines ())
  in
  Alcotest.(check int) "both aborts logged" 2 (List.length aborted_logged)

(* The metrics op: a Prometheus exposition whose per-op request histogram
   counts exactly the requests served, plus the skipperc-top rendering of
   the stats snapshot. *)
let test_metrics_op () =
  let socket = tmp_name "skipper-test-serve-metrics.sock" in
  let cfg =
    {
      Serve.table_of = (fun _ -> simple_table ());
      input_of = (fun _ -> None);
      arch_of = Archi.ring;
      store = None;
      jobs = 2;
      log = Support.Log.null;
      metrics = None;
      timeline = None;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
  let call reqs =
    match Serve.call ~socket reqs with
    | Ok rs -> rs
    | Error m -> Alcotest.failf "client call failed: %s" m
  in
  let compiles = 3 in
  let rs =
    call
      (List.init compiles (fun _ ->
           Serve.req_compile ~frames:2 ~app:"simple" simple_src))
  in
  List.iter
    (fun r -> Alcotest.(check string) "compile ok" "ok" (str "status" r))
    rs;
  let exposition =
    match call [ Serve.req_metrics ] with
    | [ r ] ->
        Alcotest.(check string) "metrics ok" "ok" (str "status" r);
        str "exposition" r
    | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "histogram count equals compile requests" true
    (contains exposition
       (Printf.sprintf "skipper_serve_request_seconds_count{op=\"compile\"} %d"
          compiles));
  Alcotest.(check bool) "request counter exposed" true
    (contains exposition "skipper_serve_requests_total 4\n");
  Alcotest.(check bool) "type lines present" true
    (contains exposition "# TYPE skipper_serve_request_seconds histogram");
  (* one-screen top rendering from the stats snapshot *)
  (match call [ Serve.req_stats ] with
  | [ stats ] ->
      let top = Serve.render_top stats in
      Alcotest.(check bool) "top shows requests" true
        (contains top "requests 5");
      Alcotest.(check bool) "top shows the compile op row" true
        (contains top "compile");
      Alcotest.(check bool) "top shows the cache line" true
        (contains top "hit ratio")
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (match Serve.call ~socket [ Serve.req_shutdown ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "shutdown failed: %s" m);
  ignore (Domain.join daemon)

(* Determinism across pool widths: the same request sequence against a
   --jobs 1 and a --jobs 4 daemon yields byte-identical responses once the
   wall-clock fields are stripped, and (under a pinned log clock)
   structurally identical logs — dispatcher-side accounting in submit
   order is what makes this hold. *)
let test_jobs_determinism () =
  let strip_volatile j =
    let rec go = function
      | Json.Obj kvs ->
          Json.Obj
            (List.filter_map
               (fun (k, v) ->
                 if k = "wall_ms" || k = "uptime_s" then None
                 else Some (k, go v))
               kvs)
      | Json.Arr l -> Json.Arr (List.map go l)
      | j -> j
    in
    go j
  in
  let run_with jobs =
    let socket = tmp_name (Printf.sprintf "skipper-test-serve-det%d.sock" jobs) in
    let log, log_lines = capture_log () in
    let cfg =
      {
        Serve.table_of = (fun _ -> simple_table ());
        input_of = (fun _ -> Some (V.List [ V.Int 1; V.Int 2; V.Int 3 ]));
        arch_of = Archi.ring;
        store = None;
        jobs;
        log;
        metrics = None;
        timeline = None;
      }
    in
    let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
    let rs =
      match
        Serve.call ~socket
          [
            Serve.req_compile ~frames:2 ~app:"simple" simple_src;
            Serve.req_run ~frames:2 ~procs:4 ~app:"simple" simple_src;
            Serve.req_compile ~frames:3 ~app:"simple" simple_src;
            Json.Obj [ ("op", Json.Str "frobnicate") ];
          ]
      with
      | Ok rs -> rs
      | Error m -> Alcotest.failf "jobs=%d call failed: %s" jobs m
    in
    (match Serve.call ~socket [ Serve.req_shutdown ] with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "jobs=%d shutdown failed: %s" jobs m);
    ignore (Domain.join daemon);
    let responses =
      List.map (fun r -> Json.to_string (strip_volatile r)) rs
    in
    let log_skeleton =
      (* event/req/op/status per line; byte counts and wall times vary *)
      List.filter_map
        (fun l ->
          match Json.parse l with
          | Error _ -> None
          | Ok j ->
              let f k =
                match Json.member k j with
                | Some (Json.Str s) -> s
                | _ -> ""
              in
              Some (Printf.sprintf "%s/%s/%s/%s" (f "event") (f "req")
                      (f "op") (f "status")))
        (log_lines ())
    in
    (responses, log_skeleton)
  in
  let r1, l1 = run_with 1 in
  let r4, l4 = run_with 4 in
  Alcotest.(check (list string))
    "responses byte-identical across jobs (wall-clock stripped)" r1 r4;
  Alcotest.(check (list string)) "log skeleton identical across jobs" l1 l4

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "parse_request" `Quick test_parse_request;
          Alcotest.test_case "end to end" `Quick test_serve_end_to_end;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "aborted frames" `Quick test_aborted_frames;
          Alcotest.test_case "metrics op and top" `Quick test_metrics_op;
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
        ] );
    ]
