(* Smoke tests for the compile daemon: a real server domain on a temp
   Unix socket backed by a temp store, exercised through real client
   connections — plus pure request-parsing checks that need no daemon.
   The end-to-end test is the ISSUE's acceptance scenario: two clients,
   identical artifacts, the second compile fully warm from the shared
   store, a bad request that errors without killing its batch, and a
   clean counted shutdown. *)

module Serve = Skipper_lib.Serve
module Passes = Skipper_lib.Passes
module Json = Support.Json
module V = Skel.Value

let simple_table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 1000.0);
      ( "plus",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 100.0 );
    ]

let simple_src =
  {|external sq : int -> int
external plus : int -> int -> int
let main = fun xs -> df 3 sq plus 0 xs|}

let tmp_name prefix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s.%d" prefix (Unix.getpid ()))

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S: %s" name (Json.to_string j)

let str name j =
  match Json.to_str (field name j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let numf name j =
  match Json.to_float (field name j) with
  | Some f -> f
  | None -> Alcotest.failf "field %S is not a number" name

let test_parse_request () =
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "stats") ]) with
  | Ok Serve.Stats -> ()
  | _ -> Alcotest.fail "stats must parse");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "shutdown") ]) with
  | Ok Serve.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown must parse");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "compile") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compile without app/src must be rejected");
  (match Serve.parse_request (Json.Obj [ ("op", Json.Str "frobnicate") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must be rejected");
  (match Serve.parse_request (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing op must be rejected");
  match
    Serve.parse_request
      (Serve.req_run ~frames:3 ~optimize:true ~procs:8 ~app:"a" "src")
  with
  | Ok (Serve.Run { app = "a"; src = "src"; frames = 3; optimize = true;
                    procs = 8; strategy = "canonical" }) -> ()
  | _ -> Alcotest.fail "builder output must parse back"

let test_serve_end_to_end () =
  let socket = tmp_name "skipper-test-serve.sock" in
  let store_dir = tmp_name "skipper-test-serve-store" in
  let store =
    Support.Store.open_store ~dir:store_dir ~stamp:Passes.artifact_format ()
  in
  let cfg =
    {
      Serve.table_of = (fun _ -> simple_table ());
      input_of = (fun _ -> Some (V.List [ V.Int 1; V.Int 2; V.Int 3 ]));
      arch_of = Archi.ring;
      store = Some store;
      jobs = 2;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.serve cfg ~socket ()) in
  let call reqs =
    match Serve.call ~socket reqs with
    | Ok rs -> rs
    | Error m -> Alcotest.failf "client call failed: %s" m
  in
  (* first client: compile and run the same program in one batch *)
  let compile1, run1 =
    match
      call
        [
          Serve.req_compile ~frames:2 ~app:"simple" simple_src;
          Serve.req_run ~frames:2 ~procs:4 ~app:"simple" simple_src;
        ]
    with
    | [ a; b ] -> (a, b)
    | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs)
  in
  Alcotest.(check string) "compile ok" "ok" (str "status" compile1);
  Alcotest.(check string) "run ok" "ok" (str "status" run1);
  Alcotest.(check string) "run evaluated the program" "14" (str "value" run1);
  let digest1 = str "graph_digest" compile1 in
  Alcotest.(check string) "compile and run agree on the artifact" digest1
    (str "graph_digest" run1);
  (* second client, fresh connection: identical artifact, and the compile
     is fully warm from the shared store (its request-local cache starts
     empty, so every hit is a store hit) *)
  let compile2 =
    match call [ Serve.req_compile ~frames:2 ~app:"simple" simple_src ] with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  in
  Alcotest.(check string) "identical artifact across clients" digest1
    (str "graph_digest" compile2);
  let cache2 = field "cache" compile2 in
  Alcotest.(check int) "warm compile misses nothing" 0
    (int_of_float (numf "misses" cache2));
  Alcotest.(check bool) "warm compile hits" true (numf "hits" cache2 > 0.0);
  Alcotest.(check (float 0.0)) "every hit came from the store"
    (numf "hits" cache2) (numf "store_hits" cache2);
  (* a bad request errors without killing its batch: the compile riding in
     the same batch still succeeds *)
  (match
     call
       [
         Json.Obj [ ("op", Json.Str "frobnicate") ];
         Serve.req_compile ~frames:2 ~app:"simple" simple_src;
       ]
   with
  | [ bad; good ] ->
      Alcotest.(check string) "unknown op rejected" "error" (str "status" bad);
      Alcotest.(check string) "batch survives the error" "ok"
        (str "status" good)
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  (* error accounting is tallied once a batch completes, so a later stats
     request observes it *)
  (match call [ Serve.req_stats ] with
  | [ stats ] ->
      Alcotest.(check string) "stats ok" "ok" (str "status" stats);
      Alcotest.(check bool) "stats counted the error" true
        (numf "errors" stats >= 1.0);
      Alcotest.(check bool) "store counters exposed" true
        (numf "hits" (field "store" stats) > 0.0)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* shutdown, then the server domain returns its request count *)
  (match call [ Serve.req_shutdown ] with
  | [ r ] -> Alcotest.(check string) "shutdown ok" "ok" (str "status" r)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  let served = Domain.join daemon in
  Alcotest.(check int) "every request counted" 7 served

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "parse_request" `Quick test_parse_request;
          Alcotest.test_case "end to end" `Quick test_serve_end_to_end;
        ] );
    ]
