(* Tests for the persistent content-addressed store: round-trips
   (including a qcheck property over arbitrary keys and payloads),
   persistence across reopen, stamp versioning, corruption tolerance
   (truncations and bit flips read as misses, never as exceptions or wrong
   payloads), FIFO eviction under a size limit, and concurrent writers
   racing one key across the domain pool. *)

module Store = Support.Store

let tmp =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "skipper-test-store.%d.%d" (Unix.getpid ()) !n)

(* White-box: an entry lives at objects/<first-2-hex>/<md5-of-key>, which
   the corruption and eviction tests need in order to reach the file
   behind the API's back. *)
let entry_path dir key =
  let h = Digest.to_hex (Digest.string key) in
  Filename.concat dir
    (Filename.concat "objects" (Filename.concat (String.sub h 0 2) h))

let test_roundtrip () =
  let store = Store.open_store ~dir:(tmp ()) () in
  Alcotest.(check (option string)) "absent key" None (Store.get store ~key:"nope");
  let payload = "payload\x00with\nraw\xffbytes" in
  Store.put store ~key:"k" payload;
  Alcotest.(check (option string)) "round-trip" (Some payload)
    (Store.get store ~key:"k");
  Alcotest.(check bool) "mem" true (Store.mem store ~key:"k");
  Store.put store ~key:"k" "second";
  Alcotest.(check (option string)) "overwrite wins" (Some "second")
    (Store.get store ~key:"k");
  let c = Store.counters store in
  Alcotest.(check int) "hits" 2 c.Store.hits;
  Alcotest.(check int) "misses" 1 c.Store.misses;
  Alcotest.(check int) "the one miss was an absent entry" 1 c.Store.absent;
  Alcotest.(check int) "writes" 2 c.Store.writes;
  Alcotest.(check int) "payload bytes written"
    (String.length payload + String.length "second")
    c.Store.bytes_written;
  Alcotest.(check int) "payload bytes read by the hits"
    (String.length payload + String.length "second")
    c.Store.bytes_read;
  Store.reset_counters store;
  Alcotest.(check int) "counters reset" 0 (Store.counters store).Store.hits

let test_reopen () =
  let dir = tmp () in
  let s1 = Store.open_store ~dir ~stamp:"v1" () in
  Store.put s1 ~key:"persist" "across processes";
  (* a second open of the same directory models a fresh process *)
  let s2 = Store.open_store ~dir ~stamp:"v1" () in
  Alcotest.(check (option string)) "survives reopen" (Some "across processes")
    (Store.get s2 ~key:"persist")

let test_stamp_mismatch () =
  let dir = tmp () in
  let s1 = Store.open_store ~dir ~stamp:"v1" () in
  Store.put s1 ~key:"k" "old format";
  let s2 = Store.open_store ~dir ~stamp:"v2" () in
  Alcotest.(check (option string)) "stamp bump orphans old entries" None
    (Store.get s2 ~key:"k");
  let c = Store.counters s2 in
  Alcotest.(check int) "counted as a stamp mismatch" 1 c.Store.stamp_mismatch;
  Alcotest.(check int) "not as corruption" 0 c.Store.corrupt;
  Alcotest.(check int) "and as a miss" 1 c.Store.misses

let corrupt_with mutate () =
  let dir = tmp () in
  let store = Store.open_store ~dir () in
  Store.put store ~key:"k" (String.make 4096 'x');
  mutate (entry_path dir "k");
  Alcotest.(check (option string)) "damaged entry reads as a miss" None
    (Store.get store ~key:"k");
  let c = Store.counters store in
  Alcotest.(check int) "corrupt counted" 1 c.Store.corrupt;
  (* the store still works after the bad read *)
  Store.put store ~key:"k" "fresh";
  Alcotest.(check (option string)) "rewrite heals" (Some "fresh")
    (Store.get store ~key:"k")

let truncate path = Unix.truncate path 40

let flip_last_byte path =
  let content = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string content in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

let test_eviction () =
  let dir = tmp () in
  (* each 1000-byte payload makes a ~1060-byte entry file: three do not fit
     under the limit, two do *)
  let store = Store.open_store ~dir ~limit_bytes:2600 () in
  let payload c = String.make 1000 c in
  let backdate key seconds_ago =
    let t = Unix.gettimeofday () -. seconds_ago in
    Unix.utimes (entry_path dir key) t t
  in
  Store.put store ~key:"a" (payload 'a');
  backdate "a" 100.0;
  Store.put store ~key:"b" (payload 'b');
  backdate "b" 50.0;
  Store.put store ~key:"c" (payload 'c');
  let c = Store.counters store in
  Alcotest.(check int) "one eviction" 1 c.Store.evictions;
  Alcotest.(check (option string)) "oldest entry pruned" None
    (Store.get store ~key:"a");
  Alcotest.(check (option string)) "newer entries survive" (Some (payload 'b'))
    (Store.get store ~key:"b");
  Alcotest.(check (option string)) "newest survives" (Some (payload 'c'))
    (Store.get store ~key:"c")

let test_concurrent_writers () =
  let store = Store.open_store ~dir:(tmp ()) () in
  let nwriters = 8 in
  let payload i = String.make 20_000 (Char.chr (Char.code 'a' + i)) in
  (* every domain writes the shared key then immediately reads it back:
     the read must always see some writer's complete payload, never a torn
     or partial entry *)
  let reads =
    Support.Domain_pool.run ~jobs:4
      (List.init nwriters (fun i () ->
           Store.put store ~key:"shared" (payload i);
           Store.get store ~key:"shared"))
  in
  List.iter
    (function
      | None -> Alcotest.fail "reader raced into a missing entry"
      | Some p ->
          Alcotest.(check bool) "reader saw one complete payload" true
            (List.exists
               (fun i -> String.equal p (payload i))
               (List.init nwriters Fun.id)))
    reads;
  let c = Store.counters store in
  Alcotest.(check int) "no corruption under racing writers" 0 c.Store.corrupt;
  Alcotest.(check int) "every write counted" nwriters c.Store.writes

let prop_roundtrip =
  let store = lazy (Store.open_store ~dir:(tmp ()) ()) in
  QCheck.Test.make ~name:"arbitrary keys and payloads round-trip" ~count:100
    QCheck.(pair string string)
    (fun (key, payload) ->
      let store = Lazy.force store in
      Store.put store ~key payload;
      Store.get store ~key = Some payload)

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "reopen" `Quick test_reopen;
          Alcotest.test_case "stamp mismatch" `Quick test_stamp_mismatch;
          Alcotest.test_case "truncated entry" `Quick (corrupt_with truncate);
          Alcotest.test_case "flipped byte" `Quick (corrupt_with flip_last_byte);
          Alcotest.test_case "eviction" `Quick test_eviction;
          Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
