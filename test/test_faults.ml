(* Tests for the fault-injection plan and the fault-tolerant executive:
   processor halt/restore semantics, per-link message faults, degraded-run
   accounting, the [run ~until] window clamp, and the df farm's
   timeout/reissue recovery against the sequential emulation. *)

module Sim = Machine.Sim
module V = Skel.Value
module Ir = Skel.Ir

let value_testable = Alcotest.testable V.pp V.equal

(* Same easy numbers as test_machine: 1 us cycles, 1 MB/s links, 1 ms
   startup. *)
let toy_arch n = Archi.ring ~cycle_time:1e-6 ~bandwidth:1e6 ~startup:1e-3 n

(* ------------------------------------------------------------------ *)
(* Halt / restore semantics                                            *)

let test_halt_drops_messages () =
  (* A message delivered to a halted processor is lost and counted. *)
  let sim = Sim.create (toy_arch 2) in
  let got = ref [] in
  let rx =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        let v = Sim.recv "in" in
        got := V.to_int v :: !got)
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () -> Sim.send rx "in" (V.Int 7))
  in
  Sim.halt_processor sim ~at:0.0 1;
  let _ = Sim.run sim in
  Alcotest.(check (list int)) "nothing received" [] !got;
  Alcotest.(check int) "dropped counted in stats" 1
    (Sim.stats sim).Sim.dropped_msgs;
  Alcotest.(check int) "dropped counted in tally" 1
    (Sim.fault_tally sim).Sim.dropped;
  let rx_acct = List.find (fun a -> a.Sim.aname = "rx") (Sim.accounts sim) in
  Alcotest.(check bool) "rx marked halted" true rx_acct.Sim.halted;
  Alcotest.(check bool) "rx did not finish" false rx_acct.Sim.finished

let test_restore_resumes_delivery () =
  (* Messages lost while halted stay lost; messages arriving after the
     restore are delivered normally. *)
  let sim = Sim.create (toy_arch 2) in
  let got = ref [] in
  let rx =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        got := V.to_int (Sim.recv "in") :: !got)
  in
  Sim.halt_processor sim ~at:1e-3 1;
  Sim.restore_processor sim ~at:3e-3 1;
  Sim.inject sim ~at:2e-3 rx "in" (V.Int 1);
  (* dropped: halted *)
  Sim.inject sim ~at:4e-3 rx "in" (V.Int 2);
  let _ = Sim.run sim in
  Alcotest.(check (list int)) "only the post-restore message" [ 2 ] !got;
  Alcotest.(check int) "one drop" 1 (Sim.stats sim).Sim.dropped_msgs

let test_halt_trace_events () =
  (* Halt and the halt-induced drop appear as trace events on the halted
     processor's lane, in both the Chrome and SVG exports. *)
  let sim = Sim.create ~trace:true (toy_arch 2) in
  let rx =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () -> ignore (Sim.recv "in"))
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () -> Sim.send rx "in" (V.Int 1))
  in
  Sim.halt_processor sim ~at:0.0 1;
  let _ = Sim.run sim in
  let halted_on p =
    List.exists
      (fun (e : Sim.trace_event) -> e.Sim.what = Sim.Halted && e.Sim.proc = p)
      (Sim.trace sim)
  in
  Alcotest.(check bool) "Halted recorded on P1" true (halted_on 1);
  Alcotest.(check bool) "no Halted on P0" false (halted_on 0);
  Alcotest.(check bool) "drop recorded as a Fault event" true
    (List.exists
       (fun (e : Sim.trace_event) ->
         match e.Sim.what with
         | Sim.Fault { action; _ } ->
             e.Sim.proc = 1
             && Astring.String.is_infix ~affix:"halted" action
         | _ -> false)
       (Sim.trace sim));
  let tl = Sim.timeline sim in
  let json = Skipper_trace.Chrome.to_json tl in
  Alcotest.(check bool) "Chrome export names the halt" true
    (Astring.String.is_infix ~affix:"halted" json);
  Alcotest.(check bool) "Chrome export carries the fault category" true
    (Astring.String.is_infix ~affix:"\"fault\"" json);
  match Skipper_trace.Svg.gantt tl with
  | Error msg -> Alcotest.fail msg
  | Ok svg ->
      Alcotest.(check bool) "SVG marks faults in the fault colour" true
        (Astring.String.is_infix ~affix:"#e15759" svg)

let test_halted_accounting_clamped () =
  (* A process blocked on a halted processor accrues blocked time only up
     to the halt instant, and live time excludes the dead tail. *)
  let sim = Sim.create (toy_arch 2) in
  let _ =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () -> ignore (Sim.recv "never"))
  in
  let _ =
    Sim.spawn sim ~name:"worker" ~on:0 (fun () -> Sim.compute 10_000.0)
  in
  Sim.halt_processor sim ~at:2e-3 1;
  let finish = Sim.run sim in
  Alcotest.(check (float 1e-9)) "run ends with the worker" 1e-2 finish;
  let rx_acct = List.find (fun a -> a.Sim.aname = "rx") (Sim.accounts sim) in
  Alcotest.(check bool) "halted flag" true rx_acct.Sim.halted;
  Alcotest.(check (float 1e-9)) "blocked clamps at the halt" 2e-3
    rx_acct.Sim.blocked_s;
  let live = Sim.live_times sim in
  Alcotest.(check (float 1e-9)) "P0 lives the whole run" 1e-2 live.(0);
  Alcotest.(check (float 1e-9)) "P1 lives until the halt" 2e-3 live.(1);
  (* utilisation is measured against live time: P0 busy 10ms of 10ms, P1
     busy 0 of 2ms -> 10/12, not 10/20. *)
  Alcotest.(check (float 1e-6)) "utilisation over live time" (1e-2 /. 1.2e-2)
    (Sim.utilisation sim)

let test_run_until_clamps_and_keeps_events () =
  (* An event past [until] must not be executed (and must not be silently
     consumed): the clock clamps to exactly [until] and only in-window work
     is charged. *)
  let sim = Sim.create (toy_arch 1) in
  let _ =
    Sim.spawn sim ~name:"p" ~on:0 (fun () ->
        Sim.compute 1000.0;
        (* completes at 1 ms *)
        Sim.compute 10_000.0 (* would complete at 11 ms *))
  in
  let finish = Sim.run ~until:5e-3 sim in
  Alcotest.(check (float 1e-12)) "clock clamps to the window" 5e-3 finish;
  Alcotest.(check (float 1e-12)) "finish_time matches" 5e-3
    (Sim.stats sim).Sim.finish_time;
  (* the second compute spans the horizon: its in-window part (1..5 ms)
     counts, the rest is refunded, so windowed utilisation stays <= 1 *)
  Alcotest.(check (float 1e-9)) "only in-window work charged" 5e-3
    (Sim.stats sim).Sim.busy.(0);
  Alcotest.(check bool) "utilisation at most 1" true
    (Sim.utilisation sim <= 1.0 +. 1e-9)

let test_run_until_before_first_event () =
  let sim = Sim.create (toy_arch 1) in
  let _ = Sim.spawn sim ~name:"p" ~on:0 (fun () -> Sim.compute 1000.0) in
  let finish = Sim.run ~until:1e-4 sim in
  Alcotest.(check (float 1e-12)) "clamped before any event" 1e-4 finish;
  Alcotest.(check (float 1e-12)) "only the window's slice charged" 1e-4
    (Sim.stats sim).Sim.busy.(0)

(* ------------------------------------------------------------------ *)
(* Link faults                                                         *)

(* tx on P0 streams [n] ints to rx on P1; returns what rx saw, in order. *)
let stream_run ?(n = 5) faults =
  let sim = Sim.create (toy_arch 2) in
  let got = ref [] in
  let rx =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        let rec loop () =
          match Sim.recv_deadline [ "in" ] ~deadline:(Sim.now () +. 0.1) with
          | Some (_, v) ->
              got := V.to_int v :: !got;
              loop ()
          | None -> ()
        in
        loop ())
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        for i = 1 to n do
          Sim.send rx "in" (V.Int i)
        done)
  in
  List.iter (Sim.add_fault sim) faults;
  let _ = Sim.run sim in
  (sim, List.rev !got)

let test_drop_nth () =
  let sim, got =
    stream_run [ Sim.link_fault ~schedule:(Sim.Nth 2) Sim.Drop ]
  in
  Alcotest.(check (list int)) "2nd delivery lost" [ 1; 3; 4; 5 ] got;
  Alcotest.(check int) "tally" 1 (Sim.fault_tally sim).Sim.dropped

let test_drop_every () =
  let sim, got =
    stream_run ~n:6 [ Sim.link_fault ~schedule:(Sim.Every 3) Sim.Drop ]
  in
  Alcotest.(check (list int)) "every 3rd lost" [ 1; 2; 4; 5 ] got;
  Alcotest.(check int) "tally" 2 (Sim.fault_tally sim).Sim.dropped

let test_drop_specific_link_only () =
  (* A fault armed on the reverse link never fires on this traffic. *)
  let sim, got = stream_run [ Sim.link_fault ~link:(1, 0) Sim.Drop ] in
  Alcotest.(check (list int)) "unaffected" [ 1; 2; 3; 4; 5 ] got;
  Alcotest.(check int) "no drops" 0 (Sim.fault_tally sim).Sim.dropped;
  let sim2, got2 = stream_run [ Sim.link_fault ~link:(0, 1) Sim.Drop ] in
  Alcotest.(check (list int)) "all lost on the armed link" [] got2;
  Alcotest.(check int) "all counted" 5 (Sim.fault_tally sim2).Sim.dropped

let test_duplicate_delivers_twice () =
  let sim, got =
    stream_run ~n:2 [ Sim.link_fault ~schedule:(Sim.Nth 1) Sim.Duplicate ]
  in
  Alcotest.(check (list int)) "first message doubled" [ 1; 1; 2 ] got;
  Alcotest.(check int) "tally" 1 (Sim.fault_tally sim).Sim.duplicated

let test_delay_postpones () =
  let dt = 0.02 in
  let sim = Sim.create (toy_arch 2) in
  let arrived = ref 0.0 in
  let rx =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        ignore (Sim.recv "in");
        arrived := Sim.now ())
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () -> Sim.send rx "in" (V.Int 1))
  in
  Sim.add_fault sim (Sim.link_fault (Sim.Delay dt));
  let _ = Sim.run sim in
  Alcotest.(check bool) "arrival pushed past the injected delay" true
    (!arrived >= dt);
  Alcotest.(check int) "tally" 1 (Sim.fault_tally sim).Sim.delayed

let test_prob_deterministic () =
  (* Same seed, same traffic -> identical drop pattern; the extremes are
     exact. *)
  let drops seed p =
    let sim, got =
      stream_run ~n:20 [ Sim.link_fault ~schedule:(Sim.Prob (p, seed)) Sim.Drop ]
    in
    ((Sim.fault_tally sim).Sim.dropped, got)
  in
  Alcotest.(check (pair int (list int)))
    "replayable" (drops 42 0.5) (drops 42 0.5);
  Alcotest.(check int) "p=0 drops nothing" 0 (fst (drops 7 0.0));
  Alcotest.(check int) "p=1 drops everything" 20 (fst (drops 7 1.0))

let test_injections_and_local_copies_exempt () =
  (* Environment injections and same-processor sends are not remote-link
     traffic: an any-link Drop must leave them alone. *)
  let sim = Sim.create (toy_arch 2) in
  let got = ref [] in
  let rx =
    Sim.spawn sim ~name:"rx" ~on:0 (fun () ->
        for _ = 1 to 2 do
          got := V.to_int (Sim.recv "in") :: !got
        done)
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () -> Sim.send rx "in" (V.Int 2))
  in
  Sim.add_fault sim (Sim.link_fault Sim.Drop);
  Sim.inject sim rx "in" (V.Int 1);
  let _ = Sim.run sim in
  Alcotest.(check int) "both delivered" 2 (List.length !got);
  Alcotest.(check int) "no drops" 0 (Sim.fault_tally sim).Sim.dropped

let test_recv_deadline_timeout () =
  let sim = Sim.create (toy_arch 2) in
  let first = ref (Some ("x", V.Unit)) and second = ref None in
  let rx =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        first := Sim.recv_deadline [ "in" ] ~deadline:2e-3;
        second := Sim.recv_deadline [ "in" ] ~deadline:1.0)
  in
  Sim.inject sim ~at:5e-3 rx "in" (V.Int 9);
  let _ = Sim.run sim in
  Alcotest.(check bool) "first wait times out" true (!first = None);
  (match !second with
  | Some ("in", v) -> Alcotest.(check value_testable) "then delivers" (V.Int 9) v
  | _ -> Alcotest.fail "expected the late message")

(* ------------------------------------------------------------------ *)
(* Degraded-run metrics                                                *)

let test_degraded_metrics () =
  let sim = Sim.create (toy_arch 2) in
  let _ = Sim.spawn sim ~name:"a" ~on:0 (fun () -> Sim.compute 10_000.0) in
  let _ = Sim.spawn sim ~name:"b" ~on:1 (fun () -> ignore (Sim.recv "never")) in
  Sim.halt_processor sim ~at:2e-3 1;
  let _ = Sim.run sim in
  let report = Machine.Metrics.analyse ~deadline_misses:1 ~reissues:2 sim in
  let p1 = List.nth report.Machine.Metrics.loads 1 in
  Alcotest.(check (float 1e-9)) "live excludes the dead tail" 2e-3
    p1.Machine.Metrics.live;
  Alcotest.(check int) "counters threaded" 2 report.Machine.Metrics.reissues;
  Alcotest.(check int) "misses threaded" 1
    report.Machine.Metrics.deadline_misses;
  Alcotest.(check bool) "imbalance stays finite" true
    (Float.is_finite (Machine.Metrics.imbalance report));
  Alcotest.(check bool) "report renders the fault line" true
    (Astring.String.is_infix ~affix:"reissued"
       (Machine.Metrics.to_string report))

(* ------------------------------------------------------------------ *)
(* Fault-tolerant data farming                                         *)

let ft_table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 5000.0);
      ( "add",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 500.0 );
    ]

let df_program nworkers =
  Ir.program "df"
    (Ir.Df { nworkers; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless })

(* Run the farm on a ring with one processor per worker plus the master,
   under canonical placement (worker i lives on P(i+1)). *)
let df_run ?(frames = 1) ?faults ?restores ?link_faults ?recovery ~nworkers
    items =
  let table = ft_table () in
  let program = df_program nworkers in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring (nworkers + 1) in
  let placement = Syndex.Place.canonical g arch in
  let input = V.List (List.map (fun i -> V.Int i) items) in
  let r =
    Executive.run ?faults ?restores ?link_faults ?recovery ~table ~arch
      ~placement ~graph:g ~frames ~input ()
  in
  (Skel.Sem.run table program input, r)

let healthy_latency ~nworkers items =
  let _, r = df_run ~nworkers items in
  r.Executive.first_latency

let test_df_recovers_from_worker_halt () =
  let items = List.init 20 (fun i -> i) in
  let nworkers = 3 in
  let timeout = healthy_latency ~nworkers items in
  let seq, r =
    df_run ~nworkers ~faults:[ (2, timeout /. 4.0) ]
      ~recovery:(Executive.recovery ~max_strikes:1 timeout) items
  in
  Alcotest.(check bool) "completed degraded" true
    (r.Executive.outcome = Executive.Completed);
  Alcotest.(check value_testable) "agrees with the emulation" seq
    r.Executive.value;
  Alcotest.(check bool) "tasks were reissued" true (r.Executive.reissues > 0);
  Alcotest.(check int) "the dead worker was retired" 1
    r.Executive.retired_workers

let test_df_survives_halt_mid_stream () =
  (* Multi-frame run: the halt lands mid-stream and every later frame must
     still come out right. *)
  let items = List.init 12 (fun i -> i) in
  let nworkers = 3 in
  let timeout = healthy_latency ~nworkers items in
  let seq, r =
    df_run ~frames:4 ~nworkers
      ~faults:[ (2, 1.5 *. timeout) ]
      ~recovery:(Executive.recovery timeout) items
  in
  Alcotest.(check bool) "completed" true
    (r.Executive.outcome = Executive.Completed);
  Alcotest.(check int) "all frames out" 4 (List.length r.Executive.outputs);
  List.iter
    (fun out -> Alcotest.(check value_testable) "each frame agrees" seq out)
    r.Executive.outputs

let test_df_recovery_absorbs_duplicates () =
  let items = List.init 15 (fun i -> i) in
  let nworkers = 3 in
  let timeout = healthy_latency ~nworkers items in
  let seq, r =
    df_run ~nworkers
      ~link_faults:[ Sim.link_fault ~schedule:(Sim.Every 2) Sim.Duplicate ]
      ~recovery:(Executive.recovery timeout) items
  in
  Alcotest.(check bool) "completed" true
    (r.Executive.outcome = Executive.Completed);
  Alcotest.(check value_testable) "duplicates folded once" seq
    r.Executive.value

let prop_df_single_fault_recovery =
  (* Any single message fault or worker halt, with recovery on, leaves the
     farm's answer equal to the sequential emulation. *)
  QCheck.Test.make ~name:"df with one fault + recovery == emulation" ~count:30
    QCheck.(
      pair
        (pair (int_range 2 4) (list_of_size Gen.(2 -- 20) (int_range 0 50)))
        (int_range 0 3))
    (fun ((nworkers, items), kind) ->
      QCheck.assume (items <> []);
      let timeout = healthy_latency ~nworkers items in
      let faults, link_faults =
        match kind with
        | 0 -> ([ (2, timeout /. 3.0) ], []) (* kill worker 1's processor *)
        | 1 -> ([], [ Sim.link_fault ~schedule:(Sim.Nth 2) Sim.Drop ])
        | 2 -> ([], [ Sim.link_fault ~schedule:(Sim.Nth 1) (Sim.Delay timeout) ])
        | _ -> ([], [ Sim.link_fault ~schedule:(Sim.Every 3) Sim.Duplicate ])
      in
      let seq, r =
        df_run ~nworkers ~faults ~link_faults
          ~recovery:(Executive.recovery timeout) items
      in
      r.Executive.outcome = Executive.Completed
      && V.equal seq r.Executive.value)

let prop_df_halt_without_recovery_never_raises =
  (* Recovery off: a worker halt may stall the farm but must never raise;
     a stall carries consistent partial counts. *)
  QCheck.Test.make ~name:"df halt without recovery stalls gracefully" ~count:30
    QCheck.(
      pair (int_range 2 4) (list_of_size Gen.(2 -- 20) (int_range 0 50)))
    (fun (nworkers, items) ->
      QCheck.assume (items <> []);
      let _, r = df_run ~nworkers ~faults:[ (2, 1e-4) ] items in
      match r.Executive.outcome with
      | Executive.Completed -> List.length r.Executive.outputs = 1
      | Executive.Stalled { collected; expected } ->
          expected = 1
          && collected = List.length r.Executive.outputs
          && collected < expected)

(* ------------------------------------------------------------------ *)
(* Master checkpoint / replay                                          *)

(* An accumulator farm whose carry crosses frames: the master is the sole
   holder of the fold state, so a halt of its processor is the worst-case
   fault — without checkpointing the stream dies with it, with
   checkpointing the restarted master replays from the last stable
   snapshot. The sum-based acc makes any double-counted contribution (a
   replayed reply folded twice) show up as a wrong value against the
   sequential oracle. *)
let acc_program ~frames nworkers =
  Ir.program ~frames "df_acc"
    (Ir.Df
       { nworkers; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Accumulator })

let acc_run ?faults ?restores ?checkpoint_every ~frames ~nworkers items =
  let table = ft_table () in
  let program = acc_program ~frames nworkers in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring (nworkers + 1) in
  let placement = Syndex.Place.canonical g arch in
  let input = V.List (List.map (fun i -> V.Int i) items) in
  let r =
    Executive.run ?faults ?restores ?checkpoint_every ~table ~arch ~placement
      ~graph:g ~frames ~input ()
  in
  (Skel.Sem.run table program input, r)

let test_master_halt_stalls_without_checkpoint () =
  let items = List.init 12 (fun i -> i) in
  let nworkers = 3 and frames = 4 in
  let _, healthy = acc_run ~frames ~nworkers items in
  let times = Array.of_list healthy.Executive.output_times in
  (* halt the master's processor (P0 under canonical placement) between
     the second and third frame outputs; restoring the processor does not
     revive the non-durable master *)
  let halt_at = (times.(1) +. times.(2)) /. 2.0 in
  let _, r =
    acc_run ~frames ~nworkers
      ~faults:[ (0, halt_at) ]
      ~restores:[ (0, 2.0 *. halt_at) ]
      items
  in
  (match r.Executive.outcome with
  | Executive.Stalled { collected; expected } ->
      Alcotest.(check int) "expected the full stream" frames expected;
      Alcotest.(check bool) "a strict prefix came out" true
        (collected >= 1 && collected < frames);
      Alcotest.(check int) "outputs match the count" collected
        (List.length r.Executive.outputs)
  | Executive.Completed ->
      Alcotest.fail "master halt without checkpointing must stall");
  Alcotest.(check int) "no checkpoints were taken" 0 r.Executive.checkpoints

let test_master_checkpoint_replay_completes () =
  let items = List.init 12 (fun i -> i) in
  let nworkers = 3 and frames = 4 in
  let _, healthy = acc_run ~frames ~nworkers ~checkpoint_every:2 items in
  let times = Array.of_list healthy.Executive.output_times in
  (* Halt while frame 3 is in flight: the last stable snapshot covers
     frames 0-1 and frame 2 is already emitted, so the restarted master
     must recompute frame 2 (without re-emitting it — the write-ahead
     emitted count) before finishing the stream. *)
  let halt_at = (times.(2) +. times.(3)) /. 2.0 in
  let oracle, r =
    acc_run ~frames ~nworkers ~checkpoint_every:2
      ~faults:[ (0, halt_at) ]
      ~restores:[ (0, 2.0 *. halt_at) ]
      items
  in
  Alcotest.(check bool) "completed despite the master outage" true
    (r.Executive.outcome = Executive.Completed);
  Alcotest.(check value_testable) "no contribution double-counted" oracle
    r.Executive.value;
  (* every frame of the degraded run equals the streamed oracle *)
  let stream =
    Skel.Sem.run_stream (ft_table ())
      (acc_program ~frames nworkers)
      (V.List (List.map (fun i -> V.Int i) items))
  in
  Alcotest.(check (list value_testable)) "per-frame outputs" stream
    r.Executive.outputs;
  Alcotest.(check bool) "checkpoints were taken" true
    (r.Executive.checkpoints >= 2);
  Alcotest.(check int) "frame 2 replayed, not re-emitted" 1
    r.Executive.replayed_frames;
  Alcotest.(check int) "replay is not a reissue" 0 r.Executive.reissues

let test_master_checkpoint_no_fault_is_free () =
  (* Checkpointing without a fault changes nothing observable except the
     checkpoint count: same value, same per-frame outputs. *)
  let items = List.init 10 (fun i -> i) in
  let nworkers = 2 and frames = 4 in
  let oracle, plain = acc_run ~frames ~nworkers items in
  let _, ckpt = acc_run ~frames ~nworkers ~checkpoint_every:1 items in
  Alcotest.(check value_testable) "same value" oracle ckpt.Executive.value;
  Alcotest.(check (list value_testable)) "same outputs"
    plain.Executive.outputs ckpt.Executive.outputs;
  Alcotest.(check int) "one checkpoint per frame" frames
    ckpt.Executive.checkpoints;
  Alcotest.(check int) "nothing replayed" 0 ckpt.Executive.replayed_frames

let test_single_frame_period_is_none () =
  let _, r = df_run ~nworkers:2 [ 1; 2; 3 ] in
  Alcotest.(check bool) "one frame has no period" true
    (r.Executive.period = None);
  let _, r4 = df_run ~frames:4 ~nworkers:2 [ 1; 2; 3 ] in
  Alcotest.(check bool) "four frames do" true (r4.Executive.period <> None)

let () =
  Alcotest.run "faults"
    [
      ( "halt",
        [
          Alcotest.test_case "drops messages" `Quick test_halt_drops_messages;
          Alcotest.test_case "restore resumes delivery" `Quick
            test_restore_resumes_delivery;
          Alcotest.test_case "trace events" `Quick test_halt_trace_events;
          Alcotest.test_case "accounting clamped" `Quick
            test_halted_accounting_clamped;
        ] );
      ( "window",
        [
          Alcotest.test_case "until clamps and keeps events" `Quick
            test_run_until_clamps_and_keeps_events;
          Alcotest.test_case "until before first event" `Quick
            test_run_until_before_first_event;
        ] );
      ( "link faults",
        [
          Alcotest.test_case "drop nth" `Quick test_drop_nth;
          Alcotest.test_case "drop every" `Quick test_drop_every;
          Alcotest.test_case "link selectivity" `Quick
            test_drop_specific_link_only;
          Alcotest.test_case "duplicate" `Quick test_duplicate_delivers_twice;
          Alcotest.test_case "delay" `Quick test_delay_postpones;
          Alcotest.test_case "prob deterministic" `Quick test_prob_deterministic;
          Alcotest.test_case "injections exempt" `Quick
            test_injections_and_local_copies_exempt;
          Alcotest.test_case "recv deadline" `Quick test_recv_deadline_timeout;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "degraded run" `Quick test_degraded_metrics;
          Alcotest.test_case "single-frame period" `Quick
            test_single_frame_period_is_none;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "worker halt" `Quick
            test_df_recovers_from_worker_halt;
          Alcotest.test_case "halt mid-stream" `Quick
            test_df_survives_halt_mid_stream;
          Alcotest.test_case "absorbs duplicates" `Quick
            test_df_recovery_absorbs_duplicates;
          QCheck_alcotest.to_alcotest prop_df_single_fault_recovery;
          QCheck_alcotest.to_alcotest prop_df_halt_without_recovery_never_raises;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "master halt stalls without checkpoint" `Quick
            test_master_halt_stalls_without_checkpoint;
          Alcotest.test_case "checkpoint + replay completes" `Quick
            test_master_checkpoint_replay_completes;
          Alcotest.test_case "checkpointing alone is free" `Quick
            test_master_checkpoint_no_fault_is_free;
        ] );
    ]
