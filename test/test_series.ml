(* Series suite: the windowed telemetry must agree with the run it was
   folded from, and must be a *chunk-decomposable* view of it. Agreement:
   per-window totals sum exactly to the executive's own counters
   (qcheck). Decomposability: a series built from any window-partition of
   the observation stream merges back to the very bytes of a single build,
   and pooled builds are byte-identical to sequential ones — the invariant
   CI's --jobs 1 vs --jobs 4 comparison of series artifacts rests on. On
   top sit the SLO monitor's unit semantics: spec parsing, the burn-rate
   state machine, and the fault-window alerting story end to end. *)

module V = Skel.Value
module Sim = Machine.Sim
module Dp = Support.Domain_pool
module S = Skipper_trace.Series
module E = Skipper_trace.Event

let pool_jobs = Dp.jobs_from_env ~default:4 ()

(* ------------------------------------------------------------------ *)
(* A df farm on a ring: the same self-contained job shape the bench and
   determinism suites use, with an optional processor fault plan.       *)

type params = { nworkers : int; nitems : int; frames : int }

let run_farm ?(trace = true) ?(faults = []) ?(restores = []) ?recovery
    ?input_period p =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "w" ~cost:(fun _ -> 10_000.0) (fun v -> v);
  Skel.Funtable.register table "k" ~arity:2 ~cost:(fun _ -> 100.0) (fun v ->
      fst (V.to_pair v));
  let prog =
    Skel.Ir.program "p"
      (Skel.Ir.Df { nworkers = p.nworkers; comp = "w"; acc = "k"; init = V.Int 0; state = Skel.Ir.Stateless })
  in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring (p.nworkers + 1) in
  Executive.run ~trace ~faults ~restores ?recovery ~table ~arch
    ~placement:(Syndex.Place.canonical g arch)
    ~graph:g ~frames:p.frames ?input_period
    ~input:(V.List (List.init p.nitems (fun i -> V.Int i)))
    ()

let series_of ?width r =
  match Executive.series ?width r with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let spec_ok s =
  match S.Slo.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" s e)

(* ------------------------------------------------------------------ *)
(* Histogram semantics                                                 *)

let test_hist () =
  let h = S.Hist.create () in
  Alcotest.(check int) "empty count" 0 (S.Hist.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (S.Hist.quantile h 0.99);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (S.Hist.mean h);
  List.iter (S.Hist.add h) [ 1e-3; 2e-3; 4e-3; 8e-3 ];
  Alcotest.(check int) "count" 4 (S.Hist.count h);
  Alcotest.(check (float 1e-12)) "sum is exact, not bucket-quantised" 15e-3
    (S.Hist.sum h);
  Alcotest.(check (float 1e-12)) "mean" 3.75e-3 (S.Hist.mean h);
  (* nearest-rank: q = 0.5 over 4 samples is rank 2, reported as the upper
     bound of the bucket holding 2 ms — conservative by ≤ one ratio (9%) *)
  let q50 = S.Hist.quantile h 0.5 in
  Alcotest.(check bool) "p50 within one bucket of 2 ms" true
    (q50 >= 2e-3 && q50 <= 2e-3 *. 1.1);
  let q100 = S.Hist.quantile h 1.0 in
  Alcotest.(check bool) "p100 covers the max" true
    (q100 >= 8e-3 && q100 <= 8e-3 *. 1.1);
  (* merge is sample concatenation: commutative, and equal to one bulk
     build whatever the insertion order *)
  let a = S.Hist.create () and b = S.Hist.create () in
  List.iter (S.Hist.add a) [ 1e-3; 4e-3 ];
  List.iter (S.Hist.add b) [ 2e-3; 8e-3 ];
  let ab = S.Hist.merge a b and ba = S.Hist.merge b a in
  Alcotest.(check bool) "merge commutes" true
    (S.Hist.buckets ab = S.Hist.buckets ba);
  Alcotest.(check bool) "merge equals the bulk build" true
    (S.Hist.buckets ab = S.Hist.buckets h);
  Alcotest.(check int) "merged count" 4 (S.Hist.count ab);
  Alcotest.(check (float 1e-12)) "merged sum" 15e-3 (S.Hist.sum ab)

(* ------------------------------------------------------------------ *)
(* SLO spec parsing                                                    *)

let test_slo_parse () =
  let sp = spec_ok "p99_latency<8ms" in
  Alcotest.(check bool) "p99 metric" true (sp.S.Slo.metric = S.Slo.P99);
  Alcotest.(check bool) "strict less" true (sp.S.Slo.op = S.Slo.Lt);
  Alcotest.(check (float 1e-12)) "8 ms in seconds" 8e-3 sp.S.Slo.threshold;
  Alcotest.(check (float 1e-15)) "microsecond suffix" 250e-6
    (spec_ok "p50 <= 250us").S.Slo.threshold;
  Alcotest.(check (float 1e-12)) "percent is a ratio" 0.01
    (spec_ok "miss_rate<1%").S.Slo.threshold;
  Alcotest.(check bool) "throughput with fps suffix" true
    (let sp = spec_ok "throughput>=20fps" in
     sp.S.Slo.metric = S.Slo.Throughput
     && sp.S.Slo.op = S.Slo.Ge
     && sp.S.Slo.threshold = 20.0);
  Alcotest.(check (float 1e-12)) "bare ratio" 0.5
    (spec_ok "utilisation>0.5").S.Slo.threshold;
  Alcotest.(check bool) "period metric" true
    ((spec_ok "period<3ms").S.Slo.metric = S.Slo.Period);
  List.iter
    (fun bad ->
      match S.Slo.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad))
    [ "p42<1ms"; "p99_latency=8ms"; "p99_latency<wat"; ""; "miss_rate" ]

(* ------------------------------------------------------------------ *)
(* Burn-rate state machine, on a hand-built series: six 1 s windows with
   one output each, where only windows 1 and 2 miss the 0.5 s deadline. *)

let test_slo_state_machine () =
  let series =
    match
      S.build ~width:1.0 ~nprocs:1 ~horizon:6.0
        ~output_times:[ 0.5; 1.5; 2.5; 3.5; 4.5; 5.5 ]
        ~latencies:[ 0.1; 0.9; 0.9; 0.1; 0.1; 0.1 ]
        ~input_period:0.5 (E.create ())
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let rep = S.Slo.evaluate [ spec_ok "miss_rate<0.5" ] series in
  let m = List.hd rep.S.Slo.monitors in
  Alcotest.(check int) "two failing windows" 2 m.S.Slo.failing_windows;
  Alcotest.(check (float 1e-9)) "burn = width x failing windows" 2.0
    m.S.Slo.total_burn;
  (* one failing window warns, the second violates, the first passing one
     recovers — all stamped at window ends *)
  Alcotest.(check bool) "transition sequence" true
    (m.S.Slo.transitions
    = [
        (2.0, S.Slo.Healthy, S.Slo.Warning);
        (3.0, S.Slo.Warning, S.Slo.Violated);
        (4.0, S.Slo.Violated, S.Slo.Healthy);
      ]);
  Alcotest.(check (option (float 1e-9))) "first violation" (Some 3.0)
    m.S.Slo.first_violation;
  Alcotest.(check (option (float 1e-9))) "recovered at" (Some 4.0)
    m.S.Slo.recovered_at;
  Alcotest.(check (option (float 1e-9))) "time to recovery" (Some 1.0)
    m.S.Slo.time_to_recovery;
  Alcotest.(check bool) "final state healthy" true
    (m.S.Slo.final = S.Slo.Healthy);
  (match m.S.Slo.worst with
  | Some (w, v) ->
      Alcotest.(check int) "worst window is the first of equals" 1 w;
      Alcotest.(check (float 1e-9)) "worst observed value" 1.0 v
  | None -> Alcotest.fail "expected a worst window");
  (* the violation episode spans the failing windows, not the stamps *)
  match S.Slo.bands rep with
  | [ b ] ->
      Alcotest.(check (float 1e-9)) "band opens with window 1" 1.0
        b.Skipper_trace.Svg.band_start;
      Alcotest.(check (float 1e-9)) "band closes with window 2" 3.0
        b.Skipper_trace.Svg.band_finish
  | bs -> Alcotest.fail (Printf.sprintf "expected one band, got %d" (List.length bs))

(* A window with no observation must hold the state, not reset it. *)
let test_slo_gap_holds_state () =
  let series =
    match
      S.build ~width:1.0 ~nprocs:1 ~horizon:5.0
        ~output_times:[ 0.5; 1.5; 4.5 ]
        ~latencies:[ 0.9; 0.9; 0.1 ]
        ~input_period:0.5 (E.create ())
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let m = List.hd (S.Slo.evaluate [ spec_ok "miss_rate<0.5" ] series).S.Slo.monitors in
  Alcotest.(check (option (float 1e-9)))
    "violated on the second failing window" (Some 2.0) m.S.Slo.first_violation;
  (* windows 2 and 3 have no frames: still Violated until window 4 passes *)
  Alcotest.(check (option (float 1e-9))) "recovery waits for an observation"
    (Some 5.0) m.S.Slo.recovered_at

(* ------------------------------------------------------------------ *)
(* Totals: the series is an exact decomposition of the run's counters.  *)

let gen_params =
  QCheck.Gen.(
    map
      (fun (nworkers, nitems, frames) -> { nworkers; nitems; frames })
      (tup3 (int_range 1 4) (int_range 1 8) (int_range 1 4)))

let print_params p =
  Printf.sprintf "{workers=%d; items=%d; frames=%d}" p.nworkers p.nitems p.frames

let prop_totals_match_run =
  QCheck.Test.make ~name:"window totals sum to the run's own counters"
    ~count:25
    (QCheck.make ~print:print_params gen_params)
    (fun p ->
      let r =
        run_farm ?input_period:(if p.frames > 1 then Some 0.01 else None) p
      in
      let t = S.totals (series_of r) in
      let busy_total =
        Array.fold_left ( +. ) 0.0 r.Executive.stats.Sim.busy
      in
      t.S.total_frames = List.length r.Executive.output_times
      && t.S.total_messages = r.Executive.stats.Sim.messages
      && t.S.total_reissues = r.Executive.reissues
      && t.S.total_deadline_misses = r.Executive.deadline_misses
      && Float.abs (t.S.total_busy -. busy_total)
         <= 1e-9 *. Float.max 1.0 busy_total)

(* ------------------------------------------------------------------ *)
(* The window-merge invariant: partition every observation stream by
   window index (events, outputs, injections, reissues), build one series
   per chunk against the shared width/horizon, and merge. The result must
   be byte-identical to the single full build — in either merge order.   *)

let test_partition_merge_byte_identical () =
  let p = { nworkers = 3; nitems = 8; frames = 3 } in
  let input_period = 0.01 in
  let r = run_farm ~input_period p in
  let full = series_of r in
  let width = full.S.width
  and horizon = full.S.horizon
  and nprocs = full.S.nprocs in
  let nchunks = 4 in
  let chunk_of t = int_of_float (t /. width) mod nchunks in
  let chunk_events = Array.init nchunks (fun _ -> E.create ()) in
  List.iter
    (fun (e : E.t) -> E.add chunk_events.(chunk_of e.E.time) e)
    (E.events (Executive.timeline r));
  let pairs = List.combine r.Executive.output_times r.Executive.latencies in
  let injections =
    List.init (List.length r.Executive.outputs) (fun i ->
        float_of_int i *. input_period)
  in
  let build_chunk c =
    let mine = List.filter (fun (t, _) -> chunk_of t = c) pairs in
    match
      S.build ~width ~nprocs ~horizon
        ~output_times:(List.map fst mine) ~latencies:(List.map snd mine)
        ~input_period
        ~injections:(List.filter (fun t -> chunk_of t = c) injections)
        ~reissue_times:
          (List.filter (fun t -> chunk_of t = c) r.Executive.reissue_times)
        chunk_events.(c)
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let merge2 a b =
    match S.merge a b with Ok s -> s | Error e -> Alcotest.fail e
  in
  let fold = function
    | [] -> Alcotest.fail "no chunks"
    | c :: cs -> List.fold_left merge2 c cs
  in
  let chunks = List.init nchunks build_chunk in
  Alcotest.(check string) "forward merge rebuilds the full series"
    (S.to_json full)
    (S.to_json (fold chunks));
  Alcotest.(check string) "reverse merge order changes nothing"
    (S.to_json full)
    (S.to_json (fold (List.rev chunks)));
  Alcotest.(check string) "csv agrees too" (S.to_csv full)
    (S.to_csv (fold chunks));
  (* mismatched geometry must be rejected, not silently combined *)
  match
    S.build ~width:(width *. 2.0) ~nprocs ~horizon (E.create ())
  with
  | Error e -> Alcotest.fail e
  | Ok other -> (
      match S.merge full other with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "merging different widths must fail")

(* Pooled builds: the series JSON from domains is byte-identical to the
   sequential one (what the CI --jobs gate on skipperc series files pins). *)
let test_pooled_builds_byte_identical () =
  let p = { nworkers = 3; nitems = 8; frames = 3 } in
  let fingerprint () = S.to_json (series_of (run_farm ~input_period:0.01 p)) in
  let seq = fingerprint () in
  List.iteri
    (fun i json ->
      Alcotest.(check string)
        (Printf.sprintf "pooled copy %d == sequential" i)
        seq json)
    (Dp.run ~jobs:pool_jobs (List.init 3 (fun _ -> fingerprint)))

(* ------------------------------------------------------------------ *)
(* The alerting story end to end: halt a worker mid-run with df recovery
   armed, and the SLO monitor must place the first violation inside the
   fault window and the recovery after the restore.                      *)

let test_fault_window_alerting () =
  let p = { nworkers = 3; nitems = 6; frames = 12 } in
  let input_period = 0.01 in
  let halt_at = 0.03 and restore_at = 0.08 in
  (* calibrate the threshold off the healthy run so the test tracks cost
     model changes: healthy latencies pass at 1.5x their max, fault-window
     latencies carry at least one 5 ms reissue timeout on top *)
  let healthy = run_farm ~input_period p in
  let hmax =
    List.fold_left Float.max 0.0 healthy.Executive.latencies
  in
  let spec =
    spec_ok (Printf.sprintf "p99_latency<%.6fms" (hmax *. 1.5 *. 1e3))
  in
  Alcotest.(check int) "healthy run never violates" 0
    (List.hd (S.Slo.evaluate [ spec ] (series_of healthy)).S.Slo.monitors)
      .S.Slo.failing_windows;
  let r =
    run_farm ~input_period
      ~faults:[ (1, halt_at) ]
      ~restores:[ (1, restore_at) ]
      ~recovery:(Executive.recovery ~max_strikes:100 5e-3)
      p
  in
  Alcotest.(check bool) "degraded run still completes" true
    (r.Executive.outcome = Executive.Completed);
  Alcotest.(check bool) "recovery reissued work" true (r.Executive.reissues > 0);
  let m =
    List.hd (S.Slo.evaluate [ spec ] (series_of r)).S.Slo.monitors
  in
  match (m.S.Slo.first_violation, m.S.Slo.recovered_at, m.S.Slo.time_to_recovery) with
  | Some fv, Some rec_at, Some ttr ->
      Alcotest.(check bool) "first violation after the halt" true (fv >= halt_at);
      Alcotest.(check bool) "first violation inside the fault window" true
        (fv <= restore_at +. input_period);
      Alcotest.(check bool) "recovery after the restore" true
        (rec_at >= restore_at);
      Alcotest.(check (float 1e-9)) "time to recovery is the difference"
        (rec_at -. fv) ttr;
      Alcotest.(check bool) "healthy again by end of run" true
        (m.S.Slo.final = S.Slo.Healthy)
  | _ ->
      Alcotest.fail
        (Printf.sprintf
           "expected violation and recovery, got first=%s recovered=%s"
           (match m.S.Slo.first_violation with
           | Some t -> Printf.sprintf "%.4f" t
           | None -> "none")
           (match m.S.Slo.recovered_at with
           | Some t -> Printf.sprintf "%.4f" t
           | None -> "none"))

(* ------------------------------------------------------------------ *)
(* Guard rails                                                         *)

let test_untraced_run_is_an_error () =
  let r = run_farm ~trace:false { nworkers = 2; nitems = 4; frames = 1 } in
  match Executive.series r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "series without tracing must be an error"

let test_bad_build_args () =
  (match S.build ~width:0.0 ~nprocs:1 (E.create ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero width must be rejected");
  match
    S.build ~width:1.0 ~nprocs:1 ~output_times:[ 1.0 ] ~latencies:[]
      (E.create ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unpaired outputs/latencies must be rejected"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "series"
    [
      ( "hist",
        [ Alcotest.test_case "log-bucketed histogram" `Quick test_hist ] );
      ( "slo",
        [
          Alcotest.test_case "spec parsing" `Quick test_slo_parse;
          Alcotest.test_case "burn-rate state machine" `Quick
            test_slo_state_machine;
          Alcotest.test_case "gaps hold state" `Quick test_slo_gap_holds_state;
          Alcotest.test_case "fault-window alerting" `Quick
            test_fault_window_alerting;
        ] );
      ( "totals",
        [ QCheck_alcotest.to_alcotest prop_totals_match_run ] );
      ( "merge",
        [
          Alcotest.test_case "window partition is byte-identical" `Quick
            test_partition_merge_byte_identical;
          Alcotest.test_case "pooled builds are byte-identical" `Quick
            test_pooled_builds_byte_identical;
        ] );
      ( "guards",
        [
          Alcotest.test_case "untraced run" `Quick test_untraced_run_is_an_error;
          Alcotest.test_case "bad build args" `Quick test_bad_build_args;
        ] );
    ]
