(* Tests for the skeletal IR: validation rules and structural queries. *)

module V = Skel.Value
module Ir = Skel.Ir

let table_with names =
  let t = Skel.Funtable.create () in
  List.iter (fun n -> Skel.Funtable.register t n (fun v -> v)) names;
  t

let ok = Alcotest.(check bool) "valid" true
let bad = Alcotest.(check bool) "invalid" false

let is_valid table prog = Result.is_ok (Ir.validate table prog)

let test_validate_seq () =
  let t = table_with [ "f" ] in
  ok (is_valid t (Ir.program "p" (Ir.Seq "f")));
  bad (is_valid t (Ir.program "p" (Ir.Seq "g")))

let test_validate_pipe () =
  let t = table_with [ "f"; "g" ] in
  ok (is_valid t (Ir.program "p" (Ir.Pipe [ Ir.Seq "f"; Ir.Seq "g" ])));
  ok (is_valid t (Ir.program "p" (Ir.Pipe [])));
  bad (is_valid t (Ir.program "p" (Ir.Pipe [ Ir.Seq "f"; Ir.Seq "missing" ])))

let test_validate_df () =
  let t = table_with [ "comp"; "acc" ] in
  let df n = Ir.Df { nworkers = n; comp = "comp"; acc = "acc"; init = V.Int 0; state = Ir.Stateless } in
  ok (is_valid t (Ir.program "p" (df 3)));
  bad (is_valid t (Ir.program "p" (df 0)));
  bad (is_valid t (Ir.program "p" (Ir.Df { nworkers = 2; comp = "x"; acc = "acc"; init = V.Unit; state = Ir.Stateless })))

let test_validate_scm () =
  let t = table_with [ "split"; "comp"; "merge" ] in
  ok
    (is_valid t
       (Ir.program "p" (Ir.Scm { nparts = 4; split = "split"; compute = "comp"; merge = "merge" })));
  bad
    (is_valid t
       (Ir.program "p" (Ir.Scm { nparts = -1; split = "split"; compute = "comp"; merge = "merge" })))

let test_validate_itermem_top_only () =
  let t = table_with [ "in"; "out"; "f" ] in
  let loop = Ir.Seq "f" in
  let im = Ir.Itermem { input = "in"; loop; output = "out"; init = V.Unit } in
  ok (is_valid t (Ir.program "p" im));
  (* nested itermem is rejected *)
  let nested = Ir.Itermem { input = "in"; loop = im; output = "out"; init = V.Unit } in
  bad (is_valid t (Ir.program "p" nested));
  (* itermem inside a pipe is rejected *)
  bad (is_valid t (Ir.program "p" (Ir.Pipe [ im ])))

let test_validate_frames () =
  let t = table_with [ "f" ] in
  bad (is_valid t (Ir.program ~frames:0 "p" (Ir.Seq "f")))

let test_skeleton_instances () =
  let stage =
    Ir.Itermem
      {
        input = "in";
        loop =
          Ir.Pipe
            [
              Ir.Seq "a";
              Ir.Df { nworkers = 2; comp = "c"; acc = "k"; init = V.Unit; state = Ir.Stateless };
              Ir.Seq "b";
            ];
        output = "out";
        init = V.Unit;
      }
  in
  Alcotest.(check (list string)) "instances" [ "itermem"; "df" ]
    (Ir.skeleton_instances stage)

let test_functions_used () =
  let stage =
    Ir.Pipe
      [
        Ir.Seq "a";
        Ir.Scm { nparts = 2; split = "s"; compute = "c"; merge = "m" };
        Ir.Seq "a";
      ]
  in
  Alcotest.(check (list string)) "dedup in first-use order" [ "a"; "s"; "c"; "m" ]
    (Ir.functions_used stage)

let test_pp_smoke () =
  let prog =
    Ir.program ~frames:3 "demo"
      (Ir.Tf { nworkers = 2; work = "w"; acc = "a"; init = V.Int 1 })
  in
  let s = Format.asprintf "%a" Ir.pp_program prog in
  Alcotest.(check bool) "mentions tf" true
    (Astring.String.is_infix ~affix:"tf 2 w a" s);
  Alcotest.(check bool) "mentions frames" true
    (Astring.String.is_infix ~affix:"frames=3" s)

let () =
  Alcotest.run "ir"
    [
      ( "validate",
        [
          Alcotest.test_case "seq" `Quick test_validate_seq;
          Alcotest.test_case "pipe" `Quick test_validate_pipe;
          Alcotest.test_case "df" `Quick test_validate_df;
          Alcotest.test_case "scm" `Quick test_validate_scm;
          Alcotest.test_case "itermem top only" `Quick test_validate_itermem_top_only;
          Alcotest.test_case "frames positive" `Quick test_validate_frames;
        ] );
      ( "queries",
        [
          Alcotest.test_case "skeleton_instances" `Quick test_skeleton_instances;
          Alcotest.test_case "functions_used" `Quick test_functions_used;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
