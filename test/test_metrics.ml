(* Tests for the daemon observability primitives: the metrics registry
   (domain-safe counters/gauges/histograms, deterministic snapshots, the
   Prometheus exposition) and the structured JSONL logger (levels, pinned
   clocks, atomic sequence numbering under concurrent writers). The two
   concurrency properties the daemon leans on are pinned by qcheck: no
   increment is ever lost across an 8-domain pool, and a histogram fed
   from many domains exposes byte-identical text to a single-domain build
   of the same samples. *)

module Metrics = Support.Metrics
module Histogram = Support.Histogram
module Log = Support.Log
module Json = Support.Json
module Pool = Support.Domain_pool

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Registry basics                                                     *)

let test_registry_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"a counter" "requests_total" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.value c);
  (* registration is idempotent: same (name, labels) is the same cell *)
  let c' = Metrics.counter reg "requests_total" in
  Metrics.incr c';
  Alcotest.(check int) "re-registration aliases" 6 (Metrics.value c);
  (* distinct labels are distinct cells *)
  let cl = Metrics.counter reg ~labels:[ ("op", "run") ] "requests_total" in
  Metrics.incr cl;
  Alcotest.(check int) "labelled sibling independent" 6 (Metrics.value c);
  Alcotest.(check int) "labelled cell counted" 1 (Metrics.value cl);
  let g = Metrics.gauge reg "depth" in
  Metrics.set_gauge g 2.0;
  Metrics.add_gauge g 1.5;
  Alcotest.(check (float 1e-9)) "gauge arithmetic" 3.5 (Metrics.gauge_value g);
  let h = Metrics.histogram reg "latency_seconds" in
  Metrics.observe h 0.001;
  Metrics.observe h 0.002;
  Alcotest.(check int) "histogram count" 2
    (Histogram.count (Metrics.snapshot h));
  (* asking for an existing name as another kind is a programming error *)
  (match Metrics.gauge reg "requests_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind conflict must raise")

let test_exposition_format () =
  let reg = Metrics.create () in
  (* register in an order that sorting must undo *)
  let z = Metrics.counter reg ~help:"last by name" "z_total" in
  Metrics.add z 7;
  let h = Metrics.histogram reg ~labels:[ ("op", "compile") ] "lat_seconds" in
  Metrics.observe h 0.5;
  let g = Metrics.gauge reg "clients" in
  Metrics.set_gauge g 2.0;
  let text = Metrics.to_prometheus reg in
  Alcotest.(check bool) "help line" true (contains text "# HELP z_total last by name\n");
  Alcotest.(check bool) "counter type" true (contains text "# TYPE z_total counter\n");
  Alcotest.(check bool) "counter value" true (contains text "z_total 7\n");
  Alcotest.(check bool) "gauge rendered" true
    (contains text "clients 2.000000000\n");
  Alcotest.(check bool) "histogram sum" true
    (contains text "lat_seconds_sum{op=\"compile\"} 0.500000000\n");
  Alcotest.(check bool) "histogram count" true
    (contains text "lat_seconds_count{op=\"compile\"} 1\n");
  Alcotest.(check bool) "+Inf bucket" true
    (contains text "_bucket{op=\"compile\",le=\"+Inf\"} 1\n");
  (* sorted: clients before lat_seconds before z_total *)
  let idx needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i =
      if i + nn > nh then Alcotest.failf "missing %S in exposition" needle
      else if String.sub text i nn = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "instruments sorted by name" true
    (idx "# TYPE clients" < idx "# TYPE lat_seconds"
    && idx "# TYPE lat_seconds" < idx "# TYPE z_total");
  (* json snapshot carries the same values *)
  let j = Metrics.json reg in
  match Option.bind (Json.member "counters" j) Json.to_list with
  | Some [ c ] ->
      Alcotest.(check (option (float 0.0))) "json counter value" (Some 7.0)
        (Option.bind (Json.member "value" c) Json.to_float)
  | _ -> Alcotest.fail "expected exactly one counter in the json snapshot"

(* Two registries given the same values in different orders render the
   same bytes. *)
let test_snapshot_determinism () =
  let build order =
    let reg = Metrics.create () in
    List.iter
      (fun (name, v) -> Metrics.add (Metrics.counter reg name) v)
      order;
    Metrics.observe (Metrics.histogram reg "h_seconds") 0.25;
    Metrics.to_prometheus reg
  in
  let a = build [ ("alpha", 1); ("beta", 2); ("gamma", 3) ] in
  let b = build [ ("gamma", 3); ("alpha", 1); ("beta", 2) ] in
  Alcotest.(check string) "exposition independent of registration order" a b

(* ------------------------------------------------------------------ *)
(* Concurrency properties                                              *)

(* No lost counts: 8 pool domains hammering one counter (and one labelled
   sibling each) always sum exactly. *)
let prop_no_lost_counts =
  QCheck.Test.make ~count:20 ~name:"no counter increment lost across 8 domains"
    QCheck.(pair (int_range 1 500) (int_range 1 8))
    (fun (per_domain, step) ->
      let reg = Metrics.create () in
      let shared = Metrics.counter reg "shared_total" in
      let domains = 8 in
      ignore
        (Pool.run ~jobs:domains
           (List.init domains (fun d () ->
                let own =
                  Metrics.counter reg
                    ~labels:[ ("domain", string_of_int d) ]
                    "own_total"
                in
                for _ = 1 to per_domain do
                  Metrics.incr shared;
                  Metrics.add own step
                done)));
      Metrics.value shared = domains * per_domain
      && List.for_all
           (fun d ->
             Metrics.value
               (Metrics.counter reg
                  ~labels:[ ("domain", string_of_int d) ]
                  "own_total")
             = per_domain * step)
           (List.init domains Fun.id))

(* Histogram exposition byte-identity: the same multiset of samples fed
   from 8 domains and from 1 domain renders the same text. Samples are
   dyadic rationals, so even the float sum is exact and order-free. *)
let prop_histogram_merge_identity =
  QCheck.Test.make ~count:20
    ~name:"histogram exposition identical: 8-domain vs single-domain"
    QCheck.(list_of_size (Gen.int_range 8 64) (int_range 0 4096))
    (fun samples ->
      let to_value i = float_of_int i /. 1024.0 in
      let build jobs chunks =
        let reg = Metrics.create () in
        let h = Metrics.histogram reg ~labels:[ ("op", "x") ] "lat_seconds" in
        ignore
          (Pool.run ~jobs
             (List.map
                (fun chunk () ->
                  List.iter (fun s -> Metrics.observe h (to_value s)) chunk)
                chunks));
        Metrics.to_prometheus reg
      in
      (* deal samples round-robin over 8 workers *)
      let chunks = Array.make 8 [] in
      List.iteri (fun i s -> chunks.(i mod 8) <- s :: chunks.(i mod 8)) samples;
      let parallel = build 8 (Array.to_list chunks) in
      let sequential = build 1 [ samples ] in
      String.equal parallel sequential)

(* ------------------------------------------------------------------ *)
(* Structured log                                                      *)

let test_log_determinism () =
  let capture () =
    let buf = Buffer.create 256 in
    let log =
      Log.create ~level:Log.Debug
        ~clock:(fun () -> 12.5)
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
    in
    (log, buf)
  in
  let log, buf = capture () in
  Log.info log ~req:"r0" ~fields:[ ("op", Json.Str "compile") ] "request";
  Log.warn log "aborted_frame";
  Log.debug log ~fields:[ ("n", Json.Num 3.0) ] "batch_parsed";
  let expected =
    "{\"seq\":0,\"ts_s\":12.5,\"level\":\"info\",\"event\":\"request\",\"req\":\"r0\",\"op\":\"compile\"}\n"
    ^ "{\"seq\":1,\"ts_s\":12.5,\"level\":\"warn\",\"event\":\"aborted_frame\"}\n"
    ^ "{\"seq\":2,\"ts_s\":12.5,\"level\":\"debug\",\"event\":\"batch_parsed\",\"n\":3}\n"
  in
  Alcotest.(check string) "pinned clock pins the bytes" expected
    (Buffer.contents buf);
  Alcotest.(check int) "sequence counts emitted lines" 3 (Log.sequence log);
  (* every line is machine-parseable *)
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun l ->
         match Json.parse l with
         | Ok _ -> ()
         | Error m -> Alcotest.failf "unparseable log line (%s): %s" m l)

let test_log_levels () =
  let count = ref 0 in
  let log = Log.create ~level:Log.Warn (fun _ -> incr count) in
  Log.debug log "dropped";
  Log.info log "dropped";
  Log.warn log "kept";
  Log.error log "kept";
  Alcotest.(check int) "below-level records dropped" 2 !count;
  Alcotest.(check int) "dropped records do not consume seqs" 2
    (Log.sequence log);
  Alcotest.(check bool) "enabled reflects the level" false
    (Log.enabled log Log.Info);
  Alcotest.(check bool) "null logs nothing" false
    (Log.enabled Log.null Log.Error);
  (match Log.level_of_string "warning" with
  | Ok Log.Warn -> ()
  | _ -> Alcotest.fail "\"warning\" must parse as Warn");
  match Log.level_of_string "loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown level must be rejected"

(* Concurrent writers: lines never tear and seqs are a permutation of
   0..n-1 (the logger's mutex covers seq assignment and the sink call). *)
let test_log_concurrent_writers () =
  let lines = ref [] in
  let log = Log.create ~level:Log.Info (fun l -> lines := l :: !lines) in
  let domains = 8 and per_domain = 100 in
  ignore
    (Pool.run ~jobs:domains
       (List.init domains (fun d () ->
            for i = 1 to per_domain do
              Log.info log
                ~fields:[ ("d", Json.Num (float_of_int d)) ]
                (Printf.sprintf "w%d" i)
            done)));
  let seqs =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok j -> (
            match Option.bind (Json.member "seq" j) Json.to_float with
            | Some f -> int_of_float f
            | None -> Alcotest.failf "line without seq: %s" l)
        | Error m -> Alcotest.failf "torn line (%s): %s" m l)
      !lines
  in
  let n = domains * per_domain in
  Alcotest.(check int) "every line landed" n (List.length seqs);
  Alcotest.(check (list int)) "seqs are a permutation of 0..n-1"
    (List.init n Fun.id)
    (List.sort compare seqs)

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "basics" `Quick test_registry_basics;
          Alcotest.test_case "exposition format" `Quick test_exposition_format;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_determinism;
          QCheck_alcotest.to_alcotest prop_no_lost_counts;
          QCheck_alcotest.to_alcotest prop_histogram_merge_identity;
        ] );
      ( "log",
        [
          Alcotest.test_case "pinned-clock determinism" `Quick
            test_log_determinism;
          Alcotest.test_case "levels" `Quick test_log_levels;
          Alcotest.test_case "concurrent writers" `Quick
            test_log_concurrent_writers;
        ] );
    ]
