(* Tests for the inter-skeleton transformational rules (paper §6's proposed
   follow-up): structural rewrites, semantics preservation, and executive
   impact. *)

module V = Skel.Value
module Ir = Skel.Ir
module T = Skel.Transform

let value_testable = Alcotest.testable V.pp V.equal

let table () =
  Skel.Funtable.of_list
    [
      ("inc", 1, (fun v -> V.Int (V.to_int v + 1)), fun _ -> 1000.0);
      ("dbl", 1, (fun v -> V.Int (2 * V.to_int v)), fun _ -> 2000.0);
      ( "add",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 100.0 );
      ( "split1",
        2,
        (fun v ->
          match v with
          | V.Tuple [ V.Int n; x ] -> V.List (List.init n (fun _ -> x))
          | _ -> raise (V.Type_error "split1")),
        fun _ -> 100.0 );
      ( "merge_sum",
        1,
        (fun v -> V.Int (List.fold_left (fun a x -> a + V.to_int x) 0 (V.to_list v))),
        fun _ -> 100.0 );
      ( "divide",
        1,
        (fun v ->
          let n = V.to_int v in
          if n > 3 then V.Tuple [ V.List [ V.Int (n - 1); V.Int (n - 2) ]; V.Int 0 ]
          else V.Tuple [ V.List []; V.Int n ]),
        fun _ -> 500.0 );
    ]

let test_flatten_nested_pipes () =
  let nested =
    Ir.Pipe [ Ir.Seq "a"; Ir.Pipe [ Ir.Seq "b"; Ir.Pipe [ Ir.Seq "c" ] ]; Ir.Seq "d" ]
  in
  match T.flatten_pipes nested with
  | Ir.Pipe [ Ir.Seq "a"; Ir.Seq "b"; Ir.Seq "c"; Ir.Seq "d" ] -> ()
  | other -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Ir.pp other)

let test_flatten_singleton () =
  match T.flatten_pipes (Ir.Pipe [ Ir.Pipe [ Ir.Seq "x" ] ]) with
  | Ir.Seq "x" -> ()
  | other -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Ir.pp other)

let test_flatten_inside_itermem () =
  let prog =
    Ir.Itermem
      {
        input = "i";
        loop = Ir.Pipe [ Ir.Pipe [ Ir.Seq "a" ]; Ir.Seq "b" ];
        output = "o";
        init = V.Unit;
      }
  in
  match T.flatten_pipes prog with
  | Ir.Itermem { loop = Ir.Pipe [ Ir.Seq "a"; Ir.Seq "b" ]; _ } -> ()
  | other -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Ir.pp other)

let test_fuse_seq_preserves_semantics () =
  let t = table () in
  let prog = Ir.program "p" (Ir.Pipe [ Ir.Seq "inc"; Ir.Seq "dbl"; Ir.Seq "inc" ]) in
  let before = Skel.Sem.run t prog (V.Int 5) in
  let prog', applied = T.normalize t prog in
  Alcotest.(check value_testable) "same result" before
    (Skel.Sem.run t prog' (V.Int 5));
  Alcotest.(check value_testable) "which is 13" (V.Int 13) before;
  (* three seqs fuse into one *)
  (match prog'.Ir.body with
  | Ir.Seq _ -> ()
  | other -> Alcotest.failf "expected a single Seq, got %s" (Format.asprintf "%a" Ir.pp other));
  Alcotest.(check bool) "fuse rule reported" true
    (List.exists (fun a -> a.T.rule = "fuse-seq" && a.T.count >= 2) applied)

let test_fused_cost_is_summed () =
  let t = table () in
  let prog = Ir.program "p" (Ir.Pipe [ Ir.Seq "inc"; Ir.Seq "dbl" ]) in
  let prog', _ = T.normalize t prog in
  match prog'.Ir.body with
  | Ir.Seq fused ->
      Alcotest.(check (float 0.001)) "1000 + 2000" 3000.0
        (Skel.Funtable.cost t fused (V.Int 1))
  | _ -> Alcotest.fail "expected fusion"

let test_serialise_df () =
  let t = table () in
  let prog =
    Ir.program "p" (Ir.Df { nworkers = 1; comp = "dbl"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
  in
  let input = V.List [ V.Int 1; V.Int 2; V.Int 3 ] in
  let before = Skel.Sem.run t prog input in
  let prog', applied = T.normalize t prog in
  (match prog'.Ir.body with
  | Ir.Seq _ -> ()
  | other -> Alcotest.failf "expected Seq, got %s" (Format.asprintf "%a" Ir.pp other));
  Alcotest.(check value_testable) "same result" before (Skel.Sem.run t prog' input);
  Alcotest.(check bool) "rule reported" true
    (List.exists (fun a -> a.T.rule = "serialise-df") applied)

let test_serialise_tf () =
  let t = table () in
  let prog =
    Ir.program "p" (Ir.Tf { nworkers = 1; work = "divide"; acc = "add"; init = V.Int 0 })
  in
  let input = V.List [ V.Int 9 ] in
  let before = Skel.Sem.run t prog input in
  let prog', _ = T.normalize t prog in
  Alcotest.(check value_testable) "same result" before (Skel.Sem.run t prog' input)

let test_serialise_scm () =
  let t = table () in
  let prog =
    Ir.program "p"
      (Ir.Scm { nparts = 1; split = "split1"; compute = "dbl"; merge = "merge_sum" })
  in
  let before = Skel.Sem.run t prog (V.Int 7) in
  let prog', _ = T.normalize t prog in
  (match prog'.Ir.body with
  | Ir.Seq _ -> ()
  | _ -> Alcotest.fail "expected serialisation");
  Alcotest.(check value_testable) "same result" before (Skel.Sem.run t prog' (V.Int 7))

let test_multi_worker_farms_untouched () =
  let t = table () in
  let prog =
    Ir.program "p" (Ir.Df { nworkers = 4; comp = "dbl"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
  in
  let prog', applied = T.normalize t prog in
  Alcotest.(check bool) "df unchanged" true (prog'.Ir.body = prog.Ir.body);
  Alcotest.(check int) "nothing applied" 0 (List.length applied)

let test_normalized_program_validates () =
  let t = table () in
  let prog =
    Ir.program ~frames:2 "p"
      (Ir.Itermem
         {
           input = "inc";
           loop =
             Ir.Pipe
               [
                 Ir.Seq "inc";
                 Ir.Pipe [ Ir.Seq "dbl" ];
                 Ir.Df { nworkers = 1; comp = "dbl"; acc = "add"; init = V.Int 0; state = Ir.Stateless };
               ];
           output = "inc";
           init = V.Int 0;
         })
  in
  let prog', _ = T.normalize t prog in
  (match Ir.validate t prog' with
  | Ok () -> ()
  | Error m -> Alcotest.failf "normalized program invalid: %s" m);
  (* and it still expands + runs on the executive *)
  ignore (Procnet.Expand.expand t prog')

let test_normalization_reduces_processes () =
  let t = table () in
  let prog =
    Ir.program "p"
      (Ir.Pipe
         [
           Ir.Seq "inc";
           Ir.Seq "dbl";
           Ir.Df { nworkers = 1; comp = "dbl"; acc = "add"; init = V.Int 0; state = Ir.Stateless };
         ])
  in
  let before = Procnet.Graph.nnodes (Procnet.Expand.expand t prog) in
  let prog', _ = T.normalize t prog in
  let after = Procnet.Graph.nnodes (Procnet.Expand.expand t prog') in
  Alcotest.(check bool)
    (Printf.sprintf "%d processes -> %d" before after)
    true (after < before);
  Alcotest.(check int) "single fused process" 1 after

let test_executive_agrees_after_normalization () =
  let input = V.List (List.init 9 (fun i -> V.Int i)) in
  let t1 = table () in
  let prog =
    Ir.program "p"
      (Ir.Pipe
         [ Ir.Df { nworkers = 1; comp = "dbl"; acc = "add"; init = V.Int 0; state = Ir.Stateless } ])
  in
  let seq = Skel.Sem.run t1 prog input in
  let t2 = table () in
  let prog', _ = T.normalize t2 prog in
  let g = Procnet.Expand.expand t2 prog' in
  let arch = Archi.ring 2 in
  let r =
    Executive.run ~table:t2 ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:1 ~input ()
  in
  Alcotest.(check value_testable) "agree" seq r.Executive.value

(* Random skeletal pipelines: normalization never changes the semantics. *)
let stage_gen =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          return (Ir.Seq "inc");
          return (Ir.Seq "dbl");
          map
            (fun n -> Ir.Df { nworkers = 1 + n; comp = "dbl"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
            (int_bound 2);
        ]
    in
    let rec build depth =
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (1, map (fun stages -> Ir.Pipe stages) (list_size (int_range 1 3) (build (depth - 1))));
          ]
    in
    build 3)

let arbitrary_stage =
  QCheck.make stage_gen ~print:(fun s -> Format.asprintf "%a" Ir.pp s)

let prop_normalize_preserves_semantics =
  QCheck.Test.make ~name:"normalization preserves declarative semantics" ~count:100
    (QCheck.pair arbitrary_stage (QCheck.small_list QCheck.small_signed_int))
    (fun (stage, xs) ->
      (* Input must be a list iff the first stage is a farm; use a list and
         wrap Seqs to accept lists via df so types line up: instead, wrap the
         stage in a df-compatible harness by always feeding a list through a
         leading 1-worker farm when the stage starts with Df. Simpler: feed
         a list and skip programs whose first stage is a Seq. *)
      let starts_with_seq =
        let rec first = function
          | Ir.Seq _ -> true
          | Ir.Pipe (s :: _) -> first s
          | Ir.Pipe [] -> true
          | _ -> false
        in
        first stage
      in
      let input =
        if starts_with_seq then V.Int 3 else V.List (List.map (fun x -> V.Int x) xs)
      in
      (* A Df mid-pipeline needs a list; only keep programs where farms are
         first (or absent). *)
      let well_formed =
        let rec shape_ok ~first = function
          | Ir.Seq _ -> true
          | Ir.Df _ -> first
          | Ir.Pipe stages -> (
              match stages with
              | [] -> true
              | s :: rest ->
                  shape_ok ~first s
                  && List.for_all (fun s -> shape_ok ~first:false s) rest
                  && List.for_all (function Ir.Df _ -> false | _ -> true) rest)
          | _ -> false
        in
        shape_ok ~first:true stage
      in
      QCheck.assume well_formed;
      let t1 = table () in
      let prog = Ir.program "q" stage in
      let before = Skel.Sem.run t1 prog input in
      let t2 = table () in
      let prog', _ = T.normalize t2 prog in
      V.equal before (Skel.Sem.run t2 prog' input))

let () =
  Alcotest.run "transform"
    [
      ( "structure",
        [
          Alcotest.test_case "flatten nested pipes" `Quick test_flatten_nested_pipes;
          Alcotest.test_case "flatten singleton" `Quick test_flatten_singleton;
          Alcotest.test_case "flatten inside itermem" `Quick test_flatten_inside_itermem;
          Alcotest.test_case "multi-worker farms untouched" `Quick test_multi_worker_farms_untouched;
        ] );
      ( "rules",
        [
          Alcotest.test_case "fuse-seq semantics" `Quick test_fuse_seq_preserves_semantics;
          Alcotest.test_case "fused cost summed" `Quick test_fused_cost_is_summed;
          Alcotest.test_case "serialise df" `Quick test_serialise_df;
          Alcotest.test_case "serialise tf" `Quick test_serialise_tf;
          Alcotest.test_case "serialise scm" `Quick test_serialise_scm;
        ] );
      ( "integration",
        [
          Alcotest.test_case "normalized program validates" `Quick test_normalized_program_validates;
          Alcotest.test_case "fewer processes" `Quick test_normalization_reduces_processes;
          Alcotest.test_case "executive agrees" `Quick test_executive_agrees_after_normalization;
          QCheck_alcotest.to_alcotest prop_normalize_preserves_semantics;
        ] );
    ]
