(* The unified trace/telemetry layer: event model, simulator lifecycle
   recording, Chrome-trace and SVG exporters. *)

module V = Skel.Value
module Sim = Machine.Sim
module Event = Skipper_trace.Event
module Chrome = Skipper_trace.Chrome
module Svg = Skipper_trace.Svg

let contains ~affix s = Astring.String.is_infix ~affix s

(* A small data farm: one master, [nworkers] workers on a ring, plus an
   environment injection — exercises every lifecycle event kind. *)
let farm_run ?(trace = true) ?trace_limit ?(nworkers = 3) ?(nitems = 8) () =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "w" ~cost:(fun _ -> 10_000.0) (fun v -> v);
  Skel.Funtable.register table "k" ~arity:2 ~cost:(fun _ -> 100.0) (fun v ->
      fst (V.to_pair v));
  let prog =
    Skel.Ir.program "p"
      (Skel.Ir.Df { nworkers; comp = "w"; acc = "k"; init = V.Int 0; state = Skel.Ir.Stateless })
  in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring (nworkers + 1) in
  Executive.run ~trace ?trace_limit ~table ~arch
    ~placement:(Syndex.Place.canonical g arch)
    ~graph:g ~frames:1
    ~input:(V.List (List.init nitems (fun i -> V.Int i)))
    ()

(* ------------------------------------------------------------------ *)
(* Event model                                                         *)

let test_timeline_basics () =
  let tl = Event.create () in
  Alcotest.(check int) "empty" 0 (Event.length tl);
  Alcotest.(check bool) "not truncated" false (Event.truncated tl);
  Event.span tl ~lane:Event.compile_lane ~cat:"stage" ~name:"parse" ~time:0.0
    ~dur:1e-3 ();
  Event.instant tl ~lane:Event.env_lane ~cat:"inject" ~name:"in" ~time:2e-3 ();
  Event.span tl ~lane:Event.compile_lane ~cat:"stage" ~name:"expand" ~time:1e-3
    ~dur:0.5e-3 ();
  Alcotest.(check int) "three events" 3 (Event.length tl);
  (match Event.events tl with
  | [ a; b; c ] ->
      Alcotest.(check string) "emission order" "parse/in/expand"
        (String.concat "/" [ a.Event.name; b.Event.name; c.Event.name ])
  | _ -> Alcotest.fail "expected three events");
  (match Event.by_time tl with
  | [ a; b; c ] ->
      Alcotest.(check string) "time order" "parse/expand/in"
        (String.concat "/" [ a.Event.name; b.Event.name; c.Event.name ])
  | _ -> Alcotest.fail "expected three events");
  Event.mark_truncated tl;
  Alcotest.(check bool) "truncated sticks" true (Event.truncated tl)

let test_lane_conventions () =
  Alcotest.(check int) "compile" 0 Event.compile_track;
  Alcotest.(check int) "env" 1 Event.env_track;
  Alcotest.(check int) "links" 2 Event.links_track;
  Alcotest.(check int) "processor 0" 3 (Event.processor_track 0);
  let l = Event.link_lane ~src:1 ~dst:2 ~nprocs:4 in
  Alcotest.(check string) "link label" "P1->P2" l.Event.label;
  Alcotest.(check int) "link index" 6 l.Event.index;
  let p = Event.processor_lane ~proc:2 ~pid:7 ~name:"worker" in
  Alcotest.(check int) "processor track" 5 p.Event.track;
  Alcotest.(check int) "process lane" 7 p.Event.index

(* ------------------------------------------------------------------ *)
(* Simulator lifecycle recording                                       *)

let test_message_lifecycle_pairing () =
  let r = farm_run () in
  let events = Sim.trace (r.Executive.sim) in
  let sends = Hashtbl.create 64 and delivers = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.Sim.what with
      | Sim.Send { msg; _ } -> Hashtbl.replace sends msg ()
      | Sim.Deliver { msg; _ } -> Hashtbl.replace delivers msg ()
      | _ -> ())
    events;
  Alcotest.(check bool) "some messages" true (Hashtbl.length sends > 0);
  List.iter
    (fun e ->
      match e.Sim.what with
      | Sim.Deliver { msg; _ } | Sim.Recv { msg; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "message %d has a send" msg)
            true (Hashtbl.mem sends msg)
      | Sim.Hop { msg; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "hop %d has a send" msg)
            true (Hashtbl.mem sends msg)
      | _ -> ())
    events;
  (* every send was delivered: the farm drains fully *)
  Hashtbl.iter
    (fun msg () ->
      Alcotest.(check bool)
        (Printf.sprintf "message %d delivered" msg)
        true (Hashtbl.mem delivers msg))
    sends

let test_untraced_machine_records_nothing () =
  let r = farm_run ~trace:false () in
  Alcotest.(check int) "no events" 0 (List.length (Sim.trace r.Executive.sim));
  Alcotest.(check bool) "not truncated" false
    (Sim.trace_truncated r.Executive.sim);
  Alcotest.(check int) "empty timeline" 0
    (Event.length (Executive.timeline r))

let test_trace_truncation_flagged () =
  let r = farm_run ~trace_limit:10 () in
  let sim = r.Executive.sim in
  Alcotest.(check bool) "truncated" true (Sim.trace_truncated sim);
  Alcotest.(check int) "limit respected" 10 (List.length (Sim.trace sim));
  let tl = Executive.timeline r in
  Alcotest.(check bool) "timeline carries the flag" true (Event.truncated tl);
  Alcotest.(check bool) "chrome export carries the flag" true
    (contains ~affix:{|"truncated":true|} (Chrome.to_json tl));
  match Svg.gantt tl with
  | Ok svg ->
      Alcotest.(check bool) "svg carries the flag" true
        (contains ~affix:"trace truncated" svg)
  | Error msg -> Alcotest.failf "svg export failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let test_chrome_export_deterministic () =
  let json () = Chrome.to_json (Executive.timeline (farm_run ())) in
  let a = json () and b = json () in
  Alcotest.(check bool) "non-trivial" true (String.length a > 1000);
  Alcotest.(check string) "byte-identical across runs" a b

let test_chrome_export_shape () =
  let r = farm_run () in
  let json = Chrome.to_json (Executive.timeline r) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" affix) true
        (contains ~affix json))
    [
      {|"displayTimeUnit":"ms"|};
      {|"truncated":false|};
      {|"ph":"X"|};  (* spans *)
      {|"ph":"s"|};  (* flow starts *)
      {|"ph":"f"|};  (* flow ends *)
      {|"name":"process_name"|};
      {|"name":"links"|};
      {|"name":"environment"|};
      {|"name":"compute"|};
    ]

let test_compile_spans_on_timeline () =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "f" ~cost:(fun _ -> 1000.0) (fun v -> v);
  let prog = Skel.Ir.program "p" (Skel.Ir.Seq "f") in
  let c = Skipper_lib.Pipeline.compile_ir ~table prog in
  let tl = Skipper_lib.Pipeline.timeline c in
  let stage_names =
    List.filter_map
      (fun (e : Event.t) ->
        if e.Event.cat = "stage" then Some e.Event.name else None)
      (Event.events tl)
  in
  Alcotest.(check bool) "has the expand stage" true
    (List.mem "expand" stage_names);
  Alcotest.(check bool) "has the transform stage" true
    (List.mem "transform" stage_names);
  (* the combined export parses both worlds into one JSON document *)
  let json = Chrome.to_json tl in
  Alcotest.(check bool) "toolchain track present" true
    (contains ~affix:{|"name":"toolchain"|} json)

let test_svg_export () =
  let r = farm_run () in
  match Svg.gantt (Executive.timeline r) with
  | Error msg -> Alcotest.failf "svg export failed: %s" msg
  | Ok svg ->
      List.iter
        (fun affix ->
          Alcotest.(check bool) (Printf.sprintf "contains %s" affix) true
            (contains ~affix svg))
        [ "<svg"; "</svg>"; "P0"; {|marker-end="url(#arrow)"|}; "<title>" ]

let test_svg_empty_timeline_error () =
  match Svg.gantt (Event.create ()) with
  | Ok _ -> Alcotest.fail "expected an error on an empty timeline"
  | Error msg ->
      Alcotest.(check bool) "explains the cause" true
        (contains ~affix:"tracing was not enabled" msg)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_trace_counts_match_stats =
  QCheck.Test.make ~name:"trace send/hop counts match Sim.stats" ~count:25
    QCheck.(pair (int_range 1 4) (int_range 1 12))
    (fun (nworkers, nitems) ->
      let r = farm_run ~nworkers ~nitems () in
      let st = Sim.stats r.Executive.sim in
      let sends = ref 0 and hops = ref 0 in
      List.iter
        (fun e ->
          match e.Sim.what with
          | Sim.Send _ when e.Sim.proc >= 0 -> incr sends
          | Sim.Hop _ -> incr hops
          | _ -> ())
        (Sim.trace r.Executive.sim);
      !sends = st.Sim.messages && !hops = st.Sim.hops_total)

let prop_busy_spans_match_accounts =
  QCheck.Test.make ~name:"span durations sum to account busy time" ~count:25
    QCheck.(pair (int_range 1 4) (int_range 1 10))
    (fun (nworkers, nitems) ->
      let r = farm_run ~nworkers ~nitems () in
      let sim = r.Executive.sim in
      let busy = Hashtbl.create 16 in
      List.iter
        (fun e ->
          let add d =
            Hashtbl.replace busy e.Sim.pid
              (d +. Option.value ~default:0.0 (Hashtbl.find_opt busy e.Sim.pid))
          in
          match e.Sim.what with
          | Sim.Compute { dur; _ } | Sim.Send { dur; _ } | Sim.Recv { dur; _ }
            when e.Sim.pid >= 0 ->
              add dur
          | _ -> ())
        (Sim.trace sim);
      List.for_all2
        (fun (a : Sim.account) pid ->
          let traced = Option.value ~default:0.0 (Hashtbl.find_opt busy pid) in
          abs_float (traced -. a.Sim.busy_s) < 1e-9)
        (Sim.accounts sim)
        (List.init (List.length (Sim.accounts sim)) Fun.id))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "event model",
        [
          Alcotest.test_case "timeline basics" `Quick test_timeline_basics;
          Alcotest.test_case "lane conventions" `Quick test_lane_conventions;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "message pairing" `Quick
            test_message_lifecycle_pairing;
          Alcotest.test_case "untraced records nothing" `Quick
            test_untraced_machine_records_nothing;
          Alcotest.test_case "truncation flagged" `Quick
            test_trace_truncation_flagged;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome deterministic" `Quick
            test_chrome_export_deterministic;
          Alcotest.test_case "chrome shape" `Quick test_chrome_export_shape;
          Alcotest.test_case "compile spans" `Quick
            test_compile_spans_on_timeline;
          Alcotest.test_case "svg gantt" `Quick test_svg_export;
          Alcotest.test_case "svg empty error" `Quick
            test_svg_empty_timeline_error;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_trace_counts_match_stats;
          QCheck_alcotest.to_alcotest prop_busy_spans_match_accounts;
        ] );
    ]
