(* Tests for sequential emulation of the skeletal IR. *)

module V = Skel.Value
module Ir = Skel.Ir

let value_testable = Alcotest.testable V.pp V.equal

let arith_table () =
  Skel.Funtable.of_list
    [
      ("double", 1, (fun v -> V.Int (2 * V.to_int v)), fun _ -> 10.0);
      ("inc", 1, (fun v -> V.Int (V.to_int v + 1)), fun _ -> 10.0);
      ( "add",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 10.0 );
      ( "halves",
        2,
        (fun v ->
          match v with
          | V.Tuple [ V.Int n; V.List xs ] ->
              (* split into n chunks, padding the last *)
              let len = List.length xs in
              let chunk = max 1 ((len + n - 1) / n) in
              V.List
                (List.init n (fun i ->
                     V.List (List.filteri (fun j _ -> j / chunk = i) xs)))
          | _ -> raise (V.Type_error "halves")),
        fun _ -> 10.0 );
      ( "sum_list",
        1,
        (fun v -> V.Int (List.fold_left (fun acc x -> acc + V.to_int x) 0 (V.to_list v))),
        fun _ -> 10.0 );
      ( "sum_all",
        1,
        (fun v -> V.Int (List.fold_left (fun acc x -> acc + V.to_int x) 0 (V.to_list v))),
        fun _ -> 10.0 );
      ( "split_or_value",
        1,
        (fun v ->
          let n = V.to_int v in
          if n > 3 then
            V.Tuple [ V.List [ V.Int (n / 2); V.Int (n - (n / 2)) ]; V.Int 0 ]
          else V.Tuple [ V.List []; V.Int n ]),
        fun _ -> 10.0 );
      ("frame_input", 2, (fun v -> let x, i = V.to_pair v in V.pair x i), fun _ -> 1.0);
      ( "loop_step",
        1,
        (fun v ->
          let st, x = V.to_pair v in
          V.Tuple [ V.Int (V.to_int st + 1); V.pair st x ]),
        fun _ -> 1.0 );
      ("out_id", 1, Fun.id, fun _ -> 1.0);
    ]

let test_seq () =
  let t = arith_table () in
  Alcotest.(check value_testable) "seq" (V.Int 10)
    (Skel.Sem.eval_stage t (Ir.Seq "double") (V.Int 5))

let test_pipe () =
  let t = arith_table () in
  Alcotest.(check value_testable) "pipe" (V.Int 11)
    (Skel.Sem.eval_stage t (Ir.Pipe [ Ir.Seq "double"; Ir.Seq "inc" ]) (V.Int 5));
  Alcotest.(check value_testable) "empty pipe is identity" (V.Int 5)
    (Skel.Sem.eval_stage t (Ir.Pipe []) (V.Int 5))

let test_df () =
  let t = arith_table () in
  let stage = Ir.Df { nworkers = 3; comp = "double"; acc = "add"; init = V.Int 100; state = Ir.Stateless } in
  Alcotest.(check value_testable) "df" (V.Int 112)
    (Skel.Sem.eval_stage t stage (V.list [ V.Int 1; V.Int 2; V.Int 3 ]))

let test_df_rejects_non_list () =
  let t = arith_table () in
  let stage = Ir.Df { nworkers = 2; comp = "double"; acc = "add"; init = V.Int 0; state = Ir.Stateless } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Skel.Sem.eval_stage t stage (V.Int 1));
       false
     with Skel.Sem.Emulation_error _ -> true)

let test_scm () =
  let t = arith_table () in
  let stage =
    Ir.Scm { nparts = 2; split = "halves"; compute = "sum_list"; merge = "sum_all" }
  in
  Alcotest.(check value_testable) "scm sums" (V.Int 10)
    (Skel.Sem.eval_stage t stage (V.list [ V.Int 1; V.Int 2; V.Int 3; V.Int 4 ]))

let test_tf () =
  let t = arith_table () in
  let stage =
    Ir.Tf { nworkers = 2; work = "split_or_value"; acc = "add"; init = V.Int 0 }
  in
  (* 10 splits into 5+5, each into 2+3 -> leaves 2,3,2,3 *)
  Alcotest.(check value_testable) "tf" (V.Int 10)
    (Skel.Sem.eval_stage t stage (V.list [ V.Int 10 ]))

let test_itermem_run () =
  let t = arith_table () in
  let prog =
    Ir.program ~frames:3 "loop"
      (Ir.Itermem
         { input = "frame_input"; loop = Ir.Seq "loop_step"; output = "out_id"; init = V.Int 0 })
  in
  match Skel.Sem.run t prog (V.Str "cam") with
  | V.Tuple [ V.Int final; V.List outs ] ->
      Alcotest.(check int) "final state" 3 final;
      Alcotest.(check int) "outputs" 3 (List.length outs);
      (* Output i pairs state i with the input pair (cam, i). *)
      (match List.nth outs 2 with
      | V.Tuple [ V.Int st; V.Tuple [ V.Str "cam"; V.Int i ] ] ->
          Alcotest.(check int) "state at frame 2" 2 st;
          Alcotest.(check int) "frame index" 2 i
      | v -> Alcotest.failf "unexpected output %s" (V.to_string v))
  | v -> Alcotest.failf "unexpected result %s" (V.to_string v)

let test_itermem_rejected_in_stage () =
  let t = arith_table () in
  let stage =
    Ir.Itermem { input = "frame_input"; loop = Ir.Seq "inc"; output = "out_id"; init = V.Unit }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Skel.Sem.eval_stage t stage V.Unit);
       false
     with Skel.Sem.Emulation_error _ -> true)

let test_run_plain_program () =
  let t = arith_table () in
  let prog = Ir.program "p" (Ir.Seq "inc") in
  Alcotest.(check value_testable) "plain run" (V.Int 8) (Skel.Sem.run t prog (V.Int 7))

let prop_df_matches_skeleton =
  QCheck.Test.make ~name:"IR df matches the declarative combinator" ~count:200
    QCheck.(pair (int_range 1 8) (small_list small_signed_int))
    (fun (n, xs) ->
      let t = arith_table () in
      let stage = Ir.Df { nworkers = n; comp = "double"; acc = "add"; init = V.Int 0; state = Ir.Stateless } in
      let via_ir =
        Skel.Sem.eval_stage t stage (V.list (List.map (fun x -> V.Int x) xs))
      in
      let direct = Skel.Skeletons.df n (fun x -> 2 * x) ( + ) 0 xs in
      V.equal via_ir (V.Int direct))


let test_run_cost_accounts_cycles () =
  let t = arith_table () in
  let prog = Ir.program "p" (Ir.Pipe [ Ir.Seq "double"; Ir.Seq "inc" ]) in
  let v, cycles = Skel.Sem.run_cost t prog (V.Int 5) in
  Alcotest.(check value_testable) "value" (V.Int 11) v;
  Alcotest.(check (float 0.001)) "two calls at 10 cycles" 20.0 cycles

let test_eval_stage_cost_df () =
  let t = arith_table () in
  let stage = Ir.Df { nworkers = 3; comp = "double"; acc = "add"; init = V.Int 0; state = Ir.Stateless } in
  let v, cycles =
    Skel.Sem.eval_stage_cost t stage (V.list [ V.Int 1; V.Int 2; V.Int 3 ])
  in
  Alcotest.(check value_testable) "value" (V.Int 12) v;
  (* 3 comps + 3 accs, each 10 cycles *)
  Alcotest.(check (float 0.001)) "cycles" 60.0 cycles

let () =
  Alcotest.run "sem"
    [
      ( "stages",
        [
          Alcotest.test_case "seq" `Quick test_seq;
          Alcotest.test_case "pipe" `Quick test_pipe;
          Alcotest.test_case "df" `Quick test_df;
          Alcotest.test_case "df rejects non-list" `Quick test_df_rejects_non_list;
          Alcotest.test_case "scm" `Quick test_scm;
          Alcotest.test_case "tf" `Quick test_tf;
        ] );
      ( "programs",
        [
          Alcotest.test_case "itermem stream" `Quick test_itermem_run;
          Alcotest.test_case "itermem rejected mid-pipeline" `Quick test_itermem_rejected_in_stage;
          Alcotest.test_case "plain program" `Quick test_run_plain_program;
          Alcotest.test_case "run_cost accounting" `Quick test_run_cost_accounts_cycles;
          Alcotest.test_case "eval_stage_cost df" `Quick test_eval_stage_cost_df;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_df_matches_skeleton ]);
    ]
