(* Tests for the SynDEx-style mapper: DAG derivation, HEFT scheduling,
   fixed placements, schedule validation and deadlock freedom. *)

module G = Procnet.Graph
module V = Skel.Value

let tracking_like_graph ?(nworkers = 4) () =
  Procnet.Expand.expand_stage
    (Skel.Ir.Itermem
       {
         input = "in";
         loop =
           Skel.Ir.Pipe
             [
               Skel.Ir.Seq "pre";
               Skel.Ir.Df { nworkers; comp = "c"; acc = "a"; init = V.Int 0; state = Skel.Ir.Stateless };
               Skel.Ir.Seq "post";
             ];
         output = "out";
         init = V.Int 0;
       })

let cost = Syndex.Cost.make ()

let test_dag_splits_masters_and_mem () =
  let g = tracking_like_graph () in
  let dag = Syndex.Dag.of_graph cost g in
  let parts =
    Array.to_list dag.Syndex.Dag.ops |> List.map (fun op -> op.Syndex.Dag.part)
  in
  let count p = List.length (List.filter (( = ) p) parts) in
  Alcotest.(check int) "one dispatch" 1 (count Syndex.Dag.Dispatch);
  Alcotest.(check int) "one collect" 1 (count Syndex.Dag.Collect);
  Alcotest.(check int) "one emit" 1 (count Syndex.Dag.Emit);
  Alcotest.(check int) "one store" 1 (count Syndex.Dag.Store);
  Alcotest.(check int) "colocation pairs" 2 (List.length dag.Syndex.Dag.colocated)

let test_dag_topological_order () =
  let g = tracking_like_graph () in
  let dag = Syndex.Dag.of_graph cost g in
  let order = Syndex.Dag.topological_order dag in
  Alcotest.(check int) "covers all ops" (Array.length dag.Syndex.Dag.ops)
    (List.length order);
  (* position map respects every dependency *)
  let pos = Hashtbl.create 16 in
  List.iteri (fun i op -> Hashtbl.replace pos op i) order;
  List.iter
    (fun (d : Syndex.Dag.dep) ->
      Alcotest.(check bool) "edge forward" true
        (Hashtbl.find pos d.Syndex.Dag.src_op < Hashtbl.find pos d.Syndex.Dag.dst_op))
    dag.Syndex.Dag.deps

let test_heft_schedule_validates () =
  let g = tracking_like_graph () in
  List.iter
    (fun arch ->
      let s = Syndex.Heft.map cost arch g in
      (match Syndex.Schedule.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid schedule on %s: %s" (Archi.name arch) m);
      Alcotest.(check bool)
        (Printf.sprintf "deadlock-free on %s" (Archi.name arch))
        true (Syndex.Schedule.deadlock_free s);
      Alcotest.(check bool) "positive makespan" true (s.Syndex.Schedule.makespan > 0.0))
    [ Archi.ring 1; Archi.ring 4; Archi.ring 8; Archi.star 5; Archi.grid 2 3;
      Archi.fully_connected 6 ]

let test_heft_colocation_respected () =
  let g = tracking_like_graph () in
  let s = Syndex.Heft.map cost (Archi.ring 6) g in
  (* all ops of a node share its placed processor (validate checks this,
     but assert directly for masters). *)
  List.iter
    (fun (op : Syndex.Schedule.op_slot) ->
      Alcotest.(check int) "op on placed proc"
        s.Syndex.Schedule.placement.(op.Syndex.Schedule.node)
        op.Syndex.Schedule.proc)
    s.Syndex.Schedule.ops

let test_canonical_placement () =
  let g = tracking_like_graph ~nworkers:4 () in
  let arch = Archi.ring 5 in
  let placement = Syndex.Place.canonical g arch in
  Array.iter
    (fun (nd : G.node) ->
      match nd.G.kind with
      | G.DfWorker _ ->
          Alcotest.(check bool) "worker spread" true (placement.(nd.G.id) >= 0)
      | G.DfMaster _ | G.Mem _ | G.Join | G.Fork | G.Input _ | G.Output _ ->
          Alcotest.(check int) "control on P0" 0 placement.(nd.G.id)
      | _ -> ())
    (G.nodes g);
  (* the four workers land on P1..P4, one each *)
  let worker_procs =
    Array.to_list (G.nodes g)
    |> List.filter_map (fun (nd : G.node) ->
           match nd.G.kind with G.DfWorker _ -> Some placement.(nd.G.id) | _ -> None)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "fig-1 layout" [ 1; 2; 3; 4 ] worker_procs

let test_of_placement_validates () =
  let g = tracking_like_graph () in
  let arch = Archi.ring 5 in
  List.iter
    (fun placement ->
      let s = Syndex.Place.of_placement cost arch g placement in
      (match Syndex.Schedule.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid: %s" m);
      Alcotest.(check bool) "deadlock-free" true (Syndex.Schedule.deadlock_free s))
    [ Syndex.Place.canonical g arch; Syndex.Place.round_robin g arch ]

let test_of_placement_rejects_bad_input () =
  let g = tracking_like_graph () in
  let arch = Archi.ring 3 in
  Alcotest.(check bool) "wrong length" true
    (try ignore (Syndex.Place.of_placement cost arch g [| 0 |]); false
     with Invalid_argument _ -> true);
  let p = Array.make (G.nnodes g) 99 in
  Alcotest.(check bool) "missing processor" true
    (try ignore (Syndex.Place.of_placement cost arch g p); false
     with Invalid_argument _ -> true)

let test_single_processor_has_no_comms () =
  let g = tracking_like_graph () in
  let s = Syndex.Heft.map cost (Archi.ring 1) g in
  Alcotest.(check int) "no communications" 0 (List.length s.Syndex.Schedule.comms)

let test_heft_beats_or_matches_single_proc () =
  (* With parallel work available, more processors should not predict a
     (much) longer makespan than one processor. *)
  let fn_cycles name = if name = "c" then Some 200_000.0 else None in
  let heavy = Syndex.Cost.make ~fn_cycles () in
  let g = tracking_like_graph ~nworkers:6 () in
  let m1 = (Syndex.Heft.map heavy (Archi.ring 1) g).Syndex.Schedule.makespan in
  let m8 = (Syndex.Heft.map heavy (Archi.ring 8) g).Syndex.Schedule.makespan in
  Alcotest.(check bool) "parallel is predicted faster" true (m8 < m1)

let test_link_orders_cover_comms () =
  let g = tracking_like_graph () in
  let s = Syndex.Heft.map cost (Archi.ring 8) g in
  let per_link = Syndex.Schedule.link_orders s in
  let total_hops =
    List.fold_left (fun acc (_, comms) -> acc + List.length comms) 0 per_link
  in
  let expected_hops =
    List.fold_left
      (fun acc (c : Syndex.Schedule.comm_slot) ->
        acc + List.length c.Syndex.Schedule.route - 1)
      0 s.Syndex.Schedule.comms
  in
  Alcotest.(check int) "every hop appears once" expected_hops total_hops

let test_cost_model_defaults () =
  let model = Syndex.Cost.make ~control_cycles:7.0 ~default_fn_cycles:9.0 () in
  let g = tracking_like_graph () in
  Array.iter
    (fun (nd : G.node) ->
      let c = model.Syndex.Cost.node_cycles nd in
      match nd.G.kind with
      | G.Join | G.Fork | G.Mem _ -> Alcotest.(check (float 0.0)) "control" 7.0 c
      | _ -> Alcotest.(check (float 0.0)) "function" 9.0 c)
    (G.nodes g)

let test_node_function () =
  Alcotest.(check (option string)) "worker fn" (Some "c")
    (Syndex.Cost.node_function { G.id = 0; kind = G.DfWorker { comp = "c" }; label = "" });
  Alcotest.(check (option string)) "join has none" None
    (Syndex.Cost.node_function { G.id = 0; kind = G.Join; label = "" })

(* -- pluggable mapper framework -- *)

(* Strategy-generic validity: a schedule is well-formed for a graph when it
   validates, is deadlock-free, places every DAG op exactly once, and
   starts no op before all its DAG predecessors have finished. *)
let mapper_schedule_ok ~name model g (s : Syndex.Schedule.t) =
  let dag = Syndex.Dag.of_graph model g in
  (match Syndex.Schedule.validate s with
  | Ok () -> ()
  | Error m -> QCheck.Test.fail_reportf "%s: invalid schedule: %s" name m);
  if not (Syndex.Schedule.deadlock_free s) then
    QCheck.Test.fail_reportf "%s: schedule not deadlock-free" name;
  let slots = Hashtbl.create 64 in
  List.iter
    (fun (o : Syndex.Schedule.op_slot) ->
      let key = (o.Syndex.Schedule.node, o.Syndex.Schedule.part) in
      if Hashtbl.mem slots key then
        QCheck.Test.fail_reportf "%s: node %d op placed twice" name
          o.Syndex.Schedule.node;
      Hashtbl.replace slots key o)
    s.Syndex.Schedule.ops;
  if Hashtbl.length slots <> Array.length dag.Syndex.Dag.ops then
    QCheck.Test.fail_reportf "%s: %d op slots for %d DAG ops" name
      (Hashtbl.length slots)
      (Array.length dag.Syndex.Dag.ops);
  let slot_of op_id =
    let op = dag.Syndex.Dag.ops.(op_id) in
    match Hashtbl.find_opt slots (op.Syndex.Dag.node, op.Syndex.Dag.part) with
    | Some slot -> slot
    | None -> QCheck.Test.fail_reportf "%s: DAG op %d has no slot" name op_id
  in
  List.iter
    (fun (d : Syndex.Dag.dep) ->
      let src = slot_of d.Syndex.Dag.src_op
      and dst = slot_of d.Syndex.Dag.dst_op in
      if dst.Syndex.Schedule.start < src.Syndex.Schedule.finish -. 1e-9 then
        QCheck.Test.fail_reportf
          "%s: dependency %d -> %d violated (dst starts %.9f before src ends %.9f)"
          name d.Syndex.Dag.src_op d.Syndex.Dag.dst_op
          dst.Syndex.Schedule.start src.Syndex.Schedule.finish)
    dag.Syndex.Dag.deps;
  true

let prop_all_mappers_valid =
  QCheck.Test.make
    ~name:"every registered mapper yields a well-formed schedule" ~count:40
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 1 8))
    (fun (nworkers, nparts, nprocs) ->
      let g =
        Procnet.Expand.expand_stage
          (Skel.Ir.Pipe
             [
               Skel.Ir.Scm { nparts; split = "s"; compute = "c"; merge = "m" };
               Skel.Ir.Df { nworkers; comp = "c2"; acc = "a"; init = V.Int 0; state = Skel.Ir.Stateless };
             ])
      in
      let arch = Archi.ring nprocs in
      List.for_all
        (fun (m : Syndex.Mapper.t) ->
          mapper_schedule_ok ~name:m.Syndex.Mapper.name cost g
            (Syndex.Mapper.map m cost arch g))
        (Syndex.Mapper.registered ()))

let test_registry_names () =
  let names = Syndex.Mapper.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "heft"; "canonical"; "roundrobin"; "throughput"; "bicriteria" ];
  Alcotest.(check bool) "find heft" true
    (Option.is_some (Syndex.Mapper.find "heft"));
  Alcotest.(check (option string)) "find unknown" None
    (Option.map (fun (m : Syndex.Mapper.t) -> m.Syndex.Mapper.name)
       (Syndex.Mapper.find "no-such-mapper"))

let test_frontier_points_undominated () =
  let g = tracking_like_graph ~nworkers:4 () in
  let arch = Archi.ring 6 in
  List.iter
    (fun (m : Syndex.Mapper.t) ->
      let pts = Syndex.Mapper.frontier m cost arch g in
      Alcotest.(check bool)
        (m.Syndex.Mapper.name ^ ": frontier nonempty")
        true (pts <> []);
      List.iter
        (fun (p : Syndex.Mapper.point) ->
          (match Syndex.Schedule.validate p.Syndex.Mapper.point_schedule with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s/%s: invalid schedule: %s"
                m.Syndex.Mapper.name p.Syndex.Mapper.point_label e);
          let dominated =
            List.exists
              (fun (q : Syndex.Mapper.point) ->
                q != p
                && q.Syndex.Mapper.point_latency <= p.Syndex.Mapper.point_latency
                && q.Syndex.Mapper.point_period <= p.Syndex.Mapper.point_period
                && (q.Syndex.Mapper.point_latency < p.Syndex.Mapper.point_latency
                   || q.Syndex.Mapper.point_period < p.Syndex.Mapper.point_period))
              pts
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s is undominated" m.Syndex.Mapper.name
               p.Syndex.Mapper.point_label)
            false dominated)
        pts)
    (Syndex.Mapper.registered ())

let test_pareto_filter () =
  let s = Syndex.Heft.map cost (Archi.ring 2) (tracking_like_graph ()) in
  let pt label lat per =
    {
      Syndex.Mapper.point_label = label;
      point_schedule = s;
      point_latency = lat;
      point_period = per;
    }
  in
  let pts =
    Syndex.Mapper.pareto
      [ pt "a" 1.0 5.0; pt "b" 2.0 4.0; pt "c" 3.0 4.0; pt "d" 2.0 4.0 ]
  in
  Alcotest.(check (list string)) "dominated and coincident points dropped"
    [ "a"; "b" ]
    (List.map (fun p -> p.Syndex.Mapper.point_label) pts)

let test_throughput_period_beats_heft_prediction () =
  (* A pure 6-stage chain: HEFT minimises latency by serialising it, so its
     resource period is the whole chain; the interval mapper's bottleneck
     stage must predict a strictly shorter steady-state period. *)
  let g =
    Procnet.Expand.expand_stage
      (Skel.Ir.Pipe (List.init 6 (fun i -> Skel.Ir.Seq (Printf.sprintf "s%d" i))))
  in
  let model = Syndex.Cost.make ~fn_cycles:(fun _ -> Some 40_000.0) () in
  let arch = Archi.ring 8 in
  let heft = Syndex.Heft.map model arch g in
  let tp =
    Syndex.Mapper.map
      (Option.get (Syndex.Mapper.find "throughput"))
      model arch g
  in
  Alcotest.(check bool) "pipelining metadata attached" true
    (Option.is_some tp.Syndex.Schedule.pipeline);
  Alcotest.(check bool)
    (Printf.sprintf "predicted period %.6f < %.6f"
       (Syndex.Schedule.period tp) (Syndex.Schedule.period heft))
    true
    (Syndex.Schedule.period tp < Syndex.Schedule.period heft)

(* -- HEFT determinism -- *)

let test_heft_tie_break_pin () =
  (* Uniform costs tie the upward ranks and finish times everywhere, so
     this placement is entirely the product of the documented tie-breaks
     (equal ranks -> lowest node id, equal finish -> lowest processor id).
     Any comparator change shows up as a different array, and two runs must
     agree byte-for-byte. *)
  let uniform =
    Syndex.Cost.make ~control_cycles:1000.0 ~default_fn_cycles:1000.0 ()
  in
  let g = tracking_like_graph ~nworkers:4 () in
  let arch = Archi.ring 4 in
  let s1 = Syndex.Heft.map uniform arch g in
  let s2 = Syndex.Heft.map uniform arch g in
  Alcotest.(check (array int)) "deterministic placement"
    s1.Syndex.Schedule.placement s2.Syndex.Schedule.placement;
  Alcotest.(check (list (pair int int))) "deterministic op slots"
    (List.map
       (fun (o : Syndex.Schedule.op_slot) -> (o.Syndex.Schedule.node, o.Syndex.Schedule.proc))
       s1.Syndex.Schedule.ops)
    (List.map
       (fun (o : Syndex.Schedule.op_slot) -> (o.Syndex.Schedule.node, o.Syndex.Schedule.proc))
       s2.Syndex.Schedule.ops);
  Alcotest.(check (array int)) "pinned tie-break placement"
    [| 0; 1; 0; 0; 0; 0; 0; 0; 0; 0; 1; 0 |]
    s1.Syndex.Schedule.placement

let prop_heft_always_valid =
  QCheck.Test.make ~name:"HEFT schedules validate on random configs" ~count:60
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 10))
    (fun (nworkers, nparts, nprocs) ->
      let g =
        Procnet.Expand.expand_stage
          (Skel.Ir.Pipe
             [
               Skel.Ir.Scm { nparts; split = "s"; compute = "c"; merge = "m" };
               Skel.Ir.Df { nworkers; comp = "c2"; acc = "a"; init = V.Int 0; state = Skel.Ir.Stateless };
             ])
      in
      let s = Syndex.Heft.map cost (Archi.ring nprocs) g in
      Result.is_ok (Syndex.Schedule.validate s) && Syndex.Schedule.deadlock_free s)

let () =
  Alcotest.run "syndex"
    [
      ( "dag",
        [
          Alcotest.test_case "splits masters and mem" `Quick test_dag_splits_masters_and_mem;
          Alcotest.test_case "topological order" `Quick test_dag_topological_order;
        ] );
      ( "heft",
        [
          Alcotest.test_case "schedules validate" `Quick test_heft_schedule_validates;
          Alcotest.test_case "colocation respected" `Quick test_heft_colocation_respected;
          Alcotest.test_case "single proc no comms" `Quick test_single_processor_has_no_comms;
          Alcotest.test_case "parallel predicted faster" `Quick test_heft_beats_or_matches_single_proc;
          Alcotest.test_case "tie-break pin" `Quick test_heft_tie_break_pin;
          QCheck_alcotest.to_alcotest prop_heft_always_valid;
        ] );
      ( "mappers",
        [
          Alcotest.test_case "registry names" `Quick test_registry_names;
          Alcotest.test_case "frontier undominated" `Quick test_frontier_points_undominated;
          Alcotest.test_case "pareto filter" `Quick test_pareto_filter;
          Alcotest.test_case "throughput predicted period" `Quick
            test_throughput_period_beats_heft_prediction;
          QCheck_alcotest.to_alcotest prop_all_mappers_valid;
        ] );
      ( "placements",
        [
          Alcotest.test_case "canonical layout" `Quick test_canonical_placement;
          Alcotest.test_case "of_placement validates" `Quick test_of_placement_validates;
          Alcotest.test_case "of_placement rejects bad input" `Quick test_of_placement_rejects_bad_input;
        ] );
      ( "model",
        [
          Alcotest.test_case "link orders cover comms" `Quick test_link_orders_cover_comms;
          Alcotest.test_case "cost defaults" `Quick test_cost_model_defaults;
          Alcotest.test_case "node_function" `Quick test_node_function;
        ] );
    ]
