(* Determinism suite: parallel sweeps must be observationally invisible.
   The domain pool farms self-contained simulation jobs across OCaml 5
   domains; everything an observer can capture — trace JSON, metrics JSON,
   fault tallies, result ordering — must be byte-identical to a sequential
   run. These tests, plus the golden field-set pins at the bottom, are what
   CI's --jobs 1 vs --jobs 4 byte-comparison of bench artifacts rests on. *)

module V = Skel.Value
module Sim = Machine.Sim
module Dp = Support.Domain_pool
module Chrome = Skipper_trace.Chrome

(* Parallelism degree of the suite itself: SKIPPER_JOBS if set, else 4 so
   the pool really spawns domains even on a small CI machine (domains
   timeshare when cores are short; determinism must hold regardless). *)
let pool_jobs = Dp.jobs_from_env ~default:4 ()

(* ------------------------------------------------------------------ *)
(* A self-contained simulation job: a df farm on a ring with an optional
   fault plan and recovery — the same shape the bench sweeps farm out.    *)

type plan =
  | Healthy
  | Drop_nth of int
  | Dup_every of int
  | Delay_every of int
  | Prob_drop of float * int  (* probability, seed *)

type params = {
  nworkers : int;
  nitems : int;
  frames : int;
  plan : plan;
  recover : bool;
  mode : Skel.Ir.state_mode;  (* stateful farms must be as invisible *)
  checkpoint : int option;  (* durable master changes the wire protocol *)
}

(* The identity comp happens to satisfy every mode's contract: a
   [(state, x)] payload comes back as a [(state', y)] pair unchanged. *)
let init_for p =
  match p.mode with
  | Skel.Ir.Stateless | Skel.Ir.Accumulator -> V.Int 0
  | Skel.Ir.Read_only -> V.Tuple [ V.Int 1; V.Int 0 ]
  | Skel.Ir.Owner ->
      V.Tuple [ V.List (List.init p.nworkers (fun _ -> V.Int 0)); V.Int 0 ]
  | Skel.Ir.Resource -> V.Tuple [ V.Int 0; V.Int 0 ]

let run_job p =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "w" ~cost:(fun _ -> 10_000.0) (fun v -> v);
  Skel.Funtable.register table "k" ~arity:2 ~cost:(fun _ -> 100.0) (fun v ->
      fst (V.to_pair v));
  let prog =
    Skel.Ir.program "p"
      (Skel.Ir.Df { nworkers = p.nworkers; comp = "w"; acc = "k"; init = init_for p; state = p.mode })
  in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring (p.nworkers + 1) in
  let link_faults =
    match p.plan with
    | Healthy -> []
    | Drop_nth k -> [ Sim.link_fault ~schedule:(Sim.Nth k) Sim.Drop ]
    | Dup_every k -> [ Sim.link_fault ~schedule:(Sim.Every k) Sim.Duplicate ]
    | Delay_every k -> [ Sim.link_fault ~schedule:(Sim.Every k) (Sim.Delay 2e-3) ]
    | Prob_drop (pr, seed) ->
        [ Sim.link_fault ~schedule:(Sim.Prob (pr, seed)) Sim.Drop ]
  in
  let recovery = if p.recover then Some (Executive.recovery 5e-3) else None in
  Executive.run ~trace:true ~link_faults ?recovery
    ?checkpoint_every:p.checkpoint ~table ~arch
    ~placement:(Syndex.Place.canonical g arch)
    ~graph:g ~frames:p.frames
    ?input_period:(if p.frames > 1 then Some 0.01 else None)
    ~input:(V.List (List.init p.nitems (fun i -> V.Int i)))
    ()

(* Everything an observer can capture from a run, as bytes. *)
let fingerprint (r : Executive.result) =
  ( Chrome.to_json (Executive.timeline r),
    Machine.Metrics.to_json (Executive.metrics r) )

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)

let test_submit_order () =
  let results = Dp.run ~jobs:pool_jobs (List.init 16 (fun i () -> i)) in
  Alcotest.(check (list int)) "results in submit order" (List.init 16 Fun.id)
    results

let test_jobs1_equals_jobs4 () =
  let thunks () = List.init 9 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "sequential and parallel results equal"
    (Dp.run ~jobs:1 (thunks ()))
    (Dp.run ~jobs:pool_jobs (thunks ()))

exception Boom of int

let test_earliest_exception_wins () =
  let ran = Atomic.make 0 in
  let job i () =
    Atomic.incr ran;
    if i = 1 || i = 3 then raise (Boom i) else i
  in
  (match Dp.run ~jobs:pool_jobs (List.init 6 job) with
  | _ -> Alcotest.fail "expected the pool to re-raise"
  | exception Boom i ->
      Alcotest.(check int) "earliest submitted failure re-raised" 1 i);
  Alcotest.(check int) "every job still ran" 6 (Atomic.get ran)

let test_stats_sanity () =
  let _, stats =
    Dp.run_stats ~jobs:3 (List.init 7 (fun i () -> Sys.opaque_identity i))
  in
  Alcotest.(check int) "njobs" 7 stats.Dp.njobs;
  Alcotest.(check bool) "domains within bounds" true
    (stats.Dp.domains >= 1 && stats.Dp.domains <= 3);
  Alcotest.(check int) "one span per job" 7 (List.length stats.Dp.spans);
  Alcotest.(check (list int)) "spans in submit order" (List.init 7 Fun.id)
    (List.map (fun (s : Dp.span) -> s.Dp.job) stats.Dp.spans);
  List.iter
    (fun (s : Dp.span) ->
      Alcotest.(check bool) "span worker in range" true
        (s.Dp.domain >= 0 && s.Dp.domain < stats.Dp.domains);
      Alcotest.(check bool) "span well-formed" true
        (s.Dp.start_s >= 0.0 && s.Dp.finish_s >= s.Dp.start_s))
    stats.Dp.spans;
  Alcotest.(check int) "jobs_run sums to njobs" 7
    (Array.fold_left ( + ) 0 stats.Dp.jobs_run);
  Alcotest.(check bool) "speedup positive" true (Dp.speedup stats > 0.0)

(* ------------------------------------------------------------------ *)
(* Byte-identical observations through the pool                        *)

let gen_params =
  QCheck.Gen.(
    let plan =
      oneof
        [
          return Healthy;
          map (fun k -> Drop_nth k) (int_range 1 6);
          map (fun k -> Dup_every k) (int_range 2 6);
          map (fun k -> Delay_every k) (int_range 2 6);
          map2
            (fun p seed -> Prob_drop (float_of_int p /. 100.0, seed))
            (int_range 0 15) (int_range 0 999);
        ]
    in
    let mode =
      oneofl
        [
          Skel.Ir.Stateless; Skel.Ir.Read_only; Skel.Ir.Owner;
          Skel.Ir.Accumulator; Skel.Ir.Resource;
        ]
    in
    let checkpoint = oneof [ return None; map Option.some (int_range 1 3) ] in
    map
      (fun ((nworkers, nitems, frames, recover, plan), (mode, checkpoint)) ->
        (* reissue-on-timeout recovery composes with neither the stateful
           engine nor checkpointing; the executive rejects the pair *)
        let recover =
          recover && mode = Skel.Ir.Stateless && checkpoint = None
        in
        { nworkers; nitems; frames; plan; recover; mode; checkpoint })
      (tup2
         (tup5 (int_range 1 4) (int_range 1 12) (int_range 1 2) bool plan)
         (tup2 mode checkpoint)))

let print_params p =
  let plan =
    match p.plan with
    | Healthy -> "healthy"
    | Drop_nth k -> Printf.sprintf "drop-nth %d" k
    | Dup_every k -> Printf.sprintf "dup-every %d" k
    | Delay_every k -> Printf.sprintf "delay-every %d" k
    | Prob_drop (pr, seed) -> Printf.sprintf "prob-drop %.2f seed %d" pr seed
  in
  Printf.sprintf "{workers=%d; items=%d; frames=%d; %s; recover=%b; %s; ckpt=%s}"
    p.nworkers p.nitems p.frames plan p.recover
    (Skel.Ir.state_mode_name p.mode)
    (match p.checkpoint with None -> "-" | Some k -> string_of_int k)

let prop_pool_run_byte_identical =
  QCheck.Test.make ~name:"pooled run == sequential run (trace+metrics bytes)"
    ~count:20
    (QCheck.make ~print:print_params gen_params)
    (fun p ->
      let trace_seq, metrics_seq = fingerprint (run_job p) in
      (* three copies racing on distinct domains: any cross-domain leak in
         the simulator or the inference counter shows up as a byte diff *)
      let pooled =
        Dp.run ~jobs:pool_jobs
          (List.init 3 (fun _ () -> fingerprint (run_job p)))
      in
      List.for_all
        (fun (trace, metrics) -> trace = trace_seq && metrics = metrics_seq)
        pooled)

let test_seeded_fault_tally_reproducible () =
  let p =
    { nworkers = 3; nitems = 10; frames = 1; plan = Prob_drop (0.25, 7);
      recover = false; mode = Skel.Ir.Stateless; checkpoint = None }
  in
  let a = run_job p and b = run_job p in
  let ta = Sim.fault_tally a.Executive.sim
  and tb = Sim.fault_tally b.Executive.sim in
  Alcotest.(check bool) "the seeded plan really dropped something" true
    (ta.Sim.dropped > 0);
  Alcotest.(check int) "dropped" ta.Sim.dropped tb.Sim.dropped;
  Alcotest.(check int) "delayed" ta.Sim.delayed tb.Sim.delayed;
  Alcotest.(check int) "duplicated" ta.Sim.duplicated tb.Sim.duplicated;
  let ja = Machine.Metrics.to_json (Executive.metrics a)
  and jb = Machine.Metrics.to_json (Executive.metrics b) in
  Alcotest.(check string) "metrics JSON byte-identical" ja jb

(* ------------------------------------------------------------------ *)
(* Golden field sets: the machine-readable artifacts CI byte-compares.
   Deterministic fields and wall-clock fields are asserted separately —
   adding a timing field to a byte-compared blob is the mistake these
   pins exist to catch. *)

(* Depth-1 key scanner: keys of the first object in a JSON text, in order.
   Naive but sufficient for the fixed-format exporters under test. *)
let top_keys s =
  let n = String.length s in
  let rec skip_string i =
    if i >= n then i
    else
      match s.[i] with
      | '\\' -> skip_string (i + 2)
      | '"' -> i + 1
      | _ -> skip_string (i + 1)
  in
  let keys = ref [] in
  let rec go i depth expect_key =
    if i >= n then ()
    else
      match s.[i] with
      | '{' ->
          if depth = 0 then go (i + 1) 1 true else go (i + 1) (depth + 1) expect_key
      | '[' -> go (i + 1) (if depth = 0 then 0 else depth + 1) expect_key
      | '}' -> if depth = 1 then () else go (i + 1) (depth - 1) expect_key
      | ']' -> go (i + 1) (depth - 1) expect_key
      | ':' -> go (i + 1) depth (if depth = 1 then false else expect_key)
      | ',' -> go (i + 1) depth (if depth = 1 then true else expect_key)
      | '"' ->
          let j = skip_string (i + 1) in
          if depth = 1 && expect_key then
            keys := String.sub s (i + 1) (j - i - 2) :: !keys;
          go j depth expect_key
      | _ -> go (i + 1) depth expect_key
  in
  go 0 0 false;
  List.rev !keys

let timing_fields keys = List.filter (fun k -> k = "wall_ms" || k = "wall_s") keys
let deterministic_fields keys = List.filter (fun k -> not (List.mem k (timing_fields keys))) keys

let healthy =
  { nworkers = 3; nitems = 8; frames = 1; plan = Healthy; recover = false;
    mode = Skel.Ir.Stateless; checkpoint = None }

let test_golden_metrics_json () =
  let json = Machine.Metrics.to_json (Executive.metrics (run_job healthy)) in
  let keys = top_keys json in
  Alcotest.(check (list string))
    "Metrics.to_json deterministic fields"
    [
      "finish_time_s"; "mean_utilisation"; "messages"; "bytes"; "imbalance";
      "link_contention"; "dropped_msgs"; "deadline_misses"; "reissues";
      "trace_truncated"; "trace_limit"; "latency"; "processors"; "links";
      "ports"; "processes";
    ]
    (deterministic_fields keys);
  Alcotest.(check (list string))
    "Metrics.to_json carries no wall-clock field" [] (timing_fields keys)

let test_golden_summary_json () =
  let rep = Executive.metrics (run_job healthy) in
  let json = Machine.Metrics.summary_json ~experiment:"e0" rep in
  let keys = top_keys json in
  Alcotest.(check (list string))
    "bench --json entry deterministic fields"
    [
      "experiment"; "finish_time"; "utilisation"; "messages"; "bytes";
      "imbalance"; "dropped_msgs"; "deadline_misses"; "reissues";
      "trace_truncated";
    ]
    (deterministic_fields keys);
  Alcotest.(check (list string))
    "bench --json entry carries no wall-clock field" [] (timing_fields keys)

(* The E17 entry carries the checkpoint/replay counters CI gates exactly
   (bench/baseline.json): pin its full field list so a renamed or dropped
   counter cannot silently weaken the gate. *)
let test_golden_e17_summary_json () =
  let rep =
    Executive.metrics
      (run_job { healthy with mode = Skel.Ir.Accumulator; checkpoint = Some 2 })
  in
  let extras =
    [
      ("checkpoints", 2.0); ("replayed_frames", 1.0); ("stall_collected", 5.0);
      ("outage_p50_ms", 1.0); ("outage_p95_ms", 1.0); ("outage_p99_ms", 1.0);
      ("recovery_overhead_ms", 1.0);
    ]
  in
  let json = Machine.Metrics.summary_json ~extras ~experiment:"e17" rep in
  let keys = top_keys json in
  Alcotest.(check (list string))
    "e17 bench --json entry deterministic fields"
    [
      "experiment"; "finish_time"; "utilisation"; "messages"; "bytes";
      "imbalance"; "dropped_msgs"; "deadline_misses"; "reissues";
      "trace_truncated"; "checkpoints"; "replayed_frames"; "stall_collected";
      "outage_p50_ms"; "outage_p95_ms"; "outage_p99_ms";
      "recovery_overhead_ms";
    ]
    (deterministic_fields keys);
  Alcotest.(check (list string))
    "e17 entry carries no wall-clock field" [] (timing_fields keys)

let test_golden_series_json () =
  let r = run_job healthy in
  let series =
    match Executive.series r with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let json = Skipper_trace.Series.to_json series in
  let keys = top_keys json in
  Alcotest.(check (list string))
    "Series.to_json deterministic fields"
    [
      "width_s"; "horizon_s"; "nprocs"; "nwindows"; "truncated"; "totals";
      "windows"; "slos";
    ]
    (deterministic_fields keys);
  Alcotest.(check (list string))
    "Series.to_json carries no wall-clock field" [] (timing_fields keys)

let test_golden_stage_report_json () =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "w" ~cost:(fun _ -> 1.0) (fun v -> v);
  Skel.Funtable.register table "k" ~arity:2 ~cost:(fun _ -> 1.0) (fun v ->
      fst (V.to_pair v));
  let c =
    Skipper_lib.Pipeline.compile_ir ~table
      (Skel.Ir.program "p"
         (Skel.Ir.Df { nworkers = 2; comp = "w"; acc = "k"; init = V.Int 0; state = Skel.Ir.Stateless }))
  in
  let json = Skipper_lib.Stage.reports_to_json (Skipper_lib.Pipeline.reports c) in
  let keys = top_keys json in
  Alcotest.(check (list string))
    "stage report deterministic fields"
    [ "pass"; "size"; "metric"; "cached"; "detail" ]
    (deterministic_fields keys);
  Alcotest.(check (list string))
    "stage report timing fields (never byte-compared)" [ "wall_ms" ]
    (timing_fields keys)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "determinism"
    [
      ( "pool",
        [
          Alcotest.test_case "submit order" `Quick test_submit_order;
          Alcotest.test_case "jobs 1 == jobs N" `Quick test_jobs1_equals_jobs4;
          Alcotest.test_case "earliest exception wins" `Quick
            test_earliest_exception_wins;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
        ] );
      ( "byte-identity",
        [
          QCheck_alcotest.to_alcotest prop_pool_run_byte_identical;
          Alcotest.test_case "seeded fault tally reproducible" `Quick
            test_seeded_fault_tally_reproducible;
        ] );
      ( "golden-fields",
        [
          Alcotest.test_case "Metrics.to_json" `Quick test_golden_metrics_json;
          Alcotest.test_case "bench --json entry" `Quick test_golden_summary_json;
          Alcotest.test_case "e17 bench entry" `Quick
            test_golden_e17_summary_json;
          Alcotest.test_case "series" `Quick test_golden_series_json;
          Alcotest.test_case "stage report" `Quick test_golden_stage_report_json;
        ] );
    ]
