(* Tests for skeleton nesting: a nested stage behaves like its declarative
   composition, costs are derived by instrumentation, and the executive
   agrees with emulation. *)

module V = Skel.Value
module Ir = Skel.Ir

let value_testable = Alcotest.testable V.pp V.equal

let table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 7000.0);
      ( "add",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 300.0 );
      ( "burst",
        2,
        (fun v ->
          match v with
          | V.Tuple [ V.Int n; V.Int x ] -> V.List (List.init n (fun i -> V.Int (x + i)))
          | _ -> raise (V.Type_error "burst")),
        fun _ -> 400.0 );
      ( "sum_list",
        1,
        (fun v -> V.Int (List.fold_left (fun a x -> a + V.to_int x) 0 (V.to_list v))),
        fun _ -> 600.0 );
    ]

(* inner stage: x -> sum of squares of [x; x+1; x+2] *)
let inner =
  Ir.Pipe
    [
      Ir.Seq "enlist";
      Ir.Df { nworkers = 2; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless };
    ]

let with_enlist t =
  Skel.Funtable.register t "enlist" ~cost:(fun _ -> 100.0) (fun v ->
      V.List (List.init 3 (fun i -> V.Int (V.to_int v + i))));
  t

let expected_inner x = ((x * x) + ((x + 1) * (x + 1)) + ((x + 2) * (x + 2)))

let test_as_function_semantics () =
  let t = with_enlist (table ()) in
  let name = Skel.Nest.as_function t inner in
  Alcotest.(check value_testable) "nested fn computes the composition"
    (V.Int (expected_inner 4))
    (Skel.Funtable.apply t name (V.Int 4))

let test_as_function_cost_is_instrumented () =
  let t = with_enlist (table ()) in
  let name = Skel.Nest.as_function t inner in
  (* enlist (100) + 3 x sq (7000) + 3 x add (300) = 22000 *)
  Alcotest.(check (float 0.001)) "summed cost" 22_000.0
    (Skel.Funtable.cost t name (V.Int 4))

let test_itermem_rejected () =
  let t = table () in
  let stage =
    Ir.Itermem { input = "sq"; loop = Ir.Seq "sq"; output = "sq"; init = V.Unit }
  in
  Alcotest.(check bool) "rejected" true
    (try ignore (Skel.Nest.as_function t stage); false
     with Invalid_argument _ -> true)

let test_nested_df_of_df () =
  (* outer farm over items, inner farm per item. *)
  let t = with_enlist (table ()) in
  let program =
    Ir.program "nested"
      (Skel.Nest.df ~table:t ~nworkers:3 ~comp:inner ~acc:"add" ~init:(V.Int 0))
  in
  let input = V.List (List.init 6 (fun i -> V.Int i)) in
  let seq = Skel.Sem.run t program input in
  let expected = List.fold_left (fun a x -> a + expected_inner x) 0 [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check value_testable) "declarative meaning" (V.Int expected) seq;
  (* executive agrees *)
  let g = Procnet.Expand.expand t program in
  let arch = Archi.ring 4 in
  let r =
    Executive.run ~table:t ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:1 ~input ()
  in
  Alcotest.(check value_testable) "executive agrees" seq r.Executive.value

let test_nested_outer_still_parallelises () =
  (* With 4 heavy inner stages across 2 workers, the farm should be ~2x
     faster than 1 worker. *)
  let run nworkers =
    let t = with_enlist (table ()) in
    let program =
      Ir.program "nested"
        (Skel.Nest.df ~table:t ~nworkers ~comp:inner ~acc:"add" ~init:(V.Int 0))
    in
    let g = Procnet.Expand.expand t program in
    let arch = Archi.ring (nworkers + 1) in
    let r =
      Executive.run ~table:t ~arch
        ~placement:(Syndex.Place.canonical g arch)
        ~graph:g ~frames:1
        ~input:(V.List (List.init 8 (fun i -> V.Int i)))
        ()
    in
    r.Executive.first_latency
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 workers beat 1 (%.3f vs %.3f ms)" (t4 *. 1e3) (t1 *. 1e3))
    true
    (t4 < t1 /. 2.0)

let test_nested_scm () =
  let t = with_enlist (table ()) in
  let program =
    Ir.program "nested-scm"
      (Skel.Nest.scm ~table:t ~nparts:2 ~split:"burst_pairs" ~compute:inner
         ~merge:"sum_list")
  in
  Skel.Funtable.register t "burst_pairs" ~arity:2 ~cost:(fun _ -> 50.0) (fun v ->
      match v with
      | V.Tuple [ V.Int n; V.Int x ] -> V.List (List.init n (fun i -> V.Int (x + i)))
      | _ -> raise (V.Type_error "burst_pairs"));
  let seq = Skel.Sem.run t program (V.Int 10) in
  Alcotest.(check value_testable) "scm of nested df"
    (V.Int (expected_inner 10 + expected_inner 11))
    seq

let prop_nested_equals_flat =
  QCheck.Test.make ~name:"nested df equals flat composition" ~count:60
    QCheck.(pair (int_range 1 4) (small_list (int_range 0 20)))
    (fun (nworkers, xs) ->
      let t = with_enlist (table ()) in
      let program =
        Ir.program "nested"
          (Skel.Nest.df ~table:t ~nworkers ~comp:inner ~acc:"add" ~init:(V.Int 0))
      in
      let input = V.List (List.map (fun x -> V.Int x) xs) in
      let seq = Skel.Sem.run t program input in
      let expected = List.fold_left (fun a x -> a + expected_inner x) 0 xs in
      V.equal seq (V.Int expected))

let () =
  Alcotest.run "nest"
    [
      ( "packaging",
        [
          Alcotest.test_case "semantics" `Quick test_as_function_semantics;
          Alcotest.test_case "instrumented cost" `Quick test_as_function_cost_is_instrumented;
          Alcotest.test_case "itermem rejected" `Quick test_itermem_rejected;
        ] );
      ( "composition",
        [
          Alcotest.test_case "df of df" `Quick test_nested_df_of_df;
          Alcotest.test_case "outer parallelises" `Quick test_nested_outer_still_parallelises;
          Alcotest.test_case "scm of df" `Quick test_nested_scm;
          QCheck_alcotest.to_alcotest prop_nested_equals_flat;
        ] );
    ]
