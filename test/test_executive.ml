(* Tests for the distributed executive: end-to-end equivalence with the
   declarative semantics for every skeleton, dynamic load balancing, error
   handling, and macro-code emission. *)

module V = Skel.Value
module Ir = Skel.Ir

let value_testable = Alcotest.testable V.pp V.equal

let base_table () =
  Skel.Funtable.of_list
    [
      ("sq", 1, (fun v -> V.Int (V.to_int v * V.to_int v)), fun _ -> 5000.0);
      ( "add",
        2,
        (fun v ->
          let a, b = V.to_pair v in
          V.Int (V.to_int a + V.to_int b)),
        fun _ -> 500.0 );
      ( "chunks",
        2,
        (fun v ->
          match v with
          | V.Tuple [ V.Int n; V.List xs ] ->
              let buckets = Array.make n [] in
              List.iteri (fun i x -> buckets.(i mod n) <- x :: buckets.(i mod n)) xs;
              V.List (Array.to_list (Array.map (fun l -> V.List (List.rev l)) buckets))
          | _ -> raise (V.Type_error "chunks")),
        fun _ -> 800.0 );
      ( "sum_chunk",
        1,
        (fun v -> V.Int (List.fold_left (fun a x -> a + V.to_int x) 0 (V.to_list v))),
        fun _ -> 2000.0 );
      ( "sum_parts",
        1,
        (fun v -> V.Int (List.fold_left (fun a x -> a + V.to_int x) 0 (V.to_list v))),
        fun _ -> 800.0 );
      ( "divide",
        1,
        (fun v ->
          let n = V.to_int v in
          if n > 4 then
            V.Tuple [ V.List [ V.Int (n / 2); V.Int (n - (n / 2)) ]; V.Int 0 ]
          else V.Tuple [ V.List []; V.Int n ]),
        fun _ -> 3000.0 );
      ( "src",
        2,
        (fun v ->
          let _, i = V.to_pair v in
          V.List (List.init 6 (fun j -> V.Int ((V.to_int i * 10) + j)))),
        fun _ -> 1000.0 );
      ("sink", 1, Fun.id, fun _ -> 100.0);
      ( "unpack",
        1,
        (fun v ->
          let _, xs = V.to_pair v in
          xs),
        fun _ -> 200.0 );
      ( "mkstate",
        1,
        (fun y -> V.Tuple [ y; y ]),
        fun _ -> 400.0 );
    ]

let run_both ?(frames = 1) ?(arch = Archi.ring 4) program input =
  let table = base_table () in
  let seq = Skel.Sem.run table program input in
  let g = Procnet.Expand.expand table program in
  let placement = Syndex.Place.canonical g arch in
  let par =
    Executive.run ~table ~arch ~placement ~graph:g ~frames ~input ()
  in
  (seq, par)

let test_df_equivalence () =
  let program =
    Ir.program "df" (Ir.Df { nworkers = 3; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
  in
  let input = V.List (List.init 10 (fun i -> V.Int i)) in
  let seq, par = run_both program input in
  Alcotest.(check value_testable) "df equal" seq par.Executive.value

let test_df_more_workers_than_items () =
  let program =
    Ir.program "df" (Ir.Df { nworkers = 8; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
  in
  let seq, par = run_both program (V.List [ V.Int 3; V.Int 4 ]) in
  Alcotest.(check value_testable) "partial farm" seq par.Executive.value

let test_df_empty_input () =
  let program =
    Ir.program "df" (Ir.Df { nworkers = 4; comp = "sq"; acc = "add"; init = V.Int 7; state = Ir.Stateless })
  in
  let seq, par = run_both program (V.List []) in
  Alcotest.(check value_testable) "empty farm gives init" seq par.Executive.value;
  Alcotest.(check value_testable) "which is 7" (V.Int 7) par.Executive.value

let test_scm_equivalence () =
  let program =
    Ir.program "scm"
      (Ir.Scm { nparts = 4; split = "chunks"; compute = "sum_chunk"; merge = "sum_parts" })
  in
  let input = V.List (List.init 13 (fun i -> V.Int i)) in
  let seq, par = run_both program input in
  Alcotest.(check value_testable) "scm equal" seq par.Executive.value;
  Alcotest.(check value_testable) "value" (V.Int 78) par.Executive.value

let test_tf_equivalence () =
  let program =
    Ir.program "tf" (Ir.Tf { nworkers = 3; work = "divide"; acc = "add"; init = V.Int 0 })
  in
  let input = V.List [ V.Int 20; V.Int 9 ] in
  let seq, par = run_both program input in
  Alcotest.(check value_testable) "tf equal" seq par.Executive.value;
  Alcotest.(check value_testable) "sum preserved" (V.Int 29) par.Executive.value

let test_itermem_equivalence () =
  let program =
    Ir.program ~frames:5 "stream"
      (Ir.Itermem
         {
           input = "src";
           loop =
             Ir.Pipe
               [
                 Ir.Seq "unpack";
                 Ir.Df { nworkers = 3; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless };
                 Ir.Seq "mkstate";
               ];
           output = "sink";
           init = V.Int 0;
         })
  in
  let seq, par = run_both ~frames:5 program (V.Str "cam") in
  Alcotest.(check value_testable) "itermem equal" seq par.Executive.value;
  Alcotest.(check int) "five outputs" 5 (List.length par.Executive.outputs)

let test_pipeline_stage_equivalence () =
  let program = Ir.program "pipe" (Ir.Pipe [ Ir.Seq "sq"; Ir.Seq "sq" ]) in
  let seq, par = run_both program (V.Int 3) in
  Alcotest.(check value_testable) "pipe equal" seq par.Executive.value;
  Alcotest.(check value_testable) "81" (V.Int 81) par.Executive.value

let test_multi_frame_plain_program () =
  let program = Ir.program "p" (Ir.Seq "sq") in
  let table = base_table () in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring 2 in
  let r =
    Executive.run ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:4 ~input:(V.Int 5) ()
  in
  Alcotest.(check int) "four outputs" 4 (List.length r.Executive.outputs);
  List.iter
    (fun o -> Alcotest.(check value_testable) "each is 25" (V.Int 25) o)
    r.Executive.outputs

let test_dynamic_load_balancing () =
  (* With wildly uneven costs, dynamic dispatch must beat a static split:
     verify that the slow item does not serialise everything (makespan
     close to the slow item's cost, not the sum). *)
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "work"
    ~cost:(fun v -> if V.to_int v = 0 then 1_000_000.0 else 10_000.0)
    (fun v -> v);
  Skel.Funtable.register table "keep" ~arity:2
    ~cost:(fun _ -> 100.0)
    (fun v -> V.Int (V.to_int (fst (V.to_pair v)) + 1));
  let program =
    Ir.program "lb" (Ir.Df { nworkers = 4; comp = "work"; acc = "keep"; init = V.Int 0; state = Ir.Stateless })
  in
  let input = V.List (List.init 17 (fun i -> V.Int i)) in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring 5 in
  let r =
    Executive.run ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:1 ~input ()
  in
  (* slow item = 1e6 cycles * 50ns = 50ms; 16 fast items spread over the
     other 3 workers add ~2.7ms if balanced. Static on 4 workers with the
     slow one plus 3 fast in one bucket would still be ~50ms; the real test
     is that total isn't the 58ms serial sum. *)
  let serial_ms = (1_000_000.0 +. (16.0 *. 10_000.0)) *. 5e-8 *. 1e3 in
  Alcotest.(check bool) "faster than serial" true
    (r.Executive.first_latency *. 1e3 < serial_ms);
  Alcotest.(check value_testable) "all items processed" (V.Int 17) r.Executive.value

let test_latencies_with_pacing () =
  let program = Ir.program "p" (Ir.Seq "sq") in
  let table = base_table () in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring 1 in
  let r =
    Executive.run ~table ~arch ~placement:[| 0 |] ~graph:g ~frames:3
      ~input_period:0.1 ~input:(V.Int 2) ()
  in
  List.iter
    (fun l -> Alcotest.(check bool) "latency small and positive" true (l > 0.0 && l < 0.01))
    r.Executive.latencies

let test_bad_placement_rejected () =
  let program = Ir.program "p" (Ir.Seq "sq") in
  let table = base_table () in
  let g = Procnet.Expand.expand table program in
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore
         (Executive.run ~table ~arch:(Archi.ring 2) ~placement:[| 0; 1 |] ~graph:g
            ~frames:1 ~input:V.Unit ());
       false
     with Executive.Executive_error _ -> true)

let test_router_nodes_rejected () =
  let table = base_table () in
  let g = Procnet.Templates.df_ring ~nworkers:2 ~comp:"sq" ~acc:"add" ~init:(V.Int 0) in
  Alcotest.(check bool) "fig-1 template not executable" true
    (try
       ignore
         (Executive.run ~table ~arch:(Archi.ring 3)
            ~placement:(Array.make (Procnet.Graph.nnodes g) 0)
            ~graph:g ~frames:1 ~input:(V.List []) ());
       false
     with Executive.Executive_error _ | Machine.Sim.Process_failure _ -> true)

let test_user_exception_surfaces () =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "boom" (fun _ -> failwith "user bug");
  let program = Ir.program "p" (Ir.Seq "boom") in
  let g = Procnet.Expand.expand table program in
  Alcotest.(check bool) "wrapped in Process_failure" true
    (try
       ignore
         (Executive.run ~table ~arch:(Archi.ring 1) ~placement:[| 0 |] ~graph:g
            ~frames:1 ~input:V.Unit ());
       false
     with Machine.Sim.Process_failure (_, Failure msg) -> msg = "user bug")

let test_macro_code_content () =
  let table = base_table () in
  let program =
    Ir.program ~frames:2 "m"
      (Ir.Itermem
         {
           input = "src";
           loop = Ir.Df { nworkers = 2; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless };
           output = "sink";
           init = V.Int 0;
         })
  in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring 3 in
  let placement = Syndex.Place.canonical g arch in
  let code = Executive.Macro.emit g ~placement ~arch in
  let has affix = Astring.String.is_infix ~affix code in
  Alcotest.(check bool) "has master farm" true (has "farm_(workers=2)");
  Alcotest.(check bool) "has worker serve" true (has "serve_");
  Alcotest.(check bool) "has comp of user fn" true (has "comp_(sq)");
  Alcotest.(check bool) "has channel allocation" true (has "alloc_channel_");
  Alcotest.(check bool) "one program per used proc" true
    (has "define(`P0_PROGRAM'" && has "define(`P1_PROGRAM'")

let test_channel_table () =
  let table = base_table () in
  let program =
    Ir.program "p" (Ir.Df { nworkers = 2; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
  in
  let g = Procnet.Expand.expand table program in
  let placement = [| 0; 1; 2 |] in
  let chans = Executive.Macro.channel_table g ~placement in
  Alcotest.(check int) "4 cross-processor channels" 4 (List.length chans)

let prop_df_parallel_equals_sequential =
  QCheck.Test.make ~name:"df executive matches declarative semantics" ~count:40
    QCheck.(triple (int_range 1 6) (int_range 1 6) (small_list small_signed_int))
    (fun (nworkers, nprocs, xs) ->
      let program =
        Ir.program "q" (Ir.Df { nworkers; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
      in
      let input = V.List (List.map (fun x -> V.Int x) xs) in
      let seq, par = run_both ~arch:(Archi.ring nprocs) program input in
      V.equal seq par.Executive.value)

let prop_tf_parallel_equals_sequential =
  QCheck.Test.make ~name:"tf executive matches declarative semantics" ~count:30
    QCheck.(pair (int_range 1 5) (small_list (int_range 0 40)))
    (fun (nworkers, xs) ->
      let program =
        Ir.program "q" (Ir.Tf { nworkers; work = "divide"; acc = "add"; init = V.Int 0 })
      in
      let input = V.List (List.map (fun x -> V.Int x) xs) in
      let seq, par = run_both ~arch:(Archi.ring 4) program input in
      V.equal seq par.Executive.value)


let test_fault_stalls_pipeline () =
  (* Killing a processor that hosts a df worker mid-run stalls the farm:
     plain SKiPPER has no fault tolerance. The run must come back as a
     [Stalled] outcome with the partial counts — never an exception. *)
  let table = base_table () in
  let program =
    Ir.program "f" (Ir.Df { nworkers = 3; comp = "sq"; acc = "add"; init = V.Int 0; state = Ir.Stateless })
  in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring 4 in
  let placement = Syndex.Place.canonical g arch in
  let input = V.List (List.init 30 (fun i -> V.Int i)) in
  let r =
    Executive.run ~faults:[ (1, 0.0005) ] ~table ~arch ~placement ~graph:g
      ~frames:1 ~input ()
  in
  (match r.Executive.outcome with
  | Executive.Stalled { collected; expected } ->
      Alcotest.(check int) "expected one frame" 1 expected;
      Alcotest.(check bool) "partial" true (collected < expected);
      Alcotest.(check int) "outputs match collected" collected
        (List.length r.Executive.outputs)
  | Executive.Completed -> Alcotest.fail "expected a stall")

let test_fault_on_idle_processor_harmless () =
  (* Halting a processor that hosts nothing must not change the result. *)
  let table = base_table () in
  let program = Ir.program "p" (Ir.Seq "sq") in
  let g = Procnet.Expand.expand table program in
  let arch = Archi.ring 3 in
  let r =
    Executive.run ~faults:[ (2, 0.0) ] ~table ~arch ~placement:[| 0 |] ~graph:g
      ~frames:1 ~input:(V.Int 6) ()
  in
  Alcotest.(check value_testable) "unaffected" (V.Int 36) r.Executive.value

let () =
  Alcotest.run "executive"
    [
      ( "equivalence",
        [
          Alcotest.test_case "df" `Quick test_df_equivalence;
          Alcotest.test_case "df more workers than items" `Quick test_df_more_workers_than_items;
          Alcotest.test_case "df empty input" `Quick test_df_empty_input;
          Alcotest.test_case "scm" `Quick test_scm_equivalence;
          Alcotest.test_case "tf" `Quick test_tf_equivalence;
          Alcotest.test_case "itermem" `Quick test_itermem_equivalence;
          Alcotest.test_case "pipeline" `Quick test_pipeline_stage_equivalence;
          Alcotest.test_case "multi-frame plain" `Quick test_multi_frame_plain_program;
          QCheck_alcotest.to_alcotest prop_df_parallel_equals_sequential;
          QCheck_alcotest.to_alcotest prop_tf_parallel_equals_sequential;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "dynamic load balancing" `Quick test_dynamic_load_balancing;
          Alcotest.test_case "latencies with pacing" `Quick test_latencies_with_pacing;
        ] );
      ( "errors",
        [
          Alcotest.test_case "bad placement" `Quick test_bad_placement_rejected;
          Alcotest.test_case "router nodes" `Quick test_router_nodes_rejected;
          Alcotest.test_case "user exception" `Quick test_user_exception_surfaces;
          Alcotest.test_case "fault stalls pipeline" `Quick test_fault_stalls_pipeline;
          Alcotest.test_case "fault on idle processor" `Quick test_fault_on_idle_processor_harmless;
        ] );
      ( "macro-code",
        [
          Alcotest.test_case "content" `Quick test_macro_code_content;
          Alcotest.test_case "channel table" `Quick test_channel_table;
        ] );
    ]
