(* Integration tests over the specification corpus in specs/: every .mls
   file must lex, parse, type-check, extract, expand, map and satisfy the
   emulation/executive equivalence on a small configuration. This is the
   user-facing contract of the whole toolchain. *)

module P = Skipper_lib.Pipeline
module V = Skel.Value

let specs_dir =
  (* dune runs tests in _build/default/test; the sources are two levels up. *)
  let rec find dir =
    let candidate = Filename.concat dir "specs" in
    if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find parent
  in
  find (Sys.getcwd ())

let read path = In_channel.with_open_bin path In_channel.input_all

(* Each spec is paired with the function table and input that drive it. *)
let harness_for = function
  | "tracking.mls" ->
      let config =
        {
          Tracking.Funcs.default_config with
          Tracking.Funcs.scene =
            { Vision.Scene.default_params with Vision.Scene.width = 192; height = 192 };
        }
      in
      Some (Tracking.Funcs.table config, None, 2)
  | "ccl.mls" ->
      let t = Skel.Funtable.create () in
      Apps.Ccl_scm.register t;
      Some (t, Some (V.Image (Apps.Ccl_scm.blobs_image ~nblobs:10 64 64)), 1)
  | "road.mls" ->
      let t = Skel.Funtable.create () in
      Apps.Road.register ~width:512 ~height:512 t;
      Skel.Funtable.register t "zero_lane" ~arity:0 ~cost:(fun _ -> 1.0) (fun _ ->
          Apps.Road.lane_to_value
            { Apps.Road.offset = 0.0; slope = 0.0; confidence = 0.0 });
      Some (t, None, 2)
  | "quadtree.mls" ->
      let t = Skel.Funtable.create () in
      Apps.Quadtree.register t;
      Some (t, Some (V.Image (Apps.Ccl_scm.blobs_image ~nblobs:5 48 48)), 1)
  (* The stateful-farm family: one spec per state-access mode, several
     frames each so cross-frame state carry is actually exercised. *)
  | "histacc.mls" | "expgain.mls" | "ownerpeak.mls" | "resmooth.mls" ->
      let t = Skel.Funtable.create () in
      Apps.Stateful.register t;
      Some (t, Some (Apps.Stateful.input_value ()), 3)
  | _ -> None

let spec_files () =
  match specs_dir with
  | None -> []
  | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".mls")
      |> List.sort compare
      |> List.map (fun f -> (f, Filename.concat dir f))

let test_corpus_is_present () =
  let files = spec_files () in
  Alcotest.(check bool)
    (Printf.sprintf "found %d specs" (List.length files))
    true
    (List.length files >= 4);
  (* every spec has a harness, so none silently escapes the suite *)
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " has a harness") true (harness_for name <> None))
    files

let check_spec (name, path) () =
  match harness_for name with
  | None -> Alcotest.skip ()
  | Some (table, input, frames) -> (
      let compiled = P.compile_source ~frames ~table (read path) in
      Alcotest.(check bool) (name ^ " names some skeleton") true
        (Skel.Ir.skeleton_instances compiled.P.program.Skel.Ir.body <> []);
      let arch = Archi.ring 4 in
      let schedule = P.map compiled arch in
      (match Syndex.Schedule.validate schedule with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: invalid schedule: %s" name m);
      Alcotest.(check bool) (name ^ " deadlock-free") true
        (Syndex.Schedule.deadlock_free schedule);
      match P.check_equivalence ?input compiled arch with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: %s" name m)

(* The same corpus as one farmed sweep — the opt-in parallel mode for
   heavyweight suites: SKIPPER_JOBS>1 runs one self-contained job per spec
   on the domain pool (sequential when unset). Failures surface exactly as
   in the per-spec cases because the pool re-raises the earliest one. *)
let test_corpus_through_pool () =
  let jobs = Support.Domain_pool.jobs_from_env () in
  Support.Domain_pool.run ~jobs
    (List.map (fun spec () -> check_spec spec ()) (spec_files ()))
  |> List.iter (fun () -> ())

let () =
  let per_spec =
    List.map
      (fun spec -> Alcotest.test_case (fst spec) `Quick (check_spec spec))
      (spec_files ())
  in
  Alcotest.run "specs"
    [
      ("corpus", [ Alcotest.test_case "present and covered" `Quick test_corpus_is_present ]);
      ("end-to-end", per_spec);
      ( "pooled",
        [ Alcotest.test_case "corpus as a farmed sweep" `Quick test_corpus_through_pool ] );
    ]
