(* Conformance of the stateful df farm family against the declarative
   sequential oracle (Skel.Sem): for every state-access mode, the parallel
   engine's output over random worker counts, item lists and frame counts
   must equal the closure-tree oracle's. The accumulation function is
   deliberately non-commutative and compute costs are value-dependent, so
   workers finish out of sequence order — any merge-order or routing slip
   in the engine shows up as a value mismatch, not a flake. Like
   test_specs, the whole matrix also runs as one farmed sweep under
   SKIPPER_JOBS. *)

module V = Skel.Value
module Dp = Support.Domain_pool

(* Non-commutative fold: 31*z + y. Order sensitivity is the point. *)
let mix z y = (31 * z) + y

let make_table () =
  let table = Skel.Funtable.create () in
  let reg = Skel.Funtable.register table in
  (* value-dependent cost shuffles worker completion order *)
  let cost_of x = 1_000.0 +. float_of_int (137 * x mod 7919) in
  reg "comp" ~arity:1
    ~cost:(fun v -> cost_of (V.to_int v))
    (fun v -> V.Int ((2 * V.to_int v) + 1));
  reg "comp_ro" ~arity:1
    ~cost:(fun v ->
      match v with V.Tuple [ _; x ] -> cost_of (V.to_int x) | _ -> 1_000.0)
    (fun v ->
      match v with
      | V.Tuple [ env; x ] -> V.Int ((V.to_int env * V.to_int x) + 1)
      | _ -> raise (V.Type_error "comp_ro expects (env, x)"));
  (* stateful computes thread 31*s + x — partition/resource order-sensitive *)
  let threaded name v =
    match v with
    | V.Tuple [ s; x ] ->
        let s' = mix (V.to_int s) (V.to_int x) in
        V.Tuple [ V.Int s'; V.Int s' ]
    | _ -> raise (V.Type_error (name ^ " expects (state, x)"))
  in
  reg "comp_st" ~arity:1
    ~cost:(fun v ->
      match v with V.Tuple [ _; x ] -> cost_of (V.to_int x) | _ -> 1_000.0)
    (threaded "comp_st");
  reg "acc" ~arity:2
    ~cost:(fun _ -> 100.0)
    (fun v ->
      let z, y = V.to_pair v in
      V.Int (mix (V.to_int z) (V.to_int y)));
  table

let comp_for = function
  | Skel.Ir.Stateless | Skel.Ir.Accumulator -> "comp"
  | Skel.Ir.Read_only -> "comp_ro"
  | Skel.Ir.Owner | Skel.Ir.Resource -> "comp_st"

let init_for ~nworkers = function
  | Skel.Ir.Stateless | Skel.Ir.Accumulator -> V.Int 1
  | Skel.Ir.Read_only -> V.Tuple [ V.Int 3; V.Int 1 ]
  | Skel.Ir.Owner ->
      V.Tuple
        [ V.List (List.init nworkers (fun k -> V.Int (100 * (k + 1)))); V.Int 1 ]
  | Skel.Ir.Resource -> V.Tuple [ V.Int 7; V.Int 1 ]

type params = { mode : Skel.Ir.state_mode; nworkers : int; nitems : int; frames : int }

let program p =
  Skel.Ir.program ~frames:p.frames
    ("farm_" ^ Skel.Ir.state_mode_name p.mode)
    (Skel.Ir.Df
       {
         nworkers = p.nworkers;
         comp = comp_for p.mode;
         acc = "acc";
         init = init_for ~nworkers:p.nworkers p.mode;
         state = p.mode;
       })

let input_of p = V.List (List.init p.nitems (fun i -> V.Int ((5 * i) + 2)))

(* One self-contained equivalence job: compile, run both paths, compare.
   Returns (oracle, parallel) so callers can assert or count. *)
let run_both p =
  let table = make_table () in
  let prog = program p in
  (match Skel.Ir.validate table prog with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: invalid program: %s" prog.Skel.Ir.name m);
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring (p.nworkers + 1) in
  let input = input_of p in
  let r =
    Executive.run ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:p.frames ~input ()
  in
  (Skel.Sem.run table prog input, r)

let check_equiv p =
  let oracle, r = run_both p in
  Alcotest.(check bool)
    (Printf.sprintf "%s completes" (Skel.Ir.state_mode_name p.mode))
    true
    (r.Executive.outcome = Executive.Completed);
  if not (V.equal oracle r.Executive.value) then
    Alcotest.failf "%s w=%d n=%d f=%d: oracle %s, parallel %s"
      (Skel.Ir.state_mode_name p.mode)
      p.nworkers p.nitems p.frames (V.to_string oracle)
      (V.to_string r.Executive.value);
  (* per-frame outputs must match the streamed oracle too *)
  let stream = Skel.Sem.run_stream (make_table ()) (program p) (input_of p) in
  Alcotest.(check int)
    "frame count" p.frames
    (List.length r.Executive.outputs);
  List.iteri
    (fun i (expect, got) ->
      if not (V.equal expect got) then
        Alcotest.failf "%s frame %d: oracle %s, parallel %s"
          (Skel.Ir.state_mode_name p.mode)
          i (V.to_string expect) (V.to_string got))
    (List.combine stream r.Executive.outputs)

let modes =
  [
    Skel.Ir.Stateless; Skel.Ir.Read_only; Skel.Ir.Owner; Skel.Ir.Accumulator;
    Skel.Ir.Resource;
  ]

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                    *)

let gen_params mode =
  QCheck.Gen.(
    map
      (fun (nworkers, nitems, frames) -> { mode; nworkers; nitems; frames })
      (tup3 (int_range 1 4) (int_range 0 12) (int_range 1 3)))

let print_params p =
  Printf.sprintf "{%s; workers=%d; items=%d; frames=%d}"
    (Skel.Ir.state_mode_name p.mode)
    p.nworkers p.nitems p.frames

let prop_mode mode =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "df_%s parallel == sequential oracle"
         (Skel.Ir.state_mode_name mode))
    ~count:15
    (QCheck.make ~print:print_params (gen_params mode))
    (fun p ->
      let oracle, r = run_both p in
      r.Executive.outcome = Executive.Completed
      && V.equal oracle r.Executive.value)

(* ------------------------------------------------------------------ *)
(* Targeted discipline pins                                            *)

(* Accumulator: the carry makes frame f+1 fold on top of frame f. With the
   non-commutative acc the only way the engine can agree with the oracle is
   a sequence-order merge every frame plus an exact cross-frame carry. *)
let test_accumulator_carry () =
  let p = { mode = Skel.Ir.Accumulator; nworkers = 3; nitems = 5; frames = 3 } in
  let oracle, r = run_both p in
  Alcotest.(check bool) "parallel == oracle" true (V.equal oracle r.Executive.value);
  (* the streamed frames really differ — the state is not reset per frame *)
  match r.Executive.outputs with
  | a :: b :: _ ->
      Alcotest.(check bool) "frame outputs differ (carry visible)" false
        (V.equal a b)
  | _ -> Alcotest.fail "expected at least two frames"

(* Owner: task i must be computed against partition i mod nworkers, and
   only that partition's state. With partition seeds 100k the expected
   value is computable directly; a single misrouted task changes it. *)
let test_owner_partition_routing () =
  let p = { mode = Skel.Ir.Owner; nworkers = 3; nitems = 9; frames = 1 } in
  let states = Array.init p.nworkers (fun k -> 100 * (k + 1)) in
  let items = List.init p.nitems (fun i -> (5 * i) + 2) in
  let expected, _ =
    List.fold_left
      (fun (z, i) x ->
        let k = i mod p.nworkers in
        states.(k) <- mix states.(k) x;
        (mix z states.(k), i + 1))
      (1, 0) items
  in
  let _, r = run_both p in
  Alcotest.(check bool) "owner routing fixed by i mod nworkers" true
    (V.equal (V.Int expected) r.Executive.value)

(* Resource: strictly serialised threading in sequence order. *)
let test_resource_serialisation () =
  let p = { mode = Skel.Ir.Resource; nworkers = 4; nitems = 8; frames = 2 } in
  let res = ref 7 in
  let items = List.init p.nitems (fun i -> (5 * i) + 2) in
  let frame () =
    List.fold_left
      (fun z x ->
        res := mix !res x;
        mix z !res)
      1 items
  in
  let _ = frame () in
  let expected = frame () in
  let _, r = run_both p in
  Alcotest.(check bool) "resource threads serially across both frames" true
    (V.equal (V.Int expected) r.Executive.value)

(* Read-only: the env is broadcast once and every task sees it. *)
let test_readonly_env () =
  let p = { mode = Skel.Ir.Read_only; nworkers = 4; nitems = 7; frames = 2 } in
  let items = List.init p.nitems (fun i -> (5 * i) + 2) in
  let expected =
    List.fold_left (fun z x -> mix z ((3 * x) + 1)) 1 items
  in
  let _, r = run_both p in
  Alcotest.(check bool) "every task computed against the broadcast env" true
    (V.equal (V.Int expected) r.Executive.value)

(* ------------------------------------------------------------------ *)
(* The full mode matrix as one farmed sweep (SKIPPER_JOBS parallelism)  *)

let test_matrix_through_pool () =
  let jobs = Dp.jobs_from_env () in
  let cases =
    List.concat_map
      (fun mode ->
        List.map
          (fun (nworkers, nitems, frames) -> { mode; nworkers; nitems; frames })
          [ (1, 4, 2); (3, 9, 2); (4, 12, 3) ])
      modes
  in
  Dp.run ~jobs (List.map (fun p () -> check_equiv p) cases)
  |> List.iter (fun () -> ())

let () =
  Alcotest.run "state_farm"
    [
      ("oracle-equivalence", List.map (fun m -> QCheck_alcotest.to_alcotest (prop_mode m)) modes);
      ( "disciplines",
        [
          Alcotest.test_case "accumulator carry" `Quick test_accumulator_carry;
          Alcotest.test_case "owner partition routing" `Quick
            test_owner_partition_routing;
          Alcotest.test_case "resource serialisation" `Quick
            test_resource_serialisation;
          Alcotest.test_case "readonly env broadcast" `Quick test_readonly_env;
        ] );
      ( "pooled",
        [
          Alcotest.test_case "mode matrix as a farmed sweep" `Quick
            test_matrix_through_pool;
        ] );
    ]
