(* Tests for process-network graphs and skeleton expansion. *)

module G = Procnet.Graph
module V = Skel.Value

let count_kind g pred =
  Array.to_list (G.nodes g) |> List.filter (fun n -> pred n.G.kind) |> List.length

let df_stage n = Skel.Ir.Df { nworkers = n; comp = "c"; acc = "a"; init = V.Int 0; state = Skel.Ir.Stateless }

let scm_stage n = Skel.Ir.Scm { nparts = n; split = "s"; compute = "c"; merge = "m" }

let test_expand_seq () =
  let g = Procnet.Expand.expand_stage (Skel.Ir.Seq "f") in
  Alcotest.(check int) "one node" 1 (G.nnodes g);
  Alcotest.(check int) "no edges" 0 (List.length (G.edges g))

let test_expand_pipe () =
  let g = Procnet.Expand.expand_stage (Skel.Ir.Pipe [ Skel.Ir.Seq "f"; Skel.Ir.Seq "g" ]) in
  Alcotest.(check int) "two nodes" 2 (G.nnodes g);
  Alcotest.(check int) "one edge" 1 (List.length (G.edges g));
  Alcotest.(check int) "entry" 0 (G.entry g);
  Alcotest.(check int) "exit" 1 (G.exit_node g)

let test_expand_df () =
  let g = Procnet.Expand.expand_stage (df_stage 5) in
  Alcotest.(check int) "master + workers" 6 (G.nnodes g);
  Alcotest.(check int) "task + result channels" 10 (List.length (G.edges g));
  Alcotest.(check int) "one master" 1
    (count_kind g (function G.DfMaster _ -> true | _ -> false));
  Alcotest.(check int) "five workers" 5
    (count_kind g (function G.DfWorker _ -> true | _ -> false));
  (* task edges target the worker "task" port *)
  List.iter
    (fun (e : G.edge) ->
      if e.G.src_port = "task" then
        Alcotest.(check string) "task port" "task" e.G.dst_port)
    (G.edges g)

let test_expand_scm () =
  let g = Procnet.Expand.expand_stage (scm_stage 4) in
  Alcotest.(check int) "split + merge + computes" 6 (G.nnodes g);
  Alcotest.(check int) "4 computes" 4
    (count_kind g (function G.ScmCompute _ -> true | _ -> false));
  Alcotest.(check int) "2 edges per part" 8 (List.length (G.edges g))

let test_expand_itermem () =
  let stage =
    Skel.Ir.Itermem
      { input = "in"; loop = Skel.Ir.Seq "f"; output = "out"; init = V.Int 0 }
  in
  let g = Procnet.Expand.expand_stage stage in
  (* input, mem, join, fork, output + loop body *)
  Alcotest.(check int) "nodes" 6 (G.nnodes g);
  Alcotest.(check int) "one mem" 1 (count_kind g (function G.Mem _ -> true | _ -> false));
  Alcotest.(check int) "one join" 1 (count_kind g (function G.Join -> true | _ -> false));
  Alcotest.(check int) "one fork" 1 (count_kind g (function G.Fork -> true | _ -> false));
  (* the mem feedback edge exists *)
  let has_update =
    List.exists (fun (e : G.edge) -> e.G.dst_port = "update") (G.edges g)
  in
  Alcotest.(check bool) "feedback edge" true has_update

let test_expand_validates_names () =
  let table = Skel.Funtable.create () in
  Alcotest.(check bool) "unknown function rejected" true
    (try
       ignore (Procnet.Expand.expand table (Skel.Ir.program "p" (Skel.Ir.Seq "nope")));
       false
     with Procnet.Expand.Expansion_error _ -> true)

let test_graph_validate_ok () =
  let g = Procnet.Expand.expand_stage (df_stage 3) in
  Alcotest.(check bool) "valid" true (Result.is_ok (G.validate g))

let test_builder_rejects_double_feed () =
  let b = G.Builder.create "bad" in
  let a = G.Builder.add_node b (G.Compute "f") in
  let c = G.Builder.add_node b (G.Compute "g") in
  let d = G.Builder.add_node b (G.Compute "h") in
  G.Builder.add_edge b a d;
  G.Builder.add_edge b c d;
  Alcotest.(check bool) "double feed rejected" true
    (try ignore (G.Builder.freeze b ~entry:a ~exit_node:d); false
     with Invalid_argument _ -> true)

let test_builder_rejects_unknown_nodes () =
  let b = G.Builder.create "bad" in
  let a = G.Builder.add_node b (G.Compute "f") in
  Alcotest.(check bool) "edge to unknown" true
    (try G.Builder.add_edge b a 7; false with Invalid_argument _ -> true)

let test_validate_detects_unreachable () =
  let b = G.Builder.create "island" in
  let a = G.Builder.add_node b (G.Compute "f") in
  let _lost = G.Builder.add_node b (G.Compute "g") in
  let g = G.Builder.freeze b ~entry:a ~exit_node:a in
  Alcotest.(check bool) "unreachable detected" true (Result.is_error (G.validate g))

let test_dot_output () =
  let g = Procnet.Expand.expand_stage (df_stage 2) in
  let dot = G.to_dot g in
  Alcotest.(check bool) "mentions master" true
    (Astring.String.is_infix ~affix:"df:a" dot);
  Alcotest.(check bool) "has edges" true (Astring.String.is_infix ~affix:"->" dot)

let test_fig1_template_counts () =
  List.iter
    (fun n ->
      let g = Procnet.Templates.df_ring ~nworkers:n ~comp:"c" ~acc:"a" ~init:V.Unit in
      Alcotest.(check int)
        (Printf.sprintf "processes for n=%d" n)
        (Procnet.Templates.df_ring_process_count n)
        (G.nnodes g);
      Alcotest.(check int)
        (Printf.sprintf "channels for n=%d" n)
        (Procnet.Templates.df_ring_channel_count n)
        (List.length (G.edges g));
      Alcotest.(check bool) "structurally valid" true (Result.is_ok (G.validate g)))
    [ 1; 2; 3; 4; 8 ]

let test_fig1_natural_placement () =
  let g = Procnet.Templates.df_ring ~nworkers:4 ~comp:"c" ~acc:"a" ~init:V.Unit in
  let placement = Procnet.Templates.natural_placement g in
  Array.iter
    (fun (nd : G.node) ->
      match nd.G.kind with
      | G.DfMaster _ -> Alcotest.(check int) "master on P0" 0 placement.(nd.G.id)
      | G.DfWorker _ ->
          Alcotest.(check bool) "workers on P1..Pn" true
            (placement.(nd.G.id) >= 1 && placement.(nd.G.id) <= 4)
      | _ -> ())
    (G.nodes g)

let prop_df_expansion_counts =
  QCheck.Test.make ~name:"df expansion has 1 + n nodes and 2n edges" ~count:50
    (QCheck.int_range 1 32) (fun n ->
      let g = Procnet.Expand.expand_stage (df_stage n) in
      G.nnodes g = n + 1 && List.length (G.edges g) = 2 * n)

let prop_scm_expansion_counts =
  QCheck.Test.make ~name:"scm expansion has n + 2 nodes and 2n edges" ~count:50
    (QCheck.int_range 1 32) (fun n ->
      let g = Procnet.Expand.expand_stage (scm_stage n) in
      G.nnodes g = n + 2 && List.length (G.edges g) = 2 * n)

let prop_expansion_always_validates =
  QCheck.Test.make ~name:"every expansion validates" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (n, m) ->
      let stage =
        Skel.Ir.Itermem
          {
            input = "in";
            loop = Skel.Ir.Pipe [ Skel.Ir.Seq "f"; df_stage n; scm_stage m ];
            output = "out";
            init = V.Unit;
          }
      in
      Result.is_ok (G.validate (Procnet.Expand.expand_stage stage)))

let () =
  Alcotest.run "procnet"
    [
      ( "expansion",
        [
          Alcotest.test_case "seq" `Quick test_expand_seq;
          Alcotest.test_case "pipe" `Quick test_expand_pipe;
          Alcotest.test_case "df" `Quick test_expand_df;
          Alcotest.test_case "scm" `Quick test_expand_scm;
          Alcotest.test_case "itermem" `Quick test_expand_itermem;
          Alcotest.test_case "validates names" `Quick test_expand_validates_names;
        ] );
      ( "graph",
        [
          Alcotest.test_case "validate ok" `Quick test_graph_validate_ok;
          Alcotest.test_case "double feed rejected" `Quick test_builder_rejects_double_feed;
          Alcotest.test_case "unknown nodes rejected" `Quick test_builder_rejects_unknown_nodes;
          Alcotest.test_case "unreachable detected" `Quick test_validate_detects_unreachable;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ( "fig1 template",
        [
          Alcotest.test_case "counts" `Quick test_fig1_template_counts;
          Alcotest.test_case "natural placement" `Quick test_fig1_natural_placement;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_df_expansion_counts;
          QCheck_alcotest.to_alcotest prop_scm_expansion_counts;
          QCheck_alcotest.to_alcotest prop_expansion_always_validates;
        ] );
    ]
