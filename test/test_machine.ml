(* Tests for the discrete-event MIMD-DM simulator: timing semantics of the
   kernel primitives, link contention, determinism, and failure handling. *)

module Sim = Machine.Sim
module V = Skel.Value

(* A ring with easy numbers: 1 us cycles, 1 MB/s links, 1 ms startup. *)
let toy_arch n =
  Archi.ring ~cycle_time:1e-6 ~bandwidth:1e6 ~startup:1e-3 n

let test_compute_advances_time () =
  let sim = Sim.create (toy_arch 2) in
  let finished = ref 0.0 in
  let _ =
    Sim.spawn sim ~name:"p" ~on:0 (fun () ->
        Sim.compute 1000.0;
        finished := Sim.now ())
  in
  let _ = Sim.run sim in
  Alcotest.(check (float 1e-12)) "1000 cycles at 1us" 1e-3 !finished

let test_cpu_exclusive () =
  (* Two processes on one processor serialise their computations. *)
  let sim = Sim.create (toy_arch 1) in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  let _ = Sim.spawn sim ~name:"a" ~on:0 (fun () -> Sim.compute 1000.0; t1 := Sim.now ()) in
  let _ = Sim.spawn sim ~name:"b" ~on:0 (fun () -> Sim.compute 1000.0; t2 := Sim.now ()) in
  let _ = Sim.run sim in
  Alcotest.(check (float 1e-12)) "first done at 1ms" 1e-3 (Float.min !t1 !t2);
  Alcotest.(check (float 1e-12)) "second done at 2ms" 2e-3 (Float.max !t1 !t2)

let test_parallel_processors_overlap () =
  let sim = Sim.create (toy_arch 2) in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  let _ = Sim.spawn sim ~name:"a" ~on:0 (fun () -> Sim.compute 1000.0; t1 := Sim.now ()) in
  let _ = Sim.spawn sim ~name:"b" ~on:1 (fun () -> Sim.compute 1000.0; t2 := Sim.now ()) in
  let finish = Sim.run sim in
  Alcotest.(check (float 1e-12)) "both done at 1ms" 1e-3 finish;
  Alcotest.(check (float 1e-12)) "a" 1e-3 !t1;
  Alcotest.(check (float 1e-12)) "b" 1e-3 !t2

let test_message_latency_model () =
  (* 1000-byte message over one link: send overhead + startup + bytes/bw. *)
  let sim = Sim.create (toy_arch 2) in
  let arrival = ref 0.0 in
  let receiver =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        let _ = Sim.recv "in" in
        arrival := Sim.now ())
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        Sim.send receiver "in" (V.Str (String.make 996 'x')))
  in
  let _ = Sim.run sim in
  (* send overhead 200 cycles = 200us; transfer = 1ms startup + 1ms payload;
     receive overhead happens after arrival. *)
  let expected = (Sim.send_overhead_cycles *. 1e-6) +. 1e-3 +. 1e-3 in
  Alcotest.(check (float 1e-9)) "arrival time" expected !arrival

let test_store_and_forward () =
  (* Two hops double the link time. *)
  let sim = Sim.create (toy_arch 5) in
  let arrival = ref 0.0 in
  let receiver =
    Sim.spawn sim ~name:"rx" ~on:2 (fun () ->
        let _ = Sim.recv "in" in
        arrival := Sim.now ())
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        Sim.send receiver "in" (V.Str (String.make 996 'x')))
  in
  let _ = Sim.run sim in
  let expected = (Sim.send_overhead_cycles *. 1e-6) +. (2.0 *. (1e-3 +. 1e-3)) in
  Alcotest.(check (float 1e-9)) "two hops" expected !arrival;
  Alcotest.(check int) "hops counted" 2 (Sim.stats sim).Sim.hops_total

let test_link_contention_serialises () =
  (* Two messages on the same link cannot overlap. *)
  let sim = Sim.create (toy_arch 2) in
  let arrivals = ref [] in
  let receiver =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        for _ = 1 to 2 do
          let _ = Sim.recv "in" in
          arrivals := Sim.now () :: !arrivals
        done)
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        Sim.send receiver "in" (V.Str (String.make 996 'x'));
        Sim.send receiver "in" (V.Str (String.make 996 'y')))
  in
  let _ = Sim.run sim in
  match List.rev !arrivals with
  | [ a1; a2 ] ->
      (* second transfer starts only after the first releases the link *)
      Alcotest.(check bool) "serialised" true (a2 -. a1 >= 2e-3 -. 1e-9)
  | _ -> Alcotest.fail "expected two arrivals"

let test_local_message_cheap () =
  let sim = Sim.create (toy_arch 2) in
  let arrival = ref 0.0 in
  let receiver =
    Sim.spawn sim ~name:"rx" ~on:0 (fun () ->
        let _ = Sim.recv "in" in
        arrival := Sim.now ())
  in
  let _ = Sim.spawn sim ~name:"tx" ~on:0 (fun () -> Sim.send receiver "in" (V.Int 1)) in
  let _ = Sim.run sim in
  Alcotest.(check bool) "local copy is far below link time" true (!arrival < 1e-3)

let test_fifo_per_port () =
  let sim = Sim.create (toy_arch 2) in
  let got = ref [] in
  let receiver =
    Sim.spawn sim ~name:"rx" ~on:1 (fun () ->
        for _ = 1 to 3 do
          got := V.to_int (Sim.recv "in") :: !got
        done)
  in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        List.iter (fun i -> Sim.send receiver "in" (V.Int i)) [ 1; 2; 3 ])
  in
  let _ = Sim.run sim in
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (List.rev !got)

let test_recv_any () =
  let sim = Sim.create (toy_arch 5) in
  let first = ref "" in
  let receiver =
    Sim.spawn sim ~name:"rx" ~on:0 (fun () ->
        let port, _ = Sim.recv_any [ "a"; "b" ] in
        first := port)
  in
  (* b is adjacent, a is two hops away, so b arrives first *)
  let _ = Sim.spawn sim ~name:"ta" ~on:2 (fun () -> Sim.send receiver "a" (V.Int 1)) in
  let _ = Sim.spawn sim ~name:"tb" ~on:1 (fun () -> Sim.send receiver "b" (V.Int 2)) in
  let _ = Sim.run sim in
  Alcotest.(check string) "earliest message wins" "b" !first

let test_sleep_until () =
  let sim = Sim.create (toy_arch 1) in
  let woke = ref 0.0 in
  let _ =
    Sim.spawn sim ~name:"s" ~on:0 (fun () ->
        Sim.sleep_until 0.5;
        woke := Sim.now ())
  in
  let _ = Sim.run sim in
  Alcotest.(check (float 1e-9)) "woke at 0.5" 0.5 !woke;
  (* sleeping is not busy time *)
  Alcotest.(check bool) "no busy time" true ((Sim.stats sim).Sim.busy.(0) < 1e-6)

(* [run ~until] horizon edges — these pin the documented semantics: an event
   scheduled exactly at the horizon still fires (only events strictly past
   it stay queued), and a busy charge that *ends* exactly at the horizon is
   not a spanning charge, so nothing is refunded. *)

let test_horizon_event_at_until_fires () =
  let sim = Sim.create (toy_arch 1) in
  let woke_at = ref nan and woke_past = ref nan in
  let _ =
    Sim.spawn sim ~name:"at" ~on:0 (fun () ->
        Sim.sleep_until 1.0;
        woke_at := Sim.now ())
  in
  let _ =
    Sim.spawn sim ~name:"past" ~on:0 (fun () ->
        Sim.sleep_until 2.0;
        woke_past := Sim.now ())
  in
  let finish = Sim.run ~until:1.0 sim in
  Alcotest.(check (float 1e-12)) "event exactly at horizon fires" 1.0 !woke_at;
  Alcotest.(check bool) "event past horizon stays queued" true
    (Float.is_nan !woke_past);
  Alcotest.(check (float 1e-12)) "clock clamps to the horizon" 1.0 finish

let test_horizon_charge_ends_at_until () =
  (* 1000 cycles at 1 us end exactly at the 1 ms horizon: the completion
     event fires, the full charge stands and windowed utilisation is 1. *)
  let sim = Sim.create (toy_arch 1) in
  let done_at = ref nan in
  let _ =
    Sim.spawn sim ~name:"c" ~on:0 (fun () ->
        Sim.compute 1000.0;
        done_at := Sim.now ())
  in
  let finish = Sim.run ~until:1e-3 sim in
  Alcotest.(check (float 1e-12)) "completion fires at the horizon" 1e-3 !done_at;
  Alcotest.(check (float 1e-12)) "finish" 1e-3 finish;
  Alcotest.(check (float 1e-15)) "no refund: busy is the full charge" 1e-3
    (Sim.stats sim).Sim.busy.(0);
  Alcotest.(check (float 1e-9)) "utilisation exactly 1" 1.0 (Sim.utilisation sim)

let test_horizon_spanning_charge_refunded () =
  (* The same charge cut mid-span: the overshoot past the horizon is
     refunded so busy never exceeds the window and utilisation stays <= 1. *)
  let sim = Sim.create (toy_arch 1) in
  let done_at = ref nan in
  let _ =
    Sim.spawn sim ~name:"c" ~on:0 (fun () ->
        Sim.compute 1000.0;
        done_at := Sim.now ())
  in
  let finish = Sim.run ~until:5e-4 sim in
  Alcotest.(check bool) "completion did not fire" true (Float.is_nan !done_at);
  Alcotest.(check (float 1e-12)) "clock clamps to the horizon" 5e-4 finish;
  Alcotest.(check (float 1e-15)) "busy refunded down to the window" 5e-4
    (Sim.stats sim).Sim.busy.(0);
  Alcotest.(check bool) "utilisation <= 1" true
    (Sim.utilisation sim <= 1.0 +. 1e-9)

let test_blocked_process_terminates_run () =
  let sim = Sim.create (toy_arch 1) in
  let _ = Sim.spawn sim ~name:"waiter" ~on:0 (fun () -> ignore (Sim.recv "never")) in
  let finish = Sim.run sim in
  Alcotest.(check (float 0.0)) "drains immediately" 0.0 finish

let test_process_failure_wrapped () =
  let sim = Sim.create (toy_arch 1) in
  let _ = Sim.spawn sim ~name:"boom" ~on:0 (fun () -> failwith "kaboom") in
  Alcotest.(check bool) "wrapped" true
    (try ignore (Sim.run sim); false
     with Sim.Process_failure (name, Failure msg) -> name = "boom" && msg = "kaboom")

let test_primitives_outside_process () =
  Alcotest.check_raises "now outside" Sim.Not_in_process (fun () -> ignore (Sim.now ()))

let test_spawn_validation () =
  let sim = Sim.create (toy_arch 2) in
  Alcotest.(check bool) "bad processor" true
    (try ignore (Sim.spawn sim ~name:"x" ~on:7 (fun () -> ())); false
     with Invalid_argument _ -> true)

let test_run_twice_rejected () =
  let sim = Sim.create (toy_arch 1) in
  let _ = Sim.run sim in
  Alcotest.(check bool) "second run fails" true
    (try ignore (Sim.run sim); false with Failure _ -> true)

let test_determinism () =
  let build () =
    let sim = Sim.create (toy_arch 4) in
    let outputs = ref [] in
    let collector =
      Sim.spawn sim ~name:"col" ~on:0 (fun () ->
          for _ = 1 to 6 do
            outputs := V.to_int (Sim.recv "r") :: !outputs
          done)
    in
    for i = 1 to 3 do
      let _ =
        Sim.spawn sim ~name:(Printf.sprintf "w%d" i) ~on:(i mod 4) (fun () ->
            Sim.compute (float_of_int (i * 100));
            Sim.send collector "r" (V.Int i);
            Sim.compute 50.0;
            Sim.send collector "r" (V.Int (10 * i)))
      in
      ()
    done;
    let finish = Sim.run sim in
    (finish, List.rev !outputs)
  in
  let f1, o1 = build () and f2, o2 = build () in
  Alcotest.(check (float 0.0)) "same finish" f1 f2;
  Alcotest.(check (list int)) "same order" o1 o2

let test_stats_and_utilisation () =
  let sim = Sim.create (toy_arch 2) in
  let r = Sim.spawn sim ~name:"rx" ~on:1 (fun () -> ignore (Sim.recv "in")) in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        Sim.compute 100.0;
        Sim.send r "in" (V.Int 5))
  in
  let _ = Sim.run sim in
  let st = Sim.stats sim in
  Alcotest.(check int) "one message" 1 st.Sim.messages;
  Alcotest.(check int) "bytes" 4 st.Sim.bytes;
  Alcotest.(check bool) "utilisation in (0,1]" true
    (Sim.utilisation sim > 0.0 && Sim.utilisation sim <= 1.0)

let test_trace_and_gantt () =
  let sim = Sim.create ~trace:true (toy_arch 1) in
  let _ = Sim.spawn sim ~name:"p" ~on:0 (fun () -> Sim.compute 500.0) in
  let _ = Sim.run sim in
  let events = Sim.trace sim in
  Alcotest.(check bool) "has compute event" true
    (List.exists
       (fun e -> match e.Sim.what with Sim.Compute _ -> true | _ -> false)
       events);
  Alcotest.(check bool) "has done event" true
    (List.exists (fun e -> e.Sim.what = Sim.Done) events);
  Alcotest.(check bool) "not truncated" false (Sim.trace_truncated sim);
  let g = Sim.gantt sim in
  Alcotest.(check bool) "gantt has the processor row" true
    (Astring.String.is_infix ~affix:"P0" g)

let test_gantt_untraced_raises () =
  let sim = Sim.create (toy_arch 1) in
  let _ = Sim.spawn sim ~name:"p" ~on:0 (fun () -> Sim.compute 500.0) in
  let _ = Sim.run sim in
  Alcotest.check_raises "gantt on untraced machine"
    (Invalid_argument
       "Sim.gantt: tracing was not enabled (create the machine with \
        ~trace:true)")
    (fun () -> ignore (Sim.gantt sim))

let prop_compute_time_additive =
  QCheck.Test.make ~name:"sequential computes add up" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (int_range 1 1000))
    (fun cycles ->
      let sim = Sim.create (toy_arch 1) in
      let _ =
        Sim.spawn sim ~name:"p" ~on:0 (fun () ->
            List.iter (fun c -> Sim.compute (float_of_int c)) cycles)
      in
      let finish = Sim.run sim in
      let expected = float_of_int (List.fold_left ( + ) 0 cycles) *. 1e-6 in
      abs_float (finish -. expected) < 1e-9)


let test_process_accounts () =
  let sim = Sim.create (toy_arch 2) in
  let r = Sim.spawn sim ~name:"rx" ~on:1 (fun () -> ignore (Sim.recv "in")) in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        Sim.compute 1000.0;
        Sim.send r "in" (V.Int 1))
  in
  let _ = Sim.run sim in
  match Sim.process_accounts sim with
  | [ ("rx", 1, rx_busy, rx_sends); ("tx", 0, tx_busy, tx_sends) ] ->
      Alcotest.(check int) "rx sent nothing" 0 rx_sends;
      Alcotest.(check int) "tx sent one" 1 tx_sends;
      Alcotest.(check bool) "tx busier than rx" true (tx_busy > rx_busy);
      (* tx busy = 1000 compute + 200 send overhead cycles at 1us *)
      Alcotest.(check (float 1e-9)) "tx busy" 1.2e-3 tx_busy
  | other -> Alcotest.failf "unexpected accounts (%d entries)" (List.length other)

let test_metrics_report () =
  let sim = Sim.create (toy_arch 2) in
  let r = Sim.spawn sim ~name:"rx" ~on:1 (fun () -> ignore (Sim.recv "in")) in
  let _ =
    Sim.spawn sim ~name:"tx" ~on:0 (fun () ->
        Sim.compute 5000.0;
        Sim.send r "in" (V.Int 1))
  in
  let _ = Sim.run sim in
  let report = Machine.Metrics.analyse sim in
  Alcotest.(check int) "messages" 1 report.Machine.Metrics.messages;
  Alcotest.(check bool) "finish positive" true (report.Machine.Metrics.finish_time > 0.0);
  (match report.Machine.Metrics.hottest_process with
  | Some (name, _) -> Alcotest.(check string) "hottest" "tx" name
  | None -> Alcotest.fail "expected a hottest process");
  Alcotest.(check bool) "imbalance >= 1" true (Machine.Metrics.imbalance report >= 1.0);
  let text = Machine.Metrics.to_string report in
  Alcotest.(check bool) "has bars" true (Astring.String.is_infix ~affix:"P0" text);
  Alcotest.(check bool) "names busiest" true (Astring.String.is_infix ~affix:"tx" text)

let test_metrics_empty_machine () =
  let sim = Sim.create (toy_arch 1) in
  let _ = Sim.run sim in
  let report = Machine.Metrics.analyse sim in
  Alcotest.(check (float 0.0)) "no imbalance" 0.0 (Machine.Metrics.imbalance report);
  Alcotest.(check int) "no messages" 0 report.Machine.Metrics.messages

let () =
  Alcotest.run "machine"
    [
      ( "compute",
        [
          Alcotest.test_case "advances time" `Quick test_compute_advances_time;
          Alcotest.test_case "cpu exclusive" `Quick test_cpu_exclusive;
          Alcotest.test_case "processors overlap" `Quick test_parallel_processors_overlap;
          QCheck_alcotest.to_alcotest prop_compute_time_additive;
        ] );
      ( "communication",
        [
          Alcotest.test_case "latency model" `Quick test_message_latency_model;
          Alcotest.test_case "store and forward" `Quick test_store_and_forward;
          Alcotest.test_case "link contention" `Quick test_link_contention_serialises;
          Alcotest.test_case "local messages cheap" `Quick test_local_message_cheap;
          Alcotest.test_case "FIFO per port" `Quick test_fifo_per_port;
          Alcotest.test_case "recv_any earliest" `Quick test_recv_any;
        ] );
      ( "control",
        [
          Alcotest.test_case "sleep_until" `Quick test_sleep_until;
          Alcotest.test_case "horizon: event at until fires" `Quick
            test_horizon_event_at_until_fires;
          Alcotest.test_case "horizon: charge ending at until" `Quick
            test_horizon_charge_ends_at_until;
          Alcotest.test_case "horizon: spanning charge refunded" `Quick
            test_horizon_spanning_charge_refunded;
          Alcotest.test_case "blocked process tolerated" `Quick test_blocked_process_terminates_run;
          Alcotest.test_case "process failure wrapped" `Quick test_process_failure_wrapped;
          Alcotest.test_case "primitives need a process" `Quick test_primitives_outside_process;
          Alcotest.test_case "spawn validation" `Quick test_spawn_validation;
          Alcotest.test_case "run twice rejected" `Quick test_run_twice_rejected;
        ] );
      ( "observability",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "stats" `Quick test_stats_and_utilisation;
          Alcotest.test_case "trace and gantt" `Quick test_trace_and_gantt;
          Alcotest.test_case "gantt untraced raises" `Quick
            test_gantt_untraced_raises;
          Alcotest.test_case "process accounts" `Quick test_process_accounts;
          Alcotest.test_case "metrics report" `Quick test_metrics_report;
          Alcotest.test_case "metrics empty machine" `Quick test_metrics_empty_machine;
        ] );
    ]
