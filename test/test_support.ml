(* Tests for the support library: deterministic PRNG, the binary heap,
   busy-interval reservations, the JSON reader/printer (escape coverage,
   \uXXXX and surrogate pairs), the bench baseline gate (bit-pattern float
   identity, volatile fields) and %{key} path templating. *)

let test_prng_determinism () =
  let a = Support.Prng.create 42 and b = Support.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Support.Prng.bits64 a) (Support.Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Support.Prng.create 1 and b = Support.Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Support.Prng.bits64 a = Support.Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_split_independent () =
  let a = Support.Prng.create 7 in
  let b = Support.Prng.split a in
  let xa = Support.Prng.bits64 a and xb = Support.Prng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_prng_copy () =
  let a = Support.Prng.create 9 in
  let _ = Support.Prng.bits64 a in
  let b = Support.Prng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Support.Prng.bits64 a)
    (Support.Prng.bits64 b)

let test_prng_int_bounds () =
  let rng = Support.Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Support.Prng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Support.Prng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound <= 0") (fun () ->
      ignore (Support.Prng.int rng 0))

let test_prng_int_range () =
  let rng = Support.Prng.create 6 in
  for _ = 1 to 1000 do
    let v = Support.Prng.int_range rng (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_prng_float_bounds () =
  let rng = Support.Prng.create 8 in
  for _ = 1 to 1000 do
    let v = Support.Prng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_prng_gaussian_moments () =
  let rng = Support.Prng.create 10 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Support.Prng.gaussian rng in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (abs_float (var -. 1.0) < 0.1)

let test_prng_shuffle_permutation () =
  let rng = Support.Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Support.Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pqueue_ordering () =
  let q = Support.Pqueue.create () in
  List.iter (fun p -> Support.Pqueue.push q p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = ref [] in
  let rec drain () =
    match Support.Pqueue.pop q with
    | Some (p, _) ->
        out := p :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    (List.rev !out)

let test_pqueue_fifo_ties () =
  let q = Support.Pqueue.create () in
  List.iter (fun v -> Support.Pqueue.push q 1.0 v) [ "a"; "b"; "c" ];
  let pop () = snd (Option.get (Support.Pqueue.pop q)) in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_pqueue_peek_and_length () =
  let q = Support.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Support.Pqueue.is_empty q);
  Support.Pqueue.push q 2.0 "x";
  Support.Pqueue.push q 1.0 "y";
  Alcotest.(check int) "length" 2 (Support.Pqueue.length q);
  (match Support.Pqueue.peek q with
  | Some (p, v) ->
      Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
      Alcotest.(check string) "peek value" "y" v
  | None -> Alcotest.fail "peek on non-empty");
  Alcotest.(check int) "peek does not remove" 2 (Support.Pqueue.length q)

let test_pqueue_clear () =
  let q = Support.Pqueue.create () in
  Support.Pqueue.push q 1.0 1;
  Support.Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Support.Pqueue.is_empty q);
  Alcotest.(check bool) "pop empty" true (Support.Pqueue.pop q = None)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_int))
    (fun entries ->
      let q = Support.Pqueue.create () in
      List.iter (fun (p, v) -> Support.Pqueue.push q p v) entries;
      let rec drain acc =
        match Support.Pqueue.pop q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let prios = drain [] in
      List.sort compare prios = prios)

let prop_pqueue_preserves_multiset =
  QCheck.Test.make ~name:"pqueue pops exactly what was pushed" ~count:200
    QCheck.(list (pair (float_bound_inclusive 100.0) small_int))
    (fun entries ->
      let q = Support.Pqueue.create () in
      List.iter (fun (p, v) -> Support.Pqueue.push q p v) entries;
      let rec drain acc =
        match Support.Pqueue.pop q with
        | Some (_, v) -> drain (v :: acc)
        | None -> acc
      in
      let popped = List.sort compare (drain []) in
      let pushed = List.sort compare (List.map snd entries) in
      popped = pushed)


(* --- busy-interval reservations --- *)

let test_intervals_empty () =
  Alcotest.(check (float 0.0)) "first fit on empty" 3.0
    (Support.Intervals.first_fit Support.Intervals.empty ~earliest:3.0 ~duration:2.0)

let test_intervals_gap_fill () =
  (* busy [0,2) and [5,7): a 2-long request at earliest 0 fits at 2 *)
  let _, occ = Support.Intervals.reserve Support.Intervals.empty ~earliest:0.0 ~duration:2.0 in
  let _, occ = Support.Intervals.reserve occ ~earliest:5.0 ~duration:2.0 in
  let start = Support.Intervals.first_fit occ ~earliest:0.0 ~duration:2.0 in
  Alcotest.(check (float 1e-12)) "backfills the gap" 2.0 start;
  (* a 4-long request does not fit in the 3-long gap *)
  let start = Support.Intervals.first_fit occ ~earliest:0.0 ~duration:4.0 in
  Alcotest.(check (float 1e-12)) "skips past" 7.0 start

let test_intervals_total () =
  let _, occ = Support.Intervals.reserve Support.Intervals.empty ~earliest:1.0 ~duration:2.0 in
  let _, occ = Support.Intervals.reserve occ ~earliest:10.0 ~duration:0.5 in
  Alcotest.(check (float 1e-12)) "total" 2.5 (Support.Intervals.total occ)

let prop_intervals_stay_valid =
  QCheck.Test.make ~name:"reservations stay sorted and disjoint" ~count:200
    QCheck.(small_list (pair (float_bound_inclusive 50.0) (float_bound_inclusive 5.0)))
    (fun requests ->
      let occ =
        List.fold_left
          (fun occ (earliest, duration) ->
            let duration = duration +. 0.01 in
            snd (Support.Intervals.reserve occ ~earliest ~duration))
          Support.Intervals.empty requests
      in
      Support.Intervals.valid occ)

let prop_intervals_no_overlap_with_request =
  QCheck.Test.make ~name:"granted slot never overlaps prior reservations" ~count:200
    QCheck.(pair (small_list (pair (float_bound_inclusive 50.0) (float_bound_inclusive 5.0)))
             (pair (float_bound_inclusive 50.0) (float_bound_inclusive 5.0)))
    (fun (requests, (earliest, duration)) ->
      let duration = duration +. 0.01 in
      let occ =
        List.fold_left
          (fun occ (e, d) -> snd (Support.Intervals.reserve occ ~earliest:e ~duration:(d +. 0.01)))
          Support.Intervals.empty requests
      in
      let start = Support.Intervals.first_fit occ ~earliest ~duration in
      start >= earliest
      && List.for_all
           (fun (s, e) -> start +. duration <= s +. 1e-9 || start >= e -. 1e-9)
           occ)

(* --- JSON escapes --- *)

module Json = Support.Json

let json_str s =
  match Json.parse s with
  | Ok (Json.Str v) -> v
  | Ok _ -> Alcotest.failf "parse %S: not a string" s
  | Error m -> Alcotest.failf "parse %S failed: %s" s m

let test_json_short_escapes () =
  Alcotest.(check string) "all eight short escapes"
    "\"\\/\b\012\n\r\t"
    (json_str {|"\"\\\/\b\f\n\r\t"|})

let test_json_unicode_escapes () =
  Alcotest.(check string) "ASCII" "A" (json_str {|"\u0041"|});
  Alcotest.(check string) "2-byte UTF-8" "\xc3\xa9" (json_str {|"\u00e9"|});
  Alcotest.(check string) "3-byte UTF-8" "\xe2\x82\xac" (json_str {|"\u20ac"|});
  Alcotest.(check string) "hex case-insensitive" "\xe2\x82\xac"
    (json_str {|"\u20AC"|})

let test_json_surrogate_pair () =
  (* U+1F600 GRINNING FACE: one astral code point, four UTF-8 bytes *)
  Alcotest.(check string) "astral code point decodes" "\xf0\x9f\x98\x80"
    (json_str {|"\ud83d\ude00"|})

let test_json_bad_escapes () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse %S should be rejected" s)
    [
      {|"\ud83d"|};          (* unpaired high surrogate *)
      {|"\ud83dx"|};         (* high surrogate not followed by \u *)
      {|"\ud83dA"|}; (* high surrogate paired with a non-low unit *)
      {|"\ude00"|};          (* lone low surrogate *)
      {|"\u12g4"|};          (* bad hex digit *)
      {|"\u123"|};           (* truncated escape *)
      {|"\q"|};              (* unknown escape *)
    ]

let test_json_printer_escapes () =
  Alcotest.(check string) "short escapes plus \\u00XX fallback"
    {|"\n\t\r\b\f\u0001"|}
    (Json.to_string (Json.Str "\n\t\r\b\012\001"))

let test_json_roundtrip_strings () =
  let v = Json.Obj [ ("s", Json.Str "a\n\t\r\b\012\000\031b\xc3\xa9") ] in
  Alcotest.(check bool) "parse (to_string v) = Ok v" true
    (Json.parse (Json.to_string v) = Ok v)

(* --- baseline gate --- *)

module Baseline = Support.Baseline

let entry fields =
  Json.Arr [ Json.Obj (("experiment", Json.Str "e") :: fields) ]

let compare_one ?exact ?volatile ?tolerance b c =
  Baseline.compare ?exact ?volatile ?tolerance ~baseline:(entry b)
    ~current:(entry c) ()

let test_baseline_exact_bit_pattern () =
  let v = compare_one ~exact:[ "messages" ]
      [ ("messages", Json.Num 120.0) ] [ ("messages", Json.Num 121.0) ]
  in
  Alcotest.(check bool) "drift fails" false (Baseline.ok v);
  (match v.Baseline.failures with
  | [ m ] ->
      Alcotest.(check bool) "message names the bit patterns" true
        (Astring.String.is_infix ~affix:"bit patterns 0x" m);
      Alcotest.(check bool) "message says deterministic" true
        (Astring.String.is_infix ~affix:"deterministic field drifted" m)
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs));
  (* identity passes, including identical NaNs... *)
  let nan = Json.Num Float.nan in
  Alcotest.(check bool) "identical NaN passes" true
    (Baseline.ok
       (compare_one ~exact:[ "x" ] [ ("x", nan) ] [ ("x", nan) ]));
  (* ...while an exact 0. vs -0. flip fails even though (=) says equal *)
  Alcotest.(check bool) "0. vs -0. fails for exact fields" false
    (Baseline.ok
       (compare_one ~exact:[ "x" ]
          [ ("x", Json.Num 0.0) ]
          [ ("x", Json.Num (-0.0)) ]))

let test_baseline_volatile_shape_only () =
  (* any value passes, as long as the field is present and numeric *)
  Alcotest.(check bool) "wild drift passes" true
    (Baseline.ok
       (compare_one ~volatile:[ "p99" ]
          [ ("p99", Json.Num 1.0) ]
          [ ("p99", Json.Num 5000.0) ]));
  Alcotest.(check bool) "volatile wins over exact" true
    (Baseline.ok
       (compare_one ~exact:[ "p99" ] ~volatile:[ "p99" ]
          [ ("p99", Json.Num 1.0) ]
          [ ("p99", Json.Num 2.0) ]));
  Alcotest.(check bool) "missing volatile field still fails" false
    (Baseline.ok (compare_one ~volatile:[ "p99" ] [ ("p99", Json.Num 1.0) ] []));
  Alcotest.(check bool) "non-numeric shape still fails" false
    (Baseline.ok
       (compare_one ~volatile:[ "p99" ]
          [ ("p99", Json.Num 1.0) ]
          [ ("p99", Json.Str "fast") ]))

let test_baseline_tolerance () =
  let near = [ ("t", Json.Num 1.0) ], [ ("t", Json.Num 1.005) ] in
  let far = [ ("t", Json.Num 1.0) ], [ ("t", Json.Num 1.2) ] in
  Alcotest.(check bool) "within tolerance" true
    (Baseline.ok (compare_one (fst near) (snd near)));
  Alcotest.(check bool) "beyond tolerance" false
    (Baseline.ok (compare_one (fst far) (snd far)))

(* --- %{key} templating --- *)

module Template = Support.Template

let test_template_substitutes_every_occurrence () =
  Alcotest.(check string) "both occurrences expand"
    "out/8/trace-8.json"
    (Template.subst ~key:"procs" ~value:"8" "out/%{procs}/trace-%{procs}.json");
  Alcotest.(check string) "no template, no change" "plain.json"
    (Template.subst ~key:"procs" ~value:"8" "plain.json");
  Alcotest.(check string) "adjacent occurrences" "1212"
    (Template.subst ~key:"p" ~value:"12" "%{p}%{p}")

let test_template_no_rescan () =
  (* a value containing the pattern must not be re-expanded *)
  Alcotest.(check string) "substituted text is not rescanned" "%{p}!"
    (Template.subst ~key:"p" ~value:"%{p}" "%{p}!")

let test_template_other_keys_untouched () =
  Alcotest.(check string) "different key left alone" "a-%{other}-4"
    (Template.subst ~key:"procs" ~value:"4" "a-%{other}-%{procs}");
  Alcotest.(check bool) "mem finds the key" true
    (Template.mem ~key:"procs" "x/%{procs}");
  Alcotest.(check bool) "mem rejects absent key" false
    (Template.mem ~key:"procs" "x/%{other}")

let () =
  Alcotest.run "support"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects bound <= 0" `Quick test_prng_int_rejects_nonpositive;
          Alcotest.test_case "int_range" `Quick test_prng_int_range;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek and length" `Quick test_pqueue_peek_and_length;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          QCheck_alcotest.to_alcotest prop_pqueue_sorted;
          QCheck_alcotest.to_alcotest prop_pqueue_preserves_multiset;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "empty" `Quick test_intervals_empty;
          Alcotest.test_case "gap fill" `Quick test_intervals_gap_fill;
          Alcotest.test_case "total" `Quick test_intervals_total;
          QCheck_alcotest.to_alcotest prop_intervals_stay_valid;
          QCheck_alcotest.to_alcotest prop_intervals_no_overlap_with_request;
        ] );
      ( "json",
        [
          Alcotest.test_case "short escapes" `Quick test_json_short_escapes;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "surrogate pair" `Quick test_json_surrogate_pair;
          Alcotest.test_case "bad escapes rejected" `Quick test_json_bad_escapes;
          Alcotest.test_case "printer escapes" `Quick test_json_printer_escapes;
          Alcotest.test_case "string round-trip" `Quick
            test_json_roundtrip_strings;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "exact fields compare by bit pattern" `Quick
            test_baseline_exact_bit_pattern;
          Alcotest.test_case "volatile fields check shape only" `Quick
            test_baseline_volatile_shape_only;
          Alcotest.test_case "tolerance" `Quick test_baseline_tolerance;
        ] );
      ( "template",
        [
          Alcotest.test_case "every occurrence substituted" `Quick
            test_template_substitutes_every_occurrence;
          Alcotest.test_case "no rescan of substituted text" `Quick
            test_template_no_rescan;
          Alcotest.test_case "other keys untouched" `Quick
            test_template_other_keys_untouched;
        ] );
    ]
