(* Conformance suite: the profiler's verdicts must be sound and stable.
   Soundness: the measured critical path is a real chain of activities, so
   its length can never exceed the measured makespan and never undercut the
   longest single activity it must traverse. Stability: the JSON report is
   byte-identical whether runs are farmed over 1 or N domains, faults can
   only push the measured run *away* from the predicted schedule, and the
   baseline gate trips on exactly the drifts it promises to catch. *)

module V = Skel.Value
module Sim = Machine.Sim
module Dp = Support.Domain_pool
module J = Support.Json
module B = Support.Baseline
module C = Skipper_trace.Conformance
module E = Skipper_trace.Event
module P = Skipper_lib.Pipeline

let pool_jobs = Dp.jobs_from_env ~default:4 ()

(* ------------------------------------------------------------------ *)
(* A df farm with a uniform per-item cost: every worker op span has the
   same duration, so the critical path provably crosses one of them.    *)

type params = { nworkers : int; nitems : int; scale : float }

let run_farm ?link_faults p =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "w" ~cost:(fun _ -> p.scale) (fun v -> v);
  Skel.Funtable.register table "k" ~arity:2 ~cost:(fun _ -> 100.0) (fun v ->
      fst (V.to_pair v));
  let compiled =
    P.compile_ir ~table
      (Skel.Ir.program "farm"
         (Skel.Ir.Df
            {
              nworkers = p.nworkers;
              comp = "w";
              acc = "k";
              init = V.Int 0;
              state = Skel.Ir.Stateless;
            }))
  in
  let arch = Archi.ring (p.nworkers + 1) in
  P.execute_with_schedule ~trace:true ?link_faults
    ~input:(V.List (List.init p.nitems (fun i -> V.Int i)))
    compiled arch

let conformance_of (schedule, (r : Executive.result)) =
  match Machine.Profile.conformance ~schedule r.Executive.sim with
  | Ok rep -> rep
  | Error e -> Alcotest.fail e

(* Longest single activity span recorded anywhere on a processor track. *)
let longest_span (r : Executive.result) =
  List.fold_left
    (fun acc (e : E.t) ->
      match e.E.kind with
      | E.Span d when e.E.lane.E.track >= 3 -> Float.max acc d
      | _ -> acc)
    0.0
    (E.events (Machine.Profile.timeline r.Executive.sim))

(* ------------------------------------------------------------------ *)
(* Critical-path soundness (qcheck)                                    *)

let gen_params =
  QCheck.Gen.(
    map
      (fun (nworkers, nitems, scale) -> { nworkers; nitems; scale })
      (tup3 (int_range 1 4) (int_range 1 10)
         (oneofl [ 1_000.0; 10_000.0; 100_000.0 ])))

let print_params p =
  Printf.sprintf "{workers=%d; items=%d; scale=%.0f}" p.nworkers p.nitems
    p.scale

let rec chronological = function
  | a :: (b :: _ as rest) ->
      a.C.elem_start <= b.C.elem_start && chronological rest
  | _ -> true

let prop_critical_path_sound =
  QCheck.Test.make
    ~name:"path length in [longest op span, measured makespan]" ~count:30
    (QCheck.make ~print:print_params gen_params)
    (fun p ->
      let schedule, r = run_farm p in
      let rep = conformance_of (schedule, r) in
      let eps = 1e-9 *. Float.max 1.0 rep.C.measured_makespan in
      let share_sum =
        List.fold_left (fun a e -> a +. e.C.share) 0.0 rep.C.path
      in
      rep.C.path <> []
      && chronological rep.C.path
      && rep.C.path_length <= rep.C.measured_makespan +. eps
      && rep.C.path_length +. eps >= longest_span r
      && List.for_all
           (fun e ->
             e.C.contribution >= -.eps
             && e.C.contribution <= e.C.elem_finish -. e.C.elem_start +. eps)
           rep.C.path
      && Float.abs (share_sum -. 1.0) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Stability                                                           *)

let fingerprint p = J.to_string (C.to_json (conformance_of (run_farm p)))

let test_json_byte_identical_across_jobs () =
  let p = { nworkers = 3; nitems = 8; scale = 10_000.0 } in
  let seq = fingerprint p in
  let pooled =
    Dp.run ~jobs:pool_jobs (List.init 3 (fun _ () -> fingerprint p))
  in
  List.iteri
    (fun i json ->
      Alcotest.(check string)
        (Printf.sprintf "pooled copy %d == sequential" i)
        seq json)
    pooled

let test_faults_increase_divergence () =
  let p = { nworkers = 3; nitems = 8; scale = 10_000.0 } in
  let healthy = conformance_of (run_farm p) in
  let faulty =
    conformance_of
      (run_farm
         ~link_faults:
           [ Sim.link_fault ~schedule:(Sim.Every 2) (Sim.Delay 2e-3) ]
         p)
  in
  Alcotest.(check bool) "faults slow the measured run" true
    (faulty.C.measured_makespan > healthy.C.measured_makespan);
  Alcotest.(check bool) "faults increase divergence" true
    (faulty.C.divergence > healthy.C.divergence)

(* ------------------------------------------------------------------ *)
(* hottest_link tie-break                                              *)

let mk_report links =
  {
    Machine.Metrics.finish_time = 1.0;
    mean_utilisation = 0.0;
    loads = [];
    hottest_process = None;
    messages = 0;
    bytes = 0;
    links;
    port_depths = [];
    breakdown = [];
    dropped_msgs = 0;
    deadline_misses = 0;
    reissues = 0;
    latency = None;
    trace_truncated = false;
    trace_limit = 0;
  }

let mk_link src dst link_busy =
  { Machine.Metrics.src; dst; link_busy; transfers = 1; occupancy = 0.1 }

let test_hottest_link_tie_break () =
  let pair = function
    | Some l -> (l.Machine.Metrics.src, l.Machine.Metrics.dst)
    | None -> Alcotest.fail "expected a hottest link"
  in
  Alcotest.(check (pair int int))
    "equal loads break to the lowest (src, dst)" (0, 3)
    (pair
       (Machine.Metrics.hottest_link
          (mk_report [ mk_link 2 1 5.0; mk_link 1 2 5.0; mk_link 0 3 5.0 ])));
  Alcotest.(check (pair int int))
    "a strictly heavier link still wins" (2, 1)
    (pair
       (Machine.Metrics.hottest_link
          (mk_report [ mk_link 0 3 4.0; mk_link 2 1 5.0 ])));
  Alcotest.(check bool) "no traffic, no hottest link" true
    (Machine.Metrics.hottest_link (mk_report []) = None)

(* ------------------------------------------------------------------ *)
(* Latency distribution                                                *)

let test_latency_stats () =
  Alcotest.(check bool) "empty list gives None" true
    (Machine.Metrics.latency_stats [] = None);
  (match Machine.Metrics.latency_stats [ 5.0 ] with
  | Some s ->
      Alcotest.(check (float 1e-12)) "singleton mean" 5.0 s.Machine.Metrics.mean_latency;
      Alcotest.(check (float 1e-12)) "singleton p50" 5.0 s.Machine.Metrics.p50;
      Alcotest.(check (float 1e-12)) "singleton p95" 5.0 s.Machine.Metrics.p95;
      Alcotest.(check (float 1e-12)) "singleton p99" 5.0 s.Machine.Metrics.p99;
      Alcotest.(check (float 1e-12)) "singleton jitter" 0.0 s.Machine.Metrics.jitter
  | None -> Alcotest.fail "singleton should produce stats");
  (* the documented nearest-rank convention: rank round(q*n + 0.5) rounds
     half away from zero, so p50 of a pair is the *larger* element *)
  (match Machine.Metrics.latency_stats [ 2.0; 1.0 ] with
  | Some s ->
      Alcotest.(check (float 1e-12)) "pair p50 is the larger element" 2.0
        s.Machine.Metrics.p50;
      Alcotest.(check (float 1e-12)) "pair p99 is the max" 2.0
        s.Machine.Metrics.p99;
      Alcotest.(check (float 1e-12)) "pair jitter is the population sd" 0.5
        s.Machine.Metrics.jitter
  | None -> Alcotest.fail "pair should produce stats");
  match Machine.Metrics.latency_stats (List.init 100 (fun i -> float (i + 1))) with
  | Some s ->
      let open Machine.Metrics in
      Alcotest.(check int) "n" 100 s.n;
      Alcotest.(check (float 1e-9)) "mean" 50.5 s.mean_latency;
      Alcotest.(check bool) "percentiles ordered" true
        (s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= 100.0);
      Alcotest.(check bool) "p50 near the median" true
        (Float.abs (s.p50 -. 50.5) <= 1.0);
      Alcotest.(check bool) "jitter positive" true (s.jitter > 0.0)
  | None -> Alcotest.fail "expected stats"

(* ------------------------------------------------------------------ *)
(* JSON round-trip and the baseline gate                               *)

let test_json_round_trip () =
  let v =
    J.Arr
      [
        J.Obj
          [
            ("a", J.Num 1.0);
            ("b", J.Str "x\"y\\z");
            ("c", J.Arr [ J.Null; J.Bool true; J.Num 0.25; J.Num (-3.0) ]);
            ("d", J.Obj []);
          ];
        J.Num 2.5e-3;
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "parse (to_string v) = v" true (v = v')
  | Error e -> Alcotest.fail e);
  (match J.parse " [1, 2.5e-3] " with
  | Ok (J.Arr [ J.Num 1.0; J.Num 2.5e-3 ]) -> ()
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  match J.parse "tru" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated literal must not parse"

let entry ?(name = "e1") msgs ft =
  J.Obj
    [
      ("experiment", J.Str name); ("messages", J.Num msgs);
      ("finish_time", J.Num ft);
    ]

let check_verdict what expected verdict =
  Alcotest.(check bool) what expected (B.ok verdict)

let test_baseline_gate () =
  let exact = [ "messages" ] in
  let base = J.Arr [ entry 100.0 1.0 ] in
  check_verdict "identical arrays pass" true
    (B.compare ~exact ~baseline:base ~current:(J.Arr [ entry 100.0 1.0 ]) ());
  check_verdict "perturbed deterministic counter fails" false
    (B.compare ~exact ~baseline:base ~current:(J.Arr [ entry 101.0 1.0 ]) ());
  check_verdict "small timing drift within tolerance passes" true
    (B.compare ~exact ~baseline:base ~current:(J.Arr [ entry 100.0 1.005 ]) ());
  check_verdict "large timing drift fails" false
    (B.compare ~exact ~baseline:base ~current:(J.Arr [ entry 100.0 1.05 ]) ());
  check_verdict "missing experiment fails" false
    (B.compare ~exact ~baseline:base ~current:(J.Arr []) ());
  check_verdict "added experiment fails" false
    (B.compare ~exact ~baseline:base
       ~current:(J.Arr [ entry 100.0 1.0; entry ~name:"e2" 1.0 1.0 ])
       ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "conformance"
    [
      ( "critical-path",
        [
          QCheck_alcotest.to_alcotest prop_critical_path_sound;
          Alcotest.test_case "faults increase divergence" `Quick
            test_faults_increase_divergence;
        ] );
      ( "stability",
        [
          Alcotest.test_case "JSON byte-identical across jobs" `Quick
            test_json_byte_identical_across_jobs;
          Alcotest.test_case "hottest link tie-break" `Quick
            test_hottest_link_tie_break;
        ] );
      ( "metrics",
        [ Alcotest.test_case "latency stats" `Quick test_latency_stats ] );
      ( "baseline",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "gate verdicts" `Quick test_baseline_gate;
        ] );
    ]
