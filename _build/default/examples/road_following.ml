(* Road following by white-line detection (paper ref [6]): an itermem
   stream loop whose body is an scm skeleton. Each frame of a synthetic
   curving road is scanned in strips for the bright centre line; the fitted
   lane model is displayed and fed back to narrow the next frame's search.

   Run with: dune exec examples/road_following.exe *)

module V = Skel.Value

let width = 512
let height = 512
let frames = 12
let nstrips = 6

let () =
  let table = Skel.Funtable.create () in
  Apps.Road.register ~width ~height table;
  let compiled =
    Skipper_lib.Pipeline.compile_ir ~table (Apps.Road.ir ~frames ~nstrips ())
  in
  let input = Apps.Road.input_value ~width ~height in
  let arch = Archi.ring (nstrips + 1) in
  let result = Skipper_lib.Pipeline.execute ~input ~input_period:0.04 compiled arch in
  print_endline "frame | lane offset px | slope px/row | confidence | latency ms";
  List.iteri
    (fun i (lane_v, latency) ->
      let lane = Apps.Road.lane_of_value lane_v in
      Printf.printf "%5d | %14.1f | %12.4f | %10.2f | %10.2f\n" i
        lane.Apps.Road.offset lane.Apps.Road.slope lane.Apps.Road.confidence
        (latency *. 1e3))
    (List.combine result.Executive.outputs result.Executive.latencies);
  let emulated =
    let table2 = Skel.Funtable.create () in
    Apps.Road.register ~width ~height table2;
    Skel.Sem.run table2 (Apps.Road.ir ~frames ~nstrips ()) input
  in
  Printf.printf "emulation agrees: %b\n"
    (V.equal emulated result.Executive.value);
  print_endline "road_following: OK"
