(* Visualising the tracker: runs the vehicle-tracking pipeline sequentially
   for a few frames and writes annotated PGM images -- detected marks as
   crosses, their englobing frames and the windows of interest predicted for
   the next frame -- the display a SKiPPER demo would show on the monitor.

   Run with: dune exec examples/render_tracking.exe [output-dir]
   (default output directory: ./tracking-frames) *)

module V = Skel.Value

let frames = 6

let () =
  let out_dir =
    match Sys.argv with [| _; dir |] -> dir | _ -> "tracking-frames"
  in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let config =
    {
      Tracking.Funcs.default_config with
      Tracking.Funcs.scene =
        { Vision.Scene.default_params with Vision.Scene.width = 512; height = 512 };
    }
  in
  let scene = config.Tracking.Funcs.scene in
  let state = ref Tracking.Track_state.initial in
  for i = 0 to frames - 1 do
    let img = Vision.Scene.frame scene i in
    (* the same per-frame computation the pipeline performs *)
    let windows =
      Tracking.Predictor.windows_for ~nproc:config.Tracking.Funcs.nproc
        ~width:(Vision.Image.width img) ~height:(Vision.Image.height img)
        !state
    in
    let marks =
      List.concat_map
        (fun w ->
          Tracking.Detector.detect
            ~origin:(w.Vision.Window.x, w.Vision.Window.y)
            (Vision.Window.extract img w))
        windows
    in
    state := Tracking.Predictor.update !state marks;
    (* annotate a copy of the frame *)
    let view = Vision.Image.copy img in
    List.iter (fun w -> Vision.Draw.window view w 140) windows;
    List.iter
      (fun (m : Tracking.Mark.t) ->
        Vision.Draw.cross view
          ~x:(int_of_float m.Tracking.Mark.x)
          ~y:(int_of_float m.Tracking.Mark.y)
          ~size:6 0;
        Vision.Draw.rect view ~x:m.Tracking.Mark.min_x ~y:m.Tracking.Mark.min_y
          ~w:(Tracking.Mark.width m) ~h:(Tracking.Mark.height m) 255)
      marks;
    let path = Filename.concat out_dir (Printf.sprintf "frame_%02d.pgm" i) in
    Vision.Image.save_pgm view path;
    Printf.printf "frame %d: %d windows, %d marks, mode %s -> %s\n" i
      (List.length windows) (List.length marks)
      (match !state.Tracking.Track_state.mode with
      | Tracking.Track_state.Tracking -> "tracking"
      | Tracking.Track_state.Reinit -> "reinit")
      path
  done;
  Printf.printf "wrote %d annotated frames to %s/\n" frames out_dir
