(* Divide and conquer with the tf skeleton: adaptive quadtree segmentation.
   Workers recursively split inhomogeneous regions into four sub-packets --
   the recursive packet generation that distinguishes tf from df (paper §2).

   Run with: dune exec examples/divide_conquer.exe *)

module V = Skel.Value

let () =
  let img = Apps.Ccl_scm.blobs_image ~seed:3 ~nblobs:10 256 256 in
  let table = Skel.Funtable.create () in
  Apps.Quadtree.register table;
  let compiled =
    Skipper_lib.Pipeline.compile_ir ~table (Apps.Quadtree.ir ~nworkers:6)
  in
  let input = V.Image img in
  let arch = Archi.ring 7 in
  let result = Skipper_lib.Pipeline.execute ~input compiled arch in
  let leaves = Apps.Quadtree.leaves_of_value result.Executive.value in
  Printf.printf "quadtree leaves: %d\n" (List.length leaves);

  (* Coverage check: the leaves tile the image exactly. *)
  let covered =
    List.fold_left (fun acc r -> acc + (r.Apps.Quadtree.w * r.Apps.Quadtree.h)) 0 leaves
  in
  Printf.printf "covered pixels: %d / %d\n" covered (256 * 256);
  assert (covered = 256 * 256);

  (* The reconstruction approximates the input. *)
  let approx = Apps.Quadtree.reconstruct ~width:256 ~height:256 leaves in
  let err =
    Vision.Image.fold ( + ) 0 (Vision.Ops.invert approx) |> ignore;
    let total = ref 0 in
    Vision.Image.iter
      (fun x y v -> total := !total + abs (v - Vision.Image.get img x y))
      approx;
    float_of_int !total /. float_of_int (256 * 256)
  in
  Printf.printf "mean reconstruction error: %.2f levels/pixel\n" err;

  (* Declarative semantics agree (depth-first there, dynamic here; the
     accumulator keeps leaves canonically sorted so both orders match). *)
  let table2 = Skel.Funtable.create () in
  Apps.Quadtree.register table2;
  let emulated = Skel.Sem.run table2 (Apps.Quadtree.ir ~nworkers:6) input in
  Printf.printf "emulation agrees: %b\n" (V.equal emulated result.Executive.value);
  Printf.printf "latency: %.2f ms\n" (result.Executive.first_latency *. 1e3);
  print_endline "divide_conquer: OK"
