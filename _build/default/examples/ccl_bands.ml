(* Connected-component labelling with the scm skeleton (the companion
   application of paper ref [7]): split a 512x512 image into row bands,
   label each band on its own processor, merge across the seams.

   Prints the component count, verifies the parallel labelling against the
   sequential one, and sweeps the band/processor count.

   Run with: dune exec examples/ccl_bands.exe *)

module V = Skel.Value

let () =
  let img = Apps.Ccl_scm.blobs_image ~seed:11 ~nblobs:60 512 512 in
  let input = V.Image img in

  (* Reference: plain sequential labelling. *)
  let reference = Vision.Ccl.label ~threshold:128 img in
  Printf.printf "sequential CCL: %d components\n" reference.Vision.Ccl.ncomponents;

  List.iter
    (fun nparts ->
      let table = Skel.Funtable.create () in
      Apps.Ccl_scm.register table;
      let compiled =
        Skipper_lib.Pipeline.compile_ir ~table (Apps.Ccl_scm.ir ~nparts)
      in
      let arch = Archi.ring (nparts + 1) in
      let result = Skipper_lib.Pipeline.execute ~input compiled arch in
      let ncomp, area = Apps.Ccl_scm.result_summary result.Executive.value in
      let emulated = Skipper_lib.Pipeline.emulate compiled input in
      Printf.printf
        "scm with %2d bands on ring-%-2d: %3d components, %6d px, %7.2f ms  \
         (emulation agrees: %b)\n"
        nparts (nparts + 1) ncomp area
        (result.Executive.first_latency *. 1e3)
        (V.equal emulated result.Executive.value);
      assert (ncomp = reference.Vision.Ccl.ncomponents))
    [ 2; 4; 8; 12 ];
  print_endline "ccl_bands: OK"
