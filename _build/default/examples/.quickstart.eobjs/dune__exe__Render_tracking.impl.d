examples/render_tracking.ml: Filename List Printf Skel Sys Tracking Vision
