examples/render_tracking.mli:
