examples/road_following.ml: Apps Archi Executive List Printf Skel Skipper_lib
