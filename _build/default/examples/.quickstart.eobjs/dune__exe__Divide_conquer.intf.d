examples/divide_conquer.mli:
