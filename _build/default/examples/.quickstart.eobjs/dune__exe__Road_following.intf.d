examples/road_following.mli:
