examples/divide_conquer.ml: Apps Archi Executive List Printf Skel Skipper_lib Vision
