examples/vehicle_tracking.ml: Archi Executive Format List Machine Option Printf Skel Skipper_lib Syndex Tracking
