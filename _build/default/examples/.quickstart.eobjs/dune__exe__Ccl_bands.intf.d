examples/ccl_bands.mli:
