examples/quickstart.mli:
