examples/quickstart.ml: Archi Executive List Machine Printf Skel Skipper_lib
