examples/ccl_bands.ml: Apps Archi Executive List Printf Skel Skipper_lib Vision
