type processor_load = {
  proc : int;
  busy : float;
  fraction : float;
  processes : int;
}

type report = {
  finish_time : float;
  mean_utilisation : float;
  loads : processor_load list;
  hottest_process : (string * float) option;
  messages : int;
  bytes : int;
}

let analyse sim =
  let stats = Sim.stats sim in
  let accounts = Sim.process_accounts sim in
  let finish = stats.Sim.finish_time in
  let nprocs = Array.length stats.Sim.busy in
  let hosted = Array.make nprocs 0 in
  List.iter (fun (_, on, _, _) -> hosted.(on) <- hosted.(on) + 1) accounts;
  let loads =
    List.init nprocs (fun p ->
        {
          proc = p;
          busy = stats.Sim.busy.(p);
          fraction = (if finish > 0.0 then stats.Sim.busy.(p) /. finish else 0.0);
          processes = hosted.(p);
        })
  in
  let hottest_process =
    List.fold_left
      (fun best (name, _, busy, _) ->
        match best with
        | Some (_, b) when b >= busy -> best
        | _ -> Some (name, busy))
      None accounts
  in
  {
    finish_time = finish;
    mean_utilisation = Sim.utilisation sim;
    loads;
    hottest_process;
    messages = stats.Sim.messages;
    bytes = stats.Sim.bytes;
  }

let imbalance report =
  match report.loads with
  | [] -> 0.0
  | loads ->
      let total = List.fold_left (fun acc l -> acc +. l.busy) 0.0 loads in
      let mean = total /. float_of_int (List.length loads) in
      if mean <= 0.0 then 0.0
      else List.fold_left (fun acc l -> Float.max acc l.busy) 0.0 loads /. mean

let bar fraction width =
  let filled = int_of_float (fraction *. float_of_int width) in
  String.make (min width filled) '#' ^ String.make (max 0 (width - filled)) '.'

let to_string report =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "run: %.3f ms, mean utilisation %.0f%%, %d messages (%d bytes)\n"
       (report.finish_time *. 1e3)
       (report.mean_utilisation *. 100.0)
       report.messages report.bytes);
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "P%-3d |%s| %5.1f%%  (%d processes)\n" l.proc
           (bar l.fraction 40) (l.fraction *. 100.0) l.processes))
    report.loads;
  (match report.hottest_process with
  | Some (name, busy) ->
      Buffer.add_string buf
        (Printf.sprintf "busiest process: %s (%.3f ms busy)\n" name (busy *. 1e3))
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "imbalance (max/mean busy): %.2f\n" (imbalance report));
  Buffer.contents buf
