(** Post-run analysis of a simulated machine.

    SynDEx offered "optional real-time performance measurement" of the
    generated executive (paper §3); this module is that facility for the
    simulator: per-processor utilisation, per-process accounting and a
    plain-text report suitable for terminal display. *)

type processor_load = {
  proc : int;
  busy : float;  (** seconds *)
  fraction : float;  (** busy / finish_time *)
  processes : int;  (** processes hosted *)
}

type report = {
  finish_time : float;
  mean_utilisation : float;
  loads : processor_load list;  (** by processor id *)
  hottest_process : (string * float) option;
      (** name and busy seconds of the busiest process *)
  messages : int;
  bytes : int;
}

val analyse : Sim.t -> report
(** Raises nothing; works on any finished (or even empty) machine. *)

val imbalance : report -> float
(** Max processor busy time divided by the mean (1.0 = perfectly level;
    0 when nothing ran). *)

val to_string : report -> string
(** Multi-line report with a utilisation bar per processor and the top
    processes by busy time. *)
