lib/machine/sim.ml: Archi Array Buffer Bytes Effect Float Fun Hashtbl List Option Printf Queue Skel Support
