lib/machine/sim.mli: Archi Skel
