lib/machine/metrics.mli: Sim
