lib/machine/metrics.ml: Array Buffer Float List Printf Sim String
