open Effect
open Effect.Deep

type pid = int

exception Not_in_process
exception Process_failure of string * exn

(* Software costs of the kernel primitives (cycles) and the local memory-copy
   bandwidth (bytes/s). See DESIGN.md, calibration constants. *)
let send_overhead_cycles = 200.0
let recv_overhead_cycles = 150.0
let local_copy_bandwidth = 4e8

type _ Effect.t +=
  | E_recv : string list -> (string * Skel.Value.t) Effect.t
  | E_send : (pid * string * Skel.Value.t) -> unit Effect.t
  | E_compute : float -> unit Effect.t
  | E_sleep : float -> unit Effect.t

type resume =
  | Start of (unit -> unit)
  | RUnit of (unit, unit) continuation
  | RMsg of ((string * Skel.Value.t), unit) continuation * string * Skel.Value.t

type pstate =
  | Runnable
  | Blocked of string list * ((string * Skel.Value.t), unit) continuation
  | Finished

type process = {
  pid : pid;
  name : string;
  on : int;
  mutable state : pstate;
  mailboxes : (string, (float * Skel.Value.t) Queue.t) Hashtbl.t;
}

type trace_event = {
  time : float;
  proc : int;
  process : string;
  what :
    [ `Start_compute of float | `End_compute | `Send of string * int | `Recv of string | `Done ];
}

type event =
  | Dispatch of int  (** processor id: pull next ready process if CPU free *)
  | Step of pid * resume  (** continue this process now (CPU already held) *)
  | Enqueue of pid * resume  (** re-admit a sleeping process via the ready queue *)
  | Deliver of pid * string * Skel.Value.t
  | Halt of int  (** processor fault: stop dispatching on this processor *)

type t = {
  arch : Archi.t;
  mutable processes : process array;
  mutable nprocesses : int;
  events : event Support.Pqueue.t;
  cpu_free : float array;
  halted : bool array;
  ready : (pid * resume) Queue.t array;
  link_busy : (int * int, Support.Intervals.t ref) Hashtbl.t;
  mutable time : float;
  mutable ran : bool;
  mutable messages : int;
  mutable bytes : int;
  mutable hops_total : int;
  busy : float array;
  busy_intervals : (float * float) list array;  (* reversed, for gantt *)
  proc_busy : (pid, float) Hashtbl.t;  (* per-process busy seconds *)
  proc_sends : (pid, int) Hashtbl.t;
  tracing : bool;
  trace_limit : int;
  mutable trace_rev : trace_event list;
  mutable trace_len : int;
}

let create ?(trace = false) ?(trace_limit = 20000) arch =
  let n = Archi.nprocs arch in
  {
    arch;
    processes = [||];
    nprocesses = 0;
    events = Support.Pqueue.create ();
    cpu_free = Array.make n 0.0;
    halted = Array.make n false;
    ready = Array.init n (fun _ -> Queue.create ());
    link_busy = Hashtbl.create 16;
    time = 0.0;
    ran = false;
    messages = 0;
    bytes = 0;
    hops_total = 0;
    busy = Array.make n 0.0;
    busy_intervals = Array.make n [];
    proc_busy = Hashtbl.create 32;
    proc_sends = Hashtbl.create 32;
    tracing = trace;
    trace_limit;
    trace_rev = [];
    trace_len = 0;
  }

let arch t = t.arch

let record t ev =
  if t.tracing && t.trace_len < t.trace_limit then begin
    t.trace_rev <- ev :: t.trace_rev;
    t.trace_len <- t.trace_len + 1
  end

(* The process currently executing a zero-duration segment. *)
let current : (t * process) option ref = ref None

let the_current () = match !current with Some c -> c | None -> raise Not_in_process
let self () = (snd (the_current ())).pid
let now () = (fst (the_current ())).time

(* Primitives only perform effects; all semantics live in the handler. *)
let compute cycles = perform (E_compute cycles)
let sleep_until at = perform (E_sleep at)
let send dst port v = perform (E_send (dst, port, v))
let recv_any ports = perform (E_recv ports)

let recv port =
  let _, v = recv_any [ port ] in
  v

let cycle_time t p = (Archi.processors t.arch).(p).Archi.cycle_time

let charge_busy ?pid t p dt =
  t.busy.(p) <- t.busy.(p) +. dt;
  (match pid with
  | Some pid ->
      Hashtbl.replace t.proc_busy pid
        (dt +. Option.value ~default:0.0 (Hashtbl.find_opt t.proc_busy pid))
  | None -> ());
  if t.tracing then t.busy_intervals.(p) <- (t.time, t.time +. dt) :: t.busy_intervals.(p)

(* Find, among [ports], the mailbox whose head message was delivered
   earliest. Returns (port, delivery_time). *)
let earliest_message proc ports =
  List.fold_left
    (fun best port ->
      match Hashtbl.find_opt proc.mailboxes port with
      | None -> best
      | Some q when Queue.is_empty q -> best
      | Some q ->
          let at, _ = Queue.peek q in
          (match best with
          | Some (_, best_at) when best_at <= at -> best
          | _ -> Some (port, at)))
    None ports

let pop_message proc port =
  let q = Hashtbl.find proc.mailboxes port in
  snd (Queue.pop q)

let push_event t at ev = Support.Pqueue.push t.events at ev

let make_ready t proc resume =
  Queue.add (proc.pid, resume) t.ready.(proc.on);
  push_event t t.time (Dispatch proc.on)

(* Reserve [duration] on link [key] no earlier than [earliest] (first-fit
   into the link's gap structure). Returns the start of the reservation. *)
let reserve_link t key earliest duration =
  let intervals =
    match Hashtbl.find_opt t.link_busy key with
    | Some r -> r
    | None ->
        let r = ref Support.Intervals.empty in
        Hashtbl.replace t.link_busy key r;
        r
  in
  let start, updated = Support.Intervals.reserve !intervals ~earliest ~duration in
  intervals := updated;
  start

(* Physical transfer of [bytes_n] bytes from processor [src] to [dst],
   starting at [depart]. Returns the arrival time; reserves link occupancy
   (store-and-forward, one transfer at a time per directed link). *)
let transfer t src dst bytes_n depart =
  if src = dst then depart +. (float_of_int bytes_n /. local_copy_bandwidth)
  else begin
    let path = Archi.route t.arch src dst in
    let rec hop depart = function
      | a :: (b :: _ as rest) ->
          let link =
            match Archi.link_between t.arch a b with
            | Some l -> l
            | None -> failwith "Sim.transfer: route uses missing link"
          in
          let duration =
            link.Archi.startup +. (float_of_int bytes_n /. link.Archi.bandwidth)
          in
          let start = reserve_link t (a, b) depart duration in
          t.hops_total <- t.hops_total + 1;
          hop (start +. duration) rest
      | _ -> depart
    in
    hop depart path
  end

(* Run one zero-duration execution segment of [proc]. Effects performed by
   the body terminate the segment after scheduling follow-up events. *)
let run_segment t proc resume =
  let p = proc.on in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          proc.state <- Finished;
          record t { time = t.time; proc = p; process = proc.name; what = `Done };
          t.cpu_free.(p) <- t.time;
          push_event t t.time (Dispatch p));
      exnc = (fun exn -> raise (Process_failure (proc.name, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_compute cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let dt = cycles *. cycle_time t p in
                  record t
                    {
                      time = t.time;
                      proc = p;
                      process = proc.name;
                      what = `Start_compute cycles;
                    };
                  charge_busy ~pid:proc.pid t p dt;
                  t.cpu_free.(p) <- t.time +. dt;
                  push_event t (t.time +. dt) (Step (proc.pid, RUnit k)))
          | E_send (dst, port, v) ->
              Some
                (fun k ->
                  let dt = send_overhead_cycles *. cycle_time t p in
                  charge_busy ~pid:proc.pid t p dt;
                  Hashtbl.replace t.proc_sends proc.pid
                    (1 + Option.value ~default:0 (Hashtbl.find_opt t.proc_sends proc.pid));
                  t.cpu_free.(p) <- t.time +. dt;
                  let dst_proc = t.processes.(dst) in
                  let nbytes = Skel.Value.byte_size v in
                  t.messages <- t.messages + 1;
                  t.bytes <- t.bytes + nbytes;
                  record t
                    {
                      time = t.time;
                      proc = p;
                      process = proc.name;
                      what = `Send (port, nbytes);
                    };
                  let arrive = transfer t p dst_proc.on nbytes (t.time +. dt) in
                  push_event t arrive (Deliver (dst, port, v));
                  push_event t (t.time +. dt) (Step (proc.pid, RUnit k)))
          | E_sleep at ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.cpu_free.(p) <- t.time;
                  push_event t (Float.max t.time at) (Enqueue (proc.pid, RUnit k));
                  push_event t t.time (Dispatch p))
          | E_recv ports ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match earliest_message proc ports with
                  | Some (port, _) ->
                      let v = pop_message proc port in
                      let dt = recv_overhead_cycles *. cycle_time t p in
                      charge_busy ~pid:proc.pid t p dt;
                      t.cpu_free.(p) <- t.time +. dt;
                      record t
                        { time = t.time; proc = p; process = proc.name; what = `Recv port };
                      push_event t (t.time +. dt) (Step (proc.pid, RMsg (k, port, v)))
                  | None ->
                      proc.state <- Blocked (ports, k);
                      t.cpu_free.(p) <- t.time;
                      push_event t t.time (Dispatch p))
          | _ -> None);
    }
  in
  let saved = !current in
  current := Some (t, proc);
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () ->
      match resume with
      | Start body -> match_with body () handler
      | RUnit k -> continue k ()
      | RMsg (k, port, v) -> continue k (port, v))

let spawn t ~name ~on body =
  if t.ran then invalid_arg "Sim.spawn: machine already ran";
  if on < 0 || on >= Archi.nprocs t.arch then
    invalid_arg (Printf.sprintf "Sim.spawn: no processor %d" on);
  let pid = t.nprocesses in
  let proc = { pid; name; on; state = Runnable; mailboxes = Hashtbl.create 4 } in
  if pid >= Array.length t.processes then begin
    let cap = max 16 (2 * Array.length t.processes) in
    let np = Array.make cap proc in
    Array.blit t.processes 0 np 0 t.nprocesses;
    t.processes <- np
  end;
  t.processes.(pid) <- proc;
  t.nprocesses <- t.nprocesses + 1;
  Queue.add (pid, Start body) t.ready.(on);
  push_event t 0.0 (Dispatch on);
  pid

let inject t ?(at = 0.0) pid port v =
  if pid < 0 || pid >= t.nprocesses then invalid_arg "Sim.inject: unknown process";
  push_event t at (Deliver (pid, port, v))

let halt_processor t ?(at = 0.0) p =
  if p < 0 || p >= Archi.nprocs t.arch then
    invalid_arg "Sim.halt_processor: no such processor";
  push_event t at (Halt p)

let deliver t pid port v =
  let proc = t.processes.(pid) in
  let q =
    match Hashtbl.find_opt proc.mailboxes port with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace proc.mailboxes port q;
        q
  in
  Queue.add (t.time, v) q;
  match proc.state with
  | Blocked (ports, k) when List.mem port ports ->
      (* Wake up: re-run the receive logic from the dispatch path. *)
      proc.state <- Runnable;
      let port, _ = Option.get (earliest_message proc ports) in
      let v = pop_message proc port in
      make_ready t proc (RMsg (k, port, v))
  | Blocked _ | Runnable | Finished -> ()

let dispatch t p =
  if t.halted.(p) then ()
  else if t.cpu_free.(p) > t.time then
    (* CPU still busy: retry when it frees. *)
    push_event t t.cpu_free.(p) (Dispatch p)
  else if not (Queue.is_empty t.ready.(p)) then begin
    let pid, resume = Queue.pop t.ready.(p) in
    run_segment t t.processes.(pid) resume
  end

let run ?(until = infinity) t =
  if t.ran then failwith "Sim.run: machine already ran";
  t.ran <- true;
  let rec loop () =
    match Support.Pqueue.pop t.events with
    | None -> ()
    | Some (at, ev) ->
        if at > until then ()
        else begin
          t.time <- Float.max t.time at;
          (match ev with
          | Dispatch p -> dispatch t p
          | Step (pid, resume) ->
              if not t.halted.(t.processes.(pid).on) then
                run_segment t t.processes.(pid) resume
          | Enqueue (pid, resume) -> make_ready t t.processes.(pid) resume
          | Deliver (pid, port, v) ->
              if not t.halted.(t.processes.(pid).on) then deliver t pid port v
          | Halt p -> t.halted.(p) <- true);
          loop ()
        end
  in
  loop ();
  t.time

type stats = {
  finish_time : float;
  messages : int;
  bytes : int;
  busy : float array;
  hops_total : int;
}

let stats t =
  {
    finish_time = t.time;
    messages = t.messages;
    bytes = t.bytes;
    busy = Array.copy t.busy;
    hops_total = t.hops_total;
  }

let utilisation t =
  if t.time <= 0.0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 t.busy
    /. (t.time *. float_of_int (Archi.nprocs t.arch))

let trace t = List.rev t.trace_rev

let process_accounts t =
  List.init t.nprocesses (fun pid ->
      let proc = t.processes.(pid) in
      ( proc.name,
        proc.on,
        Option.value ~default:0.0 (Hashtbl.find_opt t.proc_busy pid),
        Option.value ~default:0 (Hashtbl.find_opt t.proc_sends pid) ))

let gantt ?(width = 72) t =
  let buf = Buffer.create 256 in
  let horizon = if t.time > 0.0 then t.time else 1.0 in
  Buffer.add_string buf
    (Printf.sprintf "time: 0 .. %.3f ms ('#' = busy)\n" (horizon *. 1e3));
  Array.iteri
    (fun p intervals ->
      let cells = Bytes.make width '.' in
      List.iter
        (fun (t0, t1) ->
          let c0 = int_of_float (t0 /. horizon *. float_of_int width) in
          let c1 = int_of_float (t1 /. horizon *. float_of_int width) in
          for c = max 0 c0 to min (width - 1) (max c0 c1) do
            Bytes.set cells c '#'
          done)
        intervals;
      Buffer.add_string buf (Printf.sprintf "P%-3d |%s|\n" p (Bytes.to_string cells)))
    t.busy_intervals;
  Buffer.contents buf
