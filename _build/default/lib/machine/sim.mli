(** Discrete-event simulator of a MIMD-DM machine.

    This is the executable stand-in for the paper's Transvision platform
    (a ring of T9000 Transputers with point-to-point links): processes are
    placed on processors, execute sequentially (one process at a time per
    processor, cooperative between communications), and exchange values over
    the architecture's links with startup + bandwidth costs, store-and-forward
    through intermediate processors, and per-link contention.

    Process bodies are plain OCaml functions written in direct style; the
    communication/computation primitives ({!recv}, {!send}, {!compute}) are
    implemented with effect handlers, so a body looks exactly like the
    pseudo-code of a SKiPPER kernel primitive sequence. The simulation is
    fully deterministic: simultaneous events are processed in creation
    order.

    Values computed are real {!Skel.Value.t}s, so a simulated run returns the
    actual program output, which tests compare against sequential
    emulation. *)

type t
type pid = int

val create : ?trace:bool -> ?trace_limit:int -> Archi.t -> t
(** [create arch] builds an empty machine over [arch]. With [~trace:true],
    events are recorded (up to [trace_limit], default 20000). *)

val arch : t -> Archi.t

(** {1 Process primitives}

    These may only be called from inside a process body spawned with
    {!spawn}; elsewhere they raise [Not_in_process]. *)

exception Not_in_process

val self : unit -> pid
val now : unit -> float
(** Current simulation time, seconds. *)

val compute : float -> unit
(** [compute cycles] occupies the hosting processor for
    [cycles * cycle_time] seconds. *)

val send : pid -> string -> Skel.Value.t -> unit
(** [send dst port v] transmits [v] to process [dst]'s [port]. The sender is
    charged a fixed software overhead; the transfer itself proceeds like DMA:
    link occupancy along the route is serialised per link, and the sender
    does not wait for delivery. Local (same-processor) messages cost only a
    memory-copy time. *)

val recv : string -> Skel.Value.t
(** [recv port] blocks until a message is available on [port] and returns
    it. Messages per port arrive FIFO. *)

val recv_any : string list -> string * Skel.Value.t
(** [recv_any ports] blocks until any of [ports] has a message; among ports
    with waiting messages, the earliest-delivered message is taken. *)

val sleep_until : float -> unit
(** [sleep_until t] releases the processor and resumes no earlier than
    absolute time [t] (immediately if [t] has passed). Sleeping does not
    count as busy time; it models a process waiting on an external timer,
    e.g. a camera delivering frames at 25 Hz. *)

(** {1 Building and running} *)

val spawn : t -> name:string -> on:int -> (unit -> unit) -> pid
(** [spawn t ~name ~on body] places a process on processor [on]. Bodies
    start running at time 0. Raises [Invalid_argument] for a bad processor
    id, or if the machine already ran. *)

val inject : t -> ?at:float -> pid -> string -> Skel.Value.t -> unit
(** [inject t pid port v] delivers an external message (e.g. the program
    input) at time [at] (default 0) without charging any link. *)

val halt_processor : t -> ?at:float -> int -> unit
(** Fault injection: at time [at] (default 0) the processor stops — its
    processes never run again and messages addressed to them are dropped.
    Messages already in flight on links still occupy them. The rest of the
    machine keeps running, so tests can observe how an executive behaves
    when part of the ring dies (SKiPPER itself has no fault tolerance: the
    pipeline stalls, which {!Executive.run} reports). *)

val run : ?until:float -> t -> float
(** Executes until the event queue drains (or simulated time exceeds
    [until], default infinite). Returns the time of the last event.
    A process still blocked in {!recv} when the queue drains is simply
    terminated (streams end this way); a [compute]/[send] deadlock cannot
    occur since both always progress. Raises [Failure] if called twice. *)

exception Process_failure of string * exn
(** Raised by {!run} when a process body raises: carries the process name
    and original exception. *)

(** {1 Results and metrics} *)

type stats = {
  finish_time : float;  (** time of last event *)
  messages : int;  (** total messages sent *)
  bytes : int;  (** total payload bytes sent *)
  busy : float array;  (** per-processor busy seconds *)
  hops_total : int;  (** total link traversals *)
}

val stats : t -> stats

val utilisation : t -> float
(** Mean processor busy fraction over the run ([0, 1]). *)

type trace_event = {
  time : float;
  proc : int;
  process : string;
  what : [ `Start_compute of float | `End_compute | `Send of string * int | `Recv of string | `Done ];
}

val trace : t -> trace_event list
(** Recorded events in time order (empty unless [~trace:true]). *)

val process_accounts : t -> (string * int * float * int) list
(** Per-process accounting, in spawn (pid) order:
    [(name, processor, busy_seconds, messages_sent)]. Always available (no
    tracing needed). *)

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart of processor occupation (requires tracing). *)

(** {1 Cost constants} *)

val send_overhead_cycles : float
(** Software cost charged to a sender per message (kernel primitive cost). *)

val recv_overhead_cycles : float
val local_copy_bandwidth : float
(** Bytes/second for same-processor message copies. *)
