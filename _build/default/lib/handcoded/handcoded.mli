(** Hand-crafted parallel tracker: the baseline of the paper's §4
    comparison.

    Before SKiPPER, the tracking application existed as a hand-coded
    parallel version ("at least ten times longer to implement", not
    scalable without C changes). This module recreates that style of
    implementation directly on the machine simulator, bypassing the whole
    SKiPPER pipeline: one monolithic master process performs frame input,
    window extraction, dynamic dispatch, accumulation, prediction and
    display in-line, with bare worker loops on the other processors. It
    calls the same sequential functions with the same cost models as the
    skeleton version, so the comparison isolates the overhead of the
    generated executive (extra control processes and messages). *)

type result = {
  marks_per_frame : int list;
  latencies : float list;  (** same definition as {!Executive.result} *)
  output_values : Skel.Value.t list;
  stats : Machine.Sim.stats;
}

val run :
  ?input_period:float ->
  config:Tracking.Funcs.config ->
  frames:int ->
  Archi.t ->
  result
(** Master on processor 0; one worker on every other processor (plus one
    sharing processor 0 when the configured [nproc] exceeds the machine —
    mirroring the canonical placement of the skeleton version). *)
