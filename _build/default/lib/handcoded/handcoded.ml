module V = Skel.Value

type result = {
  marks_per_frame : int list;
  latencies : float list;
  output_values : Skel.Value.t list;
  stats : Machine.Sim.stats;
}

let call table fn v =
  Machine.Sim.compute (Skel.Funtable.cost table fn v);
  Skel.Funtable.apply table fn v

let run ?input_period ~config ~frames arch =
  let table = Tracking.Funcs.table config in
  let sim = Machine.Sim.create arch in
  let nprocs = Archi.nprocs arch in
  let nworkers = config.Tracking.Funcs.nproc in
  let outputs = ref [] in
  (* Spawn order fixes the pid layout: worker i has pid i, the master has
     pid nworkers. Worker i sits on processor (i+1) mod nprocs, like the
     canonical skeleton placement. *)
  let master_pid = nworkers in
  let _workers =
    Array.init nworkers (fun i ->
        Machine.Sim.spawn sim
          ~name:(Printf.sprintf "hand-worker%d" i)
          ~on:((i + 1) mod nprocs)
          (fun () ->
            let rec serve () =
              match Machine.Sim.recv "task" with
              | V.Tuple [ V.Int idx; item ] ->
                  let marks = call table "detect_mark" item in
                  Machine.Sim.send master_pid "result" (V.Tuple [ V.Int idx; marks ]);
                  serve ()
              | _ -> failwith "hand-worker: bad task"
            in
            serve ()))
  in
  let farm windows =
    let queue = Queue.create () in
    List.iter (fun wv -> Queue.add wv queue) windows;
    let marks = ref (V.List []) in
    let outstanding = ref 0 in
    let feed widx =
      Machine.Sim.send widx "task" (V.Tuple [ V.Int widx; Queue.pop queue ])
    in
    for w = 0 to nworkers - 1 do
      if not (Queue.is_empty queue) then begin
        feed w;
        incr outstanding
      end
    done;
    while !outstanding > 0 do
      match Machine.Sim.recv "result" with
      | V.Tuple [ V.Int widx; y ] ->
          marks := call table "accum_marks" (V.Tuple [ !marks; y ]);
          if Queue.is_empty queue then decr outstanding else feed widx
      | _ -> failwith "hand-master: bad result"
    done;
    !marks
  in
  let _master =
    Machine.Sim.spawn sim ~name:"hand-master" ~on:0 (fun () ->
        let dims = Tracking.Funcs.input_value config in
        let state = ref (call table "init_state" V.Unit) in
        for i = 0 to frames - 1 do
          (match input_period with
          | Some p -> Machine.Sim.sleep_until (float_of_int i *. p)
          | None -> ());
          let img = call table "read_img" (V.Tuple [ dims; V.Int i ]) in
          let windows =
            match call table "get_windows_stage" (V.Tuple [ !state; img ]) with
            | V.List ws -> ws
            | _ -> failwith "hand-master: get_windows"
          in
          let marks = farm windows in
          (match call table "predict" marks with
          | V.Tuple [ st'; display ] ->
              state := st';
              let shown = call table "display_marks" display in
              outputs := (shown, Machine.Sim.now ()) :: !outputs
          | _ -> failwith "hand-master: predict")
        done)
  in
  if master_pid <> _master then failwith "Handcoded.run: pid layout changed";
  let _ = Machine.Sim.run sim in
  let outs = List.rev !outputs in
  let p = Option.value ~default:0.0 input_period in
  {
    marks_per_frame =
      List.map (fun (v, _) -> match v with V.List l -> List.length l | _ -> 0) outs;
    latencies = List.mapi (fun i (_, t) -> t -. (float_of_int i *. p)) outs;
    output_values = List.map fst outs;
    stats = Machine.Sim.stats sim;
  }
