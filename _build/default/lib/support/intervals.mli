(** Busy-interval bookkeeping for exclusive resources (communication links).

    An occupancy list is a sorted list of disjoint [(start, stop)] intervals.
    Both the machine simulator and the static scheduler reserve link time
    with first-fit insertion, so predicted and simulated transfers share one
    contention model. *)

type t = (float * float) list
(** Sorted by start, pairwise disjoint. *)

val empty : t

val first_fit : t -> earliest:float -> duration:float -> float
(** Earliest start [>= earliest] such that [[start, start + duration)] does
    not overlap any interval. *)

val reserve : t -> earliest:float -> duration:float -> float * t
(** [first_fit] plus insertion; returns the start and the updated list. *)

val total : t -> float
(** Sum of interval lengths. *)

val valid : t -> bool
(** Checks ordering and disjointness (for tests). *)
