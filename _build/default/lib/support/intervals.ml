type t = (float * float) list

let empty = []
let eps = 1e-15

let first_fit intervals ~earliest ~duration =
  let rec fit start = function
    | [] -> start
    | (s, e) :: rest ->
        if start +. duration <= s +. eps then start else fit (Float.max start e) rest
  in
  fit earliest intervals

let reserve intervals ~earliest ~duration =
  let start = first_fit intervals ~earliest ~duration in
  let rec insert = function
    | [] -> [ (start, start +. duration) ]
    | (s, _) :: _ as rest when start < s -> (start, start +. duration) :: rest
    | iv :: rest -> iv :: insert rest
  in
  (start, insert intervals)

let total intervals = List.fold_left (fun acc (s, e) -> acc +. (e -. s)) 0.0 intervals

let valid intervals =
  let rec go = function
    | (s1, e1) :: ((s2, _) :: _ as rest) -> s1 <= e1 && e1 <= s2 +. eps && go rest
    | [ (s, e) ] -> s <= e
    | [] -> true
  in
  go intervals
