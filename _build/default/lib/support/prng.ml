type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Rejection-free modulo is fine here: bounds are tiny w.r.t. 2^62. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 2) (Int64.of_int bound))

let int_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. u /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
