(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the environment (scene generation, workload
    synthesis, property tests that need auxiliary randomness) draws from an
    explicit [Prng.t] so that runs are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)
