lib/support/intervals.ml: Float List
