lib/support/intervals.mli:
