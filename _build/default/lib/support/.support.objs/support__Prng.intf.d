lib/support/prng.mli:
