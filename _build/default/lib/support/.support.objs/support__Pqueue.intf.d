lib/support/pqueue.mli:
