type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nh = Array.make ncap q.heap.(0) in
    Array.blit q.heap 0 nh 0 q.size;
    q.heap <- nh
  end

let push q prio value =
  let entry = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 entry;
  grow q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  (* sift up *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less q.heap.(!i) q.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = q.heap.(p) in
    q.heap.(p) <- q.heap.(!i);
    q.heap.(!i) <- tmp;
    i := p
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && less q.heap.(l) q.heap.(!smallest) then smallest := l;
        if r < q.size && less q.heap.(r) q.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.heap.(!smallest) in
          q.heap.(!smallest) <- q.heap.(!i);
          q.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.heap.(0).prio, q.heap.(0).value)

let clear q =
  q.size <- 0;
  q.next_seq <- 0
