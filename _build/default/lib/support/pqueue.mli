(** Mutable binary min-heap keyed by [(priority, tie)].

    Used as the event queue of the discrete-event simulator and as the ready
    list of the scheduler. Ties are broken by an integer sequence number so
    extraction order is fully deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]. Insertion order breaks
    priority ties (FIFO among equal priorities). *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option
val clear : 'a t -> unit
