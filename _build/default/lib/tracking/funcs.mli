(** The application's sequential functions, with cost models.

    These are the seven C functions of the paper's §4 case study, written
    against the vision substrate and registered in a {!Skel.Funtable.t}.
    Cost models are calibrated to land the T9000-era machine model in the
    paper's regime (see DESIGN.md): frame acquisition ≈ 1 cycle/pixel,
    detection ≈ 50 cycles/pixel of window content (threshold + CCL +
    moments), prediction a few thousand cycles. *)

type config = {
  scene : Vision.Scene.params;  (** synthetic camera parameters *)
  nproc : int;  (** the [nproc] constant of the specification *)
  read_cycles_per_px : float;
  extract_cycles_per_px : float;
  detect_cycles_per_px : float;
}

val default_config : config
(** 512x512, 2 vehicles, nproc = 8, calibrated cycle constants. *)

val with_nproc : int -> config -> config

val register : config -> Skel.Funtable.t -> unit
(** Registers [read_img], [init_state], [get_windows], [detect_mark],
    [accum_marks], [predict], [display_marks] and [empty_list]. *)

val table : config -> Skel.Funtable.t
(** Fresh table with everything registered. *)

val source : config -> string
(** The specification program of §4, verbatim modulo the [nproc] constant
    and our external declarations. *)

val ir : ?frames:int -> config -> Skel.Ir.program
(** The same skeletal program built directly with the embedded API
    (bypassing the ML front-end). *)

val input_value : config -> Skel.Value.t
(** [(512, 512)] — the argument the paper passes to [itermem]. *)
