(** Tracker memory: the [state] value threaded through [itermem].

    Holds, per tracked vehicle, the three predicted mark positions and the
    estimated image-plane velocity; plus the current mode (normal tracking
    or reinitialisation) and frame counter. *)

type track = {
  marks : Mark.t list;  (** exactly 3 when the track is locked *)
  vx : float;  (** centroid velocity, pixels/frame *)
  vy : float;
}

type mode = Tracking | Reinit

type t = {
  mode : mode;
  tracks : track list;
  frame : int;
}

val initial : t
(** Reinitialisation mode, no tracks, frame 0. *)

val centroid : track -> float * float
val locked : track -> bool
(** True when the track carries exactly three marks. *)

val to_value : t -> Skel.Value.t
val of_value : Skel.Value.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
