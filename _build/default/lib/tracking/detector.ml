module V = Skel.Value

let mark_threshold = 200
let min_mark_area = 6

let detect ?(threshold = mark_threshold) ~origin:(dx, dy) window =
  let regions = Vision.Ccl.detect_regions ~threshold window in
  regions
  |> List.filter (fun (r : Vision.Ccl.region) -> r.Vision.Ccl.area >= min_mark_area)
  |> List.map (Mark.of_region ~dx ~dy)
  |> List.sort (fun (a : Mark.t) (b : Mark.t) -> compare b.Mark.area a.Mark.area)

let window_items img windows =
  List.map
    (fun (w : Vision.Window.t) ->
      let pixels = Vision.Window.extract img w in
      V.Record
        [ ("x", V.Int w.Vision.Window.x); ("y", V.Int w.Vision.Window.y);
          ("pixels", V.Image pixels) ])
    windows

let detect_item item =
  let dx = V.to_int (V.field "x" item) and dy = V.to_int (V.field "y" item) in
  let pixels = V.to_image (V.field "pixels" item) in
  Mark.list_to_value (detect ~origin:(dx, dy) pixels)

let item_area item = Vision.Image.size (V.to_image (V.field "pixels" item))
