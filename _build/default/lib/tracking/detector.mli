(** Mark detection inside windows of interest.

    The [detect_mark] stage of §4: threshold the window, label connected
    components, keep plausible mark-sized regions, return their centres of
    gravity and englobing frames in absolute image coordinates. *)

val mark_threshold : int
(** Pixel level above which a pixel belongs to a mark (scene marks render at
    >= 220; backgrounds stay below 180). *)

val min_mark_area : int
(** Regions smaller than this are noise and discarded. *)

val detect : ?threshold:int -> origin:int * int -> Vision.Image.t -> Mark.t list
(** [detect ~origin:(dx, dy) window_pixels] returns the marks found, sorted
    by decreasing area. *)

val window_items : Vision.Image.t -> Vision.Window.t list -> Skel.Value.t list
(** Packs windows for the data farm: each item carries the window origin and
    its pixel content (on a distributed-memory machine the master ships the
    pixels, which is what makes the workload uneven). *)

val detect_item : Skel.Value.t -> Skel.Value.t
(** The registered [detect_mark] computation: takes a window item, returns
    the encoded mark list. *)

val item_area : Skel.Value.t -> int
(** Pixel count of a window item (for cost models). *)
