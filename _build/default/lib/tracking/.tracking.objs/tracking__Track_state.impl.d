lib/tracking/track_state.ml: Format List Mark Printf Skel
