lib/tracking/funcs.mli: Skel Vision
