lib/tracking/detector.mli: Mark Skel Vision
