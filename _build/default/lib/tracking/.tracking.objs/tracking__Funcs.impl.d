lib/tracking/funcs.ml: Detector List Mark Predictor Printf Skel Track_state Vision
