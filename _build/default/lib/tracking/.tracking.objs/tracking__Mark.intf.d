lib/tracking/mark.mli: Format Skel Vision
