lib/tracking/detector.ml: List Mark Skel Vision
