lib/tracking/mark.ml: Format List Skel Vision
