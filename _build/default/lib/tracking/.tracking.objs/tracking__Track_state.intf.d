lib/tracking/track_state.mli: Format Mark Skel
