lib/tracking/predictor.mli: Mark Track_state Vision
