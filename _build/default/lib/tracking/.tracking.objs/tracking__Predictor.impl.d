lib/tracking/predictor.ml: List Mark Track_state Vision
